//! Multi-tenant fairness: three identical Graph500 instances competing
//! for huge pages in a fragmented system (the Fig. 7 scenario).
//!
//! Linux's FCFS khugepaged finishes one process before touching the
//! next; HawkEye interleaves hot regions of all three round-robin.
//!
//! ```sh
//! cargo run --release --example multi_tenant_fairness
//! ```

use hawkeye::core::{HawkEye, HawkEyeConfig};
use hawkeye::kernel::{HugePagePolicy, KernelConfig, Simulator};
use hawkeye::metrics::Cycles;
use hawkeye::policies::LinuxThp;
use hawkeye::workloads::HotspotWorkload;

fn run(label: &str, policy: Box<dyn HugePagePolicy>, cross_merge: bool) {
    let mut cfg = KernelConfig::with_mib(768);
    cfg.cross_merge = cross_merge;
    cfg.max_time = Cycles::from_secs(300.0);
    let mut sim = Simulator::new(cfg, policy);
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let pids: Vec<u32> = (0..3).map(|_| sim.spawn(Box::new(HotspotWorkload::graph500(56, 1500)))).collect();
    sim.run();
    let m = sim.machine();
    let times: Vec<f64> = pids
        .iter()
        .map(|p| m.process(*p).and_then(|p| p.finish_time()).unwrap_or(m.now()).as_secs())
        .collect();
    let avg = times.iter().sum::<f64>() / times.len() as f64;
    let spread = times.iter().cloned().fold(0.0_f64, |mx, t| mx.max((t - avg).abs()));
    println!(
        "{label:<12} finish times {:>5.2}s {:>5.2}s {:>5.2}s | avg {avg:.2}s | max spread {spread:.2}s | promotions {}",
        times[0], times[1], times[2], m.stats().promotions
    );
}

fn main() {
    println!("three identical Graph500 instances, fragmented 768 MiB machine:\n");
    run("Linux-2MB", Box::new(LinuxThp::default()), true);
    run("HawkEye-G", Box::new(HawkEye::new(HawkEyeConfig::default())), false);
    run("HawkEye-PMU", Box::new(HawkEye::new(HawkEyeConfig::pmu())), false);
    println!("\nHawkEye should show both a lower average and a smaller spread:");
    println!("huge pages go to the hottest regions of every instance, not to");
    println!("whichever process khugepaged got to first.");
}
