//! Balloon-free memory overcommit (the Fig. 11 idea): two VMs worth 1.5×
//! the host's memory, where guest-side async pre-zeroing plus host-side
//! same-page merging returns freed guest memory to the host without any
//! paravirtual interface.
//!
//! ```sh
//! cargo run --release --example overcommit_vms
//! ```

use hawkeye::core::{HawkEye, HawkEyeConfig};
use hawkeye::kernel::{HugePagePolicy, KernelConfig, Workload};
use hawkeye::policies::LinuxThp;
use hawkeye::virt::{VirtConfig, VirtSystem, VmSpec};
use hawkeye::workloads::{RedisKv, RedisOp};

fn churny_kv(seed: u64) -> Box<dyn Workload> {
    Box::new(RedisKv::new(
        20 * 1024,
        vec![
            RedisOp::Insert { keys: 18 * 1024, value_pages: 1, think: 300 },
            RedisOp::DeleteFrac { fraction: 0.7 },
            RedisOp::Serve { requests: 250_000, think: 2_000 },
        ],
        seed,
    ))
}

fn guest(hawkeye: bool) -> Box<dyn HugePagePolicy> {
    if hawkeye {
        Box::new(HawkEye::new(HawkEyeConfig::default()))
    } else {
        Box::new(LinuxThp::default())
    }
}

fn run(label: &str, hawkeye_guests: bool, ksm: bool) {
    let vcfg = VirtConfig { ksm, ..Default::default() };
    // 128 MiB host, two 96 MiB VMs: 1.5x overcommit.
    let mut sys = VirtSystem::with_virt_config(
        KernelConfig::with_mib(128),
        Box::new(LinuxThp::default()),
        vcfg,
    );
    let mut handles = Vec::new();
    for seed in [71, 72] {
        let vm = sys.add_vm(VmSpec { frames: 24 * 1024 }, guest(hawkeye_guests));
        let pid = sys.spawn_in_vm(vm, churny_kv(seed));
        handles.push((vm, pid));
    }
    sys.run();
    let stats = sys.virt_stats();
    let times: Vec<f64> = handles
        .iter()
        .map(|(vm, pid)| {
            sys.guest(*vm)
                .process(*pid)
                .and_then(|p| p.finish_time())
                .unwrap_or_else(|| sys.guest(*vm).now())
                .as_secs()
        })
        .collect();
    println!(
        "{label:<26} VM times {:>6.2}s {:>6.2}s | swap-outs {:>6} | KSM-merged {:>6}",
        times[0], times[1], stats.swap_outs, stats.ksm_merged
    );
}

fn main() {
    println!("two 96 MiB VMs on a 128 MiB host (1.5x overcommit):\n");
    run("Linux guests, no KSM", false, false);
    run("HawkEye guests + host KSM", true, true);
    println!("\nWith HawkEye in the guests, freed guest pages are re-zeroed by the");
    println!("pre-zeroing daemon; the host's same-page-merging pass then collapses");
    println!("them onto the canonical zero page — recovering the memory a balloon");
    println!("driver would have needed a paravirtual channel to reclaim.");
}
