//! The Fig. 1 scenario as a runnable example: a Redis-like store inserts,
//! deletes 80 % of its keys, and inserts again with 2 MB values — under
//! Linux THP, Ingens and HawkEye side by side.
//!
//! ```sh
//! cargo run --release --example redis_bloat
//! ```

use hawkeye::core::{HawkEye, HawkEyeConfig};
use hawkeye::kernel::{HugePagePolicy, KernelConfig, Simulator};
use hawkeye::metrics::Cycles;
use hawkeye::policies::{Ingens, LinuxThp};
use hawkeye::workloads::{RedisKv, RedisOp};

fn script() -> Vec<RedisOp> {
    vec![
        RedisOp::Insert { keys: 40 * 1024, value_pages: 1, think: 300 }, // P1: 160 MiB
        RedisOp::Serve { requests: 20_000, think: 2_000 },
        RedisOp::DeleteFrac { fraction: 0.8 },                           // P2
        RedisOp::Serve { requests: 40_000, think: 150_000 },             // gap: khugepaged acts
        RedisOp::Insert { keys: 64, value_pages: 512, think: 20_000 },      // P3: 2 MB values
        RedisOp::Serve { requests: 20_000, think: 2_000 },
    ]
}

fn run(label: &str, policy: Box<dyn HugePagePolicy>, cross_merge: bool) {
    let mut cfg = KernelConfig::with_mib(176);
    cfg.cross_merge = cross_merge;
    cfg.max_time = Cycles::from_secs(120.0);
    let mut sim = Simulator::new(cfg, policy);
    let pid = sim.spawn(Box::new(RedisKv::new(120 * 1024, script(), 17)));
    sim.run();
    let m = sim.machine();
    let peak = m
        .recorder()
        .series("mem.allocated_pages")
        .and_then(|s| s.max_value())
        .unwrap_or(0.0)
        * 4096.0
        / (1024.0 * 1024.0);
    let oom = m.process(pid).map(|p| p.is_oom()).unwrap_or(false);
    println!(
        "{label:<12} peak RSS {peak:>6.0} MiB | bloat recovered {:>6.1} MiB | {}",
        m.stats().deduped_zero_pages as f64 * 4096.0 / (1024.0 * 1024.0),
        if oom { "OUT OF MEMORY" } else { "completed" }
    );
}

fn main() {
    println!("Fig. 1 scenario on a 176 MiB machine (160 MiB dataset):");
    run("Linux-2MB", Box::new(LinuxThp::default()), true);
    run("Ingens", Box::new(Ingens::default()), true);
    run("HawkEye-G", Box::new(HawkEye::new(HawkEyeConfig::default())), false);
    println!("\nHawkEye's bloat-recovery daemon demotes huge pages whose contents");
    println!("are mostly zero and de-duplicates those pages against the canonical");
    println!("zero page, so aggressive promotion no longer risks the OOM killer.");
}
