//! Quickstart: boot a simulated machine, run a workload under HawkEye,
//! and read the numbers the paper's evaluation is built from.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hawkeye::core::{HawkEye, HawkEyeConfig};
use hawkeye::kernel::{KernelConfig, Simulator};
use hawkeye::workloads::HotspotWorkload;

fn main() {
    // A 512 MiB machine with the paper's Haswell TLB geometry, running
    // the HawkEye-G policy (access-coverage driven promotion, async
    // pre-zeroing, bloat recovery).
    let mut cfg = KernelConfig::with_mib(512);
    cfg.cross_merge = false; // HawkEye maintains the pre-zeroed pool
    let mut sim = Simulator::new(cfg, Box::new(HawkEye::new(HawkEyeConfig::default())));

    // Fragment physical memory the way the paper's experiments do, so
    // fault-time huge allocations fail and promotion has to work for it.
    sim.machine_mut().fragment(1.0, 0.55, 42);
    println!("FMFI after fragmentation: {:.2}", sim.machine().fmfi());

    // A Graph500-like workload: 128 MiB footprint, hot regions in the
    // top quarter of its virtual address space.
    let pid = sim.spawn(Box::new(HotspotWorkload::graph500(64, 1200)));
    sim.run();

    let m = sim.machine();
    let p = m.process(pid).expect("spawned");
    let pmu = m.mmu().lifetime(pid);
    println!("workload        : {}", p.name());
    println!("completed in    : {:.2} simulated seconds", p.cpu_time().as_secs());
    println!("page faults     : {}", p.stats().faults);
    println!("huge faults     : {}", p.stats().huge_faults);
    println!("promotions      : {}", m.stats().promotions);
    println!("MMU overhead    : {:.1}% (Table 4 formula)", pmu.mmu_overhead() * 100.0);
    println!("pre-zeroed pages: {}", m.stats().prezeroed_pages);
}
