//! VM spin-up latency (the Table 8 headline): touching a whole guest
//! heap is pure page-fault work, and zeroing dominates 2 MB faults —
//! unless the pre-zeroing daemon already did it.
//!
//! ```sh
//! cargo run --release --example vm_spinup
//! ```

use hawkeye::core::{HawkEye, HawkEyeConfig};
use hawkeye::kernel::{workload::script, HugePagePolicy, KernelConfig, MemOp, Simulator};
use hawkeye::mem::{AllocPref, PageContent, Pfn};
use hawkeye::policies::LinuxThp;
use hawkeye::workloads::Spinup;

/// Dirty all free memory: a steady-state machine where nothing free is
/// zero (so zeroing is genuinely on the critical path).
fn dirty(sim: &mut Simulator) {
    let m = sim.machine_mut();
    let mut blocks = Vec::new();
    while let Some(order) = m.pm().largest_free_order() {
        match m.pm_mut().alloc(order, AllocPref::NonZeroed) {
            Ok(a) => blocks.push(a),
            Err(_) => break,
        }
    }
    for a in &blocks {
        for i in 0..a.order.pages() {
            m.pm_mut().frame_mut(Pfn(a.pfn.0 + i)).set_content(PageContent::non_zero(5));
        }
    }
    for a in blocks {
        m.pm_mut().free(a.pfn, a.order);
    }
}

fn run(label: &str, policy: Box<dyn HugePagePolicy>, cross_merge: bool, warmup: bool) {
    let mut cfg = KernelConfig::with_mib(512);
    cfg.cross_merge = cross_merge;
    let mut sim = Simulator::new(cfg, policy);
    dirty(&mut sim);
    if warmup {
        // Let the async pre-zeroing daemon reach steady state.
        sim.spawn(script("warmup", vec![MemOp::Compute { cycles: 3_000_000_000 }]));
        sim.run();
    }
    let pid = sim.spawn(Box::new(Spinup::new("kvm", 24 * 1024))); // 96 MiB guest
    sim.run();
    let p = sim.machine().process(pid).expect("spawned");
    println!(
        "{label:<12} spin-up {:>7.3}s | faults {:>6} | avg fault {:>8.1}us",
        p.cpu_time().as_secs(),
        p.stats().faults,
        p.stats().fault_cycles.as_micros() / p.stats().faults.max(1) as f64
    );
}

fn main() {
    println!("96 MiB VM spin-up on a steady-state (dirty free memory) machine:\n");
    run("Linux-2MB", Box::new(LinuxThp::default()), true, false);
    run(
        "HawkEye-2MB",
        Box::new(HawkEye::new(HawkEyeConfig::default())),
        false,
        true,
    );
    println!("\n(paper, Table 8: 9.7s vs 0.70s — a 13.8x spin-up speedup from");
    println!(" serving 2 MB faults out of the pre-zeroed pool)");
}
