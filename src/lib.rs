//! HawkEye/Rust — a simulation-based reproduction of
//! *HawkEye: Efficient Fine-grained OS Support for Huge Pages*
//! (Panwar, Bansal, Gopinath — ASPLOS 2019).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`mem`] — physical memory: buddy allocator with zero/non-zero free
//!   lists, FMFI, compaction, page-content model.
//! * [`vm`] — virtual memory: address spaces, page tables, faults, COW,
//!   zero-page de-duplication.
//! * [`tlb`] — hardware model: TLBs, page-walk caches, PMU counters.
//! * [`kernel`] — the simulated OS kernel, processes, daemons, and the
//!   `HugePagePolicy` plug-in interface.
//! * [`policies`] — baselines: Linux THP, FreeBSD reservations, Ingens.
//! * [`core`] — the HawkEye algorithms (access-coverage promotion, async
//!   pre-zeroing, bloat recovery, HawkEye-G / HawkEye-PMU).
//! * [`workloads`] — generators mirroring the paper's applications.
//! * [`virt`] — two-level (guest/host) virtualization experiments.
//! * [`metrics`] — time series, stats, and table rendering.

pub use hawkeye_core as core;
pub use hawkeye_kernel as kernel;
pub use hawkeye_mem as mem;
pub use hawkeye_metrics as metrics;
pub use hawkeye_policies as policies;
pub use hawkeye_tlb as tlb;
pub use hawkeye_virt as virt;
pub use hawkeye_vm as vm;
pub use hawkeye_workloads as workloads;
