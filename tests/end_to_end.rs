//! Cross-crate integration tests: the paper's headline claims, each
//! exercised end-to-end through the public facade API.
#![allow(clippy::box_default)] // Box::new(X::default()) coercing to Box<dyn Policy>; Box::default() cannot infer the unsized target.

use hawkeye::core::{HawkEye, HawkEyeConfig};
use hawkeye::kernel::{HugePagePolicy, KernelConfig, Simulator};
use hawkeye::metrics::Cycles;
use hawkeye::policies::{Ingens, LinuxThp};
use hawkeye::workloads::{AllocTouch, HotspotWorkload, RedisKv, RedisOp, Spinup};

fn hawkeye_cfg(mib: u64) -> KernelConfig {
    KernelConfig { cross_merge: false, ..KernelConfig::with_mib(mib) }
}

fn baseline_cfg(mib: u64) -> KernelConfig {
    KernelConfig { cross_merge: true, ..KernelConfig::with_mib(mib) }
}

/// Table 1's shape: huge faults cut the fault count ~512x and win on
/// total time for a sequential allocate-and-touch workload.
#[test]
fn huge_pages_cut_faults_and_total_time() {
    let run = |policy: Box<dyn HugePagePolicy>, cross| {
        let cfg = if cross { baseline_cfg(256) } else { hawkeye_cfg(256) };
        let mut sim = Simulator::new(cfg, policy);
        let pid = sim.spawn(Box::new(AllocTouch::new(16 * 1024, 3, 1150)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        (p.stats().faults, p.cpu_time())
    };
    let (f4k, t4k) = run(Box::new(hawkeye::kernel::BasePagesOnly), true);
    let (f2m, t2m) = run(Box::new(LinuxThp::default()), true);
    assert_eq!(f4k, 3 * 16 * 1024);
    assert_eq!(f2m, 3 * 32, "one fault per 2MB region per run");
    assert!(t2m < t4k, "huge pages must win overall: {t2m} vs {t4k}");
}

/// Fig. 1's shape: after a delete-heavy phase, khugepaged re-inflates
/// Linux's footprint (bloat) and the next allocation wave runs out of
/// memory; HawkEye recovers bloat under pressure and survives.
#[test]
fn bloat_recovery_beats_linux_on_sparse_redis() {
    let script = vec![
        // P1: 96 MiB of 4 KB values.
        RedisOp::Insert { keys: 24 * 1024, value_pages: 1, think: 200 },
        // P2: delete 80%, then give khugepaged time to "help".
        RedisOp::DeleteFrac { fraction: 0.8 },
        RedisOp::Serve { requests: 30_000, think: 100_000 },
        // P3: a 72 MiB wave of 2 MB values: fits iff bloat is recovered.
        RedisOp::Insert { keys: 36, value_pages: 512, think: 30_000 },
    ];
    let run = |policy: Box<dyn HugePagePolicy>, cross: bool| {
        let mut cfg = if cross { baseline_cfg(112) } else { hawkeye_cfg(112) };
        cfg.max_time = Cycles::from_secs(60.0);
        let mut sim = Simulator::new(cfg, policy);
        let pid = sim.spawn(Box::new(RedisKv::new(64 * 1024, script.clone(), 5)));
        sim.run();
        (sim.machine().process(pid).unwrap().is_oom(), sim.machine().stats().deduped_zero_pages)
    };
    let (linux_oom, _) = run(Box::new(LinuxThp::default()), true);
    let (hawkeye_oom, recovered) = run(Box::new(HawkEye::new(HawkEyeConfig::default())), false);
    assert!(linux_oom, "Linux's khugepaged bloat must exhaust memory in P3");
    assert!(!hawkeye_oom, "HawkEye must survive P3 by recovering bloat");
    assert!(recovered > 4096, "recovery must have de-duplicated zero pages: {recovered}");
}

/// Figs. 5-6's shape: with hot regions at high VAs in a fragmented
/// system, HawkEye recovers MMU overheads faster than sequential-scan
/// promotion.
#[test]
fn access_coverage_promotion_beats_sequential_scan() {
    let run = |policy: Box<dyn HugePagePolicy>, cross: bool| {
        let mut cfg = if cross { baseline_cfg(512) } else { hawkeye_cfg(512) };
        cfg.max_time = Cycles::from_secs(200.0);
        let mut sim = Simulator::new(cfg, policy);
        sim.machine_mut().fragment(1.0, 0.55, 7);
        let pid = sim.spawn(Box::new(HotspotWorkload::xsbench(72, 1200)));
        sim.run();
        sim.machine().process(pid).unwrap().cpu_time().as_secs()
    };
    let linux = run(Box::new(LinuxThp::default()), true);
    let ingens = run(Box::new(Ingens::default()), true);
    let hawkeye = run(Box::new(HawkEye::new(HawkEyeConfig::default())), false);
    assert!(hawkeye < linux, "HawkEye {hawkeye} vs Linux {linux}");
    assert!(hawkeye < ingens, "HawkEye {hawkeye} vs Ingens {ingens}");
}

/// Table 8's shape: pre-zeroed 2MB faults make spin-up dramatically
/// faster than synchronous zeroing.
#[test]
fn prezeroing_accelerates_spinup() {
    let run = |policy: Box<dyn HugePagePolicy>, cross: bool, warm: bool| {
        let cfg = if cross { baseline_cfg(256) } else { hawkeye_cfg(256) };
        let mut sim = Simulator::new(cfg, policy);
        // Steady state: dirty all free memory.
        hawkeye_dirty(&mut sim);
        if warm {
            sim.spawn(hawkeye::kernel::workload::script(
                "w",
                vec![hawkeye::kernel::MemOp::Compute { cycles: 2_000_000_000 }],
            ));
            sim.run();
        }
        let pid = sim.spawn(Box::new(Spinup::new("kvm", 12 * 1024)));
        sim.run();
        sim.machine().process(pid).unwrap().cpu_time().as_secs()
    };
    let linux = run(Box::new(LinuxThp::default()), true, false);
    let hawkeye = run(Box::new(HawkEye::new(HawkEyeConfig::default())), false, true);
    assert!(
        hawkeye * 4.0 < linux,
        "pre-zeroed spin-up must be >4x faster: {hawkeye} vs {linux}"
    );
}

fn hawkeye_dirty(sim: &mut Simulator) {
    use hawkeye::mem::{AllocPref, PageContent, Pfn};
    let m = sim.machine_mut();
    let mut blocks = Vec::new();
    while let Some(order) = m.pm().largest_free_order() {
        match m.pm_mut().alloc(order, AllocPref::NonZeroed) {
            Ok(a) => blocks.push(a),
            Err(_) => break,
        }
    }
    for a in &blocks {
        for i in 0..a.order.pages() {
            m.pm_mut().frame_mut(Pfn(a.pfn.0 + i)).set_content(PageContent::non_zero(5));
        }
    }
    for a in blocks {
        m.pm_mut().free(a.pfn, a.order);
    }
}

/// The simulator is deterministic: identical configurations produce
/// identical results, cycle for cycle.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = Simulator::new(hawkeye_cfg(256), Box::new(HawkEye::new(HawkEyeConfig::default())));
        sim.machine_mut().fragment(1.0, 0.5, 99);
        let pid = sim.spawn(Box::new(HotspotWorkload::graph500(24, 300)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        (
            p.cpu_time(),
            p.stats().faults,
            sim.machine().stats().promotions,
            sim.machine().mmu().lifetime(pid).load_walk,
        )
    };
    assert_eq!(run(), run());
}
