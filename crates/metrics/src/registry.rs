//! The cycle-attribution registry: named counters, gauges, and
//! log-bucketed histograms with a zero-cost disabled path.
//!
//! The paper's whole argument is an accounting one — MMU overhead is walk
//! cycles over `CPU_CLK_UNHALTED` (Table 4), and HawkEye's wins come from
//! *where* kernel cycles are spent (async pre-zeroing §3.1 vs. synchronous
//! zeroing, access-bit scans §3.4, promotion copies). The registry makes
//! that attribution exact: every charge to the simulated clock is tagged
//! with a [`Subsystem`], and per machine the CPU-side tags sum to the
//! unhalted counter ([`UNHALTED`]) — asserted in tests and checked by the
//! `hawkeye-analyze` residue pass.
//!
//! Wiring mirrors the trace layer (`hawkeye-trace`): emit sites hold a
//! cheap cloneable [`MetricsSink`] that early-returns on one branch when no
//! registry scope is active, so instrumentation can never perturb the
//! simulation (the registry-drift test pins this). Scoping is per-thread:
//! the bench scenario engine calls [`scope::begin`] before a scenario and
//! [`scope::end`] after; machines created inside the scope attach via
//! [`MetricsSink::attach_current`] and get per-scope machine ids in
//! creation order, keeping snapshots deterministic at any worker count.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::time::Cycles;

/// Counter name for `CPU_CLK_UNHALTED`: every cycle a process executes,
/// recorded once per scheduler quantum. The per-subsystem CPU ledger
/// ([`Subsystem::cpu_key`]) must sum exactly to this counter.
pub const UNHALTED: &str = "cycles.unhalted";

/// Where a simulated cycle went. One tag per charge to the clock.
///
/// The same taxonomy covers both ledgers:
/// * the **CPU ledger** (`cycles.cpu.*`) — cycles inside a process's
///   scheduler quantum, summing to [`UNHALTED`];
/// * the **daemon ledger** (`cycles.daemon.*`) — background kernel work
///   (khugepaged, kcompactd, the pre-zero thread), summing to the
///   kernel's `daemon_cycles` stat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// TLB-miss translation work: page walks plus L2-TLB lookup cycles.
    Walk,
    /// Fault handling and page-table maintenance: fault handlers, COW
    /// breaks, syscall entry, munmap/madvise bookkeeping, huge-page
    /// splits (demotion is a PTE rewrite).
    Fault,
    /// Page zeroing, synchronous (fault path) or asynchronous (§3.1).
    Zero,
    /// Page copies: promotion collapses and compaction migrations charge
    /// their copy portion here.
    Copy,
    /// Content scans: bloat-recovery zero-byte scans (§3.2).
    Scan,
    /// Compaction passes (migration bookkeeping).
    Compact,
    /// Zero-page de-duplication beyond the scan: demote + remap work.
    Dedup,
    /// Application compute: think time, in-core accesses, spin loops.
    Idle,
}

impl Subsystem {
    /// All subsystems, in report order.
    pub const ALL: [Subsystem; 8] = [
        Subsystem::Walk,
        Subsystem::Fault,
        Subsystem::Zero,
        Subsystem::Copy,
        Subsystem::Scan,
        Subsystem::Compact,
        Subsystem::Dedup,
        Subsystem::Idle,
    ];

    /// Stable lower-case tag.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Walk => "walk",
            Subsystem::Fault => "fault",
            Subsystem::Zero => "zero",
            Subsystem::Copy => "copy",
            Subsystem::Scan => "scan",
            Subsystem::Compact => "compact",
            Subsystem::Dedup => "dedup",
            Subsystem::Idle => "idle",
        }
    }

    /// CPU-ledger counter name (`cycles.cpu.<tag>`).
    pub fn cpu_key(self) -> &'static str {
        match self {
            Subsystem::Walk => "cycles.cpu.walk",
            Subsystem::Fault => "cycles.cpu.fault",
            Subsystem::Zero => "cycles.cpu.zero",
            Subsystem::Copy => "cycles.cpu.copy",
            Subsystem::Scan => "cycles.cpu.scan",
            Subsystem::Compact => "cycles.cpu.compact",
            Subsystem::Dedup => "cycles.cpu.dedup",
            Subsystem::Idle => "cycles.cpu.idle",
        }
    }

    /// Daemon-ledger counter name (`cycles.daemon.<tag>`).
    pub fn daemon_key(self) -> &'static str {
        match self {
            Subsystem::Walk => "cycles.daemon.walk",
            Subsystem::Fault => "cycles.daemon.fault",
            Subsystem::Zero => "cycles.daemon.zero",
            Subsystem::Copy => "cycles.daemon.copy",
            Subsystem::Scan => "cycles.daemon.scan",
            Subsystem::Compact => "cycles.daemon.compact",
            Subsystem::Dedup => "cycles.daemon.dedup",
            Subsystem::Idle => "cycles.daemon.idle",
        }
    }
}

/// An HDR-style histogram over `u64` values with power-of-two buckets:
/// bucket 0 holds exact zeros, bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
/// Integer bookkeeping throughout, so identical observation sequences
/// produce identical percentiles on any platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { counts: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile (0–100), resolved to the upper bound of the
    /// bucket holding the rank-`⌈p/100·n⌉` observation, clamped to the
    /// observed `[min, max]`. Bucketed, hence approximate within a factor
    /// of 2 — and exactly reproducible.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let hi = if i == 0 { 0u64 } else { (((1u128 << i) - 1).min(u64::MAX as u128)) as u64 };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (the analyzer folds
    /// per-event observations machine by machine).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One machine's metrics: counters, gauges, and histograms, all keyed by
/// stable static names (BTreeMaps, so iteration — and hence every report —
/// is deterministic).
#[derive(Debug, Clone, Default)]
pub struct MachineMetrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, LogHistogram>,
}

impl MachineMetrics {
    /// Adds `v` to counter `name`.
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Sets gauge `name` to its latest value.
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().observe(v);
    }

    /// Merges a locally-accumulated histogram into histogram `name`.
    /// Equivalent to observing every value in `h` individually — the
    /// bucket counts, count, sum, min and max are all additive — so hot
    /// paths can batch observations outside the registry lock.
    pub fn merge_hist(&mut self, name: &'static str, h: &LogHistogram) {
        self.hists.entry(name).or_default().merge(h);
    }

    /// Counter value (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// CPU-ledger cycles tagged `sub`.
    pub fn cpu_cycles(&self, sub: Subsystem) -> u64 {
        self.counter(sub.cpu_key())
    }

    /// Daemon-ledger cycles tagged `sub`.
    pub fn daemon_cycles(&self, sub: Subsystem) -> u64 {
        self.counter(sub.daemon_key())
    }

    /// Sum of the CPU ledger across all subsystems.
    pub fn cpu_total(&self) -> u64 {
        Subsystem::ALL.iter().map(|s| self.cpu_cycles(*s)).sum()
    }

    /// Sum of the daemon ledger across all subsystems.
    pub fn daemon_total(&self) -> u64 {
        Subsystem::ALL.iter().map(|s| self.daemon_cycles(*s)).sum()
    }

    /// The `CPU_CLK_UNHALTED` counter.
    pub fn unhalted(&self) -> u64 {
        self.counter(UNHALTED)
    }

    /// Unattributed CPU cycles: `unhalted − Σ cycles.cpu.*`. Exactly 0 for
    /// any machine driven by the simulator scheduler; machines driven by
    /// custom harnesses (the virtualization host) never record unhalted
    /// cycles and report a negative residue, which checks skip.
    pub fn residue(&self) -> i128 {
        self.unhalted() as i128 - self.cpu_total() as i128
    }
}

/// The per-scope registry: one [`MachineMetrics`] per machine, keyed by the
/// per-scope machine id (creation order).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    machines: BTreeMap<u32, MachineMetrics>,
    next_machine: u32,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_machine_id(&mut self) -> u32 {
        let id = self.next_machine;
        self.next_machine += 1;
        self.machines.entry(id).or_default();
        id
    }

    /// Metrics of machine `id`, if it attached.
    pub fn machine(&self, id: u32) -> Option<&MachineMetrics> {
        self.machines.get(&id)
    }

    /// Mutable metrics of machine `id`, creating the slot if that machine
    /// never attached. The scenario engine posts engine-level counters
    /// (e.g. `trace.dropped_events` when a journal ring overflowed) here
    /// after a run, outside any instrumented scope.
    pub fn machine_entry(&mut self, id: u32) -> &mut MachineMetrics {
        self.machines.entry(id).or_default()
    }

    /// All machines in id (creation) order.
    pub fn machines(&self) -> impl Iterator<Item = (u32, &MachineMetrics)> + '_ {
        self.machines.iter().map(|(k, v)| (*k, v))
    }

    /// Number of machines that attached to the scope.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when no machine attached.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

/// Cheap cloneable charge handle. Disabled sinks (the default) are a
/// no-op: every method early-returns on one branch, so instrumented code
/// runs identically whether or not a registry scope is active.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    shared: Option<Arc<Mutex<Registry>>>,
    machine: u32,
}

impl MetricsSink {
    /// A permanently-disabled sink.
    pub fn disabled() -> Self {
        MetricsSink::default()
    }

    /// Attach to the current thread's registry scope, if one is active,
    /// claiming the next machine id in that scope. Returns a disabled
    /// sink otherwise.
    pub fn attach_current() -> Self {
        match scope::current() {
            Some(shared) => {
                let machine = match shared.lock() {
                    Ok(mut reg) => reg.next_machine_id(),
                    Err(_) => return MetricsSink::disabled(),
                };
                MetricsSink { shared: Some(shared), machine }
            }
            None => MetricsSink::disabled(),
        }
    }

    /// True when charges reach a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// This sink's per-scope machine id (0 when disabled). Matches the
    /// trace layer's machine ids when both scopes wrap the same run.
    pub fn machine_id(&self) -> u32 {
        self.machine
    }

    fn with(&self, f: impl FnOnce(&mut MachineMetrics)) {
        let Some(shared) = &self.shared else { return };
        if let Ok(mut reg) = shared.lock() {
            f(reg.machines.entry(self.machine).or_default());
        }
    }

    /// Adds `v` to counter `name`. No-op when disabled or `v == 0`.
    #[inline]
    pub fn add(&self, name: &'static str, v: u64) {
        if self.shared.is_none() || v == 0 {
            return;
        }
        self.with(|m| m.add(name, v));
    }

    /// Sets gauge `name`. No-op when disabled.
    #[inline]
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        if self.shared.is_none() {
            return;
        }
        self.with(|m| m.set_gauge(name, v));
    }

    /// Records one histogram observation. No-op when disabled.
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        if self.shared.is_none() {
            return;
        }
        self.with(|m| m.observe(name, v));
    }

    /// Merges a batch of observations (see [`MachineMetrics::merge_hist`]).
    /// No-op when disabled or `h` is empty.
    #[inline]
    pub fn merge_hist(&self, name: &'static str, h: &LogHistogram) {
        if self.shared.is_none() || h.count() == 0 {
            return;
        }
        self.with(|m| m.merge_hist(name, h));
    }

    /// Charges `c` cycles to the CPU ledger under `sub`. No-op when
    /// disabled or `c` is zero.
    #[inline]
    pub fn charge_cpu(&self, sub: Subsystem, c: Cycles) {
        self.add(sub.cpu_key(), c.get());
    }

    /// Charges `c` cycles to the daemon ledger under `sub`. No-op when
    /// disabled or `c` is zero.
    #[inline]
    pub fn charge_daemon(&self, sub: Subsystem, c: Cycles) {
        self.add(sub.daemon_key(), c.get());
    }

    /// A copy of this machine's metrics (None when disabled) — the
    /// `CycleSample` trace event reads its payload from here.
    pub fn snapshot(&self) -> Option<MachineMetrics> {
        let shared = self.shared.as_ref()?;
        let reg = shared.lock().ok()?;
        Some(reg.machines.get(&self.machine).cloned().unwrap_or_default())
    }
}

/// Per-thread registry scopes, mirroring `hawkeye_trace::scope`. A scope
/// owns the registry that sinks created on this thread (between `begin`
/// and `end`) charge into.
pub mod scope {
    use super::{Arc, Mutex, RefCell, Registry};

    thread_local! {
        static CURRENT: RefCell<Option<Arc<Mutex<Registry>>>> =
            const { RefCell::new(None) };
    }

    /// Open a registry scope on this thread. Replaces any previous scope
    /// (its registry is discarded).
    pub fn begin() {
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(Arc::new(Mutex::new(Registry::new())));
        });
    }

    /// Close this thread's scope, returning its registry. Sinks still
    /// holding the registry keep writing into a drained one, harmlessly.
    pub fn end() -> Option<Registry> {
        let shared = CURRENT.with(|c| c.borrow_mut().take())?;
        let mut reg = shared.lock().ok()?;
        Some(std::mem::take(&mut *reg))
    }

    /// Detach this thread's scope *without* draining it: the shared
    /// registry is returned and sinks already attached to it keep
    /// charging into it. Long-lived owners (the fleet orchestrator) use
    /// this to keep a machine's registry alive beyond the `begin`/`end`
    /// bracket of its creating thread; reading happens later through the
    /// sink's `snapshot` or the returned handle.
    pub fn detach() -> Option<Arc<Mutex<Registry>>> {
        CURRENT.with(|c| c.borrow_mut().take())
    }

    /// True when a scope is open on this thread.
    pub fn active() -> bool {
        CURRENT.with(|c| c.borrow().is_some())
    }

    pub(super) fn current() -> Option<Arc<Mutex<Registry>>> {
        CURRENT.with(|c| c.borrow().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_keys_are_stable() {
        assert_eq!(Subsystem::Walk.cpu_key(), "cycles.cpu.walk");
        assert_eq!(Subsystem::Idle.daemon_key(), "cycles.daemon.idle");
        assert_eq!(Subsystem::ALL.len(), 8);
        for s in Subsystem::ALL {
            assert!(s.cpu_key().ends_with(s.name()));
            assert!(s.daemon_key().ends_with(s.name()));
        }
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.0), 0, "p0 resolves to the zero bucket");
        assert!(h.percentile(50.0) >= 3 && h.percentile(50.0) <= 4);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }

    #[test]
    fn histogram_empty_reads_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn histogram_percentile_is_deterministic_and_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.percentile(50.0);
        // Bucketed: within a factor of 2 of the true median, clamped to
        // the observed range.
        assert!((500..=1000).contains(&p50), "p50 {p50}");
        assert_eq!(p50, h.percentile(50.0));
        assert!(h.percentile(99.0) >= p50);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.observe(10);
        b.observe(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.sum(), 1010);
    }

    #[test]
    fn disabled_sink_is_noop() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        sink.add("x", 5);
        sink.set_gauge("g", 1.0);
        sink.observe("h", 7);
        sink.charge_cpu(Subsystem::Walk, Cycles::new(100));
        assert!(sink.snapshot().is_none());
    }

    #[test]
    fn attach_outside_scope_is_disabled() {
        assert!(!scope::active());
        let sink = MetricsSink::attach_current();
        assert!(!sink.is_enabled());
        assert!(scope::end().is_none());
    }

    #[test]
    fn scope_roundtrip_collects_charges() {
        scope::begin();
        assert!(scope::active());
        let a = MetricsSink::attach_current();
        let b = MetricsSink::attach_current();
        assert_eq!(a.machine_id(), 0);
        assert_eq!(b.machine_id(), 1);
        a.charge_cpu(Subsystem::Walk, Cycles::new(300));
        a.charge_cpu(Subsystem::Idle, Cycles::new(700));
        a.add(UNHALTED, 1000);
        a.observe("fault_cycles", 42);
        b.charge_daemon(Subsystem::Zero, Cycles::new(55));
        b.set_gauge("mem.utilization", 0.5);
        let reg = scope::end().expect("registry");
        assert!(!scope::active());
        assert_eq!(reg.len(), 2);
        let ma = reg.machine(0).expect("machine 0");
        assert_eq!(ma.cpu_total(), 1000);
        assert_eq!(ma.unhalted(), 1000);
        assert_eq!(ma.residue(), 0);
        assert_eq!(ma.hist("fault_cycles").expect("hist").count(), 1);
        let mb = reg.machine(1).expect("machine 1");
        assert_eq!(mb.daemon_total(), 55);
        assert_eq!(mb.daemon_cycles(Subsystem::Zero), 55);
        assert_eq!(mb.gauge("mem.utilization"), Some(0.5));
        // Stale sinks keep working after the scope closed.
        a.add(UNHALTED, 1);
        assert!(scope::end().is_none());
    }

    #[test]
    fn zero_charges_do_not_create_keys() {
        scope::begin();
        let sink = MetricsSink::attach_current();
        sink.charge_cpu(Subsystem::Walk, Cycles::ZERO);
        sink.add("nothing", 0);
        let reg = scope::end().expect("registry");
        let m = reg.machine(0).expect("attached");
        assert_eq!(m.counters().count(), 0, "zero charges must leave no trace");
    }
}
