//! Plain-text table rendering.
//!
//! Every bench target prints its reproduction of a paper table or figure as
//! an aligned text table via [`TextTable`], so `cargo bench` output can be
//! compared against the paper side by side.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::TextTable;
///
/// let mut t = TextTable::new(vec!["Workload", "Linux-4KB", "HawkEye"]);
/// t.row(vec!["Redis".into(), "233".into(), "551".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Redis"));
/// assert!(s.contains("HawkEye"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows are allowed (extra cells get width 0 pads).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Appends a row from anything displayable.
    pub fn row_display<D: fmt::Display>(&mut self, cells: Vec<D>) -> &mut Self {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        if let Some(title) = &self.title {
            writeln!(f, "== {title} ==")?;
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{}", w.iter().map(|n| "-".repeat(*n)).collect::<Vec<_>>().join("  "))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a ratio as the paper does: `1.14x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction (0–1) as a percentage with one decimal: `31.4%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count using binary units (`KiB`, `MiB`, `GiB`).
pub fn bytes(n: u64) -> String {
    const K: f64 = 1024.0;
    let nf = n as f64;
    if nf >= K * K * K {
        format!("{:.1}GiB", nf / (K * K * K))
    } else if nf >= K * K {
        format!("{:.1}MiB", nf / (K * K))
    } else if nf >= K {
        format!("{:.1}KiB", nf / K)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]).with_title("T");
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== T ==");
        assert!(lines[1].starts_with("a    "));
        // all data rows align the second column at the same offset
        let col = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find('2').unwrap(), col);
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "extra".into()]);
        t.row(vec![]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains("extra"));
    }

    #[test]
    fn row_display_converts() {
        let mut t = TextTable::new(vec!["n", "v"]);
        t.row_display(vec![1.5, 2.25]);
        assert!(t.to_string().contains("2.25"));
    }

    #[test]
    fn formatters() {
        assert_eq!(speedup(1.137), "1.14x");
        assert_eq!(pct(0.314), "31.4%");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0MiB");
        assert_eq!(bytes(5 * 1024 * 1024 * 1024), "5.0GiB");
    }
}
