//! A mergeable quantile sketch: the [`LogHistogram`](crate::LogHistogram)
//! log-bucket machinery extended with sub-bucket resolution for fleet
//! telemetry percentiles (p50/p90/p99/p999).
//!
//! The registry's `LogHistogram` keeps one bucket per power of two —
//! enough for cycle-ledger sanity checks, but a factor-2 error bar is too
//! coarse for SLO series. [`QuantileSketch`] splits every octave into 4
//! sub-buckets keyed by the two mantissa bits below the leading one, so
//! the relative quantile error is bounded by 25 % while the bookkeeping
//! stays pure-integer and platform-independent.
//!
//! **Exact-merge contract**: every field of the sketch — bucket counts,
//! count, sum, min, max — is additive (or a min/max), so
//! [`QuantileSketch::merge`] over any sharding of an observation stream
//! produces a sketch *identical* (byte for byte via
//! [`QuantileSketch::encode`]) to ingesting the stream into one sketch.
//! This is what makes per-epoch fleet series reducible over host groups
//! in submission order with no dependence on the worker count; the
//! property test in this module and the fleet determinism gates pin it.

/// Sub-bucket log histogram over `u64` with deterministic quantiles.
///
/// Bucket layout (index → values):
/// * `0` — exact zeros;
/// * `1..=3` — the exact values 1, 2, 3 (octaves narrower than the
///   sub-bucket width);
/// * `(e << 2) | sub` for `e ≥ 2` — values with floor-log2 `e` whose two
///   mantissa bits below the leading one equal `sub`, i.e. the interval
///   `[(4+sub)·2^(e-2), (5+sub)·2^(e-2))`.
///
/// Quantiles resolve to the *lower boundary* of the selected bucket,
/// clamped to the observed `[min, max]` — so a value stream that only
/// contains bucket boundaries has exact quantiles at every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: [u64; 256],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch { counts: [0; 256], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        let e = 63 - v.leading_zeros() as usize;
        if e < 2 {
            return v as usize; // 1, 2, 3 get exact buckets
        }
        let sub = ((v >> (e - 2)) & 0b11) as usize;
        (e << 2) | sub
    }

    /// The lower boundary of bucket `i` — the value quantiles resolve to.
    fn bucket_lo(i: usize) -> u64 {
        if i < 4 {
            return i as u64; // 0 and the exact 1/2/3 buckets
        }
        let (e, sub) = (i >> 2, (i & 0b11) as u64);
        (4 + sub) << (e - 2)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `p`-th percentile (0–100): the lower boundary of the bucket
    /// holding the rank-`⌈p/100·n⌉` observation, clamped to the observed
    /// `[min, max]`. Exact whenever observations sit on bucket
    /// boundaries; within 25 % relative error otherwise. Deterministic on
    /// every platform — integer bookkeeping throughout.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_lo(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another sketch into this one. Exact: all fields are
    /// additive (or min/max), so merging shards of a stream equals
    /// ingesting the whole stream — see the module docs.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Canonical text encoding of the full sketch state (summary fields
    /// plus every non-empty bucket). Two sketches are byte-identical here
    /// iff they are field-identical — the merge property tests and the
    /// fleet determinism gates compare these strings.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "n={};sum={};min={};max={}|",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{i}:{c}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-tree SplitMix64 for the shard property test (the
    /// kernel's rng lives above this crate in the dependency graph).
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn buckets_partition_the_value_space() {
        // Every value maps to exactly one bucket whose [lo, next-lo)
        // interval contains it, and bucket lows are strictly increasing
        // over occupied indices.
        let mut prev_lo = 0u64;
        for i in 1..256usize {
            if (4..8).contains(&i) {
                continue; // indices 4..8 are structurally unused
            }
            let lo = QuantileSketch::bucket_lo(i);
            assert!(lo > prev_lo || i == 1, "bucket {i} lo {lo} after {prev_lo}");
            prev_lo = lo;
            assert_eq!(QuantileSketch::bucket(lo), i, "lo of bucket {i} maps home");
        }
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 1023, 1024, u64::MAX] {
            let b = QuantileSketch::bucket(v);
            assert!(QuantileSketch::bucket_lo(b) <= v, "lo(bucket({v})) ≤ {v}");
        }
    }

    #[test]
    fn empty_sketch_reads_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.percentile(99.9), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn quantiles_are_exact_on_bucket_boundaries() {
        // Feed only bucket lower boundaries: quantiles must come back
        // exactly (the sketch resolves to bucket lows and clamps to the
        // observed range).
        let boundaries: Vec<u64> = (4..64usize)
            .flat_map(|e| (0..4u64).map(move |sub| (4 + sub) << (e - 2)))
            .collect();
        let mut s = QuantileSketch::new();
        for &b in &boundaries {
            s.observe(b);
        }
        let n = boundaries.len();
        for (k, &b) in boundaries.iter().enumerate() {
            // Percentile that selects rank k+1: aim at the half-step so
            // f64 rounding in ⌈p/100·n⌉ cannot tip the rank either way.
            let p = 100.0 * (k as f64 + 0.5) / n as f64;
            assert_eq!(s.percentile(p), b, "rank {} of {n}", k + 1);
        }
        assert_eq!(s.percentile(0.0), boundaries[0]);
        assert_eq!(s.percentile(100.0), *boundaries.last().unwrap());
    }

    #[test]
    fn quantile_error_is_bounded_by_a_quarter() {
        let mut s = QuantileSketch::new();
        for v in 1..=100_000u64 {
            s.observe(v);
        }
        for (p, truth) in [(50.0, 50_000.0), (90.0, 90_000.0), (99.0, 99_000.0), (99.9, 99_900.0)]
        {
            let got = s.percentile(p) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 0.25, "p{p}: {got} vs {truth} (rel {rel:.3})");
        }
        assert_eq!(s.mean(), 50_000);
    }

    #[test]
    fn merge_accumulates_and_tracks_extremes() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        a.observe(10);
        b.observe(1000);
        b.observe(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.sum(), 1010);
    }

    #[test]
    fn merge_of_shards_is_byte_identical_to_single_ingestion() {
        // The exact-merge proof: for 1/2/4/8 shards of the same stream
        // (round-robin split), merging the shard sketches reproduces the
        // single-sketch state byte for byte.
        let mut rng = SplitMix64(0x9A17);
        let stream: Vec<u64> = (0..10_000)
            .map(|_| {
                // Mix magnitudes: zeros, small exact values, and wide-range
                // cycle-like numbers.
                let r = rng.next();
                match r % 8 {
                    0 => 0,
                    1 => r % 4,
                    2..=5 => r % 1_000_000,
                    _ => r,
                }
            })
            .collect();
        let mut whole = QuantileSketch::new();
        for &v in &stream {
            whole.observe(v);
        }
        for shards in [1usize, 2, 4, 8] {
            let mut parts: Vec<QuantileSketch> =
                (0..shards).map(|_| QuantileSketch::new()).collect();
            for (i, &v) in stream.iter().enumerate() {
                parts[i % shards].observe(v);
            }
            let mut merged = QuantileSketch::new();
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(merged, whole, "{shards} shards: field equality");
            assert_eq!(merged.encode(), whole.encode(), "{shards} shards: byte equality");
            for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                assert_eq!(merged.percentile(p), whole.percentile(p), "{shards} shards, p{p}");
            }
        }
    }

    #[test]
    fn encode_distinguishes_distinct_states() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        a.observe(8);
        b.observe(9);
        assert_ne!(a.encode(), b.encode(), "9 lands in a different sub-bucket than 8");
        assert_eq!(a.encode(), a.clone().encode(), "stable");
    }
}
