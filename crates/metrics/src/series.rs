//! Time-series recording for figure reproduction.
//!
//! The paper's figures plot quantities over time (RSS in Fig. 1, MMU
//! overhead and huge-page counts in Figs. 6–7). Experiments attach a
//! [`Recorder`] to the kernel and sample named series at a fixed simulated
//! period; bench targets then render the series as text columns.

use crate::time::Cycles;
use std::collections::BTreeMap;

/// One (time, value) observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time of the observation, in seconds.
    pub secs: f64,
    /// Observed value.
    pub value: f64,
}

/// How [`TimeSeries::resample`] reduces the samples inside one time bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    /// Arithmetic mean of the bin's values (rates, percentages).
    Mean,
    /// Sum of the bin's values (event counts per bin).
    Sum,
    /// Maximum of the bin's values (peaks).
    Max,
}

impl Reduce {
    fn apply(self, values: impl Iterator<Item = f64>) -> f64 {
        let mut n = 0u64;
        let mut sum = 0.0;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            n += 1;
            sum += v;
            max = max.max(v);
        }
        match self {
            Reduce::Mean => {
                if n == 0 {
                    0.0
                } else {
                    sum / n as f64
                }
            }
            Reduce::Sum => sum,
            Reduce::Max => {
                if n == 0 {
                    0.0
                } else {
                    max
                }
            }
        }
    }
}

/// A named sequence of observations ordered by time.
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::TimeSeries;
///
/// let mut rss = TimeSeries::new("rss_mb");
/// rss.push(0.0, 10.0);
/// rss.push(1.0, 42.0);
/// assert_eq!(rss.last().unwrap().value, 42.0);
/// assert_eq!(rss.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    name: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), samples: Vec::new() }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation. Times must be non-decreasing:
    /// [`TimeSeries::value_at`] and figure reconstruction assume it, and an
    /// out-of-order push would corrupt them silently, so debug builds
    /// assert. Merging independently-recorded series (e.g. per-pid
    /// overhead curves in the analyzer) is what [`TimeSeries::merge_sorted`]
    /// is for.
    pub fn push(&mut self, secs: f64, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|s| s.secs <= secs),
            "TimeSeries {:?}: out-of-order push ({} after {})",
            self.name,
            secs,
            self.samples.last().map_or(f64::NAN, |s| s.secs),
        );
        self.samples.push(Sample { secs, value });
    }

    /// Merges two time-sorted series into a new one named `name`,
    /// preserving time order. Stable: on equal timestamps, `self`'s
    /// samples come first. Both inputs must individually be sorted (the
    /// invariant [`TimeSeries::push`] asserts).
    pub fn merge_sorted(&self, other: &TimeSeries, name: impl Into<String>) -> TimeSeries {
        let mut out = TimeSeries::new(name);
        out.samples.reserve(self.samples.len() + other.samples.len());
        let (mut i, mut j) = (0, 0);
        while i < self.samples.len() && j < other.samples.len() {
            if other.samples[j].secs < self.samples[i].secs {
                out.samples.push(other.samples[j]);
                j += 1;
            } else {
                out.samples.push(self.samples[i]);
                i += 1;
            }
        }
        out.samples.extend_from_slice(&self.samples[i..]);
        out.samples.extend_from_slice(&other.samples[j..]);
        out
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All observations in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Maximum observed value (`None` if empty).
    pub fn max_value(&self) -> Option<f64> {
        self.samples.iter().map(|s| s.value).fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Step-interpolated value at time `secs`: the value of the latest
    /// sample at or before `secs`, or `None` if `secs` precedes all samples.
    pub fn value_at(&self, secs: f64) -> Option<f64> {
        self.samples.iter().take_while(|s| s.secs <= secs).last().map(|s| s.value)
    }

    /// Resamples onto `bins` fixed-width time bins spanning
    /// `[first.secs, last.secs]`, reducing the samples that fall into each
    /// bin with `reduce`. Empty bins are skipped (no interpolation), so
    /// the result has at most `bins` entries; each carries the bin's
    /// *center* time. Unlike [`TimeSeries::downsample`] (which picks
    /// samples by index and so drifts with sampling density), resampling
    /// produces figure bins aligned on simulated time — what the report
    /// pipeline's sparkline figures want. Deterministic: pure f64
    /// arithmetic over the samples in time order.
    pub fn resample(&self, bins: usize, reduce: Reduce) -> Vec<Sample> {
        if bins == 0 || self.samples.is_empty() {
            return Vec::new();
        }
        let t0 = self.samples[0].secs;
        let t1 = self.samples[self.samples.len() - 1].secs;
        let width = (t1 - t0) / bins as f64;
        if width <= 0.0 {
            // Degenerate span: everything lands in one bin.
            let v = reduce.apply(self.samples.iter().map(|s| s.value));
            return vec![Sample { secs: t0, value: v }];
        }
        let mut out = Vec::new();
        let mut start = 0;
        for b in 0..bins {
            // The final bin is closed on the right so `t1` is included.
            let hi = if b + 1 == bins { f64::INFINITY } else { t0 + width * (b + 1) as f64 };
            let mut end = start;
            while end < self.samples.len() && self.samples[end].secs < hi {
                end += 1;
            }
            if end > start {
                let v = reduce.apply(self.samples[start..end].iter().map(|s| s.value));
                out.push(Sample { secs: t0 + width * (b as f64 + 0.5), value: v });
            }
            start = end;
        }
        out
    }

    /// Downsamples to at most `n` evenly spaced samples (by index), always
    /// keeping the final sample. Useful when printing long runs as figures.
    pub fn downsample(&self, n: usize) -> Vec<Sample> {
        if n == 0 || self.samples.is_empty() {
            return Vec::new();
        }
        if self.samples.len() <= n {
            return self.samples.clone();
        }
        let stride = self.samples.len() as f64 / n as f64;
        let mut out: Vec<Sample> = (0..n).map(|i| self.samples[(i as f64 * stride) as usize]).collect();
        let last = *self.samples.last().expect("non-empty");
        if out.last().map(|s| s.secs) != Some(last.secs) {
            *out.last_mut().expect("n > 0") = last;
        }
        out
    }
}

/// A collection of named [`TimeSeries`], keyed by name.
///
/// Experiments record into a `Recorder`; bench targets iterate it to print
/// figure data. Keys are ordered (BTreeMap) so output is deterministic.
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::Recorder;
///
/// let mut rec = Recorder::new();
/// rec.record("mmu_overhead", 0.5, 31.0);
/// rec.record("mmu_overhead", 1.0, 12.0);
/// assert_eq!(rec.series("mmu_overhead").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    series: BTreeMap<String, TimeSeries>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `(secs, value)` to the series called `name`, creating it on
    /// first use.
    pub fn record(&mut self, name: &str, secs: f64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name))
            .push(secs, value);
    }

    /// Convenience: record using a [`Cycles`] timestamp.
    pub fn record_at(&mut self, name: &str, at: Cycles, value: f64) {
        self.record(name, at.as_secs(), value);
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterates all series in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of all recorded series.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrip() {
        let mut s = TimeSeries::new("x");
        assert!(s.is_empty());
        s.push(0.0, 1.0);
        s.push(2.0, 5.0);
        assert_eq!(s.name(), "x");
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_value(), Some(5.0));
        assert_eq!(s.last().unwrap().secs, 2.0);
    }

    #[test]
    fn value_at_is_step_interpolated() {
        let mut s = TimeSeries::new("x");
        s.push(1.0, 10.0);
        s.push(3.0, 30.0);
        assert_eq!(s.value_at(0.5), None);
        assert_eq!(s.value_at(1.0), Some(10.0));
        assert_eq!(s.value_at(2.9), Some(10.0));
        assert_eq!(s.value_at(3.0), Some(30.0));
        assert_eq!(s.value_at(99.0), Some(30.0));
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = TimeSeries::new("x");
        for i in 0..100 {
            s.push(i as f64, i as f64);
        }
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].secs, 0.0);
        assert_eq!(d.last().unwrap().secs, 99.0);
        assert!(s.downsample(0).is_empty());
        assert_eq!(s.downsample(1000).len(), 100);
    }

    #[test]
    fn resample_bins_on_time_not_index() {
        let mut s = TimeSeries::new("x");
        // Dense early samples, one late sample: index-based downsampling
        // would put most picks early; time bins must not.
        for i in 0..9 {
            s.push(i as f64 * 0.1, 1.0);
        }
        s.push(10.0, 5.0);
        let bins = s.resample(2, Reduce::Mean);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].secs, 2.5);
        assert_eq!(bins[0].value, 1.0);
        assert_eq!(bins[1].secs, 7.5);
        assert_eq!(bins[1].value, 5.0);
    }

    #[test]
    fn resample_reduces_sum_and_max_and_skips_empty_bins() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(0.5, 2.0);
        s.push(4.0, 7.0); // bins over (1,2) and (2,3) are empty
        let sum = s.resample(4, Reduce::Sum);
        assert_eq!(
            sum.iter().map(|b| (b.secs, b.value)).collect::<Vec<_>>(),
            vec![(0.5, 3.0), (3.5, 7.0)]
        );
        let max = s.resample(1, Reduce::Max);
        assert_eq!(max[0].value, 7.0);
    }

    #[test]
    fn resample_degenerate_cases() {
        let empty = TimeSeries::new("e");
        assert!(empty.resample(4, Reduce::Mean).is_empty());
        let mut point = TimeSeries::new("p");
        point.push(3.0, 1.0);
        point.push(3.0, 3.0);
        let bins = point.resample(4, Reduce::Mean);
        assert_eq!(bins.len(), 1, "zero-width span collapses to one bin");
        assert_eq!(bins[0].value, 2.0);
        assert!(point.resample(0, Reduce::Sum).is_empty());
    }

    #[test]
    #[should_panic(expected = "out-of-order push")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_asserts() {
        let mut s = TimeSeries::new("x");
        s.push(2.0, 1.0);
        s.push(1.0, 2.0);
    }

    #[test]
    fn merge_sorted_interleaves_stably() {
        let mut a = TimeSeries::new("a");
        a.push(0.0, 1.0);
        a.push(2.0, 2.0);
        a.push(2.0, 3.0);
        let mut b = TimeSeries::new("b");
        b.push(1.0, 10.0);
        b.push(2.0, 20.0);
        b.push(5.0, 30.0);
        let m = a.merge_sorted(&b, "merged");
        assert_eq!(m.name(), "merged");
        let got: Vec<(f64, f64)> = m.samples().iter().map(|s| (s.secs, s.value)).collect();
        // Equal timestamps: all of `a`'s samples precede `b`'s.
        assert_eq!(
            got,
            vec![(0.0, 1.0), (1.0, 10.0), (2.0, 2.0), (2.0, 3.0), (2.0, 20.0), (5.0, 30.0)]
        );
        let empty = TimeSeries::new("e");
        assert_eq!(empty.merge_sorted(&b, "eb").len(), 3);
        assert_eq!(b.merge_sorted(&empty, "be").len(), 3);
    }

    #[test]
    fn recorder_orders_by_name() {
        let mut r = Recorder::new();
        r.record("b", 0.0, 1.0);
        r.record("a", 0.0, 2.0);
        r.record("b", 1.0, 3.0);
        assert_eq!(r.names(), vec!["a", "b"]);
        assert_eq!(r.series("b").unwrap().len(), 2);
        assert!(r.series("zz").is_none());
    }
}
