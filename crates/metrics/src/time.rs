//! Simulated time base.
//!
//! All simulator components charge work in [`Cycles`] against a shared
//! [`SimClock`]. The nominal frequency is the paper testbed's 2.3 GHz, so
//! reported "seconds" are directly comparable with the paper's wall-clock
//! numbers in *shape* (the simulator never sleeps for real time).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nominal simulated CPU frequency in Hz (Intel E5-2690 v3: 2.3 GHz).
pub const CPU_HZ: u64 = 2_300_000_000;

/// A duration or instant measured in simulated CPU cycles.
///
/// `Cycles` is the single time unit used throughout the simulator; the
/// MMU-overhead methodology of the paper's Table 4
/// (`(walk_cycles * 100) / unhalted_cycles`) falls out of it directly.
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::Cycles;
///
/// let fault = Cycles::from_micros(3) + Cycles::from_nanos(500);
/// assert_eq!(fault.as_micros(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a duration of `n` cycles.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts simulated seconds to cycles.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        Cycles((secs * CPU_HZ as f64) as u64)
    }

    /// Converts simulated milliseconds to cycles.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        Cycles(ms * (CPU_HZ / 1_000))
    }

    /// Converts simulated microseconds to cycles.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        Cycles(us * (CPU_HZ / 1_000_000))
    }

    /// Converts simulated nanoseconds to cycles (rounding down).
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        Cycles(ns * CPU_HZ / 1_000_000_000)
    }

    /// This duration in simulated seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / CPU_HZ as f64
    }

    /// This duration in simulated milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.as_secs() * 1e3
    }

    /// This duration in simulated microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.as_secs() * 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs();
        if s >= 1.0 {
            write!(f, "{s:.2}s")
        } else if s >= 1e-3 {
            write!(f, "{:.2}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.2}us", s * 1e6)
        } else {
            write!(f, "{}cyc", self.0)
        }
    }
}

/// A monotonically advancing simulated clock.
///
/// The kernel owns one `SimClock`; every simulated action (memory access,
/// page fault, daemon work) advances it. Daemons running on other cores do
/// *not* advance the clock but are budgeted against it (see the kernel
/// crate's daemon scheduler).
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::{Cycles, SimClock};
///
/// let mut clock = SimClock::new();
/// let t0 = clock.now();
/// clock.advance(Cycles::from_millis(5));
/// assert_eq!((clock.now() - t0).as_millis(), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Cycles,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated instant.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now.as_secs()
    }

    /// Advances the clock by `d`.
    #[inline]
    pub fn advance(&mut self, d: Cycles) {
        self.now += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversions_round_trip() {
        assert_eq!(Cycles::from_secs(1.0).get(), CPU_HZ);
        assert_eq!(Cycles::from_millis(1).get(), CPU_HZ / 1_000);
        assert_eq!(Cycles::from_micros(1).get(), CPU_HZ / 1_000_000);
        let c = Cycles::from_micros(465);
        assert!((c.as_micros() - 465.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!((a + b).get(), 140);
        assert_eq!((a - b).get(), 60);
        assert_eq!((a * 3).get(), 300);
        assert_eq!((a / 4).get(), 25);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total.get(), 10);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), Cycles::ZERO);
        clock.advance(Cycles::new(7));
        clock.advance(Cycles::new(3));
        assert_eq!(clock.now().get(), 10);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Cycles::from_secs(2.0)), "2.00s");
        assert_eq!(format!("{}", Cycles::from_millis(3)), "3.00ms");
        assert_eq!(format!("{}", Cycles::from_micros(9)), "9.00us");
        assert_eq!(format!("{}", Cycles::new(10)), "10cyc");
    }
}
