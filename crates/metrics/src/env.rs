//! Warn-once parsing for `HAWKEYE_*` environment knobs.
//!
//! Every tunable in the workspace (`HAWKEYE_CORES`,
//! `HAWKEYE_BENCH_THREADS`, …) historically fell back to its default
//! silently when the value failed to parse, so a typo like
//! `HAWKEYE_CORES=abc` looked exactly like "knob unset". [`parse`]
//! centralises the read: a set-but-unparsable value emits one stderr
//! warning per (variable, value) pair for the lifetime of the process
//! and then behaves as unset, so the caller's default still applies but
//! the typo is visible.
//!
//! The helper lives here because `hawkeye-metrics` is the workspace's
//! dependency root; `hawkeye-core` re-exports it as `hawkeye_core::env`
//! for callers that sit above the kernel.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Mutex;

static WARNED: Mutex<BTreeSet<(String, String)>> = Mutex::new(BTreeSet::new());

/// Reads `name` from the environment and parses it as `T`.
///
/// * unset → `None`, silently (the knob's default applies);
/// * set and parsable → `Some(value)`;
/// * set but unparsable → `None` **plus** a one-time stderr warning
///   naming the variable and the rejected value.
///
/// ```
/// std::env::set_var("HAWKEYE_DOCTEST_KNOB", "3");
/// assert_eq!(hawkeye_metrics::env::parse::<u32>("HAWKEYE_DOCTEST_KNOB"), Some(3));
/// std::env::set_var("HAWKEYE_DOCTEST_KNOB", "abc");
/// assert_eq!(hawkeye_metrics::env::parse::<u32>("HAWKEYE_DOCTEST_KNOB"), None);
/// ```
pub fn parse<T: FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(name, &raw);
            None
        }
    }
}

fn warn_once(name: &str, raw: &str) {
    let key = (name.to_string(), raw.to_string());
    let mut warned = match WARNED.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if warned.insert(key) {
        eprintln!("warning: ignoring {name}={raw:?}: not a valid value; using the default");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_none() {
        assert_eq!(parse::<u32>("HAWKEYE_TEST_UNSET_KNOB"), None);
    }

    #[test]
    fn valid_values_parse_with_whitespace() {
        std::env::set_var("HAWKEYE_TEST_VALID_KNOB", " 42 ");
        assert_eq!(parse::<usize>("HAWKEYE_TEST_VALID_KNOB"), Some(42));
        std::env::remove_var("HAWKEYE_TEST_VALID_KNOB");
    }

    #[test]
    fn invalid_values_fall_back_and_warn_once() {
        std::env::set_var("HAWKEYE_TEST_BAD_KNOB", "-1");
        assert_eq!(parse::<usize>("HAWKEYE_TEST_BAD_KNOB"), None);
        // Second read of the same (name, value) must not re-insert.
        assert_eq!(parse::<usize>("HAWKEYE_TEST_BAD_KNOB"), None);
        let warned = WARNED.lock().expect("warn set");
        assert_eq!(
            warned.iter().filter(|(n, _)| n == "HAWKEYE_TEST_BAD_KNOB").count(),
            1
        );
        drop(warned);
        std::env::remove_var("HAWKEYE_TEST_BAD_KNOB");
    }
}
