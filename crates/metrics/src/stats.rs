//! Summary statistics over `f64` samples.
//!
//! Used by the bench harness to aggregate per-run measurements (execution
//! times, speedups, throughput) into the averages the paper reports.

/// Summary statistics of a sample set.
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample set).
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// Returns the default (all-zero) summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary { count, mean, min, max, stddev: var.sqrt() }
    }
}

/// Geometric mean of strictly positive samples.
///
/// Returns 0 for an empty slice. Non-positive entries are skipped, matching
/// common benchmarking practice for speedup aggregation.
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::stats::geomean;
///
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(samples: &[f64]) -> f64 {
    let logs: Vec<f64> = samples.iter().filter(|x| **x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// The `p`-th percentile (0–100) of `samples` by nearest-rank.
///
/// Returns 0 for an empty slice; `p <= 0` returns the minimum. Samples are
/// ordered by [`f64::total_cmp`], so NaN entries sort last (as the largest
/// values) instead of panicking.
///
/// # Examples
///
/// ```
/// use hawkeye_metrics::stats::percentile;
///
/// let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 50.0), 3.0);
/// assert_eq!(percentile(&xs, 100.0), 5.0);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    // Nearest-rank: rank 1 is the minimum (so p=0 maps to it, not to a
    // clamped rank 0), rank n the maximum.
    let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
    sorted[rank.min(n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::from_samples(&[]), Summary::default());
    }

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn geomean_skips_nonpositive() {
        assert!((geomean(&[0.0, -1.0, 1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0]), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&xs, 25.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 75.0), 3.0);
        assert_eq!(percentile(&xs, 99.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_p0_returns_minimum() {
        let xs = [9.0, 7.0, 8.0];
        assert_eq!(percentile(&xs, 0.0), 7.0);
        assert_eq!(percentile(&xs, -5.0), 7.0, "negative p clamps to minimum");
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
    }

    #[test]
    fn percentile_tolerates_nan_samples() {
        // Regression: `partial_cmp().unwrap()` used to panic here. NaN now
        // sorts last (total order), so finite percentiles stay meaningful.
        let xs = [f64::NAN, 2.0, 1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 40.0), 2.0);
        assert_eq!(percentile(&xs, 60.0), 3.0);
        assert!(percentile(&xs, 100.0).is_nan(), "NaN is the top of the order");
        assert!(!percentile(&[f64::NAN], 50.0).is_finite());
    }
}
