//! Shared measurement utilities for the HawkEye simulator.
//!
//! This crate is the dependency root of the workspace. It provides:
//!
//! * [`Cycles`] — the simulated time base (CPU cycles at a nominal
//!   2.3 GHz, matching the paper's Intel E5-2690 v3 testbed), plus the
//!   [`SimClock`] that every component charges work to.
//! * [`series`] — time-series recording used to regenerate the paper's
//!   figures (RSS over time, MMU overhead over time, huge pages over time).
//! * [`stats`] — summary statistics (mean, geometric mean, percentiles).
//! * [`table`] — plain-text table rendering so each bench target can print
//!   rows in the same shape as the paper's tables.
//! * [`registry`] — the cycle-attribution registry: named counters, gauges,
//!   and log-bucketed histograms behind a zero-cost-when-disabled
//!   [`MetricsSink`], tagging every clock charge with a [`Subsystem`].
//!
//! # Examples
//!
//! ```
//! use hawkeye_metrics::{Cycles, SimClock};
//!
//! let mut clock = SimClock::new();
//! clock.advance(Cycles::from_micros(465)); // one 2 MB sync-zeroing fault
//! assert!(clock.now().as_secs() > 0.0004);
//! ```

#![warn(missing_docs)]

pub mod env;
pub mod registry;
pub mod series;
pub mod sketch;
pub mod stats;
pub mod table;
pub mod time;

pub use registry::{LogHistogram, MachineMetrics, MetricsSink, Registry, Subsystem, UNHALTED};
pub use sketch::QuantileSketch;
pub use series::{Recorder, Reduce, Sample, TimeSeries};
pub use stats::Summary;
pub use table::TextTable;
pub use time::{Cycles, SimClock, CPU_HZ};
