//! End-to-end tests of the trace→analyze pipeline against the real bench
//! writer: journals serialized by `hawkeye-bench` must parse back into
//! structurally identical records (round-trip), and the analyzer's report
//! must be byte-identical regardless of how many workers produced the
//! journal (the bench determinism rule extends through the reader).

use hawkeye_analyze::{contention, parse_trace, report, residues};
use hawkeye_bench::{run_one, run_scenarios_capturing, trace_json, PolicyKind, Scenario};
use hawkeye_kernel::Simulator;
use hawkeye_metrics::Cycles;
use hawkeye_trace::{Journal, TraceEvent, TraceRecord};
use hawkeye_workloads::AllocTouch;

#[test]
fn every_event_variant_round_trips_through_the_writer() {
    let events = vec![
        TraceEvent::Fault { vpn: 7, huge: true, cow: false, cycles: 6095 },
        TraceEvent::Fault { vpn: u64::MAX >> 11, huge: false, cow: true, cycles: 0 },
        TraceEvent::Promote { hvpn: 5, copied: 3, filled: 509, cycles: 123_456 },
        TraceEvent::Demote { hvpn: 9, cycles: 0 },
        TraceEvent::Compact { migrated: 128, huge_blocks: 4 },
        TraceEvent::PreZero { pages: 512 },
        TraceEvent::Dedup { hvpn: 1, zero_pages: 400, demoted: true, cycles: 77 },
        TraceEvent::Oom,
        TraceEvent::Contention {
            core: 6,
            role: 2,
            acquisitions: 9001,
            cas_retries: 321,
            stall_cycles: 1_234_567,
        },
        TraceEvent::QuantumEnd { load_walk: 1, store_walk: 2, unhalted: 3, walks: 4 },
        TraceEvent::CycleSample {
            walk: 1,
            fault: 2,
            zero: 3,
            copy: 4,
            scan: 5,
            compact: 6,
            dedup: 7,
            idle: 8,
            unhalted: 36,
            daemon: 9,
        },
    ];
    let records: Vec<TraceRecord> = events
        .into_iter()
        .enumerate()
        .map(|(i, event)| TraceRecord {
            at: Cycles::new(i as u64 * 1000),
            pid: i as u32 % 3,
            machine: i as u32 % 2,
            event,
        })
        .collect();
    let journal = Journal { records: records.clone(), dropped: 2 };
    let text = trace_json("roundtrip", &[("all-variants \"quoted\"".to_string(), journal)])
        .to_string();
    let doc = parse_trace(&text).expect("writer output must parse");
    assert_eq!(doc.target, "roundtrip");
    assert_eq!(doc.scenarios.len(), 1);
    let s = &doc.scenarios[0];
    assert_eq!(s.name, "all-variants \"quoted\"");
    assert_eq!(s.dropped, 2);
    assert_eq!(s.records, records, "records must survive the writer→parser trip");
}

/// Two policies, long enough (~280 simulated ms) that the 100 ms sampler
/// emits `cycle_sample` snapshots into the journal. HawkEye-PMU also
/// drains per-pid PMU windows, journaling the `quantum_end` events the
/// MMU-overhead reconstruction reads.
fn matrix() -> Vec<Scenario<u64>> {
    let mut scenarios: Vec<Scenario<u64>> = [PolicyKind::Linux2m, PolicyKind::HawkEyePmu]
        .into_iter()
        .map(|kind| {
            Scenario::new(kind.label(), move || {
                run_one(kind, 64, Some((1.0, 0.55)), 10.0, Box::new(AllocTouch::new(4096, 30, 5000)))
                    .faults()
            })
        })
        .collect();
    // A 4-core run: its journal carries `contention` records from the
    // deterministic replay, so the report grows the contention table —
    // which must be just as worker-count-independent as the rest.
    scenarios.push(Scenario::sim(
        "HawkEye-G@4c",
        || {
            let mut cfg = PolicyKind::HawkEyeG.config(64);
            cfg.max_time = Cycles::from_secs(10.0);
            cfg.cores = 4;
            let mut sim = Simulator::new(cfg, PolicyKind::HawkEyeG.build());
            let pid = sim.spawn(Box::new(AllocTouch::new(4096, 30, 5000)));
            (sim, pid)
        },
        |out| out.faults(),
    ));
    scenarios
}

#[test]
fn analyzer_report_is_byte_identical_across_worker_counts() {
    let (_, journals1, _) = run_scenarios_capturing(matrix(), 1);
    let (_, journals8, _) = run_scenarios_capturing(matrix(), 8);
    let text1 = trace_json("pipeline", &journals1).to_string();
    let text8 = trace_json("pipeline", &journals8).to_string();
    assert_eq!(text1, text8, "journal document must not depend on worker count");
    let doc = parse_trace(&text1).expect("bench journal must parse");
    let out1 = report(&doc);
    let out8 = report(&parse_trace(&text8).expect("parse"));
    assert_eq!(out1, out8, "analyzer report must not depend on worker count");
    // The report carries all sections for a real run — including the
    // contention table the 4-core scenario's journal feeds.
    for needle in [
        "machine 0",
        "residue=0",
        "fault service",
        "mmu overhead over time",
        "contention (deterministic multi-core replay):",
        "prezero",
    ] {
        assert!(out1.contains(needle), "missing {needle:?} in report:\n{out1}");
    }
    // Serial scenarios contribute no contention rows; the 4-core one does,
    // and its per-core totals accumulate every drain's records.
    assert!(contention(&doc.scenarios[0]).is_empty(), "serial run grew contention rows");
    let rows = contention(&doc.scenarios[2]);
    assert!(!rows.is_empty(), "4-core run journaled no contention");
    assert!(rows.iter().any(|r| r.role != 0), "daemon cores missing from table");
    assert!(
        rows.iter().map(|r| r.acquisitions).sum::<u64>() > 0,
        "contention table lost the acquisition counts"
    );
    // And the residue audit that `--check` runs is clean and non-trivial.
    let audit = residues(&doc);
    assert!(audit.samples > 0, "no cycle samples in a 280 ms run");
    assert_eq!(audit.nonzero, vec![], "unattributed cycles");
}
