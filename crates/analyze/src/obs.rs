//! Parsers for the telemetry pipeline's JSON artifacts: the evaluated
//! `<target>.obs.json` document `hawkeye-bench` writes and the
//! `BENCH_<n>.json` perf-trajectory ledger entries `hawkeye-report`
//! appends.
//!
//! Both are read through the generic [`crate::json`] tree — these
//! documents are kilobytes, not the multi-megabyte journals that justify
//! the streaming trace path. Field names mirror the writers exactly;
//! a missing required field is an error, because writer and parser
//! evolve together (same contract as [`crate::parse_trace`]).

use crate::json::{parse, Value};
use hawkeye_obs::{
    Alert, AlertKind, Anomaly, CohortObs, CohortSeries, EpochPoint, LedgerRun, LedgerTarget,
    ObsDoc, RuleDoc,
};

fn req<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing \"{key}\""))
}

fn str_field(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    req(v, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: \"{key}\" is not a string"))
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    req(v, key, ctx)?.as_u64().ok_or_else(|| format!("{ctx}: \"{key}\" is not a u64"))
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    req(v, key, ctx)?.as_f64().ok_or_else(|| format!("{ctx}: \"{key}\" is not a number"))
}

fn arr_field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a [Value], String> {
    req(v, key, ctx)?.as_arr().ok_or_else(|| format!("{ctx}: \"{key}\" is not an array"))
}

fn parse_rule(v: &Value, i: usize) -> Result<RuleDoc, String> {
    let ctx = format!("rule {i}");
    Ok(RuleDoc {
        name: str_field(v, "name", &ctx)?,
        series: str_field(v, "series", &ctx)?,
        threshold: f64_field(v, "threshold", &ctx)?,
        fast_window: u64_field(v, "fast_window", &ctx)?,
        slow_window: u64_field(v, "slow_window", &ctx)?,
        fast_burn: f64_field(v, "fast_burn", &ctx)?,
        slow_burn: f64_field(v, "slow_burn", &ctx)?,
        direction: str_field(v, "direction", &ctx)?,
    })
}

fn parse_point(v: &Value, ctx: &str) -> Result<EpochPoint, String> {
    Ok(EpochPoint {
        epoch: u64_field(v, "epoch", ctx)? as u32,
        faults: u64_field(v, "faults", ctx)?,
        p50_us: f64_field(v, "p50_us", ctx)?,
        p90_us: f64_field(v, "p90_us", ctx)?,
        p99_us: f64_field(v, "p99_us", ctx)?,
        p999_us: f64_field(v, "p999_us", ctx)?,
        mmu_overhead: f64_field(v, "mmu_overhead", ctx)?,
        rss_headroom: f64_field(v, "rss_headroom", ctx)?,
        fmfi: f64_field(v, "fmfi", ctx)?,
    })
}

fn parse_alert(v: &Value, ctx: &str) -> Result<Alert, String> {
    let kind = str_field(v, "kind", ctx)?;
    Ok(Alert {
        rule: u64_field(v, "rule", ctx)?,
        name: str_field(v, "name", ctx)?,
        epoch: u64_field(v, "epoch", ctx)? as u32,
        kind: AlertKind::from_name(&kind)
            .ok_or_else(|| format!("{ctx}: unknown alert kind \"{kind}\""))?,
        fast: f64_field(v, "fast", ctx)?,
        slow: f64_field(v, "slow", ctx)?,
    })
}

fn parse_anomaly(v: &Value, ctx: &str) -> Result<Anomaly, String> {
    Ok(Anomaly {
        series: str_field(v, "series", ctx)?,
        epoch: u64_field(v, "epoch", ctx)? as u32,
        value: f64_field(v, "value", ctx)?,
        z: f64_field(v, "z", ctx)?,
    })
}

fn parse_cohort(v: &Value, i: usize) -> Result<CohortObs, String> {
    let ctx = format!("cohort {i}");
    let cohort = str_field(v, "cohort", &ctx)?;
    let points = arr_field(v, "points", &ctx)?
        .iter()
        .enumerate()
        .map(|(j, p)| parse_point(p, &format!("{ctx} point {j}")))
        .collect::<Result<Vec<_>, _>>()?;
    let alerts = arr_field(v, "alerts", &ctx)?
        .iter()
        .enumerate()
        .map(|(j, a)| parse_alert(a, &format!("{ctx} alert {j}")))
        .collect::<Result<Vec<_>, _>>()?;
    let anomalies = arr_field(v, "anomalies", &ctx)?
        .iter()
        .enumerate()
        .map(|(j, a)| parse_anomaly(a, &format!("{ctx} anomaly {j}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CohortObs { series: CohortSeries { cohort, points }, alerts, anomalies })
}

/// Parses a `<target>.obs.json` document back into the typed
/// [`ObsDoc`] — the exact inverse of the `hawkeye-bench` writer, so
/// `ALERTS.md` can be re-rendered from the artifact alone.
pub fn parse_obs(text: &str) -> Result<ObsDoc, String> {
    let v = parse(text)?;
    let ctx = "obs doc";
    let rules = arr_field(&v, "rules", ctx)?
        .iter()
        .enumerate()
        .map(|(i, r)| parse_rule(r, i))
        .collect::<Result<Vec<_>, _>>()?;
    let cohorts = arr_field(&v, "cohorts", ctx)?
        .iter()
        .enumerate()
        .map(|(i, c)| parse_cohort(c, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ObsDoc {
        target: str_field(&v, "target", ctx)?,
        schema_version: u64_field(&v, "schema_version", ctx)?,
        rules,
        cohorts,
    })
}

/// Parses one `BENCH_<n>.json` perf-trajectory ledger entry.
pub fn parse_ledger(text: &str) -> Result<LedgerRun, String> {
    let v = parse(text)?;
    let ctx = "ledger run";
    let targets = arr_field(&v, "targets", ctx)?
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let tctx = format!("ledger target {i}");
            Ok(LedgerTarget {
                name: str_field(t, "name", &tctx)?,
                quanta_total: u64_field(t, "quanta_total", &tctx)?,
                quanta_skipped: u64_field(t, "quanta_skipped", &tctx)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(LedgerRun {
        schema_version: u64_field(&v, "schema_version", ctx)?,
        run: u64_field(&v, "run", ctx)?,
        checks_passed: u64_field(&v, "checks_passed", ctx)?,
        checks_total: u64_field(&v, "checks_total", ctx)?,
        targets,
        wall_total_secs: f64_field(&v, "wall_total_secs", ctx)?,
        wall_digest: str_field(&v, "wall_digest", ctx)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBS_TEXT: &str = r#"{"target":"fleet_slo","schema_version":1,
        "rules":[{"name":"fault-p99-latency","series":"p99_fault_us","threshold":500,
                  "fast_window":2,"slow_window":6,"fast_burn":1,"slow_burn":0.8,
                  "direction":"above"}],
        "cohorts":[{"cohort":"A",
            "points":[{"epoch":0,"faults":12,"p50_us":1.5,"p90_us":2,"p99_us":9.25,
                       "p999_us":11,"mmu_overhead":0.01,"rss_headroom":0.4,"fmfi":0.2}],
            "alerts":[{"rule":0,"name":"fault-p99-latency","epoch":0,"kind":"breach",
                       "fast":600,"slow":410}],
            "anomalies":[{"series":"p99_fault_us","epoch":0,"value":9.25,"z":3.5}]}]}"#;

    #[test]
    fn parses_a_full_obs_document() {
        let d = parse_obs(OBS_TEXT).expect("parse");
        assert_eq!(d.target, "fleet_slo");
        assert_eq!(d.schema_version, 1);
        assert_eq!(d.rules[0].name, "fault-p99-latency");
        assert_eq!(d.rules[0].slow_burn, 0.8);
        let c = &d.cohorts[0];
        assert_eq!(c.series.cohort, "A");
        assert_eq!(c.series.points[0].p99_us, 9.25);
        assert_eq!(c.alerts[0].kind, AlertKind::Breach);
        assert_eq!(c.anomalies[0].z, 3.5);
    }

    #[test]
    fn rejects_missing_fields_and_unknown_kinds() {
        let err = parse_obs(r#"{"target":"t","schema_version":1,"rules":[],"cohorts":[
            {"cohort":"A","points":[],"alerts":[{"rule":0,"name":"r","epoch":0,
             "kind":"explode","fast":1,"slow":1}],"anomalies":[]}]}"#)
            .expect_err("unknown kind");
        assert!(err.contains("explode"), "{err}");
        let err = parse_obs(r#"{"target":"t","rules":[],"cohorts":[]}"#).expect_err("no version");
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn parses_a_ledger_entry() {
        let r = parse_ledger(
            r#"{"schema_version":1,"run":9,"checks_passed":67,"checks_total":67,
                "targets":[{"name":"fleet_slo","quanta_total":1000,"quanta_skipped":100}],
                "wall_total_secs":12.5,"wall_digest":"deadbeef"}"#,
        )
        .expect("parse");
        assert_eq!(r.run, 9);
        assert_eq!(r.targets[0].quanta_total, 1000);
        assert_eq!(r.skip_ratio(), 0.1);
        assert_eq!(r.wall_digest, "deadbeef");
        let err = parse_ledger(r#"{"schema_version":1}"#).expect_err("missing fields");
        assert!(err.contains("targets"), "{err}");
    }
}
