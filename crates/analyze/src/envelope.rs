//! ENVELOPES.md: the failure-envelope atlas rendered from the
//! `adversarial` bench summary (DESIGN.md §17).
//!
//! The adversarial target sweeps each attacker's intensity knob over
//! `[0, 1]` and records, per (attack, intensity, policy) cell, the
//! victim's completion time as a ratio to Linux-2MB under the same
//! attack. This module turns those rows into the atlas artifact:
//!
//! * the per-attack **ratio tables** (intensity × policy),
//! * the **knee table** — per policy, the first swept intensity where
//!   the policy loses to Linux-2MB ([`knee`]); a victim OOM counts as
//!   an infinite ratio, so an OOM-killed victim is always past the knee,
//! * the **latency table** — fault/promotion service percentiles at each
//!   policy's knee cell, read back from the trace journal. Families with
//!   zero promotion events render `n/a` (never `0` — the percentile of
//!   an empty histogram is a vacuous zero, not a measurement), matching
//!   the FLEET.md idle-cohort convention.
//!
//! Same bytes for the same artifacts, always: ENVELOPES.md sits inside
//! the artifact determinism gate next to REPORT.md and FLEET.md.

use crate::json::Value;
use crate::summary::SummaryDoc;
use crate::{latency, ScenarioTrace, TraceDoc};

/// The first swept intensity where the victim ratio exceeds 1.0 — the
/// policy's failure knee. `points` are `(intensity, ratio)` pairs;
/// victim OOMs should be encoded as [`f64::INFINITY`] by the caller.
/// Returns `None` when the policy never loses across the sweep.
///
/// # Examples
///
/// ```
/// use hawkeye_analyze::envelope::knee;
///
/// let sweep = [(0.0, 0.95), (0.5, 1.0), (0.75, 1.2), (1.0, 1.5)];
/// assert_eq!(knee(&sweep), Some(0.75));
/// assert_eq!(knee(&[(0.0, 0.9), (1.0, 1.0)]), None);
/// ```
pub fn knee(points: &[(f64, f64)]) -> Option<f64> {
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Strictly above 1.0 with a hair of float headroom: the Linux-2MB
    // baseline divides by itself to exactly 1.0, and a ratio that merely
    // ties the baseline is not a failure.
    sorted
        .iter()
        .find(|(_, y)| *y > 1.0 + 1e-9)
        .map(|(x, _)| *x)
}

fn s(row: &Value, key: &str) -> Option<String> {
    row.get(key).and_then(Value::as_str).map(str::to_string)
}

fn f(row: &Value, key: &str) -> Option<f64> {
    row.get(key).and_then(Value::as_f64)
}

fn flag(row: &Value, key: &str) -> bool {
    row.get(key).and_then(Value::as_u64) == Some(1)
}

/// One parsed adversarial summary row.
struct Cell {
    attack: String,
    intensity: f64,
    policy: String,
    ratio: f64,
    victim_oom: bool,
    attacker_oom: bool,
}

fn cells(doc: &SummaryDoc) -> Option<Vec<Cell>> {
    doc.rows
        .iter()
        .map(|r| {
            Some(Cell {
                attack: s(r, "attack")?,
                intensity: f(r, "intensity")?,
                policy: s(r, "policy")?,
                ratio: f(r, "vs_linux2m")?,
                victim_oom: flag(r, "victim_oom"),
                attacker_oom: flag(r, "attacker_oom"),
            })
        })
        .collect()
}

/// The ratio used for knee detection: an OOM-killed victim never
/// finished, so its slowdown is effectively infinite.
fn effective_ratio(c: &Cell) -> f64 {
    if c.victim_oom {
        f64::INFINITY
    } else {
        c.ratio
    }
}

fn push_unique(list: &mut Vec<String>, v: &str) {
    if !list.iter().any(|x| x == v) {
        list.push(v.to_string());
    }
}

fn ratio_cell(c: &Cell) -> String {
    let mut out = if c.victim_oom {
        "∞ (OOM)".to_string()
    } else {
        format!("{:.3}", c.ratio)
    };
    if c.attacker_oom {
        out.push_str(" †");
    }
    out
}

/// The latency row for one knee cell, from the scenario's journal:
/// fault count/p50/p99 and promotion count/p50/p99 in cycles. Zero
/// promotion events render `n/a` — see the module docs.
fn latency_cells(sc: &ScenarioTrace) -> [String; 6] {
    let fault = latency(sc, "fault").service;
    let promote = latency(sc, "promote").service;
    let p = |h: &hawkeye_metrics::LogHistogram, q: f64| {
        if h.count() == 0 {
            "n/a".to_string()
        } else {
            h.percentile(q).to_string()
        }
    };
    [
        fault.count().to_string(),
        p(&fault, 50.0),
        p(&fault, 99.0),
        promote.count().to_string(),
        p(&promote, 50.0),
        p(&promote, 99.0),
    ]
}

fn table(out: &mut String, headers: &[String], rows: &[Vec<String>]) {
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for cells in rows {
        out.push_str(&format!("| {} |\n", cells.join(" | ")));
    }
}

/// Renders ENVELOPES.md from the `adversarial` summary (and, when the
/// run traced, the matching journal for the knee-cell latency table).
/// Returns `None` for any other target — callers skip the file.
pub fn envelopes_md(doc: &SummaryDoc, trace: Option<&TraceDoc>) -> Option<String> {
    if doc.target != "adversarial" || doc.rows.is_empty() {
        return None;
    }
    let cells = cells(doc)?;
    let (mut attacks, mut policies, mut intensities) = (Vec::new(), Vec::new(), Vec::<f64>::new());
    for c in &cells {
        push_unique(&mut attacks, &c.attack);
        push_unique(&mut policies, &c.policy);
        if !intensities.iter().any(|x| x == &c.intensity) {
            intensities.push(c.intensity);
        }
    }
    intensities.sort_by(f64::total_cmp);
    let cell = |attack: &str, intensity: f64, policy: &str| {
        cells
            .iter()
            .find(|c| c.attack == attack && c.intensity == intensity && c.policy == policy)
    };

    let mut out = String::new();
    out.push_str("# Failure envelopes\n\n");
    out.push_str(&format!("{}\n\n", doc.title));
    out.push_str(
        "The failure-envelope atlas (DESIGN.md §17): every cell is the\n\
         adversarial victim's completion time under one policy, divided by\n\
         its completion time under Linux-2MB *under the same attack at the\n\
         same intensity*. Ratios above 1.000 mean the policy lost to\n\
         static huge pages; the first swept intensity where that happens\n\
         is the policy's **knee**. A victim OOM counts as an infinite\n\
         ratio. `†` marks cells where the *attacker* was OOM-killed —\n\
         overshooting attacks self-destruct before their pressure lands,\n\
         which is why the bloat envelope is non-monotone in intensity.\n\n",
    );

    for attack in &attacks {
        out.push_str(&format!("## `{attack}` attack\n\n"));
        let mut headers = vec!["Intensity".to_string()];
        headers.extend(policies.iter().cloned());
        let rows: Vec<Vec<String>> = intensities
            .iter()
            .map(|i| {
                let mut row = vec![format!("{i:.2}")];
                for p in &policies {
                    row.push(cell(attack, *i, p).map_or("—".to_string(), ratio_cell));
                }
                row
            })
            .collect();
        table(&mut out, &headers, &rows);
        out.push('\n');
    }

    out.push_str("## Failure knees\n\n");
    let mut knee_rows: Vec<Vec<String>> = Vec::new();
    let mut knee_cells: Vec<(String, String, f64)> = Vec::new();
    for attack in &attacks {
        for policy in &policies {
            let sweep: Vec<(f64, f64)> = intensities
                .iter()
                .filter_map(|i| cell(attack, *i, policy).map(|c| (*i, effective_ratio(c))))
                .collect();
            let k = knee(&sweep);
            knee_rows.push(vec![
                format!("`{attack}`"),
                policy.clone(),
                k.map_or("none".to_string(), |x| format!("{x:.2}")),
                k.and_then(|x| cell(attack, x, policy))
                    .map_or("—".to_string(), ratio_cell),
            ]);
            if let Some(x) = k {
                knee_cells.push((attack.clone(), policy.clone(), x));
            }
        }
    }
    let headers: Vec<String> = ["Attack", "Policy", "Knee intensity", "Ratio at knee"]
        .map(String::from)
        .into();
    table(&mut out, &headers, &knee_rows);

    // Latency at the knee, when the run traced: what breaking actually
    // costs, in fault/promotion service cycles.
    if let Some(trace) = trace {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (attack, policy, x) in &knee_cells {
            let name = format!("{attack} i={x:.2} {policy}");
            let Some(sc) = trace.scenarios.iter().find(|s| s.name == name) else {
                continue;
            };
            let lat = latency_cells(sc);
            let mut row = vec![format!("`{attack}`"), policy.clone(), format!("{x:.2}")];
            row.extend(lat);
            rows.push(row);
        }
        if !rows.is_empty() {
            out.push_str("\n## Latency at the knee\n\n");
            out.push_str(
                "Fault and promotion service times (cycles) in each knee\n\
                 cell's journal. `n/a` means the family recorded zero\n\
                 promotion events — an empty histogram has no percentiles.\n\n",
            );
            let headers: Vec<String> = [
                "Attack",
                "Policy",
                "Intensity",
                "Faults",
                "fault p50",
                "fault p99",
                "Promotions",
                "promote p50",
                "promote p99",
            ]
            .map(String::from)
            .into();
            table(&mut out, &headers, &rows);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::parse_summary;
    use crate::TraceDoc;
    use hawkeye_metrics::Cycles;
    use hawkeye_trace::{TraceEvent, TraceRecord};

    #[test]
    fn knee_finds_first_crossing_on_a_monotone_sweep() {
        let sweep = [
            (0.0, 0.90),
            (0.25, 0.95),
            (0.5, 1.0),
            (0.75, 1.2),
            (1.0, 1.5),
        ];
        assert_eq!(knee(&sweep), Some(0.75));
    }

    #[test]
    fn knee_is_none_when_the_policy_never_loses() {
        assert_eq!(knee(&[(0.0, 0.9), (0.5, 1.0), (1.0, 0.97)]), None);
        assert_eq!(knee(&[]), None);
    }

    #[test]
    fn knee_treats_oom_as_infinite_and_sorts_unordered_input() {
        // A victim OOM at low intensity dominates a finite loss later.
        assert_eq!(
            knee(&[(1.0, 1.2), (0.25, f64::INFINITY), (0.5, 0.9)]),
            Some(0.25)
        );
    }

    fn summary(rows: &str) -> SummaryDoc {
        parse_summary(&format!(
            r#"{{"target":"adversarial","title":"sweep","rows":[{rows}]}}"#
        ))
        .expect("summary")
    }

    fn row(attack: &str, i: f64, policy: &str, ratio: f64, voom: u64, aoom: u64) -> String {
        format!(
            r#"{{"attack":"{attack}","intensity":{i},"policy":"{policy}","vs_linux2m":{ratio},"victim_oom":{voom},"attacker_oom":{aoom}}}"#
        )
    }

    #[test]
    fn envelopes_md_tabulates_ratios_and_knees() {
        let rows = [
            row("bloat", 0.0, "Linux-2MB", 1.0, 0, 0),
            row("bloat", 0.0, "HawkEye-G", 1.0, 0, 0),
            row("bloat", 0.75, "Linux-2MB", 1.0, 0, 0),
            row("bloat", 0.75, "HawkEye-G", 1.066, 0, 0),
            row("bloat", 1.0, "Linux-2MB", 1.0, 0, 1),
            row("bloat", 1.0, "HawkEye-G", 1.0, 0, 1),
        ]
        .join(",");
        let md = envelopes_md(&summary(&rows), None).expect("adversarial renders");
        assert!(md.contains("## `bloat` attack"), "{md}");
        assert!(md.contains("| 0.75 | 1.000 | 1.066 |"), "{md}");
        assert!(
            md.contains("| 1.00 | 1.000 † | 1.000 † |"),
            "attacker OOM marked: {md}"
        );
        assert!(
            md.contains("| `bloat` | HawkEye-G | 0.75 | 1.066 |"),
            "knee row: {md}"
        );
        assert!(
            md.contains("| `bloat` | Linux-2MB | none | — |"),
            "baseline never loses: {md}"
        );
        assert_eq!(
            envelopes_md(&summary(&rows), None),
            envelopes_md(&summary(&rows), None)
        );
    }

    #[test]
    fn envelopes_md_marks_victim_oom_as_infinite() {
        let rows = [
            row("frag", 0.0, "Linux-2MB", 1.0, 0, 0),
            row("frag", 0.0, "HawkEye-G", 0.9, 0, 0),
            row("frag", 1.0, "Linux-2MB", 1.0, 0, 0),
            row("frag", 1.0, "HawkEye-G", 0.4, 1, 0),
        ]
        .join(",");
        let md = envelopes_md(&summary(&rows), None).expect("renders");
        assert!(md.contains("∞ (OOM)"), "{md}");
        assert!(
            md.contains("| `frag` | HawkEye-G | 1.00 | ∞ (OOM) |"),
            "oom is the knee: {md}"
        );
    }

    #[test]
    fn envelopes_md_skips_other_targets() {
        let doc = parse_summary(r#"{"target":"fleet_slo","title":"x","rows":[{"a":1}]}"#)
            .expect("summary");
        assert_eq!(envelopes_md(&doc, None), None);
    }

    /// Satellite fix: a knee cell whose journal has faults but zero
    /// promotion events must render `n/a` percentiles, not the vacuous
    /// `0` an empty histogram would report.
    #[test]
    fn latency_table_renders_na_for_zero_promote_events() {
        let rows = [
            row("bloat", 0.0, "Linux-2MB", 1.0, 0, 0),
            row("bloat", 0.0, "Linux-4KB", 1.1, 0, 0),
        ]
        .join(",");
        let rec = |at, cycles| TraceRecord {
            at: Cycles::new(at),
            pid: 1,
            machine: 0,
            event: TraceEvent::Fault {
                vpn: 1,
                huge: false,
                cow: false,
                cycles,
            },
        };
        let trace = TraceDoc {
            target: "adversarial".into(),
            scenarios: vec![ScenarioTrace {
                name: "bloat i=0.00 Linux-4KB".into(),
                dropped: 0,
                records: vec![rec(100, 900), rec(200, 1100)],
            }],
        };
        let md = envelopes_md(&summary(&rows), Some(&trace)).expect("renders");
        assert!(md.contains("## Latency at the knee"), "{md}");
        // Faults measured; promotions: count 0, percentiles n/a.
        assert!(md.contains("| 2 | "), "fault count present: {md}");
        assert!(
            md.contains("| 0 | n/a | n/a |"),
            "zero promotes render n/a: {md}"
        );
        assert!(
            !md.contains("| 0 | 0 | 0 |"),
            "no vacuous zero percentiles: {md}"
        );
    }
}
