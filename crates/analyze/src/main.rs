//! CLI for [`hawkeye_analyze`]: load one or more `.trace.json` journals
//! and print their reports.
//!
//! ```text
//! hawkeye-analyze [--check] <file.trace.json>...
//! ```
//!
//! `--check` turns the run into a gate (used by `scripts/ci.sh`): each
//! failure is reported to stderr with the gate that tripped —
//! `gate=parse` (unreadable or malformed journal), `gate=missing-samples`
//! (no `cycle_sample` events: the attribution pipeline silently off is a
//! failure, not a pass), or `gate=residue` (unattributed cycles on a
//! scheduler-driven machine) — and the exit code identifies the
//! most severe gate tripped across all files (see [`usage`]).

use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: hawkeye-analyze [--check] <file.trace.json>...\n\
     \n\
     Prints per-scenario cycle attribution, fault/promotion latency\n\
     histograms, and MMU-overhead-over-time reconstructed from a bench\n\
     trace journal (produced by HAWKEYE_TRACE=1 cargo bench ...).\n\
     \n\
     --check   gate mode: verify every journal parses, carries\n\
     \x20         cycle_sample events, and attributes cycles exactly;\n\
     \x20         failures name the gate (parse / missing-samples /\n\
     \x20         residue) on stderr\n\
     \n\
     exit codes:\n\
     \x20  0   all files passed\n\
     \x20  2   usage error (no input files)\n\
     \x20  3   gate=parse: a file was unreadable or malformed\n\
     \x20  4   gate=missing-samples: a journal has no cycle_sample events\n\
     \x20  5   gate=residue: a machine left unattributed cycles\n\
     \n\
     When several gates trip across the file list the lowest code wins\n\
     (parse failures outrank missing samples outrank residue).\n"
}

/// Which gates tripped, across all input files.
#[derive(Default)]
struct Gates {
    parse: bool,
    missing_samples: bool,
    residue: bool,
}

impl Gates {
    fn exit(&self) -> ExitCode {
        if self.parse {
            ExitCode::from(3)
        } else if self.missing_samples {
            ExitCode::from(4)
        } else if self.residue {
            ExitCode::from(5)
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let mut check = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprint!("{}", usage());
        return ExitCode::from(2);
    }
    let mut gates = Gates::default();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hawkeye-analyze: {path}: gate=parse: {e}");
                gates.parse = true;
                continue;
            }
        };
        let doc = match hawkeye_analyze::parse_trace(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("hawkeye-analyze: {path}: gate=parse: {e}");
                gates.parse = true;
                continue;
            }
        };
        print!("{}", hawkeye_analyze::report(&doc));
        if check {
            let audit = hawkeye_analyze::residues(&doc);
            let mut file_ok = true;
            if audit.samples == 0 {
                eprintln!(
                    "hawkeye-analyze: {path}: gate=missing-samples: no \
                     cycle_sample events — was the registry attached?"
                );
                gates.missing_samples = true;
                file_ok = false;
            }
            for (scenario, machine, residue) in &audit.nonzero {
                eprintln!(
                    "hawkeye-analyze: {path}: gate=residue: scenario \
                     {scenario:?} machine {machine}: {residue} unattributed \
                     cycles"
                );
                gates.residue = true;
                file_ok = false;
            }
            if file_ok {
                eprintln!(
                    "hawkeye-analyze: {path}: {} cycle sample(s), zero residue",
                    audit.samples
                );
            }
        }
    }
    gates.exit()
}
