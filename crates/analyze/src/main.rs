//! CLI for [`hawkeye_analyze`]: load one or more `.trace.json` journals
//! and print their reports.
//!
//! ```text
//! hawkeye-analyze [--check] <file.trace.json>...
//! ```
//!
//! `--check` turns the run into a gate (used by `scripts/ci.sh`): exit
//! nonzero if any file fails to parse, contains no `cycle_sample` events
//! (the attribution pipeline silently off is a failure, not a pass), or
//! leaves unattributed cycles (nonzero residue on a scheduler-driven
//! machine).

use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: hawkeye-analyze [--check] <file.trace.json>...\n\
     \n\
     Prints per-scenario cycle attribution, fault/promotion latency\n\
     histograms, and MMU-overhead-over-time reconstructed from a bench\n\
     trace journal (produced by HAWKEYE_TRACE=1 cargo bench ...).\n\
     \n\
     --check   exit nonzero on parse errors, missing cycle_sample\n\
     \x20         events, or nonzero cycle-attribution residue\n"
}

fn main() -> ExitCode {
    let mut check = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprint!("{}", usage());
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hawkeye-analyze: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match hawkeye_analyze::parse_trace(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("hawkeye-analyze: {path}: {e}");
                failed = true;
                continue;
            }
        };
        print!("{}", hawkeye_analyze::report(&doc));
        if check {
            let audit = hawkeye_analyze::residues(&doc);
            if audit.samples == 0 {
                eprintln!(
                    "hawkeye-analyze: {path}: no cycle_sample events — \
                     was the registry attached?"
                );
                failed = true;
            }
            for (scenario, machine, residue) in &audit.nonzero {
                eprintln!(
                    "hawkeye-analyze: {path}: scenario {scenario:?} machine \
                     {machine}: {residue} unattributed cycles"
                );
                failed = true;
            }
            if !failed {
                eprintln!(
                    "hawkeye-analyze: {path}: {} cycle sample(s), zero residue",
                    audit.samples
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
