//! FLEET.md: per-cohort SLO tables rendered from the `fleet_slo`
//! bench summary.
//!
//! The fleet orchestrator's summary rows carry every cohort's SLOs and
//! tenancy counters (see `hawkeye-fleet`); this module turns them into
//! the deterministic markdown document `hawkeye-report` writes next to
//! REPORT.md. Same bytes for the same summary, always — FLEET.md sits
//! inside the artifact determinism gate.

use crate::json::Value;
use crate::summary::SummaryDoc;

fn s(row: &Value, key: &str) -> String {
    row.get(key).and_then(Value::as_str).unwrap_or("?").to_string()
}

fn int(row: &Value, key: &str) -> String {
    match row.get(key).and_then(Value::as_u64) {
        Some(v) => v.to_string(),
        None => "?".to_string(),
    }
}

fn float(row: &Value, key: &str, decimals: usize) -> String {
    match row.get(key).and_then(Value::as_f64) {
        Some(v) => format!("{v:.decimals$}"),
        None => "?".to_string(),
    }
}

fn pct(row: &Value, key: &str) -> String {
    match row.get(key).and_then(Value::as_f64) {
        Some(v) => format!("{:.2}%", 100.0 * v),
        None => "?".to_string(),
    }
}

/// Whether the cohort row has no completed epochs: its latency/overhead
/// fields are vacuous zeros, not measurements (mirrors the wall-clock
/// sidecar's `n/a` convention for never-sampled sections).
fn idle_cohort(row: &Value) -> bool {
    row.get("faults").and_then(Value::as_u64) == Some(0)
}

/// Like `float`, but `n/a` when the cohort never ran an epoch.
fn measured_float(row: &Value, key: &str, decimals: usize) -> String {
    if idle_cohort(row) { "n/a".to_string() } else { float(row, key, decimals) }
}

/// Like `pct`, but `n/a` when the cohort never ran an epoch.
fn measured_pct(row: &Value, key: &str) -> String {
    if idle_cohort(row) { "n/a".to_string() } else { pct(row, key) }
}

fn table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for cells in rows {
        out.push_str(&format!("| {} |\n", cells.join(" | ")));
    }
}

/// Renders FLEET.md from the `fleet_slo` summary: the SLO table, the
/// tenancy/steering table, and the huge-page activity table, one row per
/// cohort. Returns `None` for any other target (callers skip the file).
pub fn fleet_md(doc: &SummaryDoc) -> Option<String> {
    if doc.target != "fleet_slo" || doc.rows.is_empty() {
        return None;
    }
    let mut out = String::new();
    out.push_str("# Fleet SLOs\n\n");
    out.push_str(&format!("{}\n\n", doc.title));
    out.push_str(
        "Per-cohort service-level objectives from the `hawkeye-fleet` run:\n\
         each cohort pairs one kernel policy with one userspace hook and runs\n\
         the same diurnal traffic, tenant churn, and overcommit storms.\n\n",
    );

    out.push_str("## Service-level objectives\n\n");
    let slo_rows: Vec<Vec<String>> = doc
        .rows
        .iter()
        .map(|r| {
            vec![
                s(r, "cohort"),
                s(r, "hook"),
                int(r, "hosts"),
                int(r, "faults"),
                measured_float(r, "p50_fault_us", 2),
                measured_float(r, "p99_fault_us", 2),
                measured_pct(r, "mmu_overhead"),
                measured_pct(r, "rss_headroom"),
            ]
        })
        .collect();
    table(
        &mut out,
        &[
            "Cohort", "Hook", "Hosts", "Faults", "p50 fault (µs)", "p99 fault (µs)",
            "MMU overhead", "RSS headroom",
        ],
        &slo_rows,
    );

    out.push_str("\n## Tenancy and steering\n\n");
    let tenancy_rows: Vec<Vec<String>> = doc
        .rows
        .iter()
        .map(|r| {
            vec![
                s(r, "cohort"),
                int(r, "spawned"),
                int(r, "finished"),
                format!("{}/{}", int(r, "migrations_out"), int(r, "migrations_in")),
                int(r, "balloons"),
                int(r, "cascade_balloons"),
                int(r, "steer_decisions"),
                int(r, "ooms"),
            ]
        })
        .collect();
    table(
        &mut out,
        &[
            "Cohort", "Spawned", "Finished", "Migrations out/in", "Balloons",
            "Cascade balloons", "Steer decisions", "OOM kills",
        ],
        &tenancy_rows,
    );

    out.push_str("\n## Huge-page activity\n\n");
    let hp_rows: Vec<Vec<String>> = doc
        .rows
        .iter()
        .map(|r| {
            vec![
                s(r, "cohort"),
                int(r, "promotions"),
                int(r, "demotions"),
                int(r, "deduped_pages"),
            ]
        })
        .collect();
    table(
        &mut out,
        &["Cohort", "Promotions", "Demotions", "Deduped zero pages"],
        &hp_rows,
    );
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::parse_summary;

    fn fleet_doc() -> SummaryDoc {
        parse_summary(
            r#"{"target":"fleet_slo","title":"Fleet SLOs: 8 hosts/cohort","rows":[
                {"cohort":"HawkEye-G+throttle","hook":"throttle-under-pressure",
                 "hosts":8,"faults":1000,"p50_fault_us":1.5,"p99_fault_us":9.25,
                 "mmu_overhead":0.012,"rss_headroom":0.45,
                 "promotions":10,"demotions":2,"deduped_pages":300,"ooms":0,
                 "spawned":40,"finished":35,"balloons":3,"cascade_balloons":1,
                 "migrations_out":2,"migrations_in":2,"steer_decisions":12},
                {"cohort":"Linux-2MB+noop","hook":"noop",
                 "hosts":8,"faults":900,"p50_fault_us":1.25,"p99_fault_us":11.5,
                 "mmu_overhead":0.02,"rss_headroom":0.4,
                 "promotions":8,"demotions":0,"deduped_pages":0,"ooms":1,
                 "spawned":41,"finished":36,"balloons":2,"cascade_balloons":0,
                 "migrations_out":1,"migrations_in":1,"steer_decisions":0}
            ]}"#,
        )
        .expect("parse")
    }

    #[test]
    fn renders_all_three_tables_per_cohort() {
        let md = fleet_md(&fleet_doc()).expect("fleet target renders");
        for needle in [
            "# Fleet SLOs",
            "## Service-level objectives",
            "## Tenancy and steering",
            "## Huge-page activity",
            "| HawkEye-G+throttle | throttle-under-pressure | 8 | 1000 | 1.50 | 9.25 | 1.20% | 45.00% |",
            "| Linux-2MB+noop | 41 | 36 | 1/1 | 2 | 0 | 0 | 1 |",
            "| HawkEye-G+throttle | 10 | 2 | 300 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        assert_eq!(fleet_md(&fleet_doc()).expect("again"), md, "deterministic");
    }

    #[test]
    fn non_fleet_targets_render_nothing() {
        let other =
            parse_summary(r#"{"target":"table1_fault_latency","title":"t","rows":[{"a":1}]}"#)
                .expect("parse");
        assert!(fleet_md(&other).is_none());
        let empty = parse_summary(r#"{"target":"fleet_slo","title":"t","rows":[]}"#)
            .expect("parse");
        assert!(fleet_md(&empty).is_none());
    }

    #[test]
    fn empty_cohorts_render_na_not_vacuous_zeros() {
        // A cohort with zero completed epochs reports faults=0 and all
        // derived SLOs as 0.0 — those are absences, not measurements.
        let doc = parse_summary(
            r#"{"target":"fleet_slo","title":"t","rows":[
                {"cohort":"empty","hook":"noop","hosts":8,"faults":0,
                 "p50_fault_us":0.0,"p99_fault_us":0.0,
                 "mmu_overhead":0.0,"rss_headroom":0.0,
                 "promotions":0,"demotions":0,"deduped_pages":0,"ooms":0,
                 "spawned":0,"finished":0,"balloons":0,"cascade_balloons":0,
                 "migrations_out":0,"migrations_in":0,"steer_decisions":0}
            ]}"#,
        )
        .expect("parse");
        let md = fleet_md(&doc).expect("renders");
        assert!(
            md.contains("| empty | noop | 8 | 0 | n/a | n/a | n/a | n/a |"),
            "idle cohort must render n/a, got:\n{md}"
        );
        // A cohort that did fault keeps its real numbers.
        let md = fleet_md(&fleet_doc()).expect("renders");
        assert!(md.contains("| 1000 | 1.50 | 9.25 | 1.20% | 45.00% |"), "{md}");
    }

    #[test]
    fn missing_fields_render_placeholders_not_panics() {
        let sparse = parse_summary(
            r#"{"target":"fleet_slo","title":"t","rows":[{"cohort":"x"}]}"#,
        )
        .expect("parse");
        let md = fleet_md(&sparse).expect("renders");
        assert!(md.contains("| x | ? | ? | ? | ? | ? | ? | ? |"), "{md}");
    }
}
