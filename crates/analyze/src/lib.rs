//! `hawkeye-analyze`: offline analysis of bench trace journals.
//!
//! The bench harness (run with `HAWKEYE_TRACE=1`) writes
//! `target/bench-results/<target>.trace.json` — every scenario's event
//! journal, flattened to `{t, pid, machine, kind, <payload>}` rows. This
//! crate loads those documents back into typed
//! [`hawkeye_trace::TraceRecord`]s and renders per-scenario reports:
//!
//! * **Cycle attribution** — the final [`TraceEvent::CycleSample`] per
//!   machine gives the exact subsystem breakdown of `CPU_CLK_UNHALTED`
//!   (Table 4's denominator), printed as a text flamegraph. The residue
//!   (`unhalted − Σ cpu subsystems`) must be zero for every
//!   simulator-driven machine; [`residues`] checks every sample, and the
//!   `--check` CLI flag turns any violation into a failing exit.
//! * **Event latency** — log-bucketed service-time and interarrival
//!   histograms (p50/p90/p99) for fault and promotion events.
//! * **MMU overhead over time** — per-pid overhead series reconstructed
//!   from `QuantumEnd` PMU windows and merged time-sorted per machine.
//!
//! Everything is integer- or shortest-roundtrip-f64-deterministic: the
//! same journal bytes always produce the same report bytes, and journals
//! themselves are byte-identical at any bench worker count.

#![warn(missing_docs)]

pub mod envelope;
pub mod fleet;
pub mod json;
pub mod obs;
pub mod render;
pub mod summary;

use hawkeye_metrics::{Cycles, LogHistogram, TimeSeries};
use hawkeye_trace::{TraceEvent, TraceRecord};
use render::{bar, hist_line, pct_line};

/// One parsed `.trace.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    /// The bench target the document came from.
    pub target: String,
    /// Scenario journals in submission order.
    pub scenarios: Vec<ScenarioTrace>,
}

/// One scenario's journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrace {
    /// Scenario name.
    pub name: String,
    /// Records the bounded ring overwrote before the journal was drained.
    pub dropped: u64,
    /// Records in emission order.
    pub records: Vec<TraceRecord>,
}

/// Parses a `.trace.json` document produced by the bench harness back
/// into typed records. Unknown event kinds and malformed payloads are
/// errors — the journal format and [`TraceEvent::from_fields`] evolve
/// together, so a mismatch means reader and writer are out of sync.
///
/// The document is streamed: journals hold millions of event objects and
/// loading them through a generic JSON tree costs ~10 heap allocations
/// per event, which dominates report-pipeline load time on fault-heavy
/// targets. Keys stay borrowed from the input; only the typed
/// [`TraceRecord`]s are allocated. Key order and unknown keys are
/// tolerated, as before.
pub fn parse_trace(text: &str) -> Result<TraceDoc, String> {
    let mut p = json::parser(text);
    p.skip_ws();
    let mut target: Option<String> = None;
    let mut scenarios: Vec<ScenarioTrace> = Vec::new();
    let mut saw_scenarios = false;
    walk_obj(&mut p, |p, key| match key.as_ref() {
        "target" => {
            target = Some(p.string_ref()?.into_owned());
            Ok(())
        }
        "scenarios" => {
            saw_scenarios = true;
            walk_arr(p, |p| {
                let i = scenarios.len();
                let s = parse_scenario(p, i)?;
                scenarios.push(s);
                Ok(())
            })
        }
        _ => p.skip_value(),
    })?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing data after document"));
    }
    let target = target.ok_or("missing \"target\"")?;
    if !saw_scenarios {
        return Err("missing \"scenarios\"".to_string());
    }
    Ok(TraceDoc { target, scenarios })
}

/// Drives `field(parser, key)` over every `"key": value` pair of the
/// object at the parser's position (the parser is left just past the
/// closing brace; `field` must consume exactly the value). Keys borrow
/// from the document whenever they contain no escapes.
fn walk_obj<'a>(
    p: &mut json::Parser<'a>,
    mut field: impl FnMut(&mut json::Parser<'a>, std::borrow::Cow<'a, str>) -> Result<(), String>,
) -> Result<(), String> {
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return p.expect(b'}');
    }
    loop {
        p.skip_ws();
        let key = p.string_ref()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        field(p, key)?;
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.expect(b',')?,
            _ => return p.expect(b'}'),
        }
    }
}

/// Drives `item` over every element of the array at the parser's
/// position (same contract as [`walk_obj`]).
fn walk_arr<'a>(
    p: &mut json::Parser<'a>,
    mut item: impl FnMut(&mut json::Parser<'a>) -> Result<(), String>,
) -> Result<(), String> {
    p.skip_ws();
    p.expect(b'[')?;
    p.skip_ws();
    if p.peek() == Some(b']') {
        return p.expect(b']');
    }
    loop {
        p.skip_ws();
        item(p)?;
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.expect(b',')?,
            _ => return p.expect(b']'),
        }
    }
}

/// Reads a number with [`json::Value::as_u64`]'s conversion rules.
fn u64_number(p: &mut json::Parser<'_>, what: &str) -> Result<u64, String> {
    let x = p.number_f64()?;
    if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0 {
        Ok(x as u64)
    } else {
        Err(format!("field \"{what}\" is not a u64"))
    }
}

fn parse_scenario<'a>(p: &mut json::Parser<'a>, index: usize) -> Result<ScenarioTrace, String> {
    let mut name: Option<String> = None;
    let mut dropped: Option<u64> = None;
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut saw_events = false;
    // Scratch for one event's payload fields, reused across the journal.
    let mut fields: Vec<(std::borrow::Cow<'a, str>, u64)> = Vec::new();
    walk_obj(p, |p, key| match key.as_ref() {
        "name" => {
            name = Some(p.string_ref()?.into_owned());
            Ok(())
        }
        "dropped" => {
            dropped = Some(u64_number(p, "dropped")?);
            Ok(())
        }
        "events" => {
            saw_events = true;
            walk_arr(p, |p| {
                let j = records.len();
                let label = || match &name {
                    Some(n) => format!("scenario {n}, event {j}"),
                    None => format!("scenario {index}, event {j}"),
                };
                let r = parse_record(p, &mut fields).map_err(|m| format!("{}: {m}", label()))?;
                records.push(r);
                Ok(())
            })
        }
        _ => p.skip_value(),
    })?;
    let name = name.ok_or_else(|| format!("scenario {index}: missing \"name\""))?;
    let dropped = dropped.ok_or_else(|| format!("scenario {name}: missing \"dropped\""))?;
    if !saw_events {
        return Err(format!("scenario {name}: missing \"events\""));
    }
    Ok(ScenarioTrace {
        name,
        dropped,
        records,
    })
}

fn parse_record<'a>(
    p: &mut json::Parser<'a>,
    fields: &mut Vec<(std::borrow::Cow<'a, str>, u64)>,
) -> Result<TraceRecord, String> {
    fields.clear();
    let (mut t, mut pid, mut machine) = (None, None, None);
    let mut kind: Option<std::borrow::Cow<'a, str>> = None;
    if p.peek() != Some(b'{') {
        // Consume the value so the error is about shape, not grammar.
        p.skip_value()?;
        return Err("event is not an object".to_string());
    }
    walk_obj(p, |p, key| {
        match key.as_ref() {
            "t" => t = Some(u64_number(p, "t")?),
            "pid" => pid = Some(u64_number(p, "pid")?),
            "machine" => machine = Some(u64_number(p, "machine")?),
            "kind" => kind = Some(p.string_ref()?),
            _ => {
                let v = u64_number(p, &key)?;
                fields.push((key, v));
            }
        }
        Ok(())
    })?;
    let kind = kind.ok_or("missing \"kind\"")?;
    let event = TraceEvent::from_fields(&kind, fields)
        .ok_or_else(|| format!("unknown or incomplete event kind \"{kind}\""))?;
    Ok(TraceRecord {
        at: Cycles::new(t.ok_or("missing \"t\"")?),
        pid: pid.ok_or("missing \"pid\"")? as u32,
        machine: machine.ok_or("missing \"machine\"")? as u32,
        event,
    })
}

/// One machine's final cumulative cycle breakdown, read from its last
/// [`TraceEvent::CycleSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Per-scope machine id.
    pub machine: u32,
    /// CPU-ledger cycles per subsystem, in `Subsystem::ALL` order
    /// (walk, fault, zero, copy, scan, compact, dedup, idle).
    pub cpu: [u64; 8],
    /// `CPU_CLK_UNHALTED` at the sample.
    pub unhalted: u64,
    /// Daemon-ledger total at the sample.
    pub daemon: u64,
}

/// Subsystem labels matching [`CycleBreakdown::cpu`] order.
pub const SUBSYSTEMS: [&str; 8] = [
    "walk", "fault", "zero", "copy", "scan", "compact", "dedup", "idle",
];

impl CycleBreakdown {
    fn from_sample(machine: u32, event: &TraceEvent) -> Option<CycleBreakdown> {
        let TraceEvent::CycleSample {
            walk,
            fault,
            zero,
            copy,
            scan,
            compact,
            dedup,
            idle,
            unhalted,
            daemon,
        } = *event
        else {
            return None;
        };
        Some(CycleBreakdown {
            machine,
            cpu: [walk, fault, zero, copy, scan, compact, dedup, idle],
            unhalted,
            daemon,
        })
    }

    /// Sum of the CPU ledger.
    pub fn cpu_total(&self) -> u64 {
        self.cpu.iter().sum()
    }

    /// `unhalted − Σ cpu`: exactly 0 for simulator-driven machines.
    pub fn residue(&self) -> i128 {
        self.unhalted as i128 - self.cpu_total() as i128
    }
}

/// The final cycle breakdown of every machine that emitted a
/// `cycle_sample`, in machine-id order.
pub fn breakdowns(s: &ScenarioTrace) -> Vec<CycleBreakdown> {
    let mut last: Vec<CycleBreakdown> = Vec::new();
    for r in &s.records {
        if let Some(b) = CycleBreakdown::from_sample(r.machine, &r.event) {
            match last.iter_mut().find(|x| x.machine == r.machine) {
                Some(slot) => *slot = b,
                None => last.push(b),
            }
        }
    }
    last.sort_by_key(|b| b.machine);
    last
}

/// Service-time and interarrival histograms for one event kind.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    /// Cycles charged per event (the `cycles` payload field).
    pub service: LogHistogram,
    /// Simulated cycles between consecutive events on the same machine.
    pub interarrival: LogHistogram,
}

/// Latency statistics for `kind` (`"fault"` or `"promote"`) across one
/// scenario. Interarrival is measured per machine so co-hosted machines
/// (virtualization scenarios) don't contaminate each other's gaps.
pub fn latency(s: &ScenarioTrace, kind: &str) -> LatencyStats {
    let mut stats = LatencyStats::default();
    let mut last_at: Vec<(u32, u64)> = Vec::new();
    for r in &s.records {
        let cycles = match (&r.event, kind) {
            (TraceEvent::Fault { cycles, .. }, "fault") => *cycles,
            (TraceEvent::Promote { cycles, .. }, "promote") => *cycles,
            _ => continue,
        };
        stats.service.observe(cycles);
        match last_at.iter_mut().find(|(m, _)| *m == r.machine) {
            Some((_, prev)) => {
                stats.interarrival.observe(r.at.get().saturating_sub(*prev));
                *prev = r.at.get();
            }
            None => last_at.push((r.machine, r.at.get())),
        }
    }
    stats
}

/// MMU overhead over time for one scenario, reconstructed from
/// `QuantumEnd` PMU windows: per-(machine, pid) series of
/// `(load_walk + store_walk) / unhalted` (as a percentage), merged
/// time-sorted into one series. Empty windows are skipped.
pub fn mmu_overhead_series(s: &ScenarioTrace) -> TimeSeries {
    let mut per_pid: Vec<((u32, u32), TimeSeries)> = Vec::new();
    for r in &s.records {
        let TraceEvent::QuantumEnd {
            load_walk,
            store_walk,
            unhalted,
            ..
        } = r.event
        else {
            continue;
        };
        if unhalted == 0 {
            continue;
        }
        let pct = (load_walk + store_walk) as f64 * 100.0 / unhalted as f64;
        let key = (r.machine, r.pid);
        let series = match per_pid.iter_mut().find(|(k, _)| *k == key) {
            Some((_, series)) => series,
            None => {
                per_pid.push((key, TimeSeries::new(format!("m{}.pid{}", key.0, key.1))));
                &mut per_pid.last_mut().expect("just pushed").1
            }
        };
        series.push(r.at.as_secs(), pct);
    }
    per_pid.sort_by_key(|(k, _)| *k);
    per_pid
        .into_iter()
        .map(|(_, s)| s)
        .reduce(|acc, s| acc.merge_sorted(&s, "mmu_overhead_pct"))
        .unwrap_or_else(|| TimeSeries::new("mmu_overhead_pct"))
}

/// One simulated core's accumulated contention, reconstructed from the
/// `contention` records a multi-core run journals at each drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContentionRow {
    /// Simulated core id.
    pub core: u64,
    /// Core role tag: 0 = app, 1 = khugepaged, 2 = pre-zero daemon.
    pub role: u64,
    /// Page-state lock + allocator-shard acquisitions.
    pub acquisitions: u64,
    /// Modeled CAS retries while the resource was held elsewhere.
    pub cas_retries: u64,
    /// Virtual cycles stalled waiting on holders.
    pub stall_cycles: u64,
}

impl ContentionRow {
    /// Human-readable role name.
    pub fn role_label(&self) -> &'static str {
        match self.role {
            0 => "app",
            1 => "khugepaged",
            2 => "prezero",
            _ => "?",
        }
    }
}

/// Per-core contention totals for one scenario, in core order. Multiple
/// drains (chunked runs) accumulate; scenarios without `contention`
/// records (every `cores = 1` run) return an empty table.
pub fn contention(s: &ScenarioTrace) -> Vec<ContentionRow> {
    let mut rows: Vec<ContentionRow> = Vec::new();
    for r in &s.records {
        let TraceEvent::Contention {
            core,
            role,
            acquisitions,
            cas_retries,
            stall_cycles,
        } = r.event
        else {
            continue;
        };
        let row = match rows.iter_mut().find(|c| c.core == core) {
            Some(row) => row,
            None => {
                rows.push(ContentionRow {
                    core,
                    role,
                    ..Default::default()
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.role = role;
        row.acquisitions += acquisitions;
        row.cas_retries += cas_retries;
        row.stall_cycles += stall_cycles;
    }
    rows.sort_by_key(|c| c.core);
    rows
}

/// Residue audit over *every* `cycle_sample` in a document (not just the
/// final one per machine): samples with `unhalted == 0` are skipped (the
/// virtualization host machine is driven outside the scheduler and never
/// records unhalted cycles), everything else must attribute exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidueReport {
    /// `cycle_sample` events inspected.
    pub samples: u64,
    /// Violations: `(scenario, machine, residue)`.
    pub nonzero: Vec<(String, u32, i128)>,
}

/// Audits every cycle sample in the document. See [`ResidueReport`].
pub fn residues(doc: &TraceDoc) -> ResidueReport {
    let mut report = ResidueReport::default();
    for s in &doc.scenarios {
        for r in &s.records {
            let Some(b) = CycleBreakdown::from_sample(r.machine, &r.event) else {
                continue;
            };
            report.samples += 1;
            if b.unhalted == 0 {
                continue;
            }
            let residue = b.residue();
            if residue != 0
                && !report
                    .nonzero
                    .iter()
                    .any(|(n, m, res)| n == &s.name && *m == b.machine && *res == residue)
            {
                report.nonzero.push((s.name.clone(), b.machine, residue));
            }
        }
    }
    report
}

/// Renders the full deterministic text report for one document.
pub fn report(doc: &TraceDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!("== hawkeye-analyze: {} ==\n", doc.target));
    for s in &doc.scenarios {
        out.push_str(&format!(
            "\n-- {} ({} events{}) --\n",
            s.name,
            s.records.len(),
            if s.dropped > 0 {
                format!(", {} dropped by the ring", s.dropped)
            } else {
                String::new()
            },
        ));
        let breakdowns = breakdowns(s);
        if breakdowns.is_empty() {
            out.push_str("  cycle attribution: no cycle_sample events\n");
        }
        for b in &breakdowns {
            out.push_str(&format!(
                "  machine {}: unhalted={} residue={} daemon={}\n",
                b.machine,
                b.unhalted,
                b.residue(),
                b.daemon,
            ));
            for (label, cycles) in SUBSYSTEMS.iter().zip(b.cpu.iter()) {
                pct_line(&mut out, label, *cycles, b.unhalted);
            }
        }
        out.push_str("  latency (cycles):\n");
        for kind in ["fault", "promote"] {
            let l = latency(s, kind);
            hist_line(&mut out, &format!("{kind} service"), &l.service);
            hist_line(&mut out, &format!("{kind} gap"), &l.interarrival);
        }
        let cont = contention(s);
        if !cont.is_empty() {
            out.push_str("  contention (deterministic multi-core replay):\n");
            let (mut stall_all, mut stall_daemon) = (0u64, 0u64);
            for c in &cont {
                stall_all += c.stall_cycles;
                if c.role != 0 {
                    stall_daemon += c.stall_cycles;
                }
                out.push_str(&format!(
                    "    core {} {:<10} acq={:>9} cas_retries={:>8} stall={:>12}cyc\n",
                    c.core,
                    c.role_label(),
                    c.acquisitions,
                    c.cas_retries,
                    c.stall_cycles,
                ));
            }
            if stall_all > 0 {
                out.push_str(&format!(
                    "    daemon stall: {}cyc ({:.1}% of all stall)\n",
                    stall_daemon,
                    100.0 * stall_daemon as f64 / stall_all as f64,
                ));
            }
        }
        let series = mmu_overhead_series(s);
        if series.is_empty() {
            out.push_str("  mmu overhead: no quantum_end windows\n");
        } else {
            out.push_str(&format!(
                "  mmu overhead over time ({} windows):\n",
                series.len()
            ));
            for sample in series.downsample(8) {
                out.push_str(&format!(
                    "    t={:>10.4}s  {:>7.3}%  |{}\n",
                    sample.secs,
                    sample.value,
                    bar(sample.value / 100.0)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, pid: u32, machine: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: Cycles::new(at),
            pid,
            machine,
            event,
        }
    }

    fn sample(walk: u64, idle: u64, unhalted: u64) -> TraceEvent {
        TraceEvent::CycleSample {
            walk,
            fault: 0,
            zero: 0,
            copy: 0,
            scan: 0,
            compact: 0,
            dedup: 0,
            idle,
            unhalted,
            daemon: 0,
        }
    }

    fn doc(records: Vec<TraceRecord>) -> TraceDoc {
        TraceDoc {
            target: "t".into(),
            scenarios: vec![ScenarioTrace {
                name: "s".into(),
                dropped: 0,
                records,
            }],
        }
    }

    #[test]
    fn breakdowns_keep_last_sample_per_machine() {
        let d = doc(vec![
            rec(10, 0, 0, sample(1, 1, 2)),
            rec(10, 0, 1, sample(5, 5, 10)),
            rec(20, 0, 0, sample(3, 7, 10)),
        ]);
        let b = breakdowns(&d.scenarios[0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].machine, 0);
        assert_eq!(b[0].cpu[0], 3, "last sample wins");
        assert_eq!(b[0].residue(), 0);
        assert_eq!(b[1].unhalted, 10);
    }

    #[test]
    fn residues_flag_unattributed_cycles_and_skip_hosts() {
        let d = doc(vec![
            rec(10, 0, 0, sample(1, 1, 3)),
            rec(20, 0, 0, sample(1, 1, 3)),
            // A host-style machine: charges but no unhalted — skipped.
            rec(20, 0, 1, sample(9, 0, 0)),
        ]);
        let r = residues(&d);
        assert_eq!(r.samples, 3);
        assert_eq!(
            r.nonzero,
            vec![("s".to_string(), 0, 1)],
            "duplicates collapse"
        );
    }

    #[test]
    fn latency_tracks_service_and_gaps_per_machine() {
        let fault = |c| TraceEvent::Fault {
            vpn: 1,
            huge: false,
            cow: false,
            cycles: c,
        };
        let d = doc(vec![
            rec(100, 1, 0, fault(1000)),
            rec(150, 1, 1, fault(2000)),
            rec(400, 1, 0, fault(1000)),
        ]);
        let l = latency(&d.scenarios[0], "fault");
        assert_eq!(l.service.count(), 3);
        // One gap only: machine 0's 100→400; machine 1 saw a single event.
        assert_eq!(l.interarrival.count(), 1);
        assert_eq!(l.interarrival.max(), 300);
        assert_eq!(latency(&d.scenarios[0], "promote").service.count(), 0);
    }

    #[test]
    fn mmu_series_merges_pids_time_sorted() {
        let qe = |lw, un| TraceEvent::QuantumEnd {
            load_walk: lw,
            store_walk: 0,
            unhalted: un,
            walks: 1,
        };
        let d = doc(vec![
            rec(2_300_000, 1, 0, qe(10, 100)),
            rec(4_600_000, 2, 0, qe(50, 100)),
            rec(6_900_000, 1, 0, qe(20, 100)),
            rec(9_200_000, 1, 0, qe(0, 0)), // empty window: skipped
        ]);
        let s = mmu_overhead_series(&d.scenarios[0]);
        assert_eq!(s.len(), 3);
        let secs: Vec<f64> = s.samples().iter().map(|x| x.secs).collect();
        assert!(
            secs.windows(2).all(|w| w[0] <= w[1]),
            "time-sorted: {secs:?}"
        );
        assert_eq!(s.samples()[1].value, 50.0);
    }

    #[test]
    fn parse_trace_round_trips_bench_shape() {
        let text = r#"{"target":"demo","scenarios":[{"name":"a","dropped":0,"events":[
            {"t":5,"pid":1,"machine":0,"kind":"fault","vpn":7,"huge":1,"cow":0,"cycles":6095},
            {"t":9,"pid":0,"machine":0,"kind":"oom"}
        ]}]}"#;
        let d = parse_trace(text).expect("parse");
        assert_eq!(d.target, "demo");
        assert_eq!(d.scenarios[0].records.len(), 2);
        assert_eq!(
            d.scenarios[0].records[0].event,
            TraceEvent::Fault {
                vpn: 7,
                huge: true,
                cow: false,
                cycles: 6095
            }
        );
        assert_eq!(d.scenarios[0].records[1].event, TraceEvent::Oom);
    }

    #[test]
    fn parse_trace_rejects_unknown_kinds() {
        let text = r#"{"target":"demo","scenarios":[{"name":"a","dropped":0,"events":[
            {"t":5,"pid":1,"machine":0,"kind":"mystery"}
        ]}]}"#;
        let err = parse_trace(text).expect_err("must reject");
        assert!(err.contains("mystery"), "{err}");
    }

    #[test]
    fn report_is_deterministic_and_mentions_every_section() {
        let d = doc(vec![
            rec(10, 0, 0, sample(400, 600, 1000)),
            rec(
                15,
                1,
                0,
                TraceEvent::Fault {
                    vpn: 1,
                    huge: false,
                    cow: false,
                    cycles: 900,
                },
            ),
            rec(
                20,
                1,
                0,
                TraceEvent::QuantumEnd {
                    load_walk: 10,
                    store_walk: 5,
                    unhalted: 100,
                    walks: 2,
                },
            ),
        ]);
        let r1 = report(&d);
        let r2 = report(&d);
        assert_eq!(r1, r2);
        for needle in [
            "hawkeye-analyze: t",
            "machine 0",
            "walk",
            "fault service",
            "mmu overhead",
        ] {
            assert!(r1.contains(needle), "missing {needle:?} in:\n{r1}");
        }
    }
}
