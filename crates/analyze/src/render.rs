//! Deterministic text renderers shared by the `hawkeye-analyze` CLI and
//! the `hawkeye-report` pipeline.
//!
//! Everything here maps numbers to fixed-width ASCII/Unicode strings with
//! no locale, wall-clock, or float-formatting ambiguity: the same inputs
//! always yield the same bytes, which is what lets REPORT.md be golden-
//! file tested (DESIGN.md §12).

use hawkeye_metrics::LogHistogram;

/// Width (in characters) of a full [`bar`].
pub const BAR_WIDTH: usize = 40;

/// A proportional `#` bar: `frac` in `[0, 1]` maps to 0..=[`BAR_WIDTH`]
/// characters (values outside the range clamp).
pub fn bar(frac: f64) -> String {
    let n = (frac * BAR_WIDTH as f64).round().clamp(0.0, BAR_WIDTH as f64) as usize;
    "#".repeat(n)
}

/// Appends one cycle-ledger line: label, raw cycles, percentage of
/// `total`, and a proportional bar. `total == 0` renders as 0%.
pub fn pct_line(out: &mut String, label: &str, cycles: u64, total: u64) {
    let frac = if total == 0 { 0.0 } else { cycles as f64 / total as f64 };
    out.push_str(&format!(
        "    {label:<8} {cycles:>16}  {:>6.2}%  |{}\n",
        frac * 100.0,
        bar(frac)
    ));
}

/// Appends one histogram summary line (count, p50/p90/p99, max), or a
/// `(no events)` placeholder for an empty histogram.
pub fn hist_line(out: &mut String, label: &str, h: &LogHistogram) {
    if h.count() == 0 {
        out.push_str(&format!("    {label:<14} (no events)\n"));
        return;
    }
    out.push_str(&format!(
        "    {label:<14} n={:<8} p50={:<12} p90={:<12} p99={:<12} max={}\n",
        h.count(),
        h.percentile(50.0),
        h.percentile(90.0),
        h.percentile(99.0),
        h.max(),
    ));
}

/// Renders `values` as a fixed-alphabet sparkline (`▁▂▃▄▅▆▇█`), scaled
/// so the maximum value is a full block. All-zero (or empty) input
/// renders every cell as the lowest block, so the string length always
/// equals `values.len()`.
pub fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                RAMP[0]
            } else {
                let idx = (v / max * 7.0).round().clamp(0.0, 7.0) as usize;
                RAMP[idx]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps_and_scales() {
        assert_eq!(bar(0.0), "");
        assert_eq!(bar(1.0).len(), BAR_WIDTH);
        assert_eq!(bar(2.0).len(), BAR_WIDTH, "clamped above");
        assert_eq!(bar(-1.0), "", "clamped below");
        assert_eq!(bar(0.5).len(), BAR_WIDTH / 2);
    }

    #[test]
    fn sparkline_scales_to_max_and_handles_zeroes() {
        let s = sparkline(&[0.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn pct_line_zero_total_is_zero_percent() {
        let mut out = String::new();
        pct_line(&mut out, "walk", 5, 0);
        assert!(out.contains("0.00%"), "{out}");
    }
}
