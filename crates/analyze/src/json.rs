//! Minimal JSON parser — the read side of the bench harness's writer
//! (`hawkeye-bench`'s `json` module).
//!
//! Same rationale as the writer: the toolchain must stay offline-buildable
//! with zero external dependencies, and all it needs to read back is what
//! the writer emits — objects in insertion order, arrays, strings with the
//! writer's escape set, and finite numbers. Standard constructs the writer
//! never produces (exponents, `\uXXXX` outside the control range, `\/`)
//! still parse, so hand-edited journals load too.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects preserve document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the writer only emits finite ones).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field by key (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as an exact-enough `u64` (the writer's `Json::int` is
    /// exact for |n| < 2^53; negatives and fractions read as `None`).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields as `(key, value)` pairs in document order.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// All numeric fields of an object, keyed by name (the shape trace
    /// event payloads take).
    pub fn numeric_fields(&self) -> BTreeMap<&str, f64> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|x| (k.as_str(), x)))
                .collect(),
            _ => BTreeMap::new(),
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing junk
/// rejected). Errors carry the byte offset they were noticed at.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// The raw pull parser behind [`parse`]. The trace loader drives it
/// directly (`crate::parse_trace`): a `.trace.json` document holds
/// millions of tiny event objects, and materializing each as a
/// [`Value::Obj`] (a `Vec` of owned-key pairs) costs ~10 heap allocations
/// per event — the dominant cost of loading a journal back. Streaming over
/// this parser reads the same grammar with borrowed keys instead.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// A pull parser over `text`, positioned at the start.
pub(crate) fn parser(text: &str) -> Parser<'_> {
    Parser { bytes: text.as_bytes(), pos: 0 }
}

impl<'a> Parser<'a> {
    pub(crate) fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {}", self.pos, msg)
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    pub(crate) fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    pub(crate) fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    /// True once the whole input has been consumed.
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Consumes one value without keeping it (unknown keys in streamed
    /// documents).
    pub(crate) fn skip_value(&mut self) -> Result<(), String> {
        self.value().map(|_| ())
    }

    /// Reads a string, borrowing from the input when it contains no
    /// escapes (every key and kind the writer emits). Escaped strings
    /// fall back to the allocating reader.
    pub(crate) fn string_ref(&mut self) -> Result<std::borrow::Cow<'a, str>, String> {
        let start = self.pos;
        self.expect(b'"')?;
        let mut i = self.pos;
        while let Some(&b) = self.bytes.get(i) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[self.pos..i])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    self.pos = i + 1;
                    return Ok(std::borrow::Cow::Borrowed(s));
                }
                b'\\' => {
                    self.pos = start;
                    return self.string().map(std::borrow::Cow::Owned);
                }
                _ => i += 1,
            }
        }
        self.pos = i;
        Err(self.err("unterminated string"))
    }

    /// Reads a number as `f64` (same grammar as [`Parser::number`]).
    pub(crate) fn number_f64(&mut self) -> Result<f64, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>().map_err(|_| self.err("invalid number"))
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in writer output
                            // (it escapes only control chars); map them to
                            // the replacement character rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Copy one UTF-8 scalar. The input arrived as a &str,
                    // so `pos` always sits on a char boundary and the
                    // leading byte gives the sequence length — decode just
                    // those bytes (validating the whole remaining input per
                    // character would make string parsing quadratic).
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let c = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }

    pub(crate) fn number(&mut self) -> Result<Value, String> {
        self.number_f64().map(Value::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"name":"fig 1 \"bloat\"","rows":[3,1.5,true,null],"nan":null}"#)
            .expect("parse");
        assert_eq!(v.get("name").and_then(Value::as_str), Some(r#"fig 1 "bloat""#));
        let rows = v.get("rows").and_then(Value::as_arr).expect("rows");
        assert_eq!(rows[0].as_u64(), Some(3));
        assert_eq!(rows[1].as_f64(), Some(1.5));
        assert_eq!(rows[2], Value::Bool(true));
        assert_eq!(rows[3], Value::Null);
    }

    #[test]
    fn parses_writer_escapes() {
        let v = parse(r#""a\nb\t\u0001""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\nb\t\u{1}"));
    }

    #[test]
    fn rejects_trailing_junk_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a":"#).is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn numbers_roundtrip_through_shortest_form() {
        // The writer uses Rust's shortest-roundtrip f64 formatting; the
        // parser must read those bytes back to the identical value.
        for x in [0.0, -1.5, 0.30000000000000004, 2.3e9, 1e-12] {
            let v = parse(&format!("{x}")).expect("parse");
            assert_eq!(v.as_f64(), Some(x));
        }
        assert_eq!(parse("9007199254740992").expect("p").as_u64(), Some(9007199254740992));
        assert_eq!(parse("-3").expect("p").as_u64(), None);
        assert_eq!(parse("1.5").expect("p").as_u64(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").expect("arr"), Value::Arr(vec![]));
        assert_eq!(parse("{}").expect("obj"), Value::Obj(vec![]));
        assert_eq!(parse(" { } ").expect("obj"), Value::Obj(vec![]));
    }
}
