//! Parser for the bench summary JSONs
//! (`target/bench-results/<target>.json`).
//!
//! Every bench target writes `{target, title, rows: [...]}` via
//! `Report::json`, and the scenario engine appends a `cycles` section —
//! the drained cycle-attribution registries — on the way to disk. This
//! module loads that document back: the `rows` stay raw [`Value`]s
//! (their schema is per-target; callers extract fields with
//! [`Value::get`]), while the `cycles` section is parsed into typed
//! ledgers matching [`crate::SUBSYSTEMS`] order so Table 1/4-style MMU
//! overhead tables can be rebuilt offline.

use crate::json::{self, Value};
use crate::SUBSYSTEMS;

/// One parsed bench summary document.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryDoc {
    /// Bench-target name (the JSON file stem).
    pub target: String,
    /// Human title printed above the bench table.
    pub title: String,
    /// Per-row headline numbers, schema per target (raw JSON values).
    pub rows: Vec<Value>,
    /// The cycle-attribution section: one entry per scenario, present
    /// only when the engine captured registries (always-on since PR 4).
    pub cycles: Vec<ScenarioCycles>,
}

/// The drained cycle-attribution registries of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCycles {
    /// Scenario name (a bench table row label).
    pub scenario: String,
    /// Per-machine ledgers, in machine-id order.
    pub machines: Vec<MachineCycles>,
}

/// One machine's cumulative cycle ledgers at scenario end.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCycles {
    /// Per-scope machine id.
    pub machine: u64,
    /// `CPU_CLK_UNHALTED` total.
    pub unhalted: u64,
    /// `unhalted − Σ cpu`; `None` for host-style machines that never
    /// record unhalted cycles (serialized as JSON `null`).
    pub residue: Option<f64>,
    /// CPU-ledger cycles in [`SUBSYSTEMS`] order.
    pub cpu: [u64; 8],
    /// Daemon-ledger cycles in [`SUBSYSTEMS`] order.
    pub daemon: [u64; 8],
}

impl SummaryDoc {
    /// The cycles of `scenario`, if the section has an entry for it.
    pub fn scenario_cycles(&self, scenario: &str) -> Option<&ScenarioCycles> {
        self.cycles.iter().find(|c| c.scenario == scenario)
    }
}

fn ledger(v: &Value, key: &str) -> Result<[u64; 8], String> {
    let obj = v.get(key).ok_or_else(|| format!("missing \"{key}\" ledger"))?;
    let mut out = [0u64; 8];
    for (i, name) in SUBSYSTEMS.iter().enumerate() {
        out[i] = obj
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("ledger \"{key}\" missing subsystem \"{name}\""))?;
    }
    Ok(out)
}

/// Parses a bench summary document. The `cycles` section is optional
/// (older summaries and hand-assembled multi-section targets may omit
/// it); `target` and `rows` are not.
pub fn parse_summary(text: &str) -> Result<SummaryDoc, String> {
    let doc = json::parse(text)?;
    let target = doc
        .get("target")
        .and_then(Value::as_str)
        .ok_or("missing \"target\"")?
        .to_string();
    let title = doc
        .get("title")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let rows = doc
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("missing \"rows\"")?
        .to_vec();
    let mut cycles = Vec::new();
    if let Some(section) = doc.get("cycles").and_then(Value::as_arr) {
        for (i, sc) in section.iter().enumerate() {
            let scenario = sc
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("cycles[{i}]: missing \"scenario\""))?
                .to_string();
            let mut machines = Vec::new();
            for (j, m) in sc
                .get("machines")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("cycles[{i}]: missing \"machines\""))?
                .iter()
                .enumerate()
            {
                let ctx = |msg: String| format!("cycles[{i}] ({scenario}) machine[{j}]: {msg}");
                machines.push(MachineCycles {
                    machine: m
                        .get("machine")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| ctx("missing \"machine\"".into()))?,
                    unhalted: m
                        .get("unhalted")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| ctx("missing \"unhalted\"".into()))?,
                    residue: m.get("residue").and_then(Value::as_f64),
                    cpu: ledger(m, "cpu").map_err(&ctx)?,
                    daemon: ledger(m, "daemon").map_err(&ctx)?,
                });
            }
            cycles.push(ScenarioCycles { scenario, machines });
        }
    }
    Ok(SummaryDoc { target, title, rows, cycles })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "target": "table1_fault_latency",
        "title": "Table 1",
        "rows": [{"config": "Linux-4KB", "faults": 409600}],
        "cycles": [{
            "scenario": "Linux-4KB",
            "machines": [{
                "machine": 0, "unhalted": 100, "residue": 0,
                "cpu": {"walk": 10, "fault": 20, "zero": 30, "copy": 0,
                        "scan": 0, "compact": 0, "dedup": 0, "idle": 40},
                "daemon": {"walk": 0, "fault": 0, "zero": 5, "copy": 0,
                           "scan": 0, "compact": 0, "dedup": 0, "idle": 0}
            }]
        }]
    }"#;

    #[test]
    fn parses_rows_and_cycle_ledgers() {
        let d = parse_summary(DOC).expect("parse");
        assert_eq!(d.target, "table1_fault_latency");
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0].get("faults").and_then(Value::as_u64), Some(409600));
        let sc = d.scenario_cycles("Linux-4KB").expect("scenario");
        assert_eq!(sc.machines[0].cpu, [10, 20, 30, 0, 0, 0, 0, 40]);
        assert_eq!(sc.machines[0].daemon[2], 5);
        assert_eq!(sc.machines[0].unhalted, 100);
        assert_eq!(sc.machines[0].residue, Some(0.0));
    }

    #[test]
    fn cycles_section_is_optional_but_rows_are_not() {
        let d = parse_summary(r#"{"target":"t","title":"x","rows":[]}"#).expect("parse");
        assert!(d.cycles.is_empty());
        let err = parse_summary(r#"{"target":"t"}"#).expect_err("rows required");
        assert!(err.contains("rows"), "{err}");
    }

    #[test]
    fn null_residue_maps_to_none() {
        let text = DOC.replace("\"residue\": 0", "\"residue\": null");
        let d = parse_summary(&text).expect("parse");
        assert_eq!(d.cycles[0].machines[0].residue, None);
    }

    #[test]
    fn incomplete_ledger_is_an_error() {
        let text = DOC.replace("\"walk\": 10, ", "");
        let err = parse_summary(&text).expect_err("must reject");
        assert!(err.contains("walk"), "{err}");
    }
}
