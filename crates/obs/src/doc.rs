//! The evaluated telemetry document: everything `ALERTS.md` and the
//! trace events are derived from, and exactly what is serialized to
//! `<target>.obs.json`.
//!
//! The document is a *pure value*: evaluation (`slo::evaluate`) computes
//! it from finalized series + rules, serialization lives in
//! `hawkeye-bench` (writer) and `hawkeye-analyze` (parser), and the
//! renderers here are deterministic functions of it. Bump
//! [`OBS_SCHEMA_VERSION`] whenever a field is added, removed, or changes
//! meaning.

use crate::anomaly::Anomaly;
use crate::series::CohortSeries;

/// Schema version stamped into every `<target>.obs.json`.
pub const OBS_SCHEMA_VERSION: u64 = 1;

/// Whether an [`Alert`] marks the start or the end of a breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Both burn windows crossed the rule's threshold × burn factor.
    Breach,
    /// A previously-breaching rule moved back inside its band.
    Recover,
}

impl AlertKind {
    /// Stable lower-case tag for serialization.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::Breach => "breach",
            AlertKind::Recover => "recover",
        }
    }

    /// Inverse of [`AlertKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "breach" => Some(AlertKind::Breach),
            "recover" => Some(AlertKind::Recover),
            _ => None,
        }
    }
}

/// One edge-triggered SLO transition on a cohort's series.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Index of the rule in [`ObsDoc::rules`].
    pub rule: u64,
    /// Rule name (denormalized for readable artifacts).
    pub name: String,
    /// Epoch at which the transition was detected.
    pub epoch: u32,
    /// Breach or recover.
    pub kind: AlertKind,
    /// Fast-window mean at the transition epoch.
    pub fast: f64,
    /// Slow-window mean at the transition epoch.
    pub slow: f64,
}

/// A burn-rate rule as recorded in the document (the serialization form
/// of `slo::BurnRule`, so ALERTS.md can be re-rendered from the JSON
/// alone).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDoc {
    /// Rule name.
    pub name: String,
    /// Series key name (`slo::SeriesKey::name`).
    pub series: String,
    /// SLO threshold on the series value.
    pub threshold: f64,
    /// Fast window length, epochs.
    pub fast_window: u64,
    /// Slow window length, epochs (clamped to run length at evaluation).
    pub slow_window: u64,
    /// Burn factor applied to the threshold for the fast window.
    pub fast_burn: f64,
    /// Burn factor applied to the threshold for the slow window.
    pub slow_burn: f64,
    /// `"above"` or `"below"` — which side of the threshold burns.
    pub direction: String,
}

/// One cohort's evaluated telemetry: series plus alerts plus anomalies.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortObs {
    /// The finalized per-epoch series.
    pub series: CohortSeries,
    /// Edge-triggered SLO transitions, sorted by (epoch, rule).
    pub alerts: Vec<Alert>,
    /// EWMA z-score annotations, in series order then epoch order.
    pub anomalies: Vec<Anomaly>,
}

/// The full evaluated telemetry document for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsDoc {
    /// Suite target the document describes (e.g. `fleet_slo`).
    pub target: String,
    /// Schema version ([`OBS_SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// The rule set the alerts were evaluated against.
    pub rules: Vec<RuleDoc>,
    /// One entry per cohort, in fleet cohort order.
    pub cohorts: Vec<CohortObs>,
}
