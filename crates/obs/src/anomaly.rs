//! EWMA z-score anomaly annotations.
//!
//! A deliberately simple online detector: an exponentially-weighted
//! moving mean and variance track each series, and a point whose
//! deviation exceeds `zmax` standard deviations *before* it updates the
//! estimate is flagged. Pure f64 arithmetic in a fixed left-to-right
//! pass — deterministic, and cheap enough to run on every finalized
//! series unconditionally.

/// One flagged point on a cohort series.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Series key name the point belongs to (e.g. `p99_fault_us`).
    pub series: String,
    /// Epoch of the flagged point.
    pub epoch: u32,
    /// The observed value.
    pub value: f64,
    /// Z-score against the EWMA estimate at that point.
    pub z: f64,
}

/// Scans `(epoch, value)` points with an EWMA mean/variance tracker
/// (smoothing factor `alpha`), flagging points with `|z| > zmax`. The
/// first point seeds the mean; a point is scored against the estimate
/// *excluding* itself, then folded in (so a genuine level shift flags
/// once and the tracker adapts).
pub fn ewma_anomalies(
    series: &str,
    points: &[(u32, f64)],
    alpha: f64,
    zmax: f64,
) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let mut mean = 0.0f64;
    let mut var = 0.0f64;
    let mut seeded = false;
    for &(epoch, x) in points {
        if !seeded {
            mean = x;
            seeded = true;
            continue;
        }
        let sd = var.sqrt();
        if sd > 0.0 {
            let z = (x - mean) / sd;
            if z.abs() > zmax {
                out.push(Anomaly { series: series.to_string(), epoch, value: x, z });
            }
        }
        let d = x - mean;
        mean += alpha * d;
        var = (1.0 - alpha) * (var + alpha * d * d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_spike_on_a_noisy_baseline_is_flagged_once() {
        // Small deterministic jitter establishes a nonzero variance, then
        // one 50x spike lands far outside the band.
        let mut pts: Vec<(u32, f64)> = (0..20)
            .map(|e| (e, 100.0 + if e % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        pts.push((20, 5000.0));
        pts.push((21, 101.0));
        let flagged = ewma_anomalies("p99_fault_us", &pts, 0.3, 3.0);
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert_eq!(flagged[0].epoch, 20);
        assert!(flagged[0].z > 3.0);
    }

    #[test]
    fn a_flat_series_never_flags() {
        let pts: Vec<(u32, f64)> = (0..10).map(|e| (e, 0.25)).collect();
        assert!(ewma_anomalies("fmfi", &pts, 0.3, 3.0).is_empty());
    }

    #[test]
    fn the_detector_adapts_to_a_level_shift() {
        // Jittered baseline, level shift at epoch 10, jitter continues at
        // the new level: only the shift epoch itself flags.
        let pts: Vec<(u32, f64)> = (0..20)
            .map(|e| {
                let base = if e >= 10 { 1000.0 } else { 10.0 };
                (e, base + if e % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let flagged = ewma_anomalies("p99_fault_us", &pts, 0.3, 3.0);
        assert!(!flagged.is_empty(), "the shift must flag");
        assert_eq!(flagged[0].epoch, 10);
        assert!(
            flagged.iter().all(|a| (10..=12).contains(&a.epoch)),
            "tracker re-converges quickly: {flagged:?}"
        );
    }
}
