//! Deterministic fleet telemetry for the HawkEye simulator.
//!
//! The fleet layer (`hawkeye-fleet`) produces thousands of hosts' worth
//! of per-epoch signal — kernel counters, registry snapshots, FMFI,
//! utilization — but until this crate that signal evaporated into
//! end-of-run aggregates. `hawkeye-obs` turns it into artifacts you can
//! watch **over time**:
//!
//! 1. **Time series** ([`series`]) — per-cohort, per-epoch accumulators
//!    built on the mergeable [`QuantileSketch`](hawkeye_metrics::QuantileSketch):
//!    p50/p90/p99/p999 fault latency, MMU overhead, RSS headroom, FMFI.
//!    Accumulators merge *exactly* (every field additive or min/max), so
//!    host groups reduce in submission order and the resulting series are
//!    byte-identical at any worker count.
//! 2. **SLO engine** ([`slo`]) — declarative multi-window burn-rate rules
//!    (fast/slow epoch windows, Google-SRE style) evaluated over those
//!    series; edge-triggered breach/recover alerts become typed
//!    `slo_breach`/`slo_recover` trace events and an `ALERTS.md` artifact
//!    ([`alerts`]); EWMA z-score annotations ([`anomaly`]) flag
//!    fault-latency and FMFI outliers.
//! 3. **Perf-trajectory ledger** ([`ledger`]) — schema-versioned
//!    `BENCH_<n>.json` entries appended per suite run (deterministic work
//!    counters; wall clock quarantined to an advisory digest), rendered
//!    run-over-run as `TREND.md` with a `--check`-style regression gate.
//!
//! # Gating
//!
//! Collection obeys the standing instrumentation invariant: one branch
//! when disabled, zero drift either way. It is off unless the
//! `HAWKEYE_OBS` environment variable is set (to anything but `0`) or a
//! harness calls [`set_forced`]`(true)` — the same pattern as
//! `hawkeye_trace`. Everything downstream of collection is a pure
//! function of the collected document, so artifacts are reproducible
//! from `fleet_slo.obs.json` alone.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub mod alerts;
pub mod anomaly;
pub mod doc;
pub mod ledger;
pub mod series;
pub mod slo;

pub use alerts::alerts_md;
pub use anomaly::{ewma_anomalies, Anomaly};
pub use doc::{Alert, AlertKind, CohortObs, ObsDoc, RuleDoc, OBS_SCHEMA_VERSION};
pub use ledger::{fnv1a, regressions, trend_md, LedgerRun, LedgerTarget, LEDGER_SCHEMA_VERSION};
pub use series::{finalize, CohortAcc, CohortSeries, EpochAcc, EpochPoint};
pub use slo::{default_rules, evaluate, slo_trace_records, BurnRule, Direction, SeriesKey};

/// Process-wide override so harnesses (hawkeye-report, tests) can enable
/// telemetry without touching the environment.
static FORCED: AtomicBool = AtomicBool::new(false);

/// Forces telemetry collection on (or back off) for this process,
/// overriding `HAWKEYE_OBS`. Note this is process-global — parallel unit
/// tests should prefer the explicit `observe` arguments the fleet and
/// bench layers expose instead.
pub fn set_forced(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("HAWKEYE_OBS") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

/// True when fleet telemetry collection is enabled, either by the
/// `HAWKEYE_OBS` environment variable (read once) or by [`set_forced`].
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || env_enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_flag_round_trips() {
        // Only exercises the override knob; the env half is pinned by the
        // fleet zero-drift integration test (obs off by default there).
        set_forced(true);
        assert!(enabled());
        set_forced(false);
    }
}
