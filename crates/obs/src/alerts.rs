//! `ALERTS.md` rendering — a pure, deterministic function of the
//! evaluated telemetry document.

use crate::doc::{AlertKind, ObsDoc};

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Renders the full `ALERTS.md` artifact: the evaluated rule set, then
/// per cohort the SLO transitions, anomaly annotations, and the
/// finalized per-epoch series they were computed from. Byte-identical
/// for byte-identical documents.
pub fn alerts_md(doc: &ObsDoc) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# Fleet SLO alerts\n\n");
    out.push_str(&format!(
        "Target: `{}` — multi-window burn-rate rules and EWMA z-score anomaly \
         annotations evaluated over per-cohort, per-epoch telemetry series \
         (obs schema v{}; see DESIGN.md §16). All values are simulated and \
         deterministic; this file is a pure function of `{}.obs.json`.\n\n",
        doc.target, doc.schema_version, doc.target
    ));

    out.push_str("## Burn-rate rules\n\n");
    out.push_str("| # | Rule | Series | Threshold | Fast win | Slow win | Burn fast/slow | Burns |\n");
    out.push_str("|---|------|--------|-----------|----------|----------|----------------|-------|\n");
    for (i, r) in doc.rules.iter().enumerate() {
        out.push_str(&format!(
            "| {} | {} | `{}` | {} | {} ep | {} ep | {} / {} | {} |\n",
            i,
            r.name,
            r.series,
            f4(r.threshold),
            r.fast_window,
            r.slow_window,
            f2(r.fast_burn),
            f2(r.slow_burn),
            r.direction
        ));
    }
    out.push('\n');

    let total_breaches: usize = doc
        .cohorts
        .iter()
        .map(|c| c.alerts.iter().filter(|a| a.kind == AlertKind::Breach).count())
        .sum();
    out.push_str(&format!(
        "**{} breach(es) across {} cohort(s).**\n\n",
        total_breaches,
        doc.cohorts.len()
    ));

    for c in &doc.cohorts {
        out.push_str(&format!("## {}\n\n", c.series.cohort));

        out.push_str("### SLO transitions\n\n");
        if c.alerts.is_empty() {
            out.push_str("No SLO breaches: every rule stayed inside its burn band.\n\n");
        } else {
            out.push_str("| Epoch | Rule | Event | Fast mean | Slow mean |\n");
            out.push_str("|-------|------|-------|-----------|-----------|\n");
            for a in &c.alerts {
                let event = match a.kind {
                    AlertKind::Breach => "**BREACH**",
                    AlertKind::Recover => "recover",
                };
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} |\n",
                    a.epoch,
                    a.name,
                    event,
                    f4(a.fast),
                    f4(a.slow)
                ));
            }
            out.push('\n');
        }

        out.push_str("### Anomalies (EWMA z-score)\n\n");
        if c.anomalies.is_empty() {
            out.push_str("No anomalies flagged.\n\n");
        } else {
            out.push_str("| Epoch | Series | Value | z |\n");
            out.push_str("|-------|--------|-------|---|\n");
            for an in &c.anomalies {
                out.push_str(&format!(
                    "| {} | `{}` | {} | {} |\n",
                    an.epoch,
                    an.series,
                    f4(an.value),
                    f2(an.z)
                ));
            }
            out.push('\n');
        }

        out.push_str("### Per-epoch series\n\n");
        out.push_str(
            "| Epoch | Faults | p50 µs | p90 µs | p99 µs | p99.9 µs | MMU ovh | RSS headroom | FMFI |\n",
        );
        out.push_str(
            "|-------|--------|--------|--------|--------|----------|---------|--------------|------|\n",
        );
        for p in &c.series.points {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                p.epoch,
                p.faults,
                f2(p.p50_us),
                f2(p.p90_us),
                f2(p.p99_us),
                f2(p.p999_us),
                f4(p.mmu_overhead),
                f4(p.rss_headroom),
                f4(p.fmfi)
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{CohortSeries, EpochPoint};
    use crate::slo::{default_rules, evaluate};

    fn sample_doc() -> ObsDoc {
        let series = vec![CohortSeries {
            cohort: "HawkEye-G+throttle".into(),
            points: (0..8)
                .map(|e| EpochPoint {
                    epoch: e,
                    faults: 100 + e as u64,
                    p50_us: 10.0,
                    p90_us: 50.0,
                    p99_us: if e >= 3 { 900.0 } else { 40.0 },
                    p999_us: 1000.0,
                    mmu_overhead: 0.01,
                    rss_headroom: 0.5,
                    fmfi: 0.2,
                })
                .collect(),
        }];
        evaluate("fleet_slo", series, &default_rules())
    }

    #[test]
    fn alerts_md_is_deterministic_and_complete() {
        let doc = sample_doc();
        let a = alerts_md(&doc);
        let b = alerts_md(&doc.clone());
        assert_eq!(a, b, "pure function of the document");
        assert!(a.contains("# Fleet SLO alerts"));
        assert!(a.contains("## Burn-rate rules"));
        assert!(a.contains("fault-p99-latency"));
        assert!(a.contains("**BREACH**"), "the hot series must render a breach row:\n{a}");
        assert!(a.contains("### Per-epoch series"));
        assert!(a.contains("| 7 | 107 |"), "series table carries every epoch");
    }

    #[test]
    fn quiet_documents_say_so() {
        let series = vec![CohortSeries {
            cohort: "idle".into(),
            points: vec![EpochPoint {
                epoch: 0,
                faults: 0,
                p50_us: 0.0,
                p90_us: 0.0,
                p99_us: 0.0,
                p999_us: 0.0,
                mmu_overhead: 0.0,
                rss_headroom: 0.9,
                fmfi: 0.0,
            }],
        }];
        let doc = evaluate("fleet_slo", series, &default_rules());
        let md = alerts_md(&doc);
        assert!(md.contains("No SLO breaches"));
        assert!(md.contains("No anomalies flagged"));
        assert!(md.contains("**0 breach(es) across 1 cohort(s).**"));
    }
}
