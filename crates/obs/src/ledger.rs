//! The perf-trajectory ledger: schema-versioned per-run records of
//! deterministic work counters, rendered run-over-run as `TREND.md` and
//! gated by [`regressions`].
//!
//! # What is gated and what is advisory
//!
//! The gate only ever reads **deterministic** quantities: scheduler
//! quanta (total work and closed-form-skipped), and the REPORT.md check
//! tally. Host wall-clock is recorded — total seconds plus an FNV-1a
//! digest of the per-target timings — but quarantined exactly like the
//! `.wallclock.json` sidecars: rendered as advisory columns, never a
//! gate input, so the gate cannot flake on a slow host.
//!
//! # Versioning policy
//!
//! [`LEDGER_SCHEMA_VERSION`] is stamped into every `BENCH_<n>.json`.
//! Comparing runs across schema versions is refused loudly (a gate
//! failure, not a silent skip): a schema bump must land together with a
//! reseeded baseline in the same change — see DESIGN.md §16.

/// Schema version stamped into every ledger entry.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// Per-target deterministic work counters for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerTarget {
    /// Suite target name.
    pub name: String,
    /// Scheduler quanta executed (simulated work, deterministic).
    pub quanta_total: u64,
    /// Quanta charged in closed form by the event-skip scheduler.
    pub quanta_skipped: u64,
}

impl LedgerTarget {
    /// Fraction of quanta charged in closed form.
    pub fn skip_ratio(&self) -> f64 {
        if self.quanta_total == 0 {
            0.0
        } else {
            self.quanta_skipped as f64 / self.quanta_total as f64
        }
    }
}

/// One `BENCH_<n>.json` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRun {
    /// Schema version at write time.
    pub schema_version: u64,
    /// Monotonic run number (the `<n>` in the filename).
    pub run: u64,
    /// REPORT.md checks that passed at the default slack.
    pub checks_passed: u64,
    /// Total REPORT.md checks evaluated.
    pub checks_total: u64,
    /// Per-target counters, in suite order.
    pub targets: Vec<LedgerTarget>,
    /// Advisory: total host wall-clock for the suite, seconds.
    pub wall_total_secs: f64,
    /// Advisory: FNV-1a 64 digest (hex) of per-target wall timings.
    pub wall_digest: String,
}

impl LedgerRun {
    /// Sum of `quanta_total` over all targets.
    pub fn quanta_total(&self) -> u64 {
        self.targets.iter().map(|t| t.quanta_total).sum()
    }

    /// Sum of `quanta_skipped` over all targets.
    pub fn quanta_skipped(&self) -> u64 {
        self.targets.iter().map(|t| t.quanta_skipped).sum()
    }

    /// Suite-wide closed-form skip ratio.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.quanta_total();
        if total == 0 {
            0.0
        } else {
            self.quanta_skipped() as f64 / total as f64
        }
    }
}

/// FNV-1a 64-bit hash, used for the advisory wall-clock digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Allowed relative growth in a target's `quanta_total` before the gate
/// calls it a work regression. The counters are deterministic, so any
/// change means the model changed; the slack only exists so deliberate
/// small reworkings don't force a baseline reseed.
const QUANTA_SLACK: f64 = 0.05;
/// Allowed drop in skip ratio (percentage points / 100).
const SKIP_SLACK: f64 = 0.02;

/// The regression gate: compares the latest run against the previous
/// one and returns one message per violation (empty = pass). Only
/// deterministic counters participate; wall-clock never does.
pub fn regressions(prev: &LedgerRun, cur: &LedgerRun) -> Vec<String> {
    let mut out = Vec::new();
    if prev.schema_version != cur.schema_version {
        out.push(format!(
            "ledger schema changed v{} -> v{}: gate refused; reseed the baseline \
             alongside the schema bump (DESIGN.md §16)",
            prev.schema_version, cur.schema_version
        ));
        return out;
    }
    if cur.checks_passed < cur.checks_total {
        out.push(format!(
            "run {}: {}/{} REPORT.md checks passed",
            cur.run, cur.checks_passed, cur.checks_total
        ));
    }
    if cur.checks_passed < prev.checks_passed {
        out.push(format!(
            "checks passed fell {} -> {} (run {} vs {})",
            prev.checks_passed, cur.checks_passed, prev.run, cur.run
        ));
    }
    for pt in &prev.targets {
        let Some(ct) = cur.targets.iter().find(|t| t.name == pt.name) else {
            out.push(format!("target `{}` disappeared from run {}", pt.name, cur.run));
            continue;
        };
        let limit = (pt.quanta_total as f64 * (1.0 + QUANTA_SLACK)) as u64;
        if ct.quanta_total > limit {
            out.push(format!(
                "`{}`: quanta_total {} -> {} (+{:.1}% > {:.0}% slack) — simulated work regressed",
                pt.name,
                pt.quanta_total,
                ct.quanta_total,
                100.0 * (ct.quanta_total as f64 / pt.quanta_total.max(1) as f64 - 1.0),
                100.0 * QUANTA_SLACK
            ));
        }
        if pt.skip_ratio() - ct.skip_ratio() > SKIP_SLACK {
            out.push(format!(
                "`{}`: event-skip ratio {:.3} -> {:.3} — closed-form scheduling regressed",
                pt.name,
                pt.skip_ratio(),
                ct.skip_ratio()
            ));
        }
    }
    out
}

fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Renders `TREND.md`: a run-over-run summary table plus a per-target
/// delta table for the latest pair of runs. `runs` must be sorted by run
/// number (the loader does this). Pure and deterministic.
pub fn trend_md(runs: &[LedgerRun]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("# Perf trajectory\n\n");
    out.push_str(&format!(
        "{} ledger run(s) (`BENCH_<n>.json`, schema v{}). Gated columns are \
         deterministic simulation counters; wall-clock is host timing, \
         **advisory only** (never gated — see DESIGN.md §16).\n\n",
        runs.len(),
        LEDGER_SCHEMA_VERSION
    ));
    if runs.is_empty() {
        out.push_str("No runs recorded yet: run `hawkeye-report` to append one.\n");
        return out;
    }

    out.push_str("## Run-over-run\n\n");
    out.push_str(
        "| Run | Targets | Σ quanta | Δ quanta | Skip ratio | Checks | Wall s (advisory) |\n",
    );
    out.push_str(
        "|-----|---------|----------|----------|------------|--------|-------------------|\n",
    );
    let mut prev: Option<&LedgerRun> = None;
    for r in runs {
        let delta = match prev {
            Some(p) if p.quanta_total() > 0 => {
                let d = 100.0 * (r.quanta_total() as f64 / p.quanta_total() as f64 - 1.0);
                format!("{d:+.2}%")
            }
            _ => "n/a".to_string(),
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.3} | {}/{} | {} |\n",
            r.run,
            r.targets.len(),
            r.quanta_total(),
            delta,
            r.skip_ratio(),
            r.checks_passed,
            r.checks_total,
            f1(r.wall_total_secs)
        ));
        prev = Some(r);
    }
    out.push('\n');

    if runs.len() >= 2 {
        let (p, c) = (&runs[runs.len() - 2], &runs[runs.len() - 1]);
        out.push_str(&format!("## Per-target: run {} vs run {}\n\n", c.run, p.run));
        out.push_str("| Target | Quanta prev | Quanta cur | Δ | Skip prev | Skip cur |\n");
        out.push_str("|--------|-------------|------------|---|-----------|----------|\n");
        for ct in &c.targets {
            let (qp, sp) = match p.targets.iter().find(|t| t.name == ct.name) {
                Some(pt) => (pt.quanta_total.to_string(), format!("{:.3}", pt.skip_ratio())),
                None => ("new".to_string(), "n/a".to_string()),
            };
            let delta = match p.targets.iter().find(|t| t.name == ct.name) {
                Some(pt) if pt.quanta_total > 0 => format!(
                    "{:+.2}%",
                    100.0 * (ct.quanta_total as f64 / pt.quanta_total as f64 - 1.0)
                ),
                _ => "n/a".to_string(),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {:.3} |\n",
                ct.name,
                qp,
                ct.quanta_total,
                delta,
                sp,
                ct.skip_ratio()
            ));
        }
        out.push('\n');
        let regs = regressions(p, c);
        if regs.is_empty() {
            out.push_str("Regression gate: **pass** — no deterministic counter regressed.\n");
        } else {
            out.push_str("Regression gate: **FAIL**\n\n");
            for r in &regs {
                out.push_str(&format!("- {r}\n"));
            }
        }
    } else {
        out.push_str(
            "Single run: deltas and the regression gate activate once a second \
             run is appended.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: u64, quanta: &[(u64, u64)], checks: (u64, u64)) -> LedgerRun {
        LedgerRun {
            schema_version: LEDGER_SCHEMA_VERSION,
            run: n,
            checks_passed: checks.0,
            checks_total: checks.1,
            targets: quanta
                .iter()
                .enumerate()
                .map(|(i, &(t, s))| LedgerTarget {
                    name: format!("t{i}"),
                    quanta_total: t,
                    quanta_skipped: s,
                })
                .collect(),
            wall_total_secs: 70.0 + n as f64,
            wall_digest: format!("{:016x}", fnv1a(&n.to_le_bytes())),
        }
    }

    #[test]
    fn identical_counters_pass_the_gate() {
        let a = run(9, &[(1000, 800), (5000, 4500)], (67, 67));
        let mut b = run(10, &[(1000, 800), (5000, 4500)], (67, 67));
        b.wall_total_secs = 500.0; // wall-clock is advisory: never gated
        b.wall_digest = "ffffffffffffffff".into();
        assert!(regressions(&a, &b).is_empty());
    }

    #[test]
    fn injected_counter_regression_fails_the_gate() {
        let a = run(9, &[(1000, 800), (5000, 4500)], (67, 67));
        // +20% quanta on one target, skip ratio collapse on the other.
        let b = run(10, &[(1200, 960), (5000, 2000)], (67, 67));
        let regs = regressions(&a, &b);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs[0].contains("quanta_total"));
        assert!(regs[1].contains("event-skip ratio"));
    }

    #[test]
    fn check_and_target_regressions_fail_the_gate() {
        let a = run(9, &[(1000, 800), (5000, 4500)], (67, 67));
        let b = run(10, &[(1000, 800)], (66, 67));
        let regs = regressions(&a, &b);
        assert!(regs.iter().any(|r| r.contains("66/67")), "{regs:?}");
        assert!(regs.iter().any(|r| r.contains("fell 67 -> 66")), "{regs:?}");
        assert!(regs.iter().any(|r| r.contains("disappeared")), "{regs:?}");
    }

    #[test]
    fn schema_mismatch_refuses_loudly() {
        let a = run(9, &[(1000, 800)], (67, 67));
        let mut b = run(10, &[(1000, 800)], (67, 67));
        b.schema_version += 1;
        let regs = regressions(&a, &b);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("reseed the baseline"));
    }

    #[test]
    fn trend_md_renders_deltas_and_the_gate_verdict() {
        let runs = vec![
            run(9, &[(1000, 800), (5000, 4500)], (67, 67)),
            run(10, &[(1010, 810), (5000, 4500)], (67, 67)),
        ];
        let md = trend_md(&runs);
        assert!(md.contains("# Perf trajectory"));
        assert!(md.contains("| 9 |"));
        assert!(md.contains("+0.17%"), "run-over-run delta rendered:\n{md}");
        assert!(md.contains("## Per-target: run 10 vs run 9"));
        assert!(md.contains("Regression gate: **pass**"));
        assert_eq!(md, trend_md(&runs.clone()), "pure function");
        // And a failing pair renders FAIL with the messages inline.
        let bad = vec![runs[0].clone(), run(10, &[(2000, 800), (5000, 4500)], (67, 67))];
        assert!(trend_md(&bad).contains("Regression gate: **FAIL**"));
    }

    #[test]
    fn empty_and_single_run_ledgers_render() {
        assert!(trend_md(&[]).contains("No runs recorded"));
        let one = vec![run(9, &[(10, 5)], (67, 67))];
        assert!(trend_md(&one).contains("Single run"));
    }

    #[test]
    fn fnv1a_is_the_reference_hash() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
