//! Mergeable per-cohort, per-epoch telemetry accumulators and their
//! finalized time-series points.
//!
//! Accumulators are the *reduction-safe* representation: every field is
//! either additive (sketch buckets, counters, f64 sums folded in fixed
//! group order) or a min/max, so merging per-group shards in submission
//! order reproduces single-stream ingestion exactly — the property that
//! keeps fleet artifacts byte-identical at any worker count. Ratios and
//! quantiles are only computed at [`finalize`] time, from fully-merged
//! state.

use hawkeye_metrics::{Cycles, QuantileSketch};

/// One epoch's worth of raw, mergeable telemetry for (part of) a cohort.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochAcc {
    /// Fault service latencies (simulated cycles) observed in this
    /// epoch's trace windows, across all hosts folded in so far.
    pub fault_sketch: QuantileSketch,
    /// Page-walk CPU cycles charged during this epoch (delta of the
    /// cumulative registry counter).
    pub walk_cycles: u64,
    /// Unhalted CPU cycles elapsed during this epoch (delta).
    pub unhalted_cycles: u64,
    /// Sum of per-host utilization samples (RSS / host memory).
    pub util_sum: f64,
    /// Sum of per-host free-memory-fragmentation-index samples.
    pub fmfi_sum: f64,
    /// Number of host samples folded into the sums above.
    pub hosts: u64,
}

impl EpochAcc {
    /// Folds another shard of the same epoch into this one. Exact — see
    /// the module docs.
    pub fn merge(&mut self, other: &EpochAcc) {
        self.fault_sketch.merge(&other.fault_sketch);
        self.walk_cycles += other.walk_cycles;
        self.unhalted_cycles += other.unhalted_cycles;
        self.util_sum += other.util_sum;
        self.fmfi_sum += other.fmfi_sum;
        self.hosts += other.hosts;
    }
}

/// A cohort's accumulator: one [`EpochAcc`] per fleet epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CohortAcc {
    /// Per-epoch shards, index = epoch.
    pub epochs: Vec<EpochAcc>,
}

impl CohortAcc {
    /// An accumulator pre-sized to `epochs` empty slots.
    pub fn with_epochs(epochs: usize) -> Self {
        CohortAcc { epochs: vec![EpochAcc::default(); epochs] }
    }

    /// Mutable slot for `epoch`, growing the vector if needed.
    pub fn epoch_mut(&mut self, epoch: usize) -> &mut EpochAcc {
        if epoch >= self.epochs.len() {
            self.epochs.resize(epoch + 1, EpochAcc::default());
        }
        &mut self.epochs[epoch]
    }

    /// Folds another cohort shard in, epoch by epoch. Exact.
    pub fn merge(&mut self, other: &CohortAcc) {
        if other.epochs.len() > self.epochs.len() {
            self.epochs.resize(other.epochs.len(), EpochAcc::default());
        }
        for (slot, shard) in self.epochs.iter_mut().zip(other.epochs.iter()) {
            slot.merge(shard);
        }
    }
}

/// One finalized time-series point: ratios and quantiles computed from a
/// fully-merged [`EpochAcc`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPoint {
    /// Fleet epoch index (0-based).
    pub epoch: u32,
    /// Faults observed in the epoch's journal windows.
    pub faults: u64,
    /// Median fault service latency, simulated µs.
    pub p50_us: f64,
    /// 90th-percentile fault service latency, simulated µs.
    pub p90_us: f64,
    /// 99th-percentile fault service latency, simulated µs.
    pub p99_us: f64,
    /// 99.9th-percentile fault service latency, simulated µs.
    pub p999_us: f64,
    /// Page-walk cycles / unhalted cycles for the epoch (0 when idle).
    pub mmu_overhead: f64,
    /// Mean `1 - utilization` across host samples — how much RSS slack
    /// the cohort has before ballooning/migration kicks in.
    pub rss_headroom: f64,
    /// Mean free-memory fragmentation index across host samples.
    pub fmfi: f64,
}

/// A cohort's finalized per-epoch series.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSeries {
    /// Cohort label (policy + hook, as reported by the fleet).
    pub cohort: String,
    /// One point per epoch, in epoch order.
    pub points: Vec<EpochPoint>,
}

/// Finalizes a fully-merged accumulator into its per-epoch series.
pub fn finalize(cohort: &str, acc: &CohortAcc) -> CohortSeries {
    let points = acc
        .epochs
        .iter()
        .enumerate()
        .map(|(e, a)| {
            let us = |p: f64| Cycles::new(a.fault_sketch.percentile(p)).as_micros();
            let hosts = a.hosts as f64;
            EpochPoint {
                epoch: e as u32,
                faults: a.fault_sketch.count(),
                p50_us: us(50.0),
                p90_us: us(90.0),
                p99_us: us(99.0),
                p999_us: us(99.9),
                mmu_overhead: if a.unhalted_cycles == 0 {
                    0.0
                } else {
                    a.walk_cycles as f64 / a.unhalted_cycles as f64
                },
                rss_headroom: if a.hosts == 0 { 0.0 } else { 1.0 - a.util_sum / hosts },
                fmfi: if a.hosts == 0 { 0.0 } else { a.fmfi_sum / hosts },
            }
        })
        .collect();
    CohortSeries { cohort: cohort.to_string(), points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc_with(vals: &[u64], walk: u64, unhalted: u64, util: f64, fmfi: f64) -> EpochAcc {
        let mut a = EpochAcc {
            walk_cycles: walk,
            unhalted_cycles: unhalted,
            util_sum: util,
            fmfi_sum: fmfi,
            hosts: 1,
            ..EpochAcc::default()
        };
        for &v in vals {
            a.fault_sketch.observe(v);
        }
        a
    }

    #[test]
    fn cohort_merge_is_order_of_epochs_exact() {
        let mut a = CohortAcc::with_epochs(2);
        *a.epoch_mut(0) = acc_with(&[100, 200], 10, 100, 0.5, 0.2);
        let mut b = CohortAcc::with_epochs(3);
        *b.epoch_mut(0) = acc_with(&[300], 5, 50, 0.7, 0.4);
        *b.epoch_mut(2) = acc_with(&[400], 1, 10, 0.9, 0.6);
        a.merge(&b);
        assert_eq!(a.epochs.len(), 3, "merge grows to the longer shard");
        assert_eq!(a.epochs[0].fault_sketch.count(), 3);
        assert_eq!(a.epochs[0].walk_cycles, 15);
        assert_eq!(a.epochs[0].hosts, 2);
        assert_eq!(a.epochs[1], EpochAcc::default());
        assert_eq!(a.epochs[2].fault_sketch.count(), 1);
    }

    #[test]
    fn finalize_computes_ratios_from_merged_state() {
        let mut acc = CohortAcc::with_epochs(1);
        *acc.epoch_mut(0) = acc_with(&[2300, 2300], 25, 100, 0.75, 0.3);
        let s = finalize("test", &acc);
        assert_eq!(s.cohort, "test");
        let p = &s.points[0];
        assert_eq!(p.faults, 2);
        assert!((p.mmu_overhead - 0.25).abs() < 1e-12);
        assert!((p.rss_headroom - 0.25).abs() < 1e-12);
        assert!((p.fmfi - 0.3).abs() < 1e-12);
        // 2300 cycles at 2.3 GHz is 1 µs; the sketch resolves to the
        // bucket lower bound clamped to [min, max] = 2300 exactly here.
        assert!((p.p50_us - 1.0).abs() < 1e-9, "p50 {} µs", p.p50_us);
    }

    #[test]
    fn finalize_of_empty_epoch_is_all_zero() {
        let acc = CohortAcc::with_epochs(1);
        let p = &finalize("idle", &acc).points[0];
        assert_eq!(p.faults, 0);
        assert_eq!(p.p999_us, 0.0);
        assert_eq!(p.mmu_overhead, 0.0);
        assert_eq!(p.rss_headroom, 0.0);
        assert_eq!(p.fmfi, 0.0);
    }
}
