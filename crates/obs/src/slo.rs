//! The SLO engine: declarative multi-window burn-rate rules evaluated
//! over finalized cohort series.
//!
//! # Rule grammar
//!
//! A [`BurnRule`] reads one series ([`SeriesKey`]) and fires when **both**
//! of two trailing epoch-window means cross `threshold × burn`:
//!
//! * the **fast** window (e.g. 5 epochs) catches sharp regressions
//!   quickly and recovers quickly;
//! * the **slow** window (e.g. 60 epochs; clamped to the history
//!   actually available) confirms the burn is sustained, suppressing
//!   one-epoch blips.
//!
//! [`Direction::Above`] rules burn when the means exceed the band
//! (latency, MMU overhead, FMFI); [`Direction::Below`] rules burn when
//! they fall under it (RSS headroom). Transitions are edge-triggered:
//! one [`Alert`] at the epoch the rule starts breaching, one at the
//! epoch it recovers — mirrored as `slo_breach`/`slo_recover` trace
//! events by [`slo_trace_records`].
//!
//! Evaluation is a pure function of (series, rules): no clocks, no
//! randomness, fixed iteration order — deterministic byte-for-byte.

use crate::anomaly::ewma_anomalies;
use crate::doc::{Alert, AlertKind, CohortObs, ObsDoc, RuleDoc, OBS_SCHEMA_VERSION};
use crate::series::{CohortSeries, EpochPoint};
use hawkeye_metrics::Cycles;
use hawkeye_trace::{TraceEvent, TraceRecord};

/// Which finalized series a rule reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKey {
    /// 99th-percentile fault latency, simulated µs.
    P99FaultUs,
    /// 99.9th-percentile fault latency, simulated µs.
    P999FaultUs,
    /// Page-walk cycles / unhalted cycles.
    MmuOverhead,
    /// Mean `1 - utilization` across hosts.
    RssHeadroom,
    /// Mean free-memory fragmentation index across hosts.
    Fmfi,
}

impl SeriesKey {
    /// Stable lower-case tag for serialization and rendering.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKey::P99FaultUs => "p99_fault_us",
            SeriesKey::P999FaultUs => "p999_fault_us",
            SeriesKey::MmuOverhead => "mmu_overhead",
            SeriesKey::RssHeadroom => "rss_headroom",
            SeriesKey::Fmfi => "fmfi",
        }
    }

    /// Extracts this series' value from a point.
    pub fn value(self, p: &EpochPoint) -> f64 {
        match self {
            SeriesKey::P99FaultUs => p.p99_us,
            SeriesKey::P999FaultUs => p.p999_us,
            SeriesKey::MmuOverhead => p.mmu_overhead,
            SeriesKey::RssHeadroom => p.rss_headroom,
            SeriesKey::Fmfi => p.fmfi,
        }
    }
}

/// Which side of the threshold counts as burning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Burn when the window means exceed `threshold × burn`.
    Above,
    /// Burn when the window means fall below `threshold × burn`.
    Below,
}

impl Direction {
    /// Stable lower-case tag for serialization.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Above => "above",
            Direction::Below => "below",
        }
    }
}

/// One declarative burn-rate rule. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRule {
    /// Rule name, rendered in ALERTS.md and trace-event rule indices.
    pub name: &'static str,
    /// Series the rule reads.
    pub key: SeriesKey,
    /// SLO threshold on the series value.
    pub threshold: f64,
    /// Fast window, epochs (≥ 1).
    pub fast_window: usize,
    /// Slow window, epochs (≥ fast; clamped to available history).
    pub slow_window: usize,
    /// Burn factor for the fast window.
    pub fast_burn: f64,
    /// Burn factor for the slow window.
    pub slow_burn: f64,
    /// Which side of the threshold burns.
    pub direction: Direction,
}

impl BurnRule {
    /// Trailing-window means ending at epoch index `e` and whether the
    /// rule is burning there.
    fn probe(&self, values: &[f64], e: usize) -> (f64, f64, bool) {
        let mean = |w: usize| {
            let w = w.max(1);
            let lo = (e + 1).saturating_sub(w);
            let n = (e + 1 - lo) as f64;
            values[lo..=e].iter().sum::<f64>() / n
        };
        let (fast, slow) = (mean(self.fast_window), mean(self.slow_window));
        let hit = match self.direction {
            Direction::Above => {
                fast > self.threshold * self.fast_burn && slow > self.threshold * self.slow_burn
            }
            Direction::Below => {
                fast < self.threshold * self.fast_burn && slow < self.threshold * self.slow_burn
            }
        };
        (fast, slow, hit)
    }

    /// The serialization form of this rule.
    pub fn doc(&self) -> RuleDoc {
        RuleDoc {
            name: self.name.to_string(),
            series: self.key.name().to_string(),
            threshold: self.threshold,
            fast_window: self.fast_window as u64,
            slow_window: self.slow_window as u64,
            fast_burn: self.fast_burn,
            slow_burn: self.slow_burn,
            direction: self.direction.name().to_string(),
        }
    }
}

/// The default fleet rule set evaluated by the `fleet_slo` target.
/// Windows are sized for the standard 8-epoch run; the grammar itself
/// supports any window pair (e.g. 5-epoch fast / 60-epoch slow for long
/// soaks — the slow window clamps to available history).
pub fn default_rules() -> Vec<BurnRule> {
    vec![
        BurnRule {
            name: "fault-p99-latency",
            key: SeriesKey::P99FaultUs,
            threshold: 500.0,
            fast_window: 2,
            slow_window: 6,
            fast_burn: 1.0,
            slow_burn: 0.8,
            direction: Direction::Above,
        },
        BurnRule {
            name: "mmu-overhead",
            key: SeriesKey::MmuOverhead,
            threshold: 0.02,
            fast_window: 2,
            slow_window: 6,
            fast_burn: 1.0,
            slow_burn: 0.75,
            direction: Direction::Above,
        },
        BurnRule {
            name: "rss-headroom",
            key: SeriesKey::RssHeadroom,
            threshold: 0.25,
            fast_window: 2,
            slow_window: 6,
            fast_burn: 1.0,
            slow_burn: 1.2,
            direction: Direction::Below,
        },
        BurnRule {
            name: "fragmentation",
            key: SeriesKey::Fmfi,
            threshold: 0.6,
            fast_window: 2,
            slow_window: 6,
            fast_burn: 1.0,
            slow_burn: 0.9,
            direction: Direction::Above,
        },
    ]
}

/// Evaluates one cohort's series against a rule set: edge-triggered
/// alerts sorted by (epoch, rule index, recover-before-breach).
pub fn evaluate_rules(points: &[EpochPoint], rules: &[BurnRule]) -> Vec<Alert> {
    let mut alerts = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        let values: Vec<f64> = points.iter().map(|p| rule.key.value(p)).collect();
        let mut active = false;
        for (e, point) in points.iter().enumerate() {
            let (fast, slow, hit) = rule.probe(&values, e);
            if hit != active {
                active = hit;
                alerts.push(Alert {
                    rule: ri as u64,
                    name: rule.name.to_string(),
                    epoch: point.epoch,
                    kind: if hit { AlertKind::Breach } else { AlertKind::Recover },
                    fast,
                    slow,
                });
            }
        }
    }
    alerts.sort_by_key(|a| (a.epoch, a.rule, a.kind == AlertKind::Breach));
    alerts
}

/// EWMA smoothing factor for anomaly annotations.
const ANOMALY_ALPHA: f64 = 0.3;
/// |z| above which a point is flagged.
const ANOMALY_ZMAX: f64 = 3.0;

/// Evaluates finalized cohort series against a rule set, producing the
/// full telemetry document (alerts + EWMA z-score anomaly annotations on
/// the fault-latency and FMFI series).
pub fn evaluate(target: &str, series: Vec<CohortSeries>, rules: &[BurnRule]) -> ObsDoc {
    let cohorts = series
        .into_iter()
        .map(|s| {
            let alerts = evaluate_rules(&s.points, rules);
            let mut anomalies = Vec::new();
            for key in [SeriesKey::P99FaultUs, SeriesKey::Fmfi] {
                let values: Vec<(u32, f64)> =
                    s.points.iter().map(|p| (p.epoch, key.value(p))).collect();
                anomalies.extend(ewma_anomalies(key.name(), &values, ANOMALY_ALPHA, ANOMALY_ZMAX));
            }
            CohortObs { series: s, alerts, anomalies }
        })
        .collect();
    ObsDoc {
        target: target.to_string(),
        schema_version: OBS_SCHEMA_VERSION,
        rules: rules.iter().map(BurnRule::doc).collect(),
        cohorts,
    }
}

/// Renders a document's alerts as typed trace records for the synthetic
/// `obs/slo` journal: one `slo_breach`/`slo_recover` per transition,
/// stamped at the simulated end of the transition epoch, `machine` =
/// cohort index, pid 0 (no process is responsible for an SLO).
pub fn slo_trace_records(doc: &ObsDoc, epoch_ms: u64) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    for (ci, cohort) in doc.cohorts.iter().enumerate() {
        for a in &cohort.alerts {
            let event = match a.kind {
                AlertKind::Breach => TraceEvent::SloBreach {
                    rule: a.rule,
                    epoch: a.epoch as u64,
                    cohort: ci as u64,
                },
                AlertKind::Recover => TraceEvent::SloRecover {
                    rule: a.rule,
                    epoch: a.epoch as u64,
                    cohort: ci as u64,
                },
            };
            records.push(TraceRecord {
                at: Cycles::from_millis(epoch_ms * (a.epoch as u64 + 1)),
                pid: 0,
                machine: ci as u32,
                event,
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_point(epoch: u32, p99: f64, headroom: f64) -> EpochPoint {
        EpochPoint {
            epoch,
            faults: 10,
            p50_us: p99 / 2.0,
            p90_us: p99 * 0.9,
            p99_us: p99,
            p999_us: p99 * 1.1,
            mmu_overhead: 0.01,
            rss_headroom: headroom,
            fmfi: 0.1,
        }
    }

    fn latency_rule(fast: usize, slow: usize) -> BurnRule {
        BurnRule {
            name: "lat",
            key: SeriesKey::P99FaultUs,
            threshold: 100.0,
            fast_window: fast,
            slow_window: slow,
            fast_burn: 1.0,
            slow_burn: 0.8,
            direction: Direction::Above,
        }
    }

    #[test]
    fn burn_rule_fires_on_sustained_burn_and_recovers() {
        // Epochs 0-1 healthy, 2-5 hot, 6-7 healthy again.
        let points: Vec<EpochPoint> = (0..8)
            .map(|e| flat_point(e, if (2..6).contains(&e) { 300.0 } else { 50.0 }, 0.5))
            .collect();
        let alerts = evaluate_rules(&points, &[latency_rule(2, 6)]);
        let kinds: Vec<(u32, AlertKind)> = alerts.iter().map(|a| (a.epoch, a.kind)).collect();
        // Epoch 2: fast mean (50+300)/2 = 175 > 100 and slow mean
        // (50,50,300)/3 ≈ 133 > 80 — breach. Epoch 7: fast mean back to
        // 50 — recover. Edge-triggered: exactly one of each.
        assert_eq!(kinds, vec![(2, AlertKind::Breach), (7, AlertKind::Recover)]);
    }

    #[test]
    fn one_epoch_blip_is_suppressed_by_the_fast_window() {
        let points: Vec<EpochPoint> =
            (0..8).map(|e| flat_point(e, if e == 4 { 180.0 } else { 50.0 }, 0.5)).collect();
        // Fast mean over 2 epochs at the blip: (50+180)/2 = 115 > 100, but
        // the slow (trailing) mean stays below 80 — no alert.
        let alerts = evaluate_rules(&points, &[latency_rule(2, 6)]);
        assert!(alerts.is_empty(), "blip must not page: {alerts:?}");
    }

    #[test]
    fn below_rules_burn_on_headroom_exhaustion() {
        let rule = BurnRule {
            name: "headroom",
            key: SeriesKey::RssHeadroom,
            threshold: 0.25,
            fast_window: 2,
            slow_window: 6,
            fast_burn: 1.0,
            slow_burn: 1.2,
            direction: Direction::Below,
        };
        // Headroom collapses at epoch 3; the slow window (trailing 6,
        // slow threshold 0.25 × 1.2 = 0.30) needs the healthy epochs to
        // age out before the breach confirms at epoch 7.
        let points: Vec<EpochPoint> =
            (0..10).map(|e| flat_point(e, 50.0, if e >= 3 { 0.05 } else { 0.8 })).collect();
        let alerts = evaluate_rules(&points, &[rule]);
        assert_eq!(
            alerts.iter().map(|a| (a.epoch, a.kind)).collect::<Vec<_>>(),
            vec![(7, AlertKind::Breach)],
            "exhausted headroom must breach once sustained"
        );
    }

    #[test]
    fn windows_clamp_to_available_history() {
        // A 60-epoch slow window over a 3-epoch run must not panic and
        // must use all available history.
        let points: Vec<EpochPoint> = (0..3).map(|e| flat_point(e, 300.0, 0.5)).collect();
        let alerts = evaluate_rules(&points, &[latency_rule(5, 60)]);
        assert!(
            alerts.iter().any(|a| a.kind == AlertKind::Breach),
            "always-hot series breaches even on short history"
        );
    }

    #[test]
    fn evaluate_builds_a_full_document_with_trace_records() {
        let series = vec![CohortSeries {
            cohort: "c0".into(),
            points: (0..8)
                .map(|e| flat_point(e, if e >= 2 { 900.0 } else { 10.0 }, 0.5))
                .collect(),
        }];
        let doc = evaluate("fleet_slo", series, &default_rules());
        assert_eq!(doc.schema_version, OBS_SCHEMA_VERSION);
        assert_eq!(doc.rules.len(), 4);
        assert_eq!(doc.cohorts.len(), 1);
        assert!(
            doc.cohorts[0].alerts.iter().any(|a| a.name == "fault-p99-latency"),
            "latency rule fires on the hot series"
        );
        let records = slo_trace_records(&doc, 20);
        assert_eq!(records.len(), doc.cohorts[0].alerts.len());
        assert!(records
            .iter()
            .all(|r| matches!(r.event, TraceEvent::SloBreach { .. } | TraceEvent::SloRecover { .. })));
        assert!(records[0].at.get() > 0, "stamped at simulated epoch end");
    }
}
