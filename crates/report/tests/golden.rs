//! Golden-file tests for `hawkeye-report` (DESIGN.md §12).
//!
//! 1. REPORT.md is byte-identical at `--threads 1` and `--threads 8`
//!    over a fast subset of the suite — the §9 determinism invariant
//!    extended to the rendered artifact.
//! 2. `--check` fails (exit 1) when a summary artifact carries an
//!    out-of-tolerance value — the gate actually gates.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Fast suite subset (each target < ~1 s in debug builds).
const SUBSET: &str =
    "table4_pmu_methodology,fig3_first_nonzero_byte,fig4_access_map,fig10_prezero_interference";

fn report_bin() -> &'static str {
    env!("CARGO_BIN_EXE_hawkeye-report")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hawkeye-report-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale temp dir");
    }
    dir
}

fn run_subset(dir: &Path, threads: usize) {
    let status = Command::new(report_bin())
        .args(["--only", SUBSET, "--threads", &threads.to_string()])
        .arg("--dir")
        .arg(dir)
        .status()
        .expect("spawn hawkeye-report");
    assert!(status.success(), "hawkeye-report failed with {status}");
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let dir1 = temp_dir("w1");
    let dir8 = temp_dir("w8");
    run_subset(&dir1, 1);
    run_subset(&dir8, 8);

    let report1 = std::fs::read(dir1.join("REPORT.md")).expect("read 1-worker REPORT.md");
    let report8 = std::fs::read(dir8.join("REPORT.md")).expect("read 8-worker REPORT.md");
    assert!(
        report1 == report8,
        "REPORT.md differs between --threads 1 and --threads 8"
    );

    // The summaries feeding the report must be identical too, or the
    // report-level match is a coincidence of rendering.
    for target in SUBSET.split(',') {
        let name = format!("{target}.json");
        let s1 = std::fs::read(dir1.join("data").join(&name)).expect("1-worker summary");
        let s8 = std::fs::read(dir8.join("data").join(&name)).expect("8-worker summary");
        assert!(s1 == s8, "{name} differs between worker counts");
    }

    let text = String::from_utf8(report1).expect("REPORT.md is UTF-8");
    for target in SUBSET.split(',') {
        assert!(
            text.contains(&format!("`{target}`")),
            "REPORT.md missing section for {target}"
        );
    }
    assert!(text.contains("Overall: **all sections within tolerance**"));

    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir8).ok();
}

#[test]
fn trend_gate_passes_clean_ledger_and_fails_injected_regression() {
    let dir = temp_dir("trend");
    // Two real runs append BENCH_1.json and BENCH_2.json with identical
    // deterministic counters (the simulator is deterministic) and
    // whatever wall-clock the host produced.
    run_subset(&dir, 2);
    run_subset(&dir, 2);

    let ok = Command::new(report_bin())
        .args(["--only", SUBSET, "--no-run", "--trend", "--check"])
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("spawn hawkeye-report --trend --check");
    assert!(
        ok.status.success(),
        "identical-counter ledger must pass the trend gate:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let trend = std::fs::read_to_string(dir.join("TREND.md")).expect("TREND.md written");
    assert!(trend.contains("Regression gate: **pass**"), "{trend}");

    // Inject a work regression into the latest entry: double one
    // target's quanta_total. The gate must fail on the deterministic
    // counter even though wall-clock columns are untouched.
    let entry_path = dir.join("ledger").join("BENCH_2.json");
    let text = std::fs::read_to_string(&entry_path).expect("read BENCH_2.json");
    let key = "\"quanta_total\":";
    let start = text.find(key).expect("entry has quanta_total") + key.len();
    let end = start + text[start..].find([',', '}']).expect("delimited");
    let old: u64 = text[start..end].trim().parse().expect("quanta_total is an integer");
    assert!(old > 0, "first subset target must record scheduler quanta");
    let injected = format!("{}{}{}", &text[..start], old * 2, &text[end..]);
    std::fs::write(&entry_path, injected).expect("write injected entry");

    let out = Command::new(report_bin())
        .args(["--only", SUBSET, "--no-run", "--trend", "--check"])
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("spawn hawkeye-report --trend --check after injection");
    assert_eq!(out.status.code(), Some(1), "trend gate must exit 1 on a counter regression");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gate=trend"), "names its gate:\n{stderr}");
    assert!(stderr.contains("quanta_total"), "names the counter:\n{stderr}");
    let trend = std::fs::read_to_string(dir.join("TREND.md")).expect("TREND.md rewritten");
    assert!(trend.contains("Regression gate: **FAIL**"), "{trend}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_fails_on_injected_out_of_tolerance_value() {
    let dir = temp_dir("inject");
    run_subset(&dir, 2);

    // Baseline: artifacts as written pass the gate.
    let ok = Command::new(report_bin())
        .args(["--only", SUBSET, "--no-run", "--check"])
        .arg("--dir")
        .arg(&dir)
        .status()
        .expect("spawn hawkeye-report --check");
    assert!(ok.success(), "pristine artifacts should pass --check");

    // Inject: corrupt the stored MMU overhead for the random scan in
    // table4's summary. This lands outside its band AND breaks the
    // exact-1 consistency gate (overhead must equal (C1+C2)/C3).
    let summary_path = dir.join("data").join("table4_pmu_methodology.json");
    let text = std::fs::read_to_string(&summary_path).expect("read table4 summary");
    let key = "\"mmu_overhead\":";
    let start = text.find(key).expect("summary has mmu_overhead field") + key.len();
    let end = start
        + text[start..]
            .find([',', '}'])
            .expect("mmu_overhead value is delimited");
    let injected = format!("{}9.875{}", &text[..start], &text[end..]);
    assert_ne!(injected, text, "injection must change the summary");
    std::fs::write(&summary_path, injected).expect("write injected summary");

    let out = Command::new(report_bin())
        .args(["--only", SUBSET, "--no-run", "--check"])
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("spawn hawkeye-report --check after injection");
    assert_eq!(
        out.status.code(),
        Some(1),
        "--check must exit 1 on an out-of-tolerance cell"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("gate=tolerance"),
        "failure must name its gate on stderr, got:\n{stderr}"
    );
    assert!(
        stderr.contains("table4_pmu_methodology"),
        "failure must name the offending target, got:\n{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
