//! The paper's expectations: one [`Section`] builder per row of
//! DESIGN.md §4's experiment index.
//!
//! Each builder derives *scale-free* comparison metrics (ratios,
//! percentages, counts) from the target's summary rows, pairs them with
//! the paper's published number where one exists at a comparable scale,
//! and attaches the tolerance band calibrated against the recorded
//! reference run (EXPERIMENTS.md). Bands gate `hawkeye-report --check`;
//! the paper delta column is informational (see the crate docs for why
//! the two are deliberately independent).

use hawkeye_analyze::json::Value;
use hawkeye_analyze::render::{bar, pct_line, sparkline};
use hawkeye_analyze::summary::SummaryDoc;
use hawkeye_analyze::{mmu_overhead_series, TraceDoc, SUBSYSTEMS};
use hawkeye_metrics::Reduce;
use hawkeye_metrics::TimeSeries;
use hawkeye_trace::TraceEvent;

use crate::{Band, Check, Figure, Section, TargetData};

/// Builds every section, in input (suite) order.
pub fn sections(data: &[TargetData]) -> Vec<Section> {
    data.iter().map(section).collect()
}

type Body = (Vec<Check>, Vec<Figure>, Vec<String>);

/// Builds the section for one loaded target.
pub fn section(d: &TargetData) -> Section {
    let (checks, figures, notes) = match d.name {
        "table1_fault_latency" => table1(d),
        "table2_tlb_sensitivity" => table2(d),
        "table3_npb_characteristics" => table3(d),
        "table4_pmu_methodology" => table4(d),
        "table7_bloat_recovery" => table7(d),
        "table8_fast_faults" => table8(d),
        "table9_pmu_vs_g" => table9(d),
        "fig1_redis_bloat" => fig1(d),
        "fig3_first_nonzero_byte" => fig3(d),
        "fig4_access_map" => fig4(d),
        "fig5_promotion_efficiency" => fig5(d),
        "fig6_promotion_timeline" => fig6(d),
        "fig7_table5_identical_workloads" => fig7(d),
        "fig8_heterogeneous" => fig8(d),
        "fig9_virtualized" => fig9(d),
        "fig10_prezero_interference" => fig10(d),
        "fig11_overcommit" => fig11(d),
        "multicore_contention" => multicore(d),
        "fleet_slo" => fleet_slo(d),
        "oltp_btree" => oltp_btree(d),
        "hpc_stencil" => hpc_stencil(d),
        "adversarial" => adversarial(d),
        _ => (
            Vec::new(),
            Vec::new(),
            vec!["no expectations registered".into()],
        ),
    };
    Section {
        target: d.name,
        paper_ref: d.paper_ref,
        title: d.summary.title.clone(),
        checks,
        figures,
        notes,
        warnings: drop_warnings(d),
    }
}

/// Trace ring-buffer overflow is a data-quality event, not a footnote:
/// any analysis derived from the journal (latency histograms, cycle
/// attribution) silently under-counts when the bounded ring overwrote
/// records before the drain. Surface every overflowing scenario loudly.
fn drop_warnings(d: &TargetData) -> Vec<String> {
    let Some(trace) = &d.trace else {
        return Vec::new();
    };
    trace
        .scenarios
        .iter()
        .filter(|s| s.dropped > 0)
        .map(|s| {
            format!(
                "trace ring buffer overflowed in scenario `{}`: {} event(s) dropped — \
                 journal-derived numbers under-count (raise the ring capacity or trim \
                 the event set)",
                s.name, s.dropped,
            )
        })
        .collect()
}

// ---- extraction helpers -------------------------------------------------

fn row<'a>(d: &'a SummaryDoc, key: &str, label: &str) -> Option<&'a Value> {
    d.rows
        .iter()
        .find(|r| r.get(key).and_then(Value::as_str) == Some(label))
}

fn num(d: &SummaryDoc, key: &str, label: &str, field: &str) -> Option<f64> {
    row(d, key, label)?.get(field)?.as_f64()
}

fn num2(
    d: &SummaryDoc,
    (k1, l1): (&str, &str),
    (k2, l2): (&str, &str),
    field: &str,
) -> Option<f64> {
    d.rows
        .iter()
        .find(|r| {
            r.get(k1).and_then(Value::as_str) == Some(l1)
                && r.get(k2).and_then(Value::as_str) == Some(l2)
        })?
        .get(field)?
        .as_f64()
}

fn ratio(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(a), Some(b)) if b != 0.0 => Some(a / b),
        _ => None,
    }
}

// ---- figure helpers -----------------------------------------------------

/// Renders the summary's cycle-attribution section as a per-scenario CPU
/// ledger (the Table 1/4 "where did every cycle go" reproduction).
fn cycle_ledger(caption: &str, d: &SummaryDoc) -> Option<Figure> {
    let mut body = String::new();
    for sc in &d.cycles {
        for m in &sc.machines {
            if m.unhalted == 0 {
                continue;
            }
            body.push_str(&format!(
                "{} (machine {}): unhalted={}\n",
                sc.scenario, m.machine, m.unhalted
            ));
            for (label, cycles) in SUBSYSTEMS.iter().zip(m.cpu.iter()) {
                pct_line(&mut body, label, *cycles, m.unhalted);
            }
        }
    }
    (!body.is_empty()).then(|| Figure {
        caption: caption.into(),
        body,
    })
}

/// Bins a time series into `bins` fixed-width windows via
/// [`TimeSeries::resample`] and lays the reduced values back out on the
/// bin grid (empty bins stay zero) — the sparkline x-axis is time.
fn binned(series: &TimeSeries, bins: usize, reduce: Reduce) -> Vec<f64> {
    let samples = series.samples();
    let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
        return Vec::new();
    };
    let span = (last.secs - first.secs).max(f64::MIN_POSITIVE);
    let width = span / bins as f64;
    let mut values = vec![0.0; bins];
    for s in series.resample(bins, reduce) {
        let idx = (((s.secs - first.secs) / width) as usize).min(bins - 1);
        values[idx] = s.value;
    }
    values
}

/// Per-scenario promotion-count timeline sparklines from the trace
/// journal (Fig 6's promotion timelines as event data).
fn promote_timeline(caption: &str, trace: &TraceDoc, bins: usize) -> Option<Figure> {
    let mut body = String::new();
    for s in &trace.scenarios {
        let mut series = TimeSeries::new("promotes");
        for r in &s.records {
            if let TraceEvent::Promote { .. } = r.event {
                series.push(r.at.as_secs(), 1.0);
            }
        }
        if series.is_empty() {
            body.push_str(&format!("{:<24} (no promotions)\n", s.name));
        } else {
            body.push_str(&format!(
                "{:<24} |{}| n={}\n",
                s.name,
                sparkline(&binned(&series, bins, Reduce::Sum)),
                series.len()
            ));
        }
    }
    (!body.is_empty()).then(|| Figure {
        caption: caption.into(),
        body,
    })
}

/// Per-scenario MMU-overhead-over-time sparklines reconstructed from
/// `quantum_end` PMU windows in the trace journal.
fn mmu_window_timeline(caption: &str, trace: &TraceDoc, bins: usize) -> Option<Figure> {
    let mut body = String::new();
    for s in &trace.scenarios {
        let series = mmu_overhead_series(s);
        if series.is_empty() {
            continue;
        }
        let values = binned(&series, bins, Reduce::Mean);
        let last = series.samples().last().map_or(0.0, |x| x.value);
        body.push_str(&format!(
            "{:<32} |{}| windows={} last={last:.2}%\n",
            s.name,
            sparkline(&values),
            series.len()
        ));
    }
    (!body.is_empty()).then(|| Figure {
        caption: caption.into(),
        body,
    })
}

/// A labelled horizontal bar chart, scaled to the largest value.
fn bars(caption: &str, items: &[(String, f64)]) -> Option<Figure> {
    let max = items.iter().map(|x| x.1).fold(0.0f64, f64::max);
    let mut body = String::new();
    for (label, v) in items {
        let frac = if max > 0.0 { v / max } else { 0.0 };
        body.push_str(&format!(
            "{:<32} {:>10} |{}\n",
            label,
            crate::fmt_num(*v),
            bar(frac)
        ));
    }
    (!body.is_empty()).then(|| Figure {
        caption: caption.into(),
        body,
    })
}

// ---- per-target expectations --------------------------------------------

fn table1(d: &TargetData) -> Body {
    let s = &d.summary;
    let faults = |label| num(s, "config", label, "faults");
    let lat = |label| num(s, "config", label, "avg_fault_us");
    let total = |label| num(s, "config", label, "total_secs");
    let checks = vec![
        Check::new(
            "fault reduction, Linux-2MB vs 4KB (×)",
            Some(509.0),
            ratio(faults("Linux-4KB"), faults("Linux-2MB")),
            Band::around(512.0, 0.02),
        ),
        Check::new(
            "per-fault latency ratio, 2MB vs 4KB (×)",
            Some(133.0),
            ratio(lat("Linux-2MB"), lat("Linux-4KB")),
            Band::around(131.0, 0.05),
        ),
        Check::new(
            "total-time speedup, 2MB vs 4KB (×)",
            Some(4.3),
            ratio(total("Linux-4KB"), total("Linux-2MB")),
            Band::around(3.3, 0.05),
        ),
        Check::new(
            "total-time speedup, HawkEye-G vs sync 2MB (×)",
            Some(5.7),
            ratio(total("Linux-2MB"), total("HawkEye-G")),
            Band::around(1.23, 0.1),
        ),
    ];
    let figures = cycle_ledger("Cycle ledger per config (CPU-side attribution):", s)
        .into_iter()
        .collect();
    let notes = vec![
        "HawkEye's advantage over sync-2MB is smaller than the paper's 5.7× \
         because back-to-back 160 MiB allocation bursts outrun the \
         rate-limited pre-zeroing daemon (EXPERIMENTS.md divergence 3); \
         Table 8's spin-up shows the paper's 13 µs-class behaviour."
            .into(),
    ];
    (checks, figures, notes)
}

fn table2(d: &TargetData) -> Body {
    let s = &d.summary;
    let mismatches = s
        .rows
        .iter()
        .filter(|r| r.get("suite").and_then(Value::as_str) != Some("TOTAL"))
        .filter(|r| {
            r.get("sensitive").and_then(Value::as_f64) != r.get("paper").and_then(Value::as_f64)
        })
        .count() as f64;
    let checks = vec![
        Check::new(
            "TLB-sensitive applications (count)",
            Some(15.0),
            num(s, "suite", "TOTAL", "sensitive"),
            Band::exact(15.0),
        ),
        Check::new(
            "applications surveyed (count)",
            Some(79.0),
            num(s, "suite", "TOTAL", "total"),
            Band::exact(79.0),
        ),
        Check::new(
            "per-suite misclassifications (count)",
            Some(0.0),
            Some(mismatches),
            Band::exact(0.0),
        ),
    ];
    (checks, Vec::new(), Vec::new())
}

fn table3(d: &TargetData) -> Body {
    let s = &d.summary;
    let checks = vec![
        Check::new(
            "cg.D MMU overhead at 4KB (fraction)",
            Some(0.39),
            num(s, "workload", "cg.D", "mmu_overhead_4k"),
            Band::around(0.22, 0.15),
        ),
        Check::new(
            "cg.D native speedup from 2MB (×)",
            Some(1.62),
            num(s, "workload", "cg.D", "native_speedup"),
            Band::around(1.9, 0.1),
        ),
        Check::new(
            "cg.D virtualized speedup from 2MB (×)",
            Some(2.7),
            num(s, "workload", "cg.D", "virtual_speedup"),
            Band::around(5.2, 0.15),
        ),
        Check::new(
            "mg.D MMU overhead at 4KB (fraction)",
            Some(0.01),
            num(s, "workload", "mg.D", "mmu_overhead_4k"),
            Band::new(0.0, 0.03),
        ),
    ];
    let notes = vec![
        "Virtualized factors run larger than the paper's because the \
         nested-walk surcharge weighs more against scaled compute time \
         (EXPERIMENTS.md divergence 6)."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn table4(d: &TargetData) -> Body {
    let s = &d.summary;
    let consistency = |label: &str| {
        let stored = num(s, "workload", label, "mmu_overhead")?;
        let c12 = num(s, "workload", label, "load_walk_cycles")?
            + num(s, "workload", label, "store_walk_cycles")?;
        let c3 = num(s, "workload", label, "unhalted_cycles")?;
        if c3 == 0.0 {
            return None;
        }
        Some(stored / (c12 / c3))
    };
    let checks = vec![
        Check::new(
            "random scan: overhead ÷ (C1+C2)/C3 (must be 1)",
            Some(1.0),
            consistency("random-192MB"),
            Band::exact(1.0),
        ),
        Check::new(
            "sequential scan: overhead ÷ (C1+C2)/C3 (must be 1)",
            Some(1.0),
            consistency("sequential-192MB"),
            Band::exact(1.0),
        ),
        Check::new(
            "random scan MMU overhead (fraction)",
            None,
            num(s, "workload", "random-192MB", "mmu_overhead"),
            Band::around(0.222, 0.1),
        ),
        Check::new(
            "sequential scan MMU overhead (fraction)",
            None,
            num(s, "workload", "sequential-192MB", "mmu_overhead"),
            Band::new(0.0, 0.03),
        ),
    ];
    let figures = cycle_ledger("Cycle ledger per scan pattern:", s)
        .into_iter()
        .collect();
    let notes = vec![
        "The paper publishes the formula, not absolute numbers, for this \
         table: the exact-1 consistency gates pin `overhead == (C1+C2)/C3` \
         through the full write→parse round trip."
            .into(),
    ];
    (checks, figures, notes)
}

fn table7(d: &TargetData) -> Body {
    let s = &d.summary;
    let mem = |k, t| num2(s, ("kernel", k), ("self_tuning", t), "memory_mib");
    let kops = |k, t| num2(s, ("kernel", k), ("self_tuning", t), "throughput_kops");
    let checks = vec![
        Check::new(
            "bloat, Linux-2MB vs 4KB memory (×)",
            Some(2.05),
            ratio(mem("Linux-2MB", "No"), mem("Linux-4KB", "No")),
            Band::around(2.46, 0.1),
        ),
        Check::new(
            "HawkEye under pressure vs 4KB memory (×)",
            Some(1.0),
            ratio(mem("HawkEye-G", "Yes (pressure)"), mem("Linux-4KB", "No")),
            Band::around(1.1, 0.1),
        ),
        Check::new(
            "HawkEye no-pressure throughput vs 2MB (×)",
            Some(1.0),
            ratio(
                kops("HawkEye-G", "Yes (no pressure)"),
                kops("Linux-2MB", "No"),
            ),
            Band::around(1.0, 0.05),
        ),
        Check::new(
            "HawkEye throughput retained under pressure (×)",
            Some(0.93),
            ratio(
                kops("HawkEye-G", "Yes (pressure)"),
                kops("HawkEye-G", "Yes (no pressure)"),
            ),
            Band::around(0.955, 0.05),
        ),
    ];
    (checks, Vec::new(), Vec::new())
}

fn table8(d: &TargetData) -> Body {
    let s = &d.summary;
    const KVM: &str = "KVM spin-up (s)";
    let cell = |w, p| num(s, "workload", w, p);
    let policies = [
        "Linux-4KB",
        "Linux-2MB",
        "Ingens-90%",
        "HawkEye-4KB",
        "HawkEye-G",
    ];
    let ingens_worst = {
        let times: Vec<Option<f64>> = policies.iter().map(|p| cell(KVM, p)).collect();
        let ingens = cell(KVM, "Ingens-90%");
        match (ingens, times.iter().copied().collect::<Option<Vec<f64>>>()) {
            (Some(i), Some(all)) => Some(if all.iter().all(|t| i >= *t) {
                1.0
            } else {
                0.0
            }),
            _ => None,
        }
    };
    let checks = vec![
        Check::new(
            "KVM spin-up speedup, HawkEye-G vs sync 2MB (×)",
            Some(13.8),
            ratio(cell(KVM, "Linux-2MB"), cell(KVM, "HawkEye-G")),
            Band::around(35.0, 0.2),
        ),
        Check::new(
            "Redis 2MB-values throughput gain, HawkEye-G vs 4KB (×)",
            Some(2.37),
            ratio(
                cell("Redis 2MB-values (Kops/s)", "HawkEye-G"),
                cell("Redis 2MB-values (Kops/s)", "Linux-4KB"),
            ),
            Band::around(15.3, 0.15),
        ),
        Check::new(
            "Ingens slowest on KVM spin-up (1 = yes)",
            Some(1.0),
            ingens_worst,
            Band::exact(1.0),
        ),
    ];
    let notes = vec!["Absolute spin-up times are ~100× smaller than the paper's \
         (scaled footprints); the sync-2MB-vs-HawkEye gap is larger \
         because an idle pre-zeroed pool serves the whole burst \
         (EXPERIMENTS.md Table 8 row)."
        .into()];
    (checks, Vec::new(), notes)
}

fn table9(d: &TargetData) -> Body {
    let s = &d.summary;
    let field = |w, f| num(s, "workload", w, f);
    let checks = vec![
        Check::new(
            "random scan speedup under PMU (×)",
            Some(1.77),
            field("random(192MB)", "pmu_speedup"),
            Band::around(1.19, 0.1),
        ),
        Check::new(
            "random scan speedup under G (×)",
            Some(1.41),
            field("random(192MB)", "g_speedup"),
            Band::around(1.15, 0.1),
        ),
        Check::new(
            "cg.D speedup under PMU (×)",
            Some(1.62),
            field("cg.D(128MB)", "pmu_speedup"),
            Band::around(1.42, 0.1),
        ),
        Check::new(
            "sequential scan speedup under PMU (×, ≈1 = untouched)",
            Some(1.0),
            field("sequential(192MB)", "pmu_speedup"),
            Band::around(1.02, 0.05),
        ),
    ];
    let figures = d
        .trace
        .as_ref()
        .and_then(|t| {
            mmu_window_timeline(
                "MMU overhead over time from `quantum_end` PMU windows \
                 (mean per bin):",
                t,
                48,
            )
        })
        .into_iter()
        .collect();
    let notes = vec![
        "PMU ≥ G holds but the gap is smaller than the paper's: our \
         access-coverage sampling is windowed, which already discounts \
         prefetch-friendly sequential scans (EXPERIMENTS.md divergence 5)."
            .into(),
    ];
    (checks, figures, notes)
}

fn fig1(d: &TargetData) -> Body {
    let s = &d.summary;
    let checks = vec![
        Check::new(
            "HawkEye-G bloat recovered (MiB)",
            None,
            num(s, "kernel", "HawkEye-G", "bloat_recovered_mib"),
            Band::around(174.0, 0.1),
        ),
        Check::new(
            "HawkEye-G final RSS (MiB)",
            None,
            num(s, "kernel", "HawkEye-G", "final_rss_mib"),
            Band::around(145.0, 0.1),
        ),
        Check::new(
            "Ingens peak vs HawkEye-G peak RSS (×, <1 = less bloat)",
            None,
            ratio(
                num(s, "kernel", "Ingens", "peak_rss_mib"),
                num(s, "kernel", "HawkEye-G", "peak_rss_mib"),
            ),
            Band::new(0.3, 1.1),
        ),
    ];
    let notes = vec![
        "Paper shape: Linux and Ingens OOM in phase P3 while HawkEye \
         recovers zero-page bloat and completes; our Ingens is slightly \
         more conservative than the paper's and squeaks through \
         (EXPERIMENTS.md Fig 1 row)."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn fig3(d: &TargetData) -> Body {
    let s = &d.summary;
    let checks = vec![Check::new(
        "mean first non-zero byte, all families (B)",
        Some(9.11),
        num(s, "family", "AVERAGE", "mean_first_nonzero_byte"),
        Band::around(7.4, 0.1),
    )];
    (checks, Vec::new(), Vec::new())
}

fn fig4(d: &TargetData) -> Body {
    let s = &d.summary;
    let matches = s.rows.first().map(|r| {
        let ours = r.get("promotion_order").and_then(Value::as_str);
        let paper = r.get("paper_order").and_then(Value::as_str);
        if ours.is_some() && ours == paper {
            1.0
        } else {
            0.0
        }
    });
    let checks = vec![Check::new(
        "promotion order matches the paper's A1..A3 sequence (1 = yes)",
        Some(1.0),
        matches,
        Band::exact(1.0),
    )];
    (checks, Vec::new(), Vec::new())
}

fn fig5(d: &TargetData) -> Body {
    let s = &d.summary;
    let speed = |w, p| num2(s, ("workload", w), ("policy", p), "speedup_vs_4k");
    let saved = |w, p| num2(s, ("workload", w), ("policy", p), "saved_ms_per_promotion");
    let checks = vec![
        Check::new(
            "XSBench speedup, HawkEye-PMU vs never-promote (×)",
            Some(1.22),
            speed("xsbench", "HawkEye-PMU"),
            Band::around(2.2, 0.1),
        ),
        Check::new(
            "XSBench time saved per promotion, PMU vs Linux (×)",
            Some(44.0),
            ratio(
                saved("xsbench", "HawkEye-PMU"),
                saved("xsbench", "Linux-2MB"),
            ),
            Band::around(4.7, 0.15),
        ),
        Check::new(
            "XSBench time saved per promotion, G vs Linux (×)",
            Some(6.7),
            ratio(saved("xsbench", "HawkEye-G"), saved("xsbench", "Linux-2MB")),
            Band::around(1.88, 0.15),
        ),
    ];
    let policies = ["Linux-2MB", "Ingens", "HawkEye-PMU", "HawkEye-G"];
    let items: Vec<(String, f64)> = policies
        .iter()
        .filter_map(|p| speed("xsbench", p).map(|v| (format!("xsbench {p}"), v)))
        .collect();
    let figures = bars(
        "XSBench speedup vs never-promote, by promotion policy:",
        &items,
    )
    .into_iter()
    .collect();
    let notes = vec![
        "Speedups exceed the paper's 22 % because fragmentation costs \
         relatively more at our compressed scale (EXPERIMENTS.md \
         divergence 2); the policy ordering PMU > G > Linux > Ingens is \
         the reproduced claim."
            .into(),
    ];
    (checks, figures, notes)
}

fn fig6(d: &TargetData) -> Body {
    let s = &d.summary;
    let over = |w, p| num2(s, ("workload", w), ("policy", p), "final_mmu_overhead");
    let promos = |w, p| num2(s, ("workload", w), ("policy", p), "promotions");
    let checks = vec![
        Check::new(
            "xsbench final MMU overhead, HawkEye-G (fraction)",
            None,
            over("xsbench", "HawkEye-G"),
            Band::new(0.0, 0.1),
        ),
        Check::new(
            "xsbench final overhead, Linux-2MB vs HawkEye-G (×)",
            None,
            ratio(over("xsbench", "Linux-2MB"), over("xsbench", "HawkEye-G")),
            Band::new(1.0, 1e6),
        ),
        Check::new(
            "xsbench promotions under HawkEye-G (count)",
            None,
            promos("xsbench", "HawkEye-G"),
            Band::new(1.0, 1e6),
        ),
    ];
    let figures = d
        .trace
        .as_ref()
        .and_then(|t| {
            promote_timeline(
                "Promotion events over time (count per bin) — HawkEye \
                 front-loads, Linux/Ingens trickle:",
                t,
                48,
            )
        })
        .into_iter()
        .collect();
    (checks, figures, Vec::new())
}

fn fig7(d: &TargetData) -> Body {
    let s = &d.summary;
    let avg = |p| num2(s, ("workload", "graph500"), ("policy", p), "avg_speedup");
    let checks = vec![
        Check::new(
            "graph500 ×4 avg speedup, Linux-2MB (×)",
            Some(1.02),
            avg("Linux-2MB"),
            Band::around(1.20, 0.1),
        ),
        Check::new(
            "graph500 ×4 avg speedup, Ingens (×)",
            Some(1.01),
            avg("Ingens"),
            Band::around(1.10, 0.1),
        ),
        Check::new(
            "graph500 ×4 avg speedup, HawkEye-PMU (×)",
            Some(1.14),
            avg("HawkEye-PMU"),
            Band::around(1.53, 0.1),
        ),
        Check::new(
            "graph500 ×4 avg speedup, HawkEye-G (×)",
            Some(1.13),
            avg("HawkEye-G"),
            Band::around(1.52, 0.1),
        ),
    ];
    let notes = vec![
        "Factors run larger than the paper's (divergence 2) but the \
         ordering HawkEye > Linux > Ingens and HawkEye's fairness across \
         instances reproduce."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn fig8(d: &TargetData) -> Body {
    let s = &d.summary;
    let before = |w, p| num2(s, ("workload", w), ("policy", p), "speedup_before");
    let after = |w, p| num2(s, ("workload", w), ("policy", p), "speedup_after");
    let checks = vec![
        Check::new(
            "cg + Redis speedup, HawkEye-G, app first (×)",
            None,
            before("cg", "HawkEye-G"),
            Band::around(1.6, 0.15),
        ),
        Check::new(
            "cg + Redis speedup, HawkEye-G, Redis first (×)",
            None,
            after("cg", "HawkEye-G"),
            Band::around(1.6, 0.15),
        ),
        Check::new(
            "cg Linux order sensitivity, before vs after (×)",
            None,
            ratio(before("cg", "Linux-2MB"), after("cg", "Linux-2MB")),
            Band::around(1.09, 0.1),
        ),
    ];
    let notes = vec![
        "Paper claim: HawkEye helps the TLB-sensitive app 15–60 % in \
         *both* launch orders while Linux only helps whoever faults \
         first and Ingens favors Redis."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn fig9(d: &TargetData) -> Body {
    let s = &d.summary;
    let checks = vec![
        Check::new(
            "graph500 speedup, HawkEye in guest (×)",
            None,
            num(s, "workload", "graph500", "speedup_guest"),
            Band::around(1.34, 0.05),
        ),
        Check::new(
            "graph500 speedup, HawkEye in both layers (×)",
            None,
            num(s, "workload", "graph500", "speedup_both"),
            Band::around(1.35, 0.05),
        ),
        Check::new(
            "graph500 speedup, HawkEye in host only (×)",
            None,
            num(s, "workload", "graph500", "speedup_host"),
            Band::around(1.0, 0.05),
        ),
    ];
    let notes = vec![
        "Host-only is flat (paper saw gains) because our baseline host \
         already backs VM memory with huge pages via proactive \
         compaction (EXPERIMENTS.md divergence 4)."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn fig10(d: &TargetData) -> Body {
    let s = &d.summary;
    let field = |w, f| num(s, "workload", w, f);
    let checks = vec![
        Check::new(
            "omnetpp slowdown, caching stores at 1 GB/s (fraction)",
            Some(0.27),
            field("omnetpp", "slowdown_temporal"),
            Band::around(0.271, 0.02),
        ),
        Check::new(
            "omnetpp slowdown, non-temporal at 1 GB/s (fraction)",
            Some(0.06),
            field("omnetpp", "slowdown_non_temporal"),
            Band::around(0.061, 0.02),
        ),
        Check::new(
            "omnetpp slowdown at production rate limit (fraction)",
            None,
            field("omnetpp", "slowdown_non_temporal_rate_limited"),
            Band::new(0.0, 0.01),
        ),
    ];
    let items: Vec<(String, f64)> = s
        .rows
        .iter()
        .filter_map(|r| {
            let w = r.get("workload").and_then(Value::as_str)?;
            let t = r.get("slowdown_temporal").and_then(Value::as_f64)?;
            Some((w.to_string(), t * 100.0))
        })
        .collect();
    let figures = bars(
        "Worst-case slowdown from the pre-zeroing thread with caching \
         stores at 1 GB/s (%):",
        &items,
    )
    .into_iter()
    .collect();
    (checks, figures, Vec::new())
}

fn fig11(d: &TargetData) -> Body {
    let s = &d.summary;
    let redis = |cfg| num(s, "configuration", cfg, "Redis");
    let checks = vec![
        Check::new(
            "Redis speedup, balloon vs no-balloon (×)",
            Some(2.3),
            redis("balloon, Linux guests"),
            Band::around(6.0, 0.5),
        ),
        Check::new(
            "Redis speedup, HawkEye+KSM vs balloon (×, ≈1 = parity)",
            Some(1.0),
            ratio(
                redis("HawkEye guests + host KSM"),
                redis("balloon, Linux guests"),
            ),
            Band::around(1.0, 0.35),
        ),
        Check::new(
            "pages recovered by KSM dedup (count)",
            None,
            num(
                s,
                "configuration",
                "HawkEye guests + host KSM",
                "pages_recovered",
            ),
            Band::new(1.0, 1e9),
        ),
    ];
    let notes = vec![
        "The paper's claim is parity: HawkEye+KSM matches ballooning \
         without guest cooperation. Absolute factors are larger at our \
         scale because the no-balloon baseline swap-thrashes harder \
         (EXPERIMENTS.md divergence 6)."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn multicore(d: &TargetData) -> Body {
    let s = &d.summary;
    // Rows are keyed (policy, cores); `cores` is numeric in the JSON, so
    // the string-matching `num2` helper can't address them.
    let mc = |policy: &str, cores: f64, field: &str| -> Option<f64> {
        s.rows
            .iter()
            .find(|r| {
                r.get("policy").and_then(Value::as_str) == Some(policy)
                    && r.get("cores").and_then(Value::as_f64) == Some(cores)
            })?
            .get(field)?
            .as_f64()
    };
    let checks = vec![
        // The determinism contract: simulated cores add contention
        // accounting, never work. These ratios are exact by construction
        // (the differential test enforces them bit-for-bit); the band is
        // a float-identity gate, not a tolerance.
        Check::new(
            "faults pinned, HawkEye-G 4-core ÷ serial (×)",
            Some(1.0),
            ratio(
                mc("HawkEye-G", 4.0, "faults"),
                mc("HawkEye-G", 1.0, "faults"),
            ),
            Band::around(1.0, 1e-9),
        ),
        Check::new(
            "exec time pinned, Linux-2MB 8-core ÷ serial (×)",
            Some(1.0),
            ratio(
                mc("Linux-2MB", 8.0, "exec_secs"),
                mc("Linux-2MB", 1.0, "exec_secs"),
            ),
            Band::around(1.0, 1e-9),
        ),
        Check::new(
            "lock acquisitions at 4 cores, HawkEye-G (count)",
            None,
            mc("HawkEye-G", 4.0, "lock_acquisitions"),
            Band::new(1.0, 1e9),
        ),
        Check::new(
            "CAS retries at 4 cores, Linux-2MB (count)",
            None,
            mc("Linux-2MB", 4.0, "cas_retries"),
            Band::new(1.0, 1e9),
        ),
        Check::new(
            "serial baseline reports zero contention (count)",
            Some(0.0),
            mc("HawkEye-G", 1.0, "lock_acquisitions"),
            Band::new(0.0, 0.0),
        ),
    ];
    let notes = vec![
        "The paper runs daemons on dedicated cores of a real multi-core \
         machine; this model replays the recorded per-core op plans on a \
         deterministic virtual clock, so the contention columns are \
         bit-reproducible while aggregate work stays pinned to the \
         serial engine."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn fleet_slo(d: &TargetData) -> Body {
    let s = &d.summary;
    const HG: &str = "HawkEye-G+throttle";
    const L2: &str = "Linux-2MB+noop";
    let f = |label: &str, field: &str| num(s, "cohort", label, field);
    let checks = vec![
        // Fleet SLOs per cohort. The orchestrator is deterministic, so
        // these bands gate against drift in the fleet model itself, not
        // against run-to-run noise.
        Check::new(
            "p99 fault latency, HawkEye-G+throttle (µs)",
            None,
            f(HG, "p99_fault_us"),
            Band::around(465.0, 0.15),
        ),
        Check::new(
            "p99 fault latency, Linux-2MB+noop (µs)",
            None,
            f(L2, "p99_fault_us"),
            Band::around(465.0, 0.15),
        ),
        Check::new(
            "aggregate MMU overhead, HawkEye-G+throttle (frac)",
            None,
            f(HG, "mmu_overhead"),
            Band::new(0.0, 0.01),
        ),
        Check::new(
            "RSS headroom, HawkEye-G+throttle (frac)",
            None,
            f(HG, "rss_headroom"),
            Band::around(0.74, 0.12),
        ),
        Check::new(
            "RSS headroom, Linux-2MB+noop (frac)",
            None,
            f(L2, "rss_headroom"),
            Band::around(0.74, 0.12),
        ),
        // The hook contract: the throttling cohort steers, the noop
        // cohort never does. Exact gates — a noop cohort that steers
        // means the A/B split leaked.
        Check::new(
            "steer decisions, HawkEye-G+throttle (count)",
            None,
            f(HG, "steer_decisions"),
            Band::new(1.0, 1e12),
        ),
        Check::new(
            "steer decisions, Linux-2MB+noop (count)",
            Some(0.0),
            f(L2, "steer_decisions"),
            Band::new(0.0, 0.0),
        ),
        // Overcommit storms must actually exercise the fleet paths:
        // ballooning and migrations both fire in every cohort.
        Check::new(
            "balloon operations, HawkEye-G+throttle (count)",
            None,
            f(HG, "balloons"),
            Band::new(1.0, 1e12),
        ),
        Check::new(
            "tenant migrations out, HawkEye-G+throttle (count)",
            None,
            f(HG, "migrations_out"),
            Band::new(1.0, 1e12),
        ),
    ];
    let notes = vec!["Cohorts run the same diurnal traffic, tenant churn, and \
         overcommit storms on disjoint deterministic RNG streams; the \
         only difference inside a cohort is the kernel policy and the \
         userspace FleetHook steering it at quantum boundaries (DESIGN.md \
         §15). Per-cohort tables land in FLEET.md."
        .into()];
    (checks, Vec::new(), notes)
}

fn oltp_btree(d: &TargetData) -> Body {
    let s = &d.summary;
    let f = |label: &str, field: &str| num(s, "policy", label, field);
    let checks = vec![
        // Not a paper figure: DESIGN.md §17's first generalization
        // family, calibrated against the recorded reference run. The
        // qualitative claim (btree-techniques' TPC-C measurements) is
        // that pointer-chasing B-trees are strongly TLB-bound, so huge
        // pages buy a large fraction of runtime back.
        Check::new(
            "MMU overhead at 4KB (frac)",
            None,
            f("Linux-4KB", "mmu_overhead"),
            Band::around(0.064, 0.15),
        ),
        Check::new(
            "speedup vs 4KB, Linux-2MB (×)",
            None,
            f("Linux-2MB", "speedup_vs_4k"),
            Band::around(1.27, 0.10),
        ),
        Check::new(
            "speedup vs 4KB, HawkEye-G (×)",
            None,
            f("HawkEye-G", "speedup_vs_4k"),
            Band::around(1.54, 0.10),
        ),
        // The machine is pre-fragmented, so HawkEye's edge over static
        // huge pages is proactive compaction + promotion: it must beat
        // fault-time-only Linux-2MB here, not just tie it.
        Check::new(
            "HawkEye-G ÷ Linux-2MB speedup (×)",
            None,
            ratio(
                f("HawkEye-G", "speedup_vs_4k"),
                f("Linux-2MB", "speedup_vs_4k"),
            ),
            Band::new(1.05, 2.0),
        ),
        Check::new(
            "HawkEye-G promotions (count)",
            None,
            f("HawkEye-G", "promotions"),
            Band::new(1.0, 1e6),
        ),
        Check::new(
            "fault reduction, HawkEye-G ÷ Linux-4KB (×)",
            None,
            ratio(f("HawkEye-G", "faults"), f("Linux-4KB", "faults")),
            Band::new(0.1, 0.6),
        ),
    ];
    let notes = vec![
        "Root→leaf chases give consecutive accesses no spatial locality, \
         so four-level walks dominate at 4KB (DESIGN.md §17); the arena \
         is bulk-loaded into a fragmented machine, so only promotion — \
         never fault-time allocation — can recover the walk overhead."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn hpc_stencil(d: &TargetData) -> Body {
    let s = &d.summary;
    let f = |label: &str, field: &str| num(s, "policy", label, field);
    let checks = vec![
        // Calibrated against arXiv 2309.04652 (FLASH Sedov on A64FX):
        // huge pages collapse dTLB misses by orders of magnitude yet buy
        // only single-digit-% runtime, because unit-stride sweeps
        // amortize one walk across a whole page. The two gates below pin
        // exactly that decoupling.
        Check::new(
            "walk-cycle reduction vs 4KB, Linux-2MB (×)",
            Some(100.0),
            f("Linux-2MB", "walk_reduction_vs_4k"),
            Band::new(100.0, 1e9),
        ),
        Check::new(
            "runtime speedup vs 4KB, Linux-2MB (×)",
            Some(1.05),
            f("Linux-2MB", "speedup_vs_4k"),
            Band::new(1.01, 1.099),
        ),
        Check::new(
            "runtime speedup vs 4KB, HawkEye-G (×)",
            Some(1.05),
            f("HawkEye-G", "speedup_vs_4k"),
            Band::new(1.01, 1.099),
        ),
        Check::new(
            "MMU overhead at 4KB (frac)",
            None,
            f("Linux-4KB", "mmu_overhead"),
            Band::around(0.034, 0.15),
        ),
        // On a clean machine fault-time huge pages and promotion
        // converge: HawkEye must match static huge pages exactly.
        Check::new(
            "HawkEye-G exec ÷ Linux-2MB exec (×)",
            Some(1.0),
            ratio(f("HawkEye-G", "exec_secs"), f("Linux-2MB", "exec_secs")),
            Band::around(1.0, 0.02),
        ),
        Check::new(
            "fault reduction, Linux-2MB ÷ Linux-4KB (×)",
            None,
            ratio(f("Linux-2MB", "faults"), f("Linux-4KB", "faults")),
            Band::new(0.0, 0.1),
        ),
    ];
    let notes = vec![
        "The published study's headline is the big-ratio/small-speedup \
         decoupling, not absolute times: dTLB misses collapse by orders \
         of magnitude while runtime improves single-digit-%. Bands gate \
         the same two shapes at our scale (paper column: 2309.04652's \
         qualitative deltas, not same-scale numbers)."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

fn adversarial(d: &TargetData) -> Body {
    let s = &d.summary;
    // Rows are keyed (attack, intensity, policy); intensity is numeric,
    // so the string-matching helpers can't address them.
    let cell = |attack: &str, intensity: f64, policy: &str, field: &str| -> Option<f64> {
        s.rows
            .iter()
            .find(|r| {
                r.get("attack").and_then(Value::as_str) == Some(attack)
                    && r.get("intensity").and_then(Value::as_f64) == Some(intensity)
                    && r.get("policy").and_then(Value::as_str) == Some(policy)
            })?
            .get(field)?
            .as_f64()
    };
    // The worst (maximum) victim ratio a policy sees under one attack
    // across the whole sweep; `None` when no rows matched at all.
    let worst = |attack: &str, policy: &str| -> Option<f64> {
        s.rows
            .iter()
            .filter(|r| {
                r.get("attack").and_then(Value::as_str) == Some(attack)
                    && r.get("policy").and_then(Value::as_str) == Some(policy)
            })
            .filter_map(|r| r.get("vs_linux2m")?.as_f64())
            .reduce(f64::max)
    };
    let checks = vec![
        // The atlas's headline (acceptance gate): there is at least one
        // swept intensity where HawkEye-G loses to Linux-2MB — the bloat
        // attacker aims recovery at the victim's zero tails and wins.
        Check::new(
            "knee exists: worst HawkEye-G ratio under bloat (×)",
            None,
            worst("bloat", "HawkEye-G"),
            Band::new(1.001, 10.0),
        ),
        Check::new(
            "HawkEye-G ratio at bloat i=0.75 (×)",
            None,
            cell("bloat", 0.75, "HawkEye-G", "vs_linux2m"),
            Band::around(1.066, 0.10),
        ),
        Check::new(
            "recovery churn at the knee: HawkEye-G promotions (count)",
            None,
            cell("bloat", 0.75, "HawkEye-G", "promotions"),
            Band::new(1.0, 1e6),
        ),
        // Robustness half of the atlas: proactive compaction defends the
        // frag attack — HawkEye-G never loses to Linux-2MB there.
        Check::new(
            "frag robustness: worst HawkEye-G ratio under frag (×)",
            None,
            worst("frag", "HawkEye-G"),
            Band::new(0.5, 1.0),
        ),
        // The overshoot wrinkle: at full intensity the bloat attacker
        // OOM-kills itself under every huge-page policy, so the envelope
        // is non-monotone (DESIGN.md §17).
        Check::new(
            "bloat i=1.00 attacker OOM under Linux-2MB (flag)",
            None,
            cell("bloat", 1.0, "Linux-2MB", "attacker_oom"),
            Band::exact(1.0),
        ),
        Check::new(
            "victim survives every cell under HawkEye-G (ooms)",
            Some(0.0),
            s.rows
                .iter()
                .filter(|r| r.get("policy").and_then(Value::as_str) == Some("HawkEye-G"))
                .filter_map(|r| r.get("victim_oom")?.as_f64())
                .reduce(|a, b| a + b),
            Band::exact(0.0),
        ),
    ];
    let notes = vec![
        "Full intensity × policy ratio tables, the per-policy knee table, \
         and knee-cell latency percentiles land in the generated \
         ENVELOPES.md (DESIGN.md §17). The bloat knee is mechanistic, \
         not tuned: bloat recovery reclaims zero base pages from the \
         lowest-overhead-score process first, and a dense fully-written \
         attacker leaves the victim's in-huge-page free tails as the \
         only reclaimable memory on the machine."
            .into(),
    ];
    (checks, Vec::new(), notes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_analyze::summary::parse_summary;

    fn data(name: &'static str, json: &str) -> TargetData {
        TargetData {
            name,
            paper_ref: "Test",
            summary: parse_summary(json).expect("summary"),
            trace: None,
        }
    }

    #[test]
    fn every_suite_target_has_expectations() {
        for t in hawkeye_bench::suite::TARGETS {
            let d = data(t.name, r#"{"target":"t","title":"x","rows":[]}"#);
            let s = section(&d);
            assert!(!s.checks.is_empty(), "{} has no checks registered", t.name);
        }
    }

    #[test]
    fn missing_rows_surface_as_failing_checks() {
        let d = data(
            "table1_fault_latency",
            r#"{"target":"t","title":"x","rows":[]}"#,
        );
        let s = section(&d);
        assert!(s.checks.iter().all(|c| c.measured.is_none()));
        assert!(
            s.checks.iter().all(|c| !c.passes(0.0)),
            "missing metrics must fail"
        );
    }

    #[test]
    fn table2_counts_misclassifications() {
        let json = r#"{"target":"t","title":"x","rows":[
            {"suite":"SPEC","total":30,"sensitive":4,"paper":4},
            {"suite":"PARSEC","total":10,"sensitive":1,"paper":2},
            {"suite":"TOTAL","total":79,"sensitive":15,"paper":15}
        ]}"#;
        let s = section(&data("table2_tlb_sensitivity", json));
        let mis = s
            .checks
            .iter()
            .find(|c| c.metric.contains("misclass"))
            .expect("check");
        assert_eq!(mis.measured, Some(1.0));
        assert!(!mis.passes(0.0));
    }

    #[test]
    fn fig4_compares_order_strings() {
        let json = r#"{"target":"t","title":"x","rows":[
            {"promotion_order":"A1,B1","paper_order":"A1,B1","matches_paper":true}
        ]}"#;
        let s = section(&data("fig4_access_map", json));
        assert_eq!(s.checks[0].measured, Some(1.0));
        assert!(s.checks[0].passes(0.0));
    }
}
