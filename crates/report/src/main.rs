//! CLI for [`hawkeye_report`]: run the suite, build REPORT.md, and
//! optionally gate on the tolerance bands.
//!
//! ```text
//! hawkeye-report [--check] [--no-run] [--threads N] [--slack F]
//!                [--only a,b,...] [--dir DIR]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use hawkeye_report::paper;

fn usage() -> &'static str {
    "usage: hawkeye-report [--check] [--no-run] [--threads N] [--slack F]\n\
     \x20                     [--only t1,t2,...] [--dir DIR] [--trend]\n\
     \x20                     [--ledger DIR] [--counts]\n\
     \n\
     Runs the full paper-experiment suite in-process (tracing forced on),\n\
     writes per-target summaries + trace journals under DIR, and renders\n\
     DIR/REPORT.md: every table/figure of DESIGN.md \u{a7}4 side-by-side\n\
     with the paper's number, a percent delta, and a tolerance band.\n\
     \n\
     --check       exit nonzero if any check lands outside its band\n\
     --no-run      skip the suite run; rebuild REPORT.md from artifacts\n\
     \x20             already in DIR\n\
     --threads N   worker threads for the scenario engine (default:\n\
     \x20             HAWKEYE_BENCH_THREADS or all cores); REPORT.md is\n\
     \x20             byte-identical at any value\n\
     --slack F     widen every band's half-width by F (e.g. 0.5 = 1.5x);\n\
     \x20             exact gates stay exact\n\
     --only LIST   comma-separated subset of suite targets\n\
     --dir DIR     artifact directory (default: <target>/report)\n\
     --trend       render DIR/TREND.md from the perf-trajectory ledger;\n\
     \x20             with --check, fail if a deterministic work counter\n\
     \x20             regressed vs the previous run (wall-clock is never\n\
     \x20             gated)\n\
     --ledger DIR  perf-trajectory ledger directory holding BENCH_<n>.json\n\
     \x20             entries (default: <dir>/ledger); every suite run\n\
     \x20             appends one entry\n\
     --counts      print `targets=N checks=M` (registry size and total\n\
     \x20             check rows) and exit — the docs-drift CI gate\n\
     \x20             compares these against README/EXPERIMENTS.md\n\
     \n\
     When the selection includes fleet_slo, DIR/FLEET.md (per-cohort\n\
     fleet SLO tables) is written next to REPORT.md; when it includes\n\
     adversarial, DIR/ENVELOPES.md (the failure-envelope atlas) is\n\
     written the same way. When the run was\n\
     telemetry-enabled (HAWKEYE_OBS=1) DIR/ALERTS.md (SLO burn-rate\n\
     transitions + anomaly annotations) is rendered from the\n\
     fleet_slo.obs.json artifact.\n\
     \n\
     exit codes:\n\
     \x20  0   report written; all checks in tolerance (or no --check)\n\
     \x20  1   --check: at least one check out of tolerance, or --trend\n\
     \x20      --check: a deterministic counter regressed\n\
     \x20  2   usage error\n\
     \x20  3   pipeline error (missing or malformed artifact)\n\
     \x20  4   summary error: expected metrics missing from a summary\n\
     \x20      (renamed/absent keys; REPORT.md is still written)\n"
}

fn main() -> ExitCode {
    let mut check = false;
    let mut run = true;
    let mut threads: Option<usize> = None;
    let mut slack = 0.0f64;
    let mut only: Option<Vec<String>> = None;
    let mut dir: Option<PathBuf> = None;
    let mut trend = false;
    let mut ledger_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--check" => check = true,
            "--no-run" => run = false,
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--threads" => match value("--threads").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n > 0 => threads = Some(n),
                _ => {
                    eprintln!("hawkeye-report: --threads needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--slack" => match value("--slack").map(|v| v.parse::<f64>()) {
                Ok(Ok(f)) if f >= 0.0 => slack = f,
                _ => {
                    eprintln!("hawkeye-report: --slack needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            "--only" => match value("--only") {
                Ok(list) => only = Some(list.split(',').map(|s| s.trim().to_string()).collect()),
                Err(e) => {
                    eprintln!("hawkeye-report: {e}");
                    return ExitCode::from(2);
                }
            },
            "--dir" => match value("--dir") {
                Ok(d) => dir = Some(PathBuf::from(d)),
                Err(e) => {
                    eprintln!("hawkeye-report: {e}");
                    return ExitCode::from(2);
                }
            },
            "--trend" => trend = true,
            "--counts" => {
                // Registry size and total check rows, computed from the
                // section builders alone (they register a fixed check
                // vector per target) — no suite run, no artifacts.
                let total: usize = hawkeye_bench::suite::TARGETS
                    .iter()
                    .map(|t| {
                        let d = hawkeye_report::TargetData {
                            name: t.name,
                            paper_ref: t.paper,
                            summary: hawkeye_analyze::summary::SummaryDoc {
                                target: t.name.to_string(),
                                title: String::new(),
                                rows: Vec::new(),
                                cycles: Vec::new(),
                            },
                            trace: None,
                        };
                        paper::section(&d).checks.len()
                    })
                    .sum();
                println!(
                    "targets={} checks={total}",
                    hawkeye_bench::suite::TARGETS.len()
                );
                return ExitCode::SUCCESS;
            }
            "--ledger" => match value("--ledger") {
                Ok(d) => ledger_dir = Some(PathBuf::from(d)),
                Err(e) => {
                    eprintln!("hawkeye-report: {e}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("hawkeye-report: unknown argument `{other}`\n");
                eprint!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let dir = dir.unwrap_or_else(hawkeye_report::default_report_dir);
    let data_dir = dir.join("data");
    let targets = match hawkeye_report::select_targets(only.as_deref()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hawkeye-report: {e}");
            return ExitCode::from(2);
        }
    };

    let ledger_dir = ledger_dir.unwrap_or_else(|| dir.join("ledger"));
    let mut walls: Vec<hawkeye_report::TargetWall> = Vec::new();
    if run {
        let threads = threads.unwrap_or_else(hawkeye_bench::pool::worker_threads);
        eprintln!(
            "[hawkeye-report] running {} suite target(s) on {threads} worker(s)",
            targets.len()
        );
        walls = hawkeye_report::run_suite(&targets, threads, &data_dir);
        let table = hawkeye_report::wallclock_table(&walls, threads);
        let wall_path = dir.join("WALLCLOCK.md");
        match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&wall_path, &table)) {
            Ok(()) => eprintln!("[hawkeye-report] wrote {}", wall_path.display()),
            Err(e) => {
                eprintln!(
                    "[hawkeye-report] could not write {}: {e}",
                    wall_path.display()
                )
            }
        }
        let total: f64 = walls.iter().map(|w| w.total_secs).sum();
        eprintln!("[hawkeye-report] suite wall-clock: {total:.2}s — see WALLCLOCK.md");
    }

    let data = match hawkeye_report::load(&targets, &data_dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hawkeye-report: gate=load: {e}");
            return ExitCode::from(3);
        }
    };
    let sections = paper::sections(&data);
    let report = hawkeye_report::render(&sections, slack);

    let out_path = dir.join("REPORT.md");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&out_path, &report))
    {
        eprintln!(
            "hawkeye-report: gate=load: could not write {}: {e}",
            out_path.display()
        );
        return ExitCode::from(3);
    }
    eprintln!("[hawkeye-report] wrote {}", out_path.display());

    // FLEET.md: the per-cohort SLO tables, whenever the fleet target is
    // in the selection (same deterministic-bytes rule as REPORT.md).
    for d in &data {
        if let Some(md) = hawkeye_analyze::fleet::fleet_md(&d.summary) {
            let fleet_path = dir.join("FLEET.md");
            match std::fs::write(&fleet_path, &md) {
                Ok(()) => eprintln!("[hawkeye-report] wrote {}", fleet_path.display()),
                Err(e) => {
                    eprintln!(
                        "hawkeye-report: gate=load: could not write {}: {e}",
                        fleet_path.display()
                    );
                    return ExitCode::from(3);
                }
            }
        }
    }

    // ENVELOPES.md: the failure-envelope atlas, whenever the adversarial
    // target is in the selection (same deterministic-bytes rule).
    for d in &data {
        if let Some(md) = hawkeye_analyze::envelope::envelopes_md(&d.summary, d.trace.as_ref()) {
            let env_path = dir.join("ENVELOPES.md");
            match std::fs::write(&env_path, &md) {
                Ok(()) => eprintln!("[hawkeye-report] wrote {}", env_path.display()),
                Err(e) => {
                    eprintln!(
                        "hawkeye-report: gate=load: could not write {}: {e}",
                        env_path.display()
                    );
                    return ExitCode::from(3);
                }
            }
        }
    }

    // ALERTS.md: SLO burn-rate transitions + anomaly annotations,
    // whenever a telemetry-enabled run left the obs document behind. A
    // present-but-unreadable document is a pipeline error, not a skip.
    let obs_path = data_dir.join("fleet_slo.obs.json");
    match std::fs::read_to_string(&obs_path) {
        Ok(text) => match hawkeye_analyze::obs::parse_obs(&text) {
            Ok(obs_doc) => {
                let alerts_path = dir.join("ALERTS.md");
                match std::fs::write(&alerts_path, hawkeye_obs::alerts_md(&obs_doc)) {
                    Ok(()) => eprintln!("[hawkeye-report] wrote {}", alerts_path.display()),
                    Err(e) => {
                        eprintln!(
                            "hawkeye-report: gate=load: could not write {}: {e}",
                            alerts_path.display()
                        );
                        return ExitCode::from(3);
                    }
                }
            }
            Err(e) => {
                eprintln!("hawkeye-report: gate=load: {}: {e}", obs_path.display());
                return ExitCode::from(3);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            eprintln!("hawkeye-report: gate=load: {}: {e}", obs_path.display());
            return ExitCode::from(3);
        }
    }

    // Perf-trajectory ledger: every real suite run appends one
    // schema-versioned BENCH_<n>.json entry (--no-run rebuilds never do —
    // they measured nothing).
    if run {
        let n = hawkeye_report::next_run_number(&ledger_dir);
        let entry = hawkeye_report::ledger_entry(n, &walls, &sections, slack);
        let doc = hawkeye_report::ledger_json(&entry).to_string() + "\n";
        let entry_path = ledger_dir.join(format!("BENCH_{n}.json"));
        match std::fs::create_dir_all(&ledger_dir).and_then(|()| std::fs::write(&entry_path, &doc))
        {
            Ok(()) => eprintln!("[hawkeye-report] appended {}", entry_path.display()),
            Err(e) => {
                eprintln!(
                    "hawkeye-report: gate=load: could not write {}: {e}",
                    entry_path.display()
                );
                return ExitCode::from(3);
            }
        }
    }

    // TREND.md + the regression gate on deterministic work counters.
    let mut trend_regressions: Vec<String> = Vec::new();
    if trend {
        let runs = match hawkeye_report::load_ledger(&ledger_dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hawkeye-report: gate=trend: {e}");
                return ExitCode::from(3);
            }
        };
        let trend_path = dir.join("TREND.md");
        if let Err(e) = std::fs::write(&trend_path, hawkeye_obs::trend_md(&runs)) {
            eprintln!(
                "hawkeye-report: gate=trend: could not write {}: {e}",
                trend_path.display()
            );
            return ExitCode::from(3);
        }
        eprintln!(
            "[hawkeye-report] wrote {} ({} run(s))",
            trend_path.display(),
            runs.len()
        );
        if runs.len() >= 2 {
            trend_regressions =
                hawkeye_obs::regressions(&runs[runs.len() - 2], &runs[runs.len() - 1]);
        }
    }

    // Missing expected metrics are a pipeline defect, not a tolerance
    // miss: fail loudly (exit 4) even without --check, after writing the
    // report so the full context is on disk.
    let missing = hawkeye_report::missing_metrics(&sections);
    if !missing.is_empty() {
        for m in &missing {
            eprintln!("hawkeye-report: gate=summary: {m}");
        }
        eprintln!(
            "hawkeye-report: {} target(s) with missing summary metrics — see {}",
            missing.len(),
            out_path.display()
        );
        return ExitCode::from(4);
    }

    if check {
        let failures = hawkeye_report::failures(&sections, slack);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("hawkeye-report: gate=tolerance: {f}");
            }
            eprintln!(
                "hawkeye-report: {} check(s) out of tolerance — see {}",
                failures.len(),
                out_path.display()
            );
            return ExitCode::FAILURE;
        }
        let total: usize = sections.iter().map(|s| s.checks.len()).sum();
        eprintln!("hawkeye-report: all {total} check(s) within tolerance");
        if !trend_regressions.is_empty() {
            for r in &trend_regressions {
                eprintln!("hawkeye-report: gate=trend: {r}");
            }
            eprintln!(
                "hawkeye-report: {} perf-trajectory regression(s) — see {}",
                trend_regressions.len(),
                dir.join("TREND.md").display()
            );
            return ExitCode::FAILURE;
        }
        if trend {
            eprintln!("hawkeye-report: perf-trajectory gate clean");
        }
    }
    ExitCode::SUCCESS
}
