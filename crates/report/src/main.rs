//! CLI for [`hawkeye_report`]: run the suite, build REPORT.md, and
//! optionally gate on the tolerance bands.
//!
//! ```text
//! hawkeye-report [--check] [--no-run] [--threads N] [--slack F]
//!                [--only a,b,...] [--dir DIR]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use hawkeye_report::paper;

fn usage() -> &'static str {
    "usage: hawkeye-report [--check] [--no-run] [--threads N] [--slack F]\n\
     \x20                     [--only t1,t2,...] [--dir DIR]\n\
     \n\
     Runs the full paper-experiment suite in-process (tracing forced on),\n\
     writes per-target summaries + trace journals under DIR, and renders\n\
     DIR/REPORT.md: every table/figure of DESIGN.md \u{a7}4 side-by-side\n\
     with the paper's number, a percent delta, and a tolerance band.\n\
     \n\
     --check       exit nonzero if any check lands outside its band\n\
     --no-run      skip the suite run; rebuild REPORT.md from artifacts\n\
     \x20             already in DIR\n\
     --threads N   worker threads for the scenario engine (default:\n\
     \x20             HAWKEYE_BENCH_THREADS or all cores); REPORT.md is\n\
     \x20             byte-identical at any value\n\
     --slack F     widen every band's half-width by F (e.g. 0.5 = 1.5x);\n\
     \x20             exact gates stay exact\n\
     --only LIST   comma-separated subset of suite targets\n\
     --dir DIR     artifact directory (default: <target>/report)\n\
     \n\
     When the selection includes fleet_slo, DIR/FLEET.md (per-cohort\n\
     fleet SLO tables) is written next to REPORT.md.\n\
     \n\
     exit codes:\n\
     \x20  0   report written; all checks in tolerance (or no --check)\n\
     \x20  1   --check: at least one check out of tolerance\n\
     \x20  2   usage error\n\
     \x20  3   pipeline error (missing or malformed artifact)\n\
     \x20  4   summary error: expected metrics missing from a summary\n\
     \x20      (renamed/absent keys; REPORT.md is still written)\n"
}

fn main() -> ExitCode {
    let mut check = false;
    let mut run = true;
    let mut threads: Option<usize> = None;
    let mut slack = 0.0f64;
    let mut only: Option<Vec<String>> = None;
    let mut dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--check" => check = true,
            "--no-run" => run = false,
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--threads" => match value("--threads").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n > 0 => threads = Some(n),
                _ => {
                    eprintln!("hawkeye-report: --threads needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--slack" => match value("--slack").map(|v| v.parse::<f64>()) {
                Ok(Ok(f)) if f >= 0.0 => slack = f,
                _ => {
                    eprintln!("hawkeye-report: --slack needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            "--only" => match value("--only") {
                Ok(list) => {
                    only = Some(list.split(',').map(|s| s.trim().to_string()).collect())
                }
                Err(e) => {
                    eprintln!("hawkeye-report: {e}");
                    return ExitCode::from(2);
                }
            },
            "--dir" => match value("--dir") {
                Ok(d) => dir = Some(PathBuf::from(d)),
                Err(e) => {
                    eprintln!("hawkeye-report: {e}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("hawkeye-report: unknown argument `{other}`\n");
                eprint!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let dir = dir.unwrap_or_else(hawkeye_report::default_report_dir);
    let data_dir = dir.join("data");
    let targets = match hawkeye_report::select_targets(only.as_deref()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hawkeye-report: {e}");
            return ExitCode::from(2);
        }
    };

    if run {
        let threads = threads.unwrap_or_else(hawkeye_bench::pool::worker_threads);
        eprintln!(
            "[hawkeye-report] running {} suite target(s) on {threads} worker(s)",
            targets.len()
        );
        let walls = hawkeye_report::run_suite(&targets, threads, &data_dir);
        let table = hawkeye_report::wallclock_table(&walls, threads);
        let wall_path = dir.join("WALLCLOCK.md");
        match std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&wall_path, &table))
        {
            Ok(()) => eprintln!("[hawkeye-report] wrote {}", wall_path.display()),
            Err(e) => {
                eprintln!("[hawkeye-report] could not write {}: {e}", wall_path.display())
            }
        }
        let total: f64 = walls.iter().map(|w| w.total_secs).sum();
        eprintln!("[hawkeye-report] suite wall-clock: {total:.2}s — see WALLCLOCK.md");
    }

    let data = match hawkeye_report::load(&targets, &data_dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hawkeye-report: gate=load: {e}");
            return ExitCode::from(3);
        }
    };
    let sections = paper::sections(&data);
    let report = hawkeye_report::render(&sections, slack);

    let out_path = dir.join("REPORT.md");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&out_path, &report))
    {
        eprintln!("hawkeye-report: gate=load: could not write {}: {e}", out_path.display());
        return ExitCode::from(3);
    }
    eprintln!("[hawkeye-report] wrote {}", out_path.display());

    // FLEET.md: the per-cohort SLO tables, whenever the fleet target is
    // in the selection (same deterministic-bytes rule as REPORT.md).
    for d in &data {
        if let Some(md) = hawkeye_analyze::fleet::fleet_md(&d.summary) {
            let fleet_path = dir.join("FLEET.md");
            match std::fs::write(&fleet_path, &md) {
                Ok(()) => eprintln!("[hawkeye-report] wrote {}", fleet_path.display()),
                Err(e) => {
                    eprintln!(
                        "hawkeye-report: gate=load: could not write {}: {e}",
                        fleet_path.display()
                    );
                    return ExitCode::from(3);
                }
            }
        }
    }

    // Missing expected metrics are a pipeline defect, not a tolerance
    // miss: fail loudly (exit 4) even without --check, after writing the
    // report so the full context is on disk.
    let missing = hawkeye_report::missing_metrics(&sections);
    if !missing.is_empty() {
        for m in &missing {
            eprintln!("hawkeye-report: gate=summary: {m}");
        }
        eprintln!(
            "hawkeye-report: {} target(s) with missing summary metrics — see {}",
            missing.len(),
            out_path.display()
        );
        return ExitCode::from(4);
    }

    if check {
        let failures = hawkeye_report::failures(&sections, slack);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("hawkeye-report: gate=tolerance: {f}");
            }
            eprintln!(
                "hawkeye-report: {} check(s) out of tolerance — see {}",
                failures.len(),
                out_path.display()
            );
            return ExitCode::FAILURE;
        }
        let total: usize = sections.iter().map(|s| s.checks.len()).sum();
        eprintln!("hawkeye-report: all {total} check(s) within tolerance");
    }
    ExitCode::SUCCESS
}
