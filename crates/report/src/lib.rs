//! `hawkeye-report`: the one-command paper-reproduction pipeline.
//!
//! One invocation runs the full scenario suite
//! ([`hawkeye_bench::suite::TARGETS`]) in-process with tracing forced on,
//! collects every target's summary JSON and `.trace.json` journal, loads
//! them back through the `hawkeye-analyze` parsers, and renders a single
//! deterministic `target/report/REPORT.md` that puts every table and
//! figure of DESIGN.md §4's experiment index side-by-side with the
//! paper's published number and a percent delta (DESIGN.md §12).
//!
//! Two orthogonal columns per check cell:
//!
//! * **Δ vs paper** — how far the reproduced value is from the paper's
//!   published number. Informational: scaled-down footprints make many
//!   absolute deltas large by design (EXPERIMENTS.md "reading guide").
//! * **tolerance band** — the `[lo, hi]` interval the reproduced value
//!   must land in, calibrated against the recorded reference run. This
//!   is the pass/fail reproduction gate (`hawkeye-report --check`): the
//!   simulator is deterministic, so any value outside its band means the
//!   model changed and EXPERIMENTS.md needs regenerating.
//!
//! The report inherits the determinism rule of DESIGN.md §9: REPORT.md
//! is byte-identical at any `--threads` value (golden-file tested).

pub mod paper;

use std::path::{Path, PathBuf};

use hawkeye_analyze::summary::{parse_summary, SummaryDoc};
use hawkeye_analyze::{parse_trace, TraceDoc};
use hawkeye_bench::suite::{self, Target};

/// The inclusive `[lo, hi]` interval a reproduced value must land in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Lower edge (inclusive).
    pub lo: f64,
    /// Upper edge (inclusive).
    pub hi: f64,
}

impl Band {
    /// An explicit interval.
    pub fn new(lo: f64, hi: f64) -> Band {
        Band { lo, hi }
    }

    /// A relative band: `center ± rel·|center|`.
    pub fn around(center: f64, rel: f64) -> Band {
        let half = center.abs() * rel;
        Band { lo: center - half, hi: center + half }
    }

    /// A degenerate band for values that must match exactly (counts,
    /// boolean gates).
    pub fn exact(v: f64) -> Band {
        Band { lo: v, hi: v }
    }

    /// Widens the band's half-width by `slack` (a fraction: `0.5` makes
    /// the band 1.5× as wide around the same center). Degenerate bands
    /// stay degenerate — exact gates don't loosen.
    pub fn widen(self, slack: f64) -> Band {
        let center = (self.lo + self.hi) / 2.0;
        let half = (self.hi - self.lo) / 2.0 * (1.0 + slack);
        Band { lo: center - half, hi: center + half }
    }

    /// Inclusive containment.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// One paper-vs-repro comparison cell.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being compared (derived ratio or direct value).
    pub metric: String,
    /// The paper's published number, when it publishes one at a
    /// comparable scale (`None` renders as `—` with no delta).
    pub paper: Option<f64>,
    /// The reproduced value; `None` means the metric was missing from
    /// the summary, which always fails the gate.
    pub measured: Option<f64>,
    /// The reproduction gate (on `measured`, not on the delta).
    pub band: Band,
}

impl Check {
    /// Builds a check row.
    pub fn new(
        metric: impl Into<String>,
        paper: Option<f64>,
        measured: Option<f64>,
        band: Band,
    ) -> Check {
        Check { metric: metric.into(), paper, measured, band }
    }

    /// Percent delta of the reproduced value vs the paper's number.
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.paper, self.measured) {
            (Some(p), Some(m)) if p != 0.0 => Some((m - p) / p * 100.0),
            _ => None,
        }
    }

    /// The pass/fail gate at a given `--slack` widening.
    pub fn passes(&self, slack: f64) -> bool {
        self.measured.is_some_and(|m| self.band.widen(slack).contains(m))
    }
}

/// A preformatted figure block (sparkline table, bar chart, cycle
/// ledger) rendered inside a fenced code block.
#[derive(Debug, Clone)]
pub struct Figure {
    /// One-line caption printed above the block.
    pub caption: String,
    /// Preformatted body (already line-broken).
    pub body: String,
}

/// One REPORT.md section: a row of DESIGN.md §4's experiment index.
#[derive(Debug, Clone)]
pub struct Section {
    /// Bench-target name.
    pub target: &'static str,
    /// Paper artifact ("Table 1", "Fig 5", …).
    pub paper_ref: &'static str,
    /// The bench target's own title line.
    pub title: String,
    /// Pass/fail comparison rows.
    pub checks: Vec<Check>,
    /// Figure reproductions.
    pub figures: Vec<Figure>,
    /// Free-text caveats (known divergences, scaling notes).
    pub notes: Vec<String>,
    /// Loud data-quality warnings (e.g. trace ring-buffer drops) rendered
    /// as blockquoted ⚠️ rows right under the section heading — these mean
    /// the numbers below are computed from incomplete data.
    pub warnings: Vec<String>,
}

impl Section {
    /// `(passed, total)` check counts at a given slack.
    pub fn tally(&self, slack: f64) -> (usize, usize) {
        let passed = self.checks.iter().filter(|c| c.passes(slack)).count();
        (passed, self.checks.len())
    }
}

/// Everything loaded back from disk for one suite target.
#[derive(Debug, Clone)]
pub struct TargetData {
    /// Bench-target name.
    pub name: &'static str,
    /// Paper artifact label.
    pub paper_ref: &'static str,
    /// The parsed summary JSON (rows + cycle ledgers).
    pub summary: SummaryDoc,
    /// The parsed trace journal, when the target traced any events.
    pub trace: Option<TraceDoc>,
}

/// Resolves `--only` names against the suite registry, preserving suite
/// order. `None` means every target.
pub fn select_targets(only: Option<&[String]>) -> Result<Vec<&'static Target>, String> {
    let Some(names) = only else {
        return Ok(suite::TARGETS.iter().collect());
    };
    for n in names {
        if suite::find(n).is_none() {
            return Err(format!("unknown suite target `{n}`"));
        }
    }
    Ok(suite::TARGETS.iter().filter(|t| names.iter().any(|n| n == t.name)).collect())
}

/// Host wall-clock spent on one suite target, assembled from a
/// monotonic clock around the target's run plus the phase breakdown the
/// bench pipeline dumps to `<target>.wallclock.json`. Host timing never
/// enters REPORT.md or any deterministic artifact — it feeds the
/// separate WALLCLOCK.md table (EXPERIMENTS.md "Suite wall-clock").
#[derive(Debug, Clone)]
pub struct TargetWall {
    /// Bench-target name.
    pub name: &'static str,
    /// End-to-end wall seconds for the target: scenario engine, table
    /// formatting, and every artifact dump.
    pub total_secs: f64,
    /// `(phase, seconds)` breakdown from the sidecar (`engine`,
    /// `summary_write`, `trace_write`); empty when the sidecar is
    /// missing.
    pub phases: Vec<(String, f64)>,
    /// Scheduler quanta elapsed across the target's simulations.
    pub quanta_total: u64,
    /// Quanta the event-skip scheduler charged in closed form.
    pub quanta_skipped: u64,
    /// Simulated cores of the target's widest multi-core window (0 when
    /// every run was serial — the sidecar then omits core fields).
    pub cores: u64,
    /// Per-core busy/stall host-nanoseconds from the real-thread replay.
    pub core_busy: Vec<CoreWall>,
    /// True when the sidecar existed but could not be read or parsed:
    /// the phase/quanta fields above are meaningless and WALLCLOCK.md
    /// renders `n/a` instead of silent zeros. A *missing* sidecar (the
    /// target recorded nothing) keeps the defaults with `corrupt: false`.
    pub corrupt: bool,
}

/// One replay core's utilization from the `core_busy` sidecar array:
/// host time the OS thread re-executing that core's op plan spent
/// holding locks vs. spinning on them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreWall {
    /// Simulated core id.
    pub core: u64,
    /// Host nanoseconds holding page-state locks / allocator shards.
    pub busy_ns: u64,
    /// Host nanoseconds spinning while another thread held them.
    pub stall_ns: u64,
    /// Real CAS retries observed by the replay threads.
    pub cas_retries: u64,
}

impl TargetWall {
    /// Seconds recorded against one sidecar phase (0 when absent).
    pub fn phase_secs(&self, phase: &str) -> f64 {
        self.phases.iter().find(|(p, _)| p == phase).map_or(0.0, |(_, s)| *s)
    }
}

/// `(phases, quanta_total, quanta_skipped, cores, core_busy)` from a
/// timing sidecar.
type WallSidecar = (Vec<(String, f64)>, u64, u64, u64, Vec<CoreWall>);

/// Reads `<dir>/<name>.wallclock.json` back. `Ok(None)` means the
/// sidecar does not exist (the target recorded nothing — legitimate);
/// `Err` means it exists but is unreadable or malformed, which callers
/// must surface instead of rendering silent zeros. Required keys that
/// are absent or mistyped are errors, not zeros: a sidecar the writer
/// and reader disagree about is corrupt, not empty.
fn read_wallclock(dir: &Path, name: &str) -> Result<Option<WallSidecar>, String> {
    let path = dir.join(format!("{name}.wallclock.json"));
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let doc = hawkeye_analyze::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let obj = doc.as_obj().ok_or_else(|| format!("{}: not a JSON object", path.display()))?;
    let get = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let required = |k: &str| {
        get(k).ok_or_else(|| format!("{}: missing \"{k}\"", path.display()))
    };
    let phases = required("phases")?
        .as_arr()
        .ok_or_else(|| format!("{}: \"phases\" is not an array", path.display()))?
        .iter()
        .map(|p| {
            let o = p
                .as_obj()
                .ok_or_else(|| format!("{}: phase entry is not an object", path.display()))?;
            let field = |k: &str| {
                o.iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("{}: phase entry missing \"{k}\"", path.display()))
            };
            let phase = field("phase")?
                .as_str()
                .ok_or_else(|| format!("{}: \"phase\" is not a string", path.display()))?
                .to_string();
            let secs = field("secs")?
                .as_f64()
                .ok_or_else(|| format!("{}: \"secs\" is not a number", path.display()))?;
            Ok((phase, secs))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let int = |k: &str| {
        required(k)?
            .as_u64()
            .ok_or_else(|| format!("{}: \"{k}\" is not a u64", path.display()))
    };
    // `cores` is written only for multi-core windows; its absence means
    // "serial", not corruption.
    let cores = match get("cores") {
        Some(v) => {
            v.as_u64().ok_or_else(|| format!("{}: \"cores\" is not a u64", path.display()))?
        }
        None => 0,
    };
    let core_busy = get("core_busy")
        .map(|v| {
            v.as_arr()
                .ok_or_else(|| format!("{}: \"core_busy\" is not an array", path.display()))?
                .iter()
                .map(|p| {
                    let o = p.as_obj().ok_or_else(|| {
                        format!("{}: core_busy entry is not an object", path.display())
                    })?;
                    let field = |k: &str| {
                        o.iter()
                            .find(|(key, _)| key == k)
                            .and_then(|(_, v)| v.as_u64())
                            .ok_or_else(|| {
                                format!("{}: core_busy entry missing \"{k}\"", path.display())
                            })
                    };
                    Ok(CoreWall {
                        core: field("core")?,
                        busy_ns: field("busy_ns")?,
                        stall_ns: field("stall_ns")?,
                        cas_retries: field("cas_retries")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()
        })
        .transpose()?
        .unwrap_or_default();
    Ok(Some((phases, int("quanta_total")?, int("quanta_skipped")?, cores, core_busy)))
}

/// Runs the selected targets in-process with tracing forced on, writing
/// `<dir>/<target>.json` and `<dir>/<target>.trace.json` for each. The
/// bench tables go to stdout exactly as the standalone binaries print
/// them, so a report run doubles as a full-suite run. Returns the host
/// wall-clock record per target (suite order) for the WALLCLOCK.md
/// table; the deterministic artifacts never see these numbers.
pub fn run_suite(targets: &[&'static Target], threads: usize, dir: &Path) -> Vec<TargetWall> {
    hawkeye_trace::set_forced(true);
    let mut walls = Vec::with_capacity(targets.len());
    for t in targets {
        let t0 = std::time::Instant::now();
        let report = (t.build)(threads);
        print!("{}", report.text());
        hawkeye_bench::write_json_in(dir, t.name, &report.json());
        let total_secs = t0.elapsed().as_secs_f64();
        let (sidecar, corrupt) = match read_wallclock(dir, t.name) {
            Ok(s) => (s.unwrap_or_default(), false),
            Err(e) => {
                eprintln!(
                    "[hawkeye-report] warning: unreadable wallclock sidecar ({e}); \
                     rendering n/a in WALLCLOCK.md"
                );
                (WallSidecar::default(), true)
            }
        };
        let (phases, quanta_total, quanta_skipped, cores, core_busy) = sidecar;
        walls.push(TargetWall {
            name: t.name,
            total_secs,
            phases,
            quanta_total,
            quanta_skipped,
            cores,
            core_busy,
            corrupt,
        });
    }
    hawkeye_trace::set_forced(false);
    walls
}

/// Renders the suite wall-clock table (WALLCLOCK.md): per-target totals,
/// the sidecar phase breakdown, and event-skip efficiency, slowest
/// first, with a suite-total row. Host timing lives only here — never in
/// REPORT.md — so the table can change run to run while the report stays
/// byte-identical.
pub fn wallclock_table(walls: &[TargetWall], threads: usize) -> String {
    let mut out = String::new();
    out.push_str("# Suite wall-clock\n\n");
    out.push_str(&format!(
        "Host wall-clock per suite target on {threads} worker thread(s), \
         from a monotonic clock kept out of every deterministic artifact \
         (see EXPERIMENTS.md \"Suite wall-clock\"). Phases: `engine` is \
         the scenario-engine run, `summary` and `trace` are the artifact \
         dumps; the remainder is table formatting and load-back. \
         `skip%` is the fraction of scheduler quanta the event-skip \
         scheduler charged in closed form instead of executing. `cores` \
         is the widest simulated multi-core window the target ran (— \
         when every run was serial).\n\n",
    ));
    out.push_str(
        "| Target | total (s) | engine (s) | summary (s) | trace (s) | quanta | skip% | cores |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    let mut order: Vec<&TargetWall> = walls.iter().collect();
    order.sort_by(|a, b| b.total_secs.total_cmp(&a.total_secs));
    for w in order {
        if w.corrupt {
            // The sidecar existed but couldn't be read: everything it
            // would have provided renders n/a (the end-to-end total comes
            // from the monotonic clock around the run, not the sidecar).
            out.push_str(&format!(
                "| `{}` | {:.2} | n/a | n/a | n/a | n/a | n/a | n/a |\n",
                w.name, w.total_secs,
            ));
            continue;
        }
        let skip_pct = if w.quanta_total == 0 {
            "—".to_string()
        } else {
            format!("{:.1}%", w.quanta_skipped as f64 / w.quanta_total as f64 * 100.0)
        };
        out.push_str(&format!(
            "| `{}` | {:.2} | {:.2} | {:.2} | {:.2} | {} | {} | {} |\n",
            w.name,
            w.total_secs,
            w.phase_secs("engine"),
            w.phase_secs("summary_write"),
            w.phase_secs("trace_write"),
            w.quanta_total,
            skip_pct,
            if w.cores == 0 { "—".to_string() } else { w.cores.to_string() },
        ));
    }
    let total: f64 = walls.iter().map(|w| w.total_secs).sum();
    let qt: u64 = walls.iter().map(|w| w.quanta_total).sum();
    let qs: u64 = walls.iter().map(|w| w.quanta_skipped).sum();
    let skip_pct = if qt == 0 {
        "—".to_string()
    } else {
        format!("{:.1}%", qs as f64 / qt as f64 * 100.0)
    };
    out.push_str(&format!(
        "| **suite total** | **{:.2}** | {:.2} | {:.2} | {:.2} | {} | {} | |\n",
        total,
        walls.iter().map(|w| w.phase_secs("engine")).sum::<f64>(),
        walls.iter().map(|w| w.phase_secs("summary_write")).sum::<f64>(),
        walls.iter().map(|w| w.phase_secs("trace_write")).sum::<f64>(),
        qt,
        skip_pct,
    ));
    let multicore: Vec<&TargetWall> = walls.iter().filter(|w| !w.core_busy.is_empty()).collect();
    if !multicore.is_empty() {
        out.push_str(
            "\n## Replay core utilization\n\n\
             Real-thread replay of the recorded multi-core op plans: host \
             time each core's OS thread spent holding page-state locks / \
             allocator shards (`busy`) vs. spinning on them (`stall`), and \
             the CAS retries it actually took. Host-speed dependent, so it \
             lives here and not in REPORT.md.\n\n",
        );
        for w in multicore {
            out.push_str(&format!("- `{}`:\n", w.name));
            for c in &w.core_busy {
                out.push_str(&format!(
                    "  - core {}: busy {:.2} ms, stall {:.2} ms, {} CAS retries\n",
                    c.core,
                    c.busy_ns as f64 / 1e6,
                    c.stall_ns as f64 / 1e6,
                    c.cas_retries,
                ));
            }
        }
    }
    out
}

/// Loads the selected targets' artifacts back from `dir` through the
/// `hawkeye-analyze` parsers. The summary is mandatory; the trace
/// journal is optional (targets that emit no events write no journal).
pub fn load(targets: &[&'static Target], dir: &Path) -> Result<Vec<TargetData>, String> {
    let mut out = Vec::new();
    for t in targets {
        let path = dir.join(format!("{}.json", t.name));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e} (run without --no-run?)", path.display()))?;
        let summary = parse_summary(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let trace_path = dir.join(format!("{}.trace.json", t.name));
        let trace = match std::fs::read_to_string(&trace_path) {
            Ok(text) => {
                Some(parse_trace(&text).map_err(|e| format!("{}: {e}", trace_path.display()))?)
            }
            Err(_) => None,
        };
        out.push(TargetData { name: t.name, paper_ref: t.paper, summary, trace });
    }
    Ok(out)
}

/// Deterministic value formatting for report cells: fixed decimal count
/// by magnitude, scientific below 0.01, so the same `f64` always renders
/// the same bytes.
pub fn fmt_num(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// GitHub-style anchor slug for a heading ("Table 1 · fault latency" →
/// `table-1--fault-latency`), used by DESIGN.md §4 cross-links.
pub fn slug(heading: &str) -> String {
    heading
        .chars()
        .filter_map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

fn heading(s: &Section) -> String {
    format!("{} · {}", s.paper_ref, s.target)
}

/// Renders REPORT.md from the built sections. Pure function of its
/// inputs: no clocks, hostnames, thread counts, or paths — this is what
/// makes the golden-file determinism test possible.
pub fn render(sections: &[Section], slack: f64) -> String {
    let mut out = String::new();
    out.push_str("# HawkEye reproduction report\n\n");
    out.push_str(
        "Generated by `hawkeye-report` (see DESIGN.md §12) from a full \
         in-process run of the paper-experiment suite. Every section \
         below is one row of DESIGN.md §4's experiment index; each check \
         row shows the paper's published number, the reproduced value, \
         the percent delta, and the tolerance band that gates \
         `hawkeye-report --check`. Bands are calibrated against the \
         recorded reference run (the simulator is deterministic); the \
         **Δ vs paper** column is informational — footprints and times \
         are scaled by design (see EXPERIMENTS.md's reading guide).\n\n",
    );
    out.push_str(&format!("Slack factor applied to bands: {}\n\n", fmt_num(slack)));

    out.push_str("## Summary\n\n");
    out.push_str("| Section | Target | Checks | Status |\n|---|---|---|---|\n");
    let mut all_pass = true;
    for s in sections {
        let (passed, total) = s.tally(slack);
        let ok = passed == total;
        all_pass &= ok;
        out.push_str(&format!(
            "| [{}](#{}) | `{}` | {passed}/{total} | {} |\n",
            heading(s),
            slug(&heading(s)),
            s.target,
            if ok { "pass" } else { "**FAIL**" },
        ));
    }
    out.push_str(&format!(
        "\nOverall: **{}**\n",
        if all_pass { "all sections within tolerance" } else { "OUT OF TOLERANCE" },
    ));

    for s in sections {
        out.push_str(&format!("\n## {}\n\n", heading(s)));
        if !s.title.is_empty() {
            out.push_str(&format!("*{}*\n\n", s.title));
        }
        for w in &s.warnings {
            out.push_str(&format!("> ⚠️ **WARNING:** {w}\n\n"));
        }
        if !s.checks.is_empty() {
            out.push_str(
                "| Metric | Paper | Repro | Δ vs paper | Band | Status |\n\
                 |---|---:|---:|---:|---|---|\n",
            );
            for c in &s.checks {
                let paper = c.paper.map_or("—".to_string(), fmt_num);
                let measured = c.measured.map_or("missing".to_string(), fmt_num);
                let delta = c.delta_pct().map_or("—".to_string(), |d| format!("{d:+.1}%"));
                let band = c.band.widen(slack);
                let status = if c.passes(slack) { "pass" } else { "**FAIL**" };
                out.push_str(&format!(
                    "| {} | {paper} | {measured} | {delta} | [{}, {}] | {status} |\n",
                    c.metric,
                    fmt_num(band.lo),
                    fmt_num(band.hi),
                ));
            }
        }
        for f in &s.figures {
            out.push_str(&format!("\n{}\n\n```text\n{}```\n", f.caption, f.body));
        }
        for n in &s.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
    }
    out
}

/// Checks whose reproduced value is missing entirely, as `target:
/// metric` lines. A `measured: None` check means an expected key was
/// absent (or renamed) in the summary the section builder read — a
/// pipeline defect, not an out-of-tolerance value. It must fail loudly
/// (exit code 4) even without `--check`: zero-filling or skipping such
/// keys would let a renamed counter sail through as a plausible 0.
pub fn missing_metrics(sections: &[Section]) -> Vec<String> {
    let mut out = Vec::new();
    for s in sections {
        let missing: Vec<&str> =
            s.checks.iter().filter(|c| c.measured.is_none()).map(|c| c.metric.as_str()).collect();
        if !missing.is_empty() {
            out.push(format!(
                "{}: {} expected metric(s) missing from the summary: {}",
                s.target,
                missing.len(),
                missing.join("; "),
            ));
        }
    }
    out
}

/// All failing checks at a given slack, as `target: metric` lines for
/// `--check` stderr output.
pub fn failures(sections: &[Section], slack: f64) -> Vec<String> {
    let mut out = Vec::new();
    for s in sections {
        for c in &s.checks {
            if !c.passes(slack) {
                let band = c.band.widen(slack);
                out.push(format!(
                    "{}: {}: {} outside [{}, {}]",
                    s.target,
                    c.metric,
                    c.measured.map_or("missing".to_string(), fmt_num),
                    fmt_num(band.lo),
                    fmt_num(band.hi),
                ));
            }
        }
    }
    out
}

// ---- perf-trajectory ledger ---------------------------------------------

use hawkeye_bench::Json;
use hawkeye_obs::{fnv1a, LedgerRun, LedgerTarget, LEDGER_SCHEMA_VERSION};

/// Builds one perf-trajectory ledger entry ([`LedgerRun`]) from this
/// run's wall records and evaluated sections. Gated fields (quanta,
/// check tally) are deterministic; the wall-clock total and its FNV-1a
/// digest are quarantined advisory columns, mirroring the
/// `.wallclock.json` sidecar policy.
pub fn ledger_entry(run: u64, walls: &[TargetWall], sections: &[Section], slack: f64) -> LedgerRun {
    let (mut passed, mut total) = (0u64, 0u64);
    for s in sections {
        let (p, t) = s.tally(slack);
        passed += p as u64;
        total += t as u64;
    }
    let targets = walls
        .iter()
        .map(|w| LedgerTarget {
            name: w.name.to_string(),
            quanta_total: w.quanta_total,
            quanta_skipped: w.quanta_skipped,
        })
        .collect();
    let wall_total_secs = walls.iter().map(|w| w.total_secs).sum();
    let canonical: String =
        walls.iter().map(|w| format!("{}:{:.6};", w.name, w.total_secs)).collect();
    LedgerRun {
        schema_version: LEDGER_SCHEMA_VERSION,
        run,
        checks_passed: passed,
        checks_total: total,
        targets,
        wall_total_secs,
        wall_digest: format!("{:016x}", fnv1a(canonical.as_bytes())),
    }
}

/// Serializes a ledger entry with the key order
/// `hawkeye_analyze::obs::parse_ledger` mirrors.
pub fn ledger_json(r: &LedgerRun) -> Json {
    let targets = r
        .targets
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("name", Json::str(t.name.clone())),
                ("quanta_total", Json::int(t.quanta_total)),
                ("quanta_skipped", Json::int(t.quanta_skipped)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::int(r.schema_version)),
        ("run", Json::int(r.run)),
        ("checks_passed", Json::int(r.checks_passed)),
        ("checks_total", Json::int(r.checks_total)),
        ("targets", Json::Arr(targets)),
        ("wall_total_secs", Json::num(r.wall_total_secs)),
        ("wall_digest", Json::str(r.wall_digest.clone())),
    ])
}

/// The run number embedded in a `BENCH_<n>.json` file name, if it is one.
fn ledger_run_number(file_name: &str) -> Option<u64> {
    file_name.strip_prefix("BENCH_")?.strip_suffix(".json")?.parse().ok()
}

/// The next free run number in a ledger directory: one past the highest
/// existing `BENCH_<n>.json` (1 on an empty or absent directory).
pub fn next_run_number(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 1 };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| ledger_run_number(&e.file_name().to_string_lossy()))
        .max()
        .map_or(1, |n| n + 1)
}

/// Loads every `BENCH_<n>.json` in a ledger directory, sorted by run
/// number. A malformed entry is an error (the gate must not silently
/// skip a corrupt baseline); an absent directory is an empty ledger.
pub fn load_ledger(dir: &Path) -> Result<Vec<LedgerRun>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut runs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if ledger_run_number(&name).is_none() {
            continue;
        }
        let path = entry.path();
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let run = hawkeye_analyze::obs::parse_ledger(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        runs.push(run);
    }
    runs.sort_by_key(|r| r.run);
    Ok(runs)
}

/// The default output directory: `<cargo target dir>/report`.
pub fn default_report_dir() -> PathBuf {
    std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"))
        .join("report")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_widen_scales_half_width_around_center() {
        let b = Band::new(8.0, 12.0).widen(0.5);
        assert_eq!((b.lo, b.hi), (7.0, 13.0));
        let exact = Band::exact(15.0).widen(10.0);
        assert_eq!((exact.lo, exact.hi), (15.0, 15.0), "exact gates don't loosen");
        assert!(Band::around(100.0, 0.1).contains(90.0));
        assert!(!Band::around(100.0, 0.1).contains(89.9));
    }

    #[test]
    fn check_delta_and_gate_are_independent() {
        let c = Check::new("m", Some(10.0), Some(15.0), Band::around(15.0, 0.1));
        assert_eq!(c.delta_pct(), Some(50.0), "delta vs paper");
        assert!(c.passes(0.0), "gate is on the band, not the delta");
        let missing = Check::new("m", Some(10.0), None, Band::around(15.0, 0.1));
        assert!(!missing.passes(0.0), "missing metric always fails");
        assert_eq!(missing.delta_pct(), None);
    }

    #[test]
    fn fmt_num_is_magnitude_banded() {
        assert_eq!(fmt_num(409600.0), "409600");
        assert_eq!(fmt_num(131.4), "131.4");
        assert_eq!(fmt_num(3.275), "3.27");
        assert_eq!(fmt_num(0.271), "0.271");
        assert_eq!(fmt_num(0.0025), "2.50e-3");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(-5.5), "-5.50");
    }

    #[test]
    fn slug_matches_github_style() {
        assert_eq!(slug("Table 1 · table1_fault_latency"), "table-1--table1_fault_latency");
    }

    /// A scratch dir under the target dir, unique per test.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hawkeye-report-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn absent_wallclock_sidecar_is_ok_none() {
        let dir = scratch("absent");
        assert_eq!(read_wallclock(&dir, "nope").expect("absent is fine"), None);
    }

    #[test]
    fn truncated_wallclock_sidecar_is_an_error_not_zeros() {
        let dir = scratch("truncated");
        // A real sidecar cut off mid-document (the crash/ENOSPC shape).
        std::fs::write(
            dir.join("t.wallclock.json"),
            "{\"target\":\"t\",\"phases\":[{\"phase\":\"engine\",\"se",
        )
        .expect("write");
        let err = read_wallclock(&dir, "t").expect_err("truncated must error");
        assert!(err.contains("t.wallclock.json"), "names the file: {err}");
    }

    #[test]
    fn wallclock_sidecar_missing_required_key_is_an_error() {
        let dir = scratch("nokey");
        // Valid JSON, but `quanta_total` was renamed — must not read as 0.
        std::fs::write(
            dir.join("t.wallclock.json"),
            r#"{"target":"t","phases":[],"total_secs":0,"quanta":9,"quanta_skipped":0}"#,
        )
        .expect("write");
        let err = read_wallclock(&dir, "t").expect_err("missing key must error");
        assert!(err.contains("quanta_total"), "names the key: {err}");
    }

    #[test]
    fn wallclock_table_renders_na_for_corrupt_sidecars() {
        let wall = |name: &'static str, corrupt: bool| TargetWall {
            name,
            total_secs: 1.25,
            phases: vec![("engine".into(), 1.0)],
            quanta_total: 10,
            quanta_skipped: 5,
            cores: 0,
            core_busy: Vec::new(),
            corrupt,
        };
        let table = wallclock_table(&[wall("good", false), wall("bad", true)], 1);
        assert!(table.contains("| `good` | 1.25 | 1.00 |"), "{table}");
        assert!(
            table.contains("| `bad` | 1.25 | n/a | n/a | n/a | n/a | n/a | n/a |"),
            "{table}"
        );
    }

    #[test]
    fn missing_metrics_lists_offending_keys_per_target() {
        let sections = vec![
            Section {
                target: "a",
                paper_ref: "Table 1",
                title: String::new(),
                checks: vec![
                    Check::new("present", None, Some(1.0), Band::exact(1.0)),
                    Check::new("gone (×)", None, None, Band::exact(1.0)),
                    Check::new("also gone", None, None, Band::exact(1.0)),
                ],
                figures: Vec::new(),
                notes: Vec::new(),
                warnings: Vec::new(),
            },
            Section {
                target: "b",
                paper_ref: "Fig 1",
                title: String::new(),
                checks: vec![Check::new("fine", None, Some(2.0), Band::exact(2.0))],
                figures: Vec::new(),
                notes: Vec::new(),
                warnings: Vec::new(),
            },
        ];
        let missing = missing_metrics(&sections);
        assert_eq!(missing.len(), 1, "only the broken target is listed");
        assert!(missing[0].starts_with("a: 2 expected metric(s)"), "{}", missing[0]);
        assert!(missing[0].contains("gone (×); also gone"), "{}", missing[0]);
    }

    #[test]
    fn ledger_entry_round_trips_through_writer_and_parser() {
        let walls = vec![
            TargetWall {
                name: "a",
                total_secs: 1.5,
                phases: Vec::new(),
                quanta_total: 1000,
                quanta_skipped: 800,
                cores: 0,
                core_busy: Vec::new(),
                corrupt: false,
            },
            TargetWall {
                name: "b",
                total_secs: 2.5,
                phases: Vec::new(),
                quanta_total: 5000,
                quanta_skipped: 4500,
                cores: 0,
                core_busy: Vec::new(),
                corrupt: false,
            },
        ];
        let sections = vec![Section {
            target: "a",
            paper_ref: "Table 1",
            title: String::new(),
            checks: vec![
                Check::new("ok", None, Some(1.0), Band::exact(1.0)),
                Check::new("bad", None, Some(9.0), Band::exact(1.0)),
            ],
            figures: Vec::new(),
            notes: Vec::new(),
            warnings: Vec::new(),
        }];
        let entry = ledger_entry(9, &walls, &sections, 0.0);
        assert_eq!(entry.run, 9);
        assert_eq!((entry.checks_passed, entry.checks_total), (1, 2));
        assert_eq!(entry.quanta_total(), 6000);
        assert_eq!(entry.wall_total_secs, 4.0);
        assert_eq!(entry.wall_digest.len(), 16, "fnv1a hex");
        let text = ledger_json(&entry).to_string();
        let back = hawkeye_analyze::obs::parse_ledger(&text).expect("parse back");
        assert_eq!(back, entry, "writer and parser are exact inverses");
    }

    #[test]
    fn next_run_number_scans_the_ledger_dir() {
        let dir = scratch("ledger");
        assert_eq!(next_run_number(&dir.join("absent")), 1);
        std::fs::write(dir.join("BENCH_3.json"), "{}").expect("write");
        std::fs::write(dir.join("BENCH_11.json"), "{}").expect("write");
        std::fs::write(dir.join("BENCH_x.json"), "{}").expect("write"); // ignored
        assert_eq!(next_run_number(&dir), 12);
    }

    #[test]
    fn load_ledger_sorts_by_run_and_rejects_corruption() {
        let dir = scratch("ledger-load");
        let entry = |n: u64| {
            let r = LedgerRun {
                schema_version: LEDGER_SCHEMA_VERSION,
                run: n,
                checks_passed: 1,
                checks_total: 1,
                targets: Vec::new(),
                wall_total_secs: 0.0,
                wall_digest: "0".repeat(16),
            };
            ledger_json(&r).to_string()
        };
        std::fs::write(dir.join("BENCH_10.json"), entry(10)).expect("write");
        std::fs::write(dir.join("BENCH_2.json"), entry(2)).expect("write");
        std::fs::write(dir.join("notes.txt"), "ignored").expect("write");
        let runs = load_ledger(&dir).expect("load");
        assert_eq!(runs.iter().map(|r| r.run).collect::<Vec<_>>(), vec![2, 10]);
        std::fs::write(dir.join("BENCH_3.json"), "{broken").expect("write");
        let err = load_ledger(&dir).expect_err("corrupt entry must error");
        assert!(err.contains("BENCH_3.json"), "{err}");
    }

    #[test]
    fn render_marks_failures_and_is_deterministic() {
        let sections = vec![Section {
            target: "t",
            paper_ref: "Table 1",
            title: "demo".into(),
            checks: vec![
                Check::new("good", Some(1.0), Some(1.1), Band::around(1.1, 0.05)),
                Check::new("bad", Some(1.0), Some(9.9), Band::around(1.1, 0.05)),
            ],
            figures: vec![Figure { caption: "fig".into(), body: "x\n".into() }],
            notes: vec!["note".into()],
            warnings: vec!["drops happened".into()],
        }];
        let r1 = render(&sections, 0.0);
        assert_eq!(r1, render(&sections, 0.0));
        assert!(r1.contains("**FAIL**"));
        assert!(r1.contains("Δ vs paper"));
        assert!(r1.contains("```text"));
        assert_eq!(failures(&sections, 0.0).len(), 1);
        assert!(failures(&sections, 0.0)[0].contains("bad"));
    }
}
