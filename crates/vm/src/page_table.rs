//! Mixed-granularity page table with accessed/dirty bits.
//!
//! One table maps base pages (4 KB) and huge regions (2 MB) side by side;
//! a huge mapping covers its whole region and shadows any base mapping
//! (the two are kept mutually exclusive per region).
//!
//! Accessed bits are set on every simulated access and sampled-and-cleared
//! by the policies — this is the substrate for Ingens' utilization
//! tracking and HawkEye's access-coverage sampling (§3.3).

use crate::error::MapError;
use crate::types::{Hvpn, PageSize, Vpn};
use hawkeye_mem::Pfn;
use std::collections::BTreeMap;

/// A 4 KB page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseEntry {
    /// Backing frame.
    pub pfn: Pfn,
    /// Hardware accessed bit (set on access, cleared by sampling).
    pub accessed: bool,
    /// Hardware dirty bit.
    pub dirty: bool,
    /// This entry maps the canonical zero page copy-on-write: reads share
    /// the zero frame; the first write must fault to allocate a private
    /// frame. Set by bloat recovery's zero-page de-duplication.
    pub zero_cow: bool,
}

/// A 2 MB page-table entry (`pfn` is huge-aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeEntry {
    /// Backing frame of the first base page (huge-aligned).
    pub pfn: Pfn,
    /// Hardware accessed bit.
    pub accessed: bool,
    /// Hardware dirty bit.
    pub dirty: bool,
}

/// Result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Frame backing the *specific base page* queried (for huge mappings,
    /// the region frame plus the page's offset).
    pub pfn: Pfn,
    /// Granularity of the mapping that translated the address.
    pub size: PageSize,
    /// Whether the mapping is a zero-page COW entry.
    pub zero_cow: bool,
}

/// One access-coverage sample of a huge region (see §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSample {
    /// Base pages currently mapped in the region (0-512); 512 if mapped
    /// huge.
    pub mapped: u32,
    /// Base pages whose accessed bit was set (for huge mappings: 512 if
    /// the single entry was accessed, else 0).
    pub accessed: u32,
    /// Whether the region is mapped by a huge page.
    pub is_huge: bool,
}

/// Mixed 4 KB / 2 MB page table.
///
/// # Examples
///
/// ```
/// use hawkeye_vm::{PageTable, Vpn, Hvpn, PageSize};
/// use hawkeye_mem::Pfn;
///
/// let mut pt = PageTable::new();
/// pt.map_base(Vpn(0), Pfn(10), false)?;
/// pt.map_huge(Hvpn(1), Pfn(512))?;
/// assert_eq!(pt.translate(Vpn(0)).unwrap().size, PageSize::Base);
/// let t = pt.translate(Vpn(512 + 7)).unwrap();
/// assert_eq!(t.size, PageSize::Huge);
/// assert_eq!(t.pfn, Pfn(512 + 7));
/// # Ok::<(), hawkeye_vm::MapError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    base: BTreeMap<Vpn, BaseEntry>,
    huge: BTreeMap<Hvpn, HugeEntry>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of base-page mappings.
    pub fn base_count(&self) -> u64 {
        self.base.len() as u64
    }

    /// Number of huge mappings.
    pub fn huge_count(&self) -> u64 {
        self.huge.len() as u64
    }

    /// Resident set size in base pages (base mappings + 512 per huge
    /// mapping). Zero-COW mappings count, as Linux's RSS does for mapped
    /// zero pages backed by real huge frames; callers wanting "unique"
    /// memory subtract shared zero pages themselves.
    pub fn rss_pages(&self) -> u64 {
        self.base_count() + 512 * self.huge_count()
    }

    /// Translates a base page, without touching accessed bits.
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        if let Some(h) = self.huge.get(&vpn.hvpn()) {
            return Some(Translation {
                pfn: Pfn(h.pfn.0 + vpn.huge_offset()),
                size: PageSize::Huge,
                zero_cow: false,
            });
        }
        self.base.get(&vpn).map(|e| Translation { pfn: e.pfn, size: PageSize::Base, zero_cow: e.zero_cow })
    }

    /// Translates and records an access (sets accessed, and dirty on
    /// writes). Returns `None` when unmapped — the caller takes a fault.
    ///
    /// A *write* to a zero-COW entry also returns `None`: the caller must
    /// take a COW fault and replace the mapping.
    pub fn access(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        if let Some(h) = self.huge.get_mut(&vpn.hvpn()) {
            h.accessed = true;
            h.dirty |= write;
            return Some(Translation {
                pfn: Pfn(h.pfn.0 + vpn.huge_offset()),
                size: PageSize::Huge,
                zero_cow: false,
            });
        }
        let e = self.base.get_mut(&vpn)?;
        if write && e.zero_cow {
            return None;
        }
        e.accessed = true;
        e.dirty |= write;
        Some(Translation { pfn: e.pfn, size: PageSize::Base, zero_cow: e.zero_cow })
    }

    /// Looks up the base entry for `vpn`, if any.
    pub fn base_entry(&self, vpn: Vpn) -> Option<&BaseEntry> {
        self.base.get(&vpn)
    }

    /// Looks up the huge entry for `hvpn`, if any.
    pub fn huge_entry(&self, hvpn: Hvpn) -> Option<&HugeEntry> {
        self.huge.get(&hvpn)
    }

    /// Maps a base page.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if the page is mapped (by a base or
    /// huge entry).
    pub fn map_base(&mut self, vpn: Vpn, pfn: Pfn, zero_cow: bool) -> Result<(), MapError> {
        if self.huge.contains_key(&vpn.hvpn()) || self.base.contains_key(&vpn) {
            return Err(MapError::AlreadyMapped { vpn });
        }
        self.base.insert(vpn, BaseEntry { pfn, accessed: false, dirty: false, zero_cow });
        Ok(())
    }

    /// Maps a huge region.
    ///
    /// # Errors
    ///
    /// [`MapError::HugeAlreadyMapped`] if a huge mapping exists;
    /// [`MapError::AlreadyMapped`] if any base page in the region is
    /// mapped (the caller must collapse/unmap those first).
    pub fn map_huge(&mut self, hvpn: Hvpn, pfn: Pfn) -> Result<(), MapError> {
        if self.huge.contains_key(&hvpn) {
            return Err(MapError::HugeAlreadyMapped { hvpn });
        }
        if let Some((vpn, _)) = self.base.range(hvpn.base_vpn()..=hvpn.vpn_at(511)).next() {
            return Err(MapError::AlreadyMapped { vpn: *vpn });
        }
        self.huge.insert(hvpn, HugeEntry { pfn, accessed: false, dirty: false });
        Ok(())
    }

    /// Removes a base mapping, returning its entry.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no base entry exists for `vpn`.
    pub fn unmap_base(&mut self, vpn: Vpn) -> Result<BaseEntry, MapError> {
        self.base.remove(&vpn).ok_or(MapError::NotMapped { vpn })
    }

    /// Removes a huge mapping, returning its entry.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no huge entry exists for `hvpn`.
    pub fn unmap_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        self.huge.remove(&hvpn).ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })
    }

    /// Splits a huge mapping into 512 base mappings over the same frames
    /// (demotion). Accessed/dirty bits are inherited by every base entry,
    /// as hardware cannot tell which constituent pages were touched.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if the region has no huge mapping.
    pub fn split_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        let entry = self.unmap_huge(hvpn)?;
        for i in 0..512u64 {
            self.base.insert(
                hvpn.vpn_at(i),
                BaseEntry {
                    pfn: Pfn(entry.pfn.0 + i),
                    accessed: entry.accessed,
                    dirty: entry.dirty,
                    zero_cow: false,
                },
            );
        }
        Ok(entry)
    }

    /// Removes and returns every base entry inside a huge region
    /// (promotion collapse: the caller copies the pages into a huge frame
    /// and then maps it with [`PageTable::map_huge`]).
    pub fn take_base_entries_in_region(&mut self, hvpn: Hvpn) -> Vec<(Vpn, BaseEntry)> {
        let keys: Vec<Vpn> =
            self.base.range(hvpn.base_vpn()..=hvpn.vpn_at(511)).map(|(k, _)| *k).collect();
        keys.into_iter().map(|k| (k, self.base.remove(&k).expect("key just seen"))).collect()
    }

    /// Number of base pages mapped in a region (512 for huge mappings) —
    /// Ingens' *utilization* metric.
    pub fn region_mapped_count(&self, hvpn: Hvpn) -> u32 {
        if self.huge.contains_key(&hvpn) {
            return 512;
        }
        self.base.range(hvpn.base_vpn()..=hvpn.vpn_at(511)).count() as u32
    }

    /// Samples a region's accessed bits and clears them — one window of
    /// HawkEye's access-coverage measurement.
    pub fn sample_and_clear_access(&mut self, hvpn: Hvpn) -> AccessSample {
        if let Some(h) = self.huge.get_mut(&hvpn) {
            let accessed = if h.accessed { 512 } else { 0 };
            h.accessed = false;
            return AccessSample { mapped: 512, accessed, is_huge: true };
        }
        let mut mapped = 0;
        let mut accessed = 0;
        for (_, e) in self.base.range_mut(hvpn.base_vpn()..=hvpn.vpn_at(511)) {
            mapped += 1;
            if e.accessed {
                accessed += 1;
                e.accessed = false;
            }
        }
        AccessSample { mapped, accessed, is_huge: false }
    }

    /// Iterates all huge mappings in VA order.
    pub fn huge_mappings(&self) -> impl Iterator<Item = (Hvpn, &HugeEntry)> {
        self.huge.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates all base mappings in VA order.
    pub fn base_mappings(&self) -> impl Iterator<Item = (Vpn, &BaseEntry)> {
        self.base.iter().map(|(k, v)| (*k, v))
    }

    /// The distinct huge regions that currently have any mapping, in VA
    /// order (the scan list used by promotion policies).
    pub fn mapped_regions(&self) -> Vec<Hvpn> {
        let mut out: Vec<Hvpn> = self.huge.keys().copied().collect();
        let mut last: Option<Hvpn> = None;
        for vpn in self.base.keys() {
            let h = vpn.hvpn();
            if last != Some(h) {
                out.push(h);
                last = Some(h);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rewrites the frame of the base mapping at `vpn` (page migration).
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no base entry exists.
    pub fn remap_base(&mut self, vpn: Vpn, new_pfn: Pfn) -> Result<(), MapError> {
        let e = self.base.get_mut(&vpn).ok_or(MapError::NotMapped { vpn })?;
        e.pfn = new_pfn;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_huge_coexist_in_different_regions() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(0), Pfn(1), false).unwrap();
        pt.map_huge(Hvpn(1), Pfn(512)).unwrap();
        assert_eq!(pt.base_count(), 1);
        assert_eq!(pt.huge_count(), 1);
        assert_eq!(pt.rss_pages(), 513);
    }

    #[test]
    fn huge_mapping_shadows_whole_region() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        for i in [0u64, 100, 511] {
            let t = pt.translate(Vpn(i)).unwrap();
            assert_eq!(t.size, PageSize::Huge);
            assert_eq!(t.pfn, Pfn(i));
        }
        assert!(pt.translate(Vpn(512)).is_none());
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(5), Pfn(1), false).unwrap();
        assert!(matches!(pt.map_base(Vpn(5), Pfn(2), false), Err(MapError::AlreadyMapped { .. })));
        // Huge map over existing base entry rejected.
        assert!(matches!(pt.map_huge(Hvpn(0), Pfn(0)), Err(MapError::AlreadyMapped { .. })));
        pt.map_huge(Hvpn(1), Pfn(512)).unwrap();
        assert!(matches!(pt.map_huge(Hvpn(1), Pfn(1024)), Err(MapError::HugeAlreadyMapped { .. })));
        // Base map under a huge mapping rejected.
        assert!(matches!(
            pt.map_base(Vpn(513), Pfn(9), false),
            Err(MapError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn access_sets_and_sampling_clears_bits() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map_base(Vpn(i), Pfn(100 + i), false).unwrap();
        }
        pt.access(Vpn(0), false).unwrap();
        pt.access(Vpn(1), true).unwrap();
        let s = pt.sample_and_clear_access(Hvpn(0));
        assert_eq!(s.mapped, 10);
        assert_eq!(s.accessed, 2);
        assert!(!s.is_huge);
        // Bits were cleared.
        let s2 = pt.sample_and_clear_access(Hvpn(0));
        assert_eq!(s2.accessed, 0);
        // Dirty bit persists.
        assert!(pt.base_entry(Vpn(1)).unwrap().dirty);
        assert!(!pt.base_entry(Vpn(0)).unwrap().dirty);
    }

    #[test]
    fn huge_access_sampling() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(2), Pfn(1024)).unwrap();
        assert_eq!(pt.sample_and_clear_access(Hvpn(2)).accessed, 0);
        pt.access(Vpn(2 * 512 + 3), false).unwrap();
        let s = pt.sample_and_clear_access(Hvpn(2));
        assert_eq!((s.mapped, s.accessed), (512, 512));
        assert!(s.is_huge);
    }

    #[test]
    fn zero_cow_write_faults() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(7), Pfn(0), true).unwrap();
        // Reads succeed.
        let t = pt.access(Vpn(7), false).unwrap();
        assert!(t.zero_cow);
        // Writes demand a COW fault.
        assert!(pt.access(Vpn(7), true).is_none());
        // Kernel resolves the fault by remapping.
        pt.unmap_base(Vpn(7)).unwrap();
        pt.map_base(Vpn(7), Pfn(55), false).unwrap();
        assert!(pt.access(Vpn(7), true).is_some());
    }

    #[test]
    fn split_huge_inherits_bits() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        pt.access(Vpn(5), true).unwrap();
        let e = pt.split_huge(Hvpn(0)).unwrap();
        assert_eq!(e.pfn, Pfn(0));
        assert_eq!(pt.base_count(), 512);
        assert_eq!(pt.huge_count(), 0);
        let b = pt.base_entry(Vpn(100)).unwrap();
        assert_eq!(b.pfn, Pfn(100));
        assert!(b.accessed && b.dirty);
    }

    #[test]
    fn collapse_takes_all_entries() {
        let mut pt = PageTable::new();
        for i in 0..50 {
            pt.map_base(Vpn(i * 2), Pfn(i), false).unwrap();
        }
        let taken = pt.take_base_entries_in_region(Hvpn(0));
        assert_eq!(taken.len(), 50);
        assert_eq!(pt.base_count(), 0);
        pt.map_huge(Hvpn(0), Pfn(512)).unwrap();
        assert_eq!(pt.region_mapped_count(Hvpn(0)), 512);
    }

    #[test]
    fn mapped_regions_sorted_and_deduped() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(1030), Pfn(1), false).unwrap();
        pt.map_base(Vpn(1031), Pfn(2), false).unwrap();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        pt.map_base(Vpn(5000), Pfn(3), false).unwrap();
        assert_eq!(pt.mapped_regions(), vec![Hvpn(0), Hvpn(2), Hvpn(9)]);
    }

    #[test]
    fn remap_base_moves_frame() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(3), Pfn(9), false).unwrap();
        pt.remap_base(Vpn(3), Pfn(90)).unwrap();
        assert_eq!(pt.translate(Vpn(3)).unwrap().pfn, Pfn(90));
        assert!(pt.remap_base(Vpn(4), Pfn(1)).is_err());
    }

    #[test]
    fn region_mapped_count_partial() {
        let mut pt = PageTable::new();
        for i in 0..461 {
            pt.map_base(Vpn(i), Pfn(i), false).unwrap();
        }
        // 461/512 = 90%: Ingens' default promotion threshold.
        assert_eq!(pt.region_mapped_count(Hvpn(0)), 461);
    }
}
