//! Mixed-granularity page table with accessed/dirty bits.
//!
//! One table maps base pages (4 KB) and huge regions (2 MB) side by side;
//! a huge mapping covers its whole region and shadows any base mapping
//! (the two are kept mutually exclusive per region).
//!
//! Accessed bits are set on every simulated access and sampled-and-cleared
//! by the policies — this is the substrate for Ingens' utilization
//! tracking and HawkEye's access-coverage sampling (§3.3).
//!
//! # Layout
//!
//! Entries are stored per 2 MB region in a `RegionChunk`: one optional
//! huge entry plus 512 frame slots and mapped/accessed/dirty/zero-COW
//! bitmaps. Intra-region operations are O(1) array/bit work and region
//! coverage sampling is a popcount, instead of per-page tree lookups.
//!
//! Chunks live in an **arena** (`Vec<RegionChunk>` with a free list)
//! behind a dense `Hvpn`-indexed slot map, so the translation hot path
//! does one bounds-checked array load instead of a tree descent. Virtual
//! address space in the simulator is footprint-bounded (workloads map at
//! low VAs), so the dense index stays small — a few KiB per GiB of VA.
//! A region has a chunk iff it has at least one mapping; VA-ordered
//! iteration scans the index, so region scans remain deterministic.
//!
//! # Translation cache
//!
//! The table embeds a small set-associative software translation cache on
//! the [`PageTable::access`] hot path, with an LRU clock per entry. Base
//! pages are cached per-VPN; huge mappings are cached **per region** (one
//! entry satisfies all 512 constituent pages), which keeps the cache
//! effective for large promoted working sets. A cached entry may satisfy
//! an access without touching the chunk only when doing so is invisible:
//! the entry's accessed bit is known set, and (for writes) its dirty bit
//! too, so the access would not change any table state. Every mutation
//! (map/unmap/split/collapse/remap) and every accessed-bit clear bumps a
//! generation counter that invalidates the whole cache in O(1) — the
//! invalidation contract callers would otherwise have to wire through
//! each path by hand. Disable with
//! [`PageTable::set_translation_cache_enabled`] to differentially test
//! that cached and uncached execution are bit-identical.

use crate::error::MapError;
use crate::types::{Hvpn, PageSize, Vpn};
use hawkeye_mem::Pfn;

/// Pages per huge region.
const REGION_PAGES: usize = 512;
/// Bitmap words per region.
const WORDS: usize = REGION_PAGES / 64;
/// Translation-cache geometry: `TC_SETS` sets of `TC_WAYS` ways, indexed
/// by the low bits of the page (base) or region (huge) number.
const TC_SETS: usize = 512;
/// Ways per translation-cache set (victims chosen by LRU clock).
const TC_WAYS: usize = 4;

/// A 4 KB page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseEntry {
    /// Backing frame.
    pub pfn: Pfn,
    /// Hardware accessed bit (set on access, cleared by sampling).
    pub accessed: bool,
    /// Hardware dirty bit.
    pub dirty: bool,
    /// This entry maps the canonical zero page copy-on-write: reads share
    /// the zero frame; the first write must fault to allocate a private
    /// frame. Set by bloat recovery's zero-page de-duplication.
    pub zero_cow: bool,
}

/// A 2 MB page-table entry (`pfn` is huge-aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeEntry {
    /// Backing frame of the first base page (huge-aligned).
    pub pfn: Pfn,
    /// Hardware accessed bit.
    pub accessed: bool,
    /// Hardware dirty bit.
    pub dirty: bool,
}

/// Result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Frame backing the *specific base page* queried (for huge mappings,
    /// the region frame plus the page's offset).
    pub pfn: Pfn,
    /// Granularity of the mapping that translated the address.
    pub size: PageSize,
    /// Whether the mapping is a zero-page COW entry.
    pub zero_cow: bool,
}

/// One access-coverage sample of a huge region (see §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSample {
    /// Base pages currently mapped in the region (0-512); 512 if mapped
    /// huge.
    pub mapped: u32,
    /// Base pages whose accessed bit was set (for huge mappings: 512 if
    /// the single entry was accessed, else 0).
    pub accessed: u32,
    /// Whether the region is mapped by a huge page.
    pub is_huge: bool,
}

/// Per-region storage: an optional huge entry, or up to 512 base entries
/// as parallel frame slots + bitmaps. ~4.5 KB, arena-allocated.
#[derive(Debug, Clone)]
struct RegionChunk {
    huge: Option<HugeEntry>,
    mapped: [u64; WORDS],
    accessed: [u64; WORDS],
    dirty: [u64; WORDS],
    zero_cow: [u64; WORDS],
    mapped_count: u32,
    pfns: [Pfn; REGION_PAGES],
}

impl RegionChunk {
    fn new() -> Self {
        RegionChunk {
            huge: None,
            mapped: [0; WORDS],
            accessed: [0; WORDS],
            dirty: [0; WORDS],
            zero_cow: [0; WORDS],
            mapped_count: 0,
            pfns: [Pfn(0); REGION_PAGES],
        }
    }

    /// Returns a recycled chunk to its pristine state (`pfns` may keep
    /// stale values: they are only read under a set `mapped` bit).
    fn reset(&mut self) {
        self.huge = None;
        self.mapped = [0; WORDS];
        self.accessed = [0; WORDS];
        self.dirty = [0; WORDS];
        self.zero_cow = [0; WORDS];
        self.mapped_count = 0;
    }

    #[inline]
    fn bit(map: &[u64; WORDS], i: usize) -> bool {
        map[i / 64] >> (i % 64) & 1 != 0
    }

    #[inline]
    fn set(map: &mut [u64; WORDS], i: usize, v: bool) {
        let mask = 1u64 << (i % 64);
        if v {
            map[i / 64] |= mask;
        } else {
            map[i / 64] &= !mask;
        }
    }

    fn base_entry(&self, i: usize) -> Option<BaseEntry> {
        if !Self::bit(&self.mapped, i) {
            return None;
        }
        Some(BaseEntry {
            pfn: self.pfns[i],
            accessed: Self::bit(&self.accessed, i),
            dirty: Self::bit(&self.dirty, i),
            zero_cow: Self::bit(&self.zero_cow, i),
        })
    }

    /// First mapped page offset, if any.
    fn first_mapped(&self) -> Option<usize> {
        for (w, word) in self.mapped.iter().enumerate() {
            if *word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.huge.is_none() && self.mapped_count == 0
    }
}

/// One translation-cache entry. Valid iff `epoch` matches the table's
/// current generation and `key` matches the lookup: base pages are keyed
/// `vpn << 1`, huge regions `hvpn << 1 | 1` (one region entry serves all
/// 512 constituent pages). `stamp` is the LRU clock value of the entry's
/// last use; the lowest stamp in a set is the eviction victim.
#[derive(Debug, Clone, Copy)]
struct TcEntry {
    key: u64,
    /// Base frame (huge entries store the region's first frame).
    pfn: Pfn,
    zero_cow: bool,
    /// The underlying entry's dirty bit at insertion time (its accessed
    /// bit is always set — insertion happens right after an access).
    dirty: bool,
    epoch: u64,
    stamp: u64,
}

const TC_INVALID: TcEntry =
    TcEntry { key: 0, pfn: Pfn(0), zero_cow: false, dirty: false, epoch: 0, stamp: 0 };

/// Mixed 4 KB / 2 MB page table.
///
/// # Examples
///
/// ```
/// use hawkeye_vm::{PageTable, Vpn, Hvpn, PageSize};
/// use hawkeye_mem::Pfn;
///
/// let mut pt = PageTable::new();
/// pt.map_base(Vpn(0), Pfn(10), false)?;
/// pt.map_huge(Hvpn(1), Pfn(512))?;
/// assert_eq!(pt.translate(Vpn(0)).unwrap().size, PageSize::Base);
/// let t = pt.translate(Vpn(512 + 7)).unwrap();
/// assert_eq!(t.size, PageSize::Huge);
/// assert_eq!(t.pfn, Pfn(512 + 7));
/// # Ok::<(), hawkeye_vm::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    /// Chunk arena; slots are recycled through `free`.
    arena: Vec<RegionChunk>,
    /// Recycled arena slots.
    free: Vec<u32>,
    /// Dense `Hvpn -> arena slot + 1` map (0 = no chunk), grown on demand.
    index: Vec<u32>,
    base_total: u64,
    huge_total: u64,
    /// Translation generation; bumped on any mutation or accessed-bit
    /// clear, invalidating every cache slot at once.
    epoch: u64,
    cache_enabled: bool,
    cache: Vec<TcEntry>,
    /// LRU clock for the translation cache (monotonic per table).
    tc_clock: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        PageTable {
            arena: Vec::new(),
            free: Vec::new(),
            index: Vec::new(),
            base_total: 0,
            huge_total: 0,
            epoch: 1,
            cache_enabled: true,
            cache: vec![TC_INVALID; TC_SETS * TC_WAYS],
            tc_clock: 0,
        }
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables the embedded translation cache. Execution must
    /// be bit-identical either way; the switch exists for differential
    /// testing and debugging.
    pub fn set_translation_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Whether the translation cache is consulted on the access path.
    pub fn translation_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    #[inline]
    fn invalidate_cache(&mut self) {
        self.epoch += 1;
    }

    /// Arena chunk for `hvpn`, if the region has any mapping.
    #[inline]
    fn chunk(&self, hvpn: Hvpn) -> Option<&RegionChunk> {
        match self.index.get(hvpn.0 as usize) {
            Some(&slot) if slot != 0 => Some(&self.arena[slot as usize - 1]),
            _ => None,
        }
    }

    /// Mutable arena chunk for `hvpn`, if the region has any mapping.
    #[inline]
    fn chunk_mut(&mut self, hvpn: Hvpn) -> Option<&mut RegionChunk> {
        match self.index.get(hvpn.0 as usize) {
            Some(&slot) if slot != 0 => Some(&mut self.arena[slot as usize - 1]),
            _ => None,
        }
    }

    /// Chunk for `hvpn`, allocating (or recycling) an arena slot if the
    /// region has none yet.
    fn chunk_or_insert(&mut self, hvpn: Hvpn) -> &mut RegionChunk {
        let h = hvpn.0 as usize;
        if h >= self.index.len() {
            self.index.resize(h + 1, 0);
        }
        if self.index[h] == 0 {
            let slot = match self.free.pop() {
                Some(s) => {
                    self.arena[s as usize].reset();
                    s
                }
                None => {
                    self.arena.push(RegionChunk::new());
                    (self.arena.len() - 1) as u32
                }
            };
            self.index[h] = slot + 1;
        }
        &mut self.arena[self.index[h] as usize - 1]
    }

    /// Releases `hvpn`'s chunk back to the arena if it became empty.
    fn release_if_empty(&mut self, hvpn: Hvpn) {
        let h = hvpn.0 as usize;
        if let Some(&slot) = self.index.get(h) {
            if slot != 0 && self.arena[slot as usize - 1].is_empty() {
                self.index[h] = 0;
                self.free.push(slot - 1);
            }
        }
    }

    /// Live `(Hvpn, chunk)` pairs in VA order.
    #[inline]
    fn regions(&self) -> impl Iterator<Item = (Hvpn, &RegionChunk)> {
        self.index
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != 0)
            .map(|(h, &slot)| (Hvpn(h as u64), &self.arena[slot as usize - 1]))
    }

    /// Number of base-page mappings.
    pub fn base_count(&self) -> u64 {
        self.base_total
    }

    /// Number of huge mappings.
    pub fn huge_count(&self) -> u64 {
        self.huge_total
    }

    /// Resident set size in base pages (base mappings + 512 per huge
    /// mapping). Zero-COW mappings count, as Linux's RSS does for mapped
    /// zero pages backed by real huge frames; callers wanting "unique"
    /// memory subtract shared zero pages themselves.
    pub fn rss_pages(&self) -> u64 {
        self.base_count() + 512 * self.huge_count()
    }

    /// Translates a base page, without touching accessed bits.
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        let c = self.chunk(vpn.hvpn())?;
        if let Some(h) = &c.huge {
            return Some(Translation {
                pfn: Pfn(h.pfn.0 + vpn.huge_offset()),
                size: PageSize::Huge,
                zero_cow: false,
            });
        }
        let i = vpn.huge_offset() as usize;
        if !RegionChunk::bit(&c.mapped, i) {
            return None;
        }
        Some(Translation {
            pfn: c.pfns[i],
            size: PageSize::Base,
            zero_cow: RegionChunk::bit(&c.zero_cow, i),
        })
    }

    /// Probes one translation-cache set for `key`; on hit, refreshes the
    /// entry's LRU stamp and returns its (pfn, zero_cow, dirty).
    #[inline]
    fn tc_lookup(&mut self, key: u64) -> Option<(Pfn, bool, bool)> {
        let set = (key >> 1) as usize % TC_SETS * TC_WAYS;
        let epoch = self.epoch;
        self.tc_clock += 1;
        let stamp = self.tc_clock;
        for e in &mut self.cache[set..set + TC_WAYS] {
            if e.epoch == epoch && e.key == key {
                e.stamp = stamp;
                return Some((e.pfn, e.zero_cow, e.dirty));
            }
        }
        None
    }

    /// Fills `key`'s set, evicting the stale or least-recently-used way.
    #[inline]
    fn tc_fill(&mut self, key: u64, pfn: Pfn, zero_cow: bool, dirty: bool) {
        let set = (key >> 1) as usize % TC_SETS * TC_WAYS;
        let epoch = self.epoch;
        self.tc_clock += 1;
        let stamp = self.tc_clock;
        let ways = &mut self.cache[set..set + TC_WAYS];
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.epoch != epoch { 0 } else { e.stamp + 1 })
            .map(|(i, _)| i)
            .unwrap_or(0);
        ways[victim] = TcEntry { key, pfn, zero_cow, dirty, epoch, stamp };
    }

    /// Translates and records an access (sets accessed, and dirty on
    /// writes). Returns `None` when unmapped — the caller takes a fault.
    ///
    /// A *write* to a zero-COW entry also returns `None`: the caller must
    /// take a COW fault and replace the mapping.
    #[inline]
    pub fn access(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        if self.cache_enabled {
            // A hit may bypass the chunk only when the access would be a
            // no-op on table state: accessed already set (invariant of
            // cached entries), dirty already set for writes, and not a
            // zero-COW write (which must fault). Huge regions are probed
            // first: one region entry covers all 512 pages.
            if let Some((pfn, _, dirty)) = self.tc_lookup(vpn.hvpn().0 << 1 | 1) {
                if !write || dirty {
                    return Some(Translation {
                        pfn: Pfn(pfn.0 + vpn.huge_offset()),
                        size: PageSize::Huge,
                        zero_cow: false,
                    });
                }
            } else if let Some((pfn, zero_cow, dirty)) = self.tc_lookup(vpn.0 << 1) {
                if !write || (dirty && !zero_cow) {
                    return Some(Translation { pfn, size: PageSize::Base, zero_cow });
                }
            }
        }
        self.access_slow(vpn, write)
    }

    fn access_slow(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        let cache_enabled = self.cache_enabled;
        let c = self.chunk_mut(vpn.hvpn())?;
        if let Some(h) = &mut c.huge {
            h.accessed = true;
            h.dirty |= write;
            let (pfn, dirty) = (h.pfn, h.dirty);
            let t = Translation {
                pfn: Pfn(pfn.0 + vpn.huge_offset()),
                size: PageSize::Huge,
                zero_cow: false,
            };
            if cache_enabled {
                self.tc_fill(vpn.hvpn().0 << 1 | 1, pfn, false, dirty);
            }
            return Some(t);
        }
        let i = vpn.huge_offset() as usize;
        if !RegionChunk::bit(&c.mapped, i) {
            return None;
        }
        let zero_cow = RegionChunk::bit(&c.zero_cow, i);
        if write && zero_cow {
            return None;
        }
        RegionChunk::set(&mut c.accessed, i, true);
        if write {
            RegionChunk::set(&mut c.dirty, i, true);
        }
        let t = Translation { pfn: c.pfns[i], size: PageSize::Base, zero_cow };
        let dirty = RegionChunk::bit(&c.dirty, i);
        if cache_enabled {
            self.tc_fill(vpn.0 << 1, t.pfn, zero_cow, dirty);
        }
        Some(t)
    }

    /// Looks up the base entry for `vpn`, if any.
    pub fn base_entry(&self, vpn: Vpn) -> Option<BaseEntry> {
        self.chunk(vpn.hvpn())?.base_entry(vpn.huge_offset() as usize)
    }

    /// Looks up the huge entry for `hvpn`, if any.
    pub fn huge_entry(&self, hvpn: Hvpn) -> Option<&HugeEntry> {
        self.chunk(hvpn)?.huge.as_ref()
    }

    /// Maps a base page.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if the page is mapped (by a base or
    /// huge entry).
    pub fn map_base(&mut self, vpn: Vpn, pfn: Pfn, zero_cow: bool) -> Result<(), MapError> {
        let c = self.chunk_or_insert(vpn.hvpn());
        let i = vpn.huge_offset() as usize;
        if c.huge.is_some() || RegionChunk::bit(&c.mapped, i) {
            // Roll back a chunk this call created.
            self.release_if_empty(vpn.hvpn());
            return Err(MapError::AlreadyMapped { vpn });
        }
        RegionChunk::set(&mut c.mapped, i, true);
        RegionChunk::set(&mut c.accessed, i, false);
        RegionChunk::set(&mut c.dirty, i, false);
        RegionChunk::set(&mut c.zero_cow, i, zero_cow);
        c.pfns[i] = pfn;
        c.mapped_count += 1;
        self.base_total += 1;
        self.invalidate_cache();
        Ok(())
    }

    /// Maps a huge region.
    ///
    /// # Errors
    ///
    /// [`MapError::HugeAlreadyMapped`] if a huge mapping exists;
    /// [`MapError::AlreadyMapped`] if any base page in the region is
    /// mapped (the caller must collapse/unmap those first).
    pub fn map_huge(&mut self, hvpn: Hvpn, pfn: Pfn) -> Result<(), MapError> {
        if let Some(c) = self.chunk(hvpn) {
            if c.huge.is_some() {
                return Err(MapError::HugeAlreadyMapped { hvpn });
            }
            if let Some(i) = c.first_mapped() {
                return Err(MapError::AlreadyMapped { vpn: hvpn.vpn_at(i as u64) });
            }
        }
        let c = self.chunk_or_insert(hvpn);
        c.huge = Some(HugeEntry { pfn, accessed: false, dirty: false });
        self.huge_total += 1;
        self.invalidate_cache();
        Ok(())
    }

    /// Removes a base mapping, returning its entry.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no base entry exists for `vpn`.
    pub fn unmap_base(&mut self, vpn: Vpn) -> Result<BaseEntry, MapError> {
        let hvpn = vpn.hvpn();
        let c = self.chunk_mut(hvpn).ok_or(MapError::NotMapped { vpn })?;
        let i = vpn.huge_offset() as usize;
        let e = c.base_entry(i).ok_or(MapError::NotMapped { vpn })?;
        RegionChunk::set(&mut c.mapped, i, false);
        RegionChunk::set(&mut c.accessed, i, false);
        RegionChunk::set(&mut c.dirty, i, false);
        RegionChunk::set(&mut c.zero_cow, i, false);
        c.mapped_count -= 1;
        self.release_if_empty(hvpn);
        self.base_total -= 1;
        self.invalidate_cache();
        Ok(e)
    }

    /// Removes a huge mapping, returning its entry.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no huge entry exists for `hvpn`.
    pub fn unmap_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        let c = self.chunk_mut(hvpn).ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        let e = c.huge.take().ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        self.release_if_empty(hvpn);
        self.huge_total -= 1;
        self.invalidate_cache();
        Ok(e)
    }

    /// Splits a huge mapping into 512 base mappings over the same frames
    /// (demotion). Accessed/dirty bits are inherited by every base entry,
    /// as hardware cannot tell which constituent pages were touched.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if the region has no huge mapping.
    pub fn split_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        let c = self.chunk_mut(hvpn).ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        let entry = c.huge.take().ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        c.mapped = [u64::MAX; WORDS];
        c.accessed = if entry.accessed { [u64::MAX; WORDS] } else { [0; WORDS] };
        c.dirty = if entry.dirty { [u64::MAX; WORDS] } else { [0; WORDS] };
        c.zero_cow = [0; WORDS];
        c.mapped_count = REGION_PAGES as u32;
        for (i, slot) in c.pfns.iter_mut().enumerate() {
            *slot = Pfn(entry.pfn.0 + i as u64);
        }
        self.huge_total -= 1;
        self.base_total += REGION_PAGES as u64;
        self.invalidate_cache();
        Ok(entry)
    }

    /// Removes every base entry inside a huge region, feeding each to `f`
    /// in VA order (promotion collapse: the caller copies the pages into
    /// a huge frame and then maps it with [`PageTable::map_huge`]).
    pub fn take_base_entries_in_region(
        &mut self,
        hvpn: Hvpn,
        mut f: impl FnMut(Vpn, BaseEntry),
    ) {
        let Some(c) = self.chunk_mut(hvpn) else { return };
        let count = c.mapped_count;
        let mut remaining = count;
        let mut i = 0;
        while remaining > 0 && i < REGION_PAGES {
            if let Some(e) = c.base_entry(i) {
                remaining -= 1;
                f(hvpn.vpn_at(i as u64), e);
            }
            i += 1;
        }
        c.mapped = [0; WORDS];
        c.accessed = [0; WORDS];
        c.dirty = [0; WORDS];
        c.zero_cow = [0; WORDS];
        c.mapped_count = 0;
        self.base_total -= count as u64;
        self.release_if_empty(hvpn);
        self.invalidate_cache();
    }

    /// Removes every base entry with `start <= vpn < end`, feeding each
    /// to `f` in VA order (range unmap support; only regions intersecting
    /// the range are visited, and nothing is allocated).
    pub fn take_base_entries_in_range(
        &mut self,
        start: Vpn,
        end: Vpn,
        mut f: impl FnMut(Vpn, BaseEntry),
    ) {
        if end.0 <= start.0 {
            return;
        }
        let hstart = start.hvpn().0;
        let hend = Vpn(end.0 - 1).hvpn().0;
        let mut removed_any = false;
        for h in hstart..=hend {
            let hvpn = Hvpn(h);
            let Some(c) = self.chunk_mut(hvpn) else { continue };
            if c.huge.is_some() {
                continue;
            }
            let lo = start.0.saturating_sub(hvpn.base_vpn().0).min(REGION_PAGES as u64) as usize;
            let hi = (end.0 - hvpn.base_vpn().0).min(REGION_PAGES as u64) as usize;
            let mut removed = 0u64;
            for i in lo..hi {
                let Some(e) = c.base_entry(i) else { continue };
                RegionChunk::set(&mut c.mapped, i, false);
                RegionChunk::set(&mut c.accessed, i, false);
                RegionChunk::set(&mut c.dirty, i, false);
                RegionChunk::set(&mut c.zero_cow, i, false);
                c.mapped_count -= 1;
                removed += 1;
                f(hvpn.vpn_at(i as u64), e);
            }
            self.base_total -= removed;
            removed_any |= removed > 0;
            self.release_if_empty(hvpn);
        }
        if removed_any {
            self.invalidate_cache();
        }
    }

    /// Number of base pages mapped in a region (512 for huge mappings) —
    /// Ingens' *utilization* metric.
    pub fn region_mapped_count(&self, hvpn: Hvpn) -> u32 {
        match self.chunk(hvpn) {
            None => 0,
            Some(c) if c.huge.is_some() => 512,
            Some(c) => c.mapped_count,
        }
    }

    /// Samples a region's accessed bits and clears them — one window of
    /// HawkEye's access-coverage measurement. Coverage is a popcount over
    /// the region's accessed bitmap.
    pub fn sample_and_clear_access(&mut self, hvpn: Hvpn) -> AccessSample {
        let Some(c) = self.chunk_mut(hvpn) else { return AccessSample::default() };
        let s = if let Some(h) = &mut c.huge {
            let accessed = if h.accessed { 512 } else { 0 };
            h.accessed = false;
            AccessSample { mapped: 512, accessed, is_huge: true }
        } else {
            let accessed: u32 = c.accessed.iter().map(|w| w.count_ones()).sum();
            c.accessed = [0; WORDS];
            AccessSample { mapped: c.mapped_count, accessed, is_huge: false }
        };
        // Cached entries assume their accessed bit is still set.
        self.invalidate_cache();
        s
    }

    /// Clears a region's accessed bits without computing the sample (the
    /// "arm" phase of two-phase sampling).
    pub fn clear_region_access(&mut self, hvpn: Hvpn) {
        let Some(c) = self.chunk_mut(hvpn) else { return };
        if let Some(h) = &mut c.huge {
            h.accessed = false;
        } else {
            c.accessed = [0; WORDS];
        }
        self.invalidate_cache();
    }

    /// Iterates all huge mappings in VA order.
    pub fn huge_mappings(&self) -> impl Iterator<Item = (Hvpn, &HugeEntry)> {
        self.regions().filter_map(|(h, c)| c.huge.as_ref().map(|e| (h, e)))
    }

    /// Iterates all base mappings in VA order.
    pub fn base_mappings(&self) -> impl Iterator<Item = (Vpn, BaseEntry)> + '_ {
        self.regions().flat_map(|(h, c)| {
            (0..REGION_PAGES).filter_map(move |i| c.base_entry(i).map(|e| (h.vpn_at(i as u64), e)))
        })
    }

    /// The base mappings of one region in VA order (per-region scans
    /// without walking the whole table).
    pub fn base_mappings_in_region(
        &self,
        hvpn: Hvpn,
    ) -> impl Iterator<Item = (Vpn, BaseEntry)> + '_ {
        self.chunk(hvpn)
            .into_iter()
            .flat_map(move |c| {
                (0..REGION_PAGES)
                    .filter_map(move |i| c.base_entry(i).map(|e| (hvpn.vpn_at(i as u64), e)))
            })
    }

    /// The VPNs of base mappings in `[start, end)`, in VA order (only
    /// regions intersecting the range are visited).
    pub fn base_vpns_in_range(&self, start: Vpn, end: Vpn) -> impl Iterator<Item = Vpn> + '_ {
        let hstart = start.hvpn().0;
        let hend = if end.0 <= start.0 { 0 } else { Vpn(end.0 - 1).hvpn().0 + 1 };
        (hstart..hend)
            .filter_map(|h| self.chunk(Hvpn(h)).map(|c| (Hvpn(h), c)))
            .flat_map(move |(h, c)| {
                (0..REGION_PAGES).filter_map(move |i| {
                    let vpn = h.vpn_at(i as u64);
                    (vpn >= start && vpn < end && RegionChunk::bit(&c.mapped, i)).then_some(vpn)
                })
            })
    }

    /// The distinct huge regions that currently have any mapping, in VA
    /// order (the scan list used by promotion policies).
    pub fn mapped_regions(&self) -> impl Iterator<Item = Hvpn> + '_ {
        self.regions().map(|(h, _)| h)
    }

    /// The regions mapped only by base pages, in VA order — promotion
    /// candidates, without the allocation-and-filter dance over
    /// [`PageTable::mapped_regions`].
    pub fn base_only_regions(&self) -> impl Iterator<Item = Hvpn> + '_ {
        self.regions().filter(|(_, c)| c.huge.is_none()).map(|(h, _)| h)
    }

    /// Rewrites the frame of the base mapping at `vpn` (page migration).
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no base entry exists.
    pub fn remap_base(&mut self, vpn: Vpn, new_pfn: Pfn) -> Result<(), MapError> {
        let c = self.chunk_mut(vpn.hvpn()).ok_or(MapError::NotMapped { vpn })?;
        let i = vpn.huge_offset() as usize;
        if c.huge.is_some() || !RegionChunk::bit(&c.mapped, i) {
            return Err(MapError::NotMapped { vpn });
        }
        c.pfns[i] = new_pfn;
        self.invalidate_cache();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects [`PageTable::take_base_entries_in_region`]'s callback
    /// stream (the old `Vec` return, for assertions).
    fn take_region(pt: &mut PageTable, hvpn: Hvpn) -> Vec<(Vpn, BaseEntry)> {
        let mut out = Vec::new();
        pt.take_base_entries_in_region(hvpn, |v, e| out.push((v, e)));
        out
    }

    #[test]
    fn base_and_huge_coexist_in_different_regions() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(0), Pfn(1), false).unwrap();
        pt.map_huge(Hvpn(1), Pfn(512)).unwrap();
        assert_eq!(pt.base_count(), 1);
        assert_eq!(pt.huge_count(), 1);
        assert_eq!(pt.rss_pages(), 513);
    }

    #[test]
    fn huge_mapping_shadows_whole_region() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        for i in [0u64, 100, 511] {
            let t = pt.translate(Vpn(i)).unwrap();
            assert_eq!(t.size, PageSize::Huge);
            assert_eq!(t.pfn, Pfn(i));
        }
        assert!(pt.translate(Vpn(512)).is_none());
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(5), Pfn(1), false).unwrap();
        assert!(matches!(pt.map_base(Vpn(5), Pfn(2), false), Err(MapError::AlreadyMapped { .. })));
        // Huge map over existing base entry rejected.
        assert!(matches!(pt.map_huge(Hvpn(0), Pfn(0)), Err(MapError::AlreadyMapped { .. })));
        pt.map_huge(Hvpn(1), Pfn(512)).unwrap();
        assert!(matches!(pt.map_huge(Hvpn(1), Pfn(1024)), Err(MapError::HugeAlreadyMapped { .. })));
        // Base map under a huge mapping rejected.
        assert!(matches!(
            pt.map_base(Vpn(513), Pfn(9), false),
            Err(MapError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn access_sets_and_sampling_clears_bits() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map_base(Vpn(i), Pfn(100 + i), false).unwrap();
        }
        pt.access(Vpn(0), false).unwrap();
        pt.access(Vpn(1), true).unwrap();
        let s = pt.sample_and_clear_access(Hvpn(0));
        assert_eq!(s.mapped, 10);
        assert_eq!(s.accessed, 2);
        assert!(!s.is_huge);
        // Bits were cleared.
        let s2 = pt.sample_and_clear_access(Hvpn(0));
        assert_eq!(s2.accessed, 0);
        // Dirty bit persists.
        assert!(pt.base_entry(Vpn(1)).unwrap().dirty);
        assert!(!pt.base_entry(Vpn(0)).unwrap().dirty);
    }

    #[test]
    fn huge_access_sampling() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(2), Pfn(1024)).unwrap();
        assert_eq!(pt.sample_and_clear_access(Hvpn(2)).accessed, 0);
        pt.access(Vpn(2 * 512 + 3), false).unwrap();
        let s = pt.sample_and_clear_access(Hvpn(2));
        assert_eq!((s.mapped, s.accessed), (512, 512));
        assert!(s.is_huge);
    }

    #[test]
    fn zero_cow_write_faults() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(7), Pfn(0), true).unwrap();
        // Reads succeed.
        let t = pt.access(Vpn(7), false).unwrap();
        assert!(t.zero_cow);
        // Writes demand a COW fault — including via a fresh cached entry.
        assert!(pt.access(Vpn(7), true).is_none());
        // Kernel resolves the fault by remapping.
        pt.unmap_base(Vpn(7)).unwrap();
        pt.map_base(Vpn(7), Pfn(55), false).unwrap();
        assert!(pt.access(Vpn(7), true).is_some());
    }

    #[test]
    fn split_huge_inherits_bits() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        pt.access(Vpn(5), true).unwrap();
        let e = pt.split_huge(Hvpn(0)).unwrap();
        assert_eq!(e.pfn, Pfn(0));
        assert_eq!(pt.base_count(), 512);
        assert_eq!(pt.huge_count(), 0);
        let b = pt.base_entry(Vpn(100)).unwrap();
        assert_eq!(b.pfn, Pfn(100));
        assert!(b.accessed && b.dirty);
    }

    #[test]
    fn collapse_takes_all_entries() {
        let mut pt = PageTable::new();
        for i in 0..50 {
            pt.map_base(Vpn(i * 2), Pfn(i), false).unwrap();
        }
        let taken = take_region(&mut pt, Hvpn(0));
        assert_eq!(taken.len(), 50);
        assert_eq!(pt.base_count(), 0);
        pt.map_huge(Hvpn(0), Pfn(512)).unwrap();
        assert_eq!(pt.region_mapped_count(Hvpn(0)), 512);
    }

    #[test]
    fn mapped_regions_sorted_and_deduped() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(1030), Pfn(1), false).unwrap();
        pt.map_base(Vpn(1031), Pfn(2), false).unwrap();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        pt.map_base(Vpn(5000), Pfn(3), false).unwrap();
        assert_eq!(pt.mapped_regions().collect::<Vec<_>>(), vec![Hvpn(0), Hvpn(2), Hvpn(9)]);
        assert_eq!(pt.base_only_regions().collect::<Vec<_>>(), vec![Hvpn(2), Hvpn(9)]);
    }

    #[test]
    fn remap_base_moves_frame() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(3), Pfn(9), false).unwrap();
        pt.remap_base(Vpn(3), Pfn(90)).unwrap();
        assert_eq!(pt.translate(Vpn(3)).unwrap().pfn, Pfn(90));
        assert!(pt.remap_base(Vpn(4), Pfn(1)).is_err());
    }

    #[test]
    fn region_mapped_count_partial() {
        let mut pt = PageTable::new();
        for i in 0..461 {
            pt.map_base(Vpn(i), Pfn(i), false).unwrap();
        }
        // 461/512 = 90%: Ingens' default promotion threshold.
        assert_eq!(pt.region_mapped_count(Hvpn(0)), 461);
    }

    #[test]
    fn empty_chunks_are_dropped() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(5), Pfn(1), false).unwrap();
        pt.unmap_base(Vpn(5)).unwrap();
        assert_eq!(pt.mapped_regions().count(), 0);
        pt.map_huge(Hvpn(3), Pfn(512)).unwrap();
        pt.unmap_huge(Hvpn(3)).unwrap();
        assert_eq!(pt.mapped_regions().count(), 0);
        assert_eq!(pt.rss_pages(), 0);
    }

    #[test]
    fn arena_recycles_released_chunks() {
        let mut pt = PageTable::new();
        // Map and fully release a run of regions, twice: the second pass
        // must reuse the first pass's arena slots rather than grow.
        for round in 0..2 {
            for h in 0..8u64 {
                pt.map_huge(Hvpn(h), Pfn(h * 512)).unwrap();
            }
            assert_eq!(pt.huge_count(), 8, "round {round}");
            for h in 0..8u64 {
                pt.unmap_huge(Hvpn(h)).unwrap();
            }
            assert_eq!(pt.rss_pages(), 0, "round {round}");
        }
        assert!(pt.arena.len() <= 8, "arena grew past peak: {}", pt.arena.len());
        // Recycled chunks must come back pristine.
        pt.map_base(Vpn(3), Pfn(7), false).unwrap();
        assert_eq!(pt.region_mapped_count(Hvpn(0)), 1);
        assert!(pt.base_entry(Vpn(4)).is_none());
    }

    #[test]
    fn cache_hits_skip_nothing_observable() {
        // Same access sequence with the cache on and off must produce
        // identical translations and leave identical table state.
        let mut on = PageTable::new();
        let mut off = PageTable::new();
        off.set_translation_cache_enabled(false);
        for pt in [&mut on, &mut off] {
            pt.map_base(Vpn(1), Pfn(11), false).unwrap();
            pt.map_base(Vpn(2), Pfn(12), true).unwrap();
            pt.map_huge(Hvpn(1), Pfn(1024)).unwrap();
        }
        let seq: Vec<(u64, bool)> =
            vec![(1, false), (1, false), (1, true), (1, true), (2, false), (2, false), (600, true), (600, false), (3, false)];
        for (v, w) in seq {
            assert_eq!(on.access(Vpn(v), w), off.access(Vpn(v), w), "vpn {v} write {w}");
        }
        for v in [1u64, 2, 600] {
            assert_eq!(on.base_entry(Vpn(v)), off.base_entry(Vpn(v)));
        }
        assert_eq!(
            on.sample_and_clear_access(Hvpn(0)),
            off.sample_and_clear_access(Hvpn(0))
        );
    }

    #[test]
    fn cache_invalidated_by_mutations() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(9), Pfn(1), false).unwrap();
        pt.access(Vpn(9), true).unwrap(); // populates the cache
        pt.unmap_base(Vpn(9)).unwrap();
        assert!(pt.access(Vpn(9), true).is_none(), "stale cache entry survived unmap");
        pt.map_base(Vpn(9), Pfn(2), false).unwrap();
        assert_eq!(pt.access(Vpn(9), false).unwrap().pfn, Pfn(2));
        pt.remap_base(Vpn(9), Pfn(3)).unwrap();
        assert_eq!(pt.access(Vpn(9), false).unwrap().pfn, Pfn(3));
    }

    #[test]
    fn cache_invalidated_by_sampling() {
        // After a sample clears accessed bits, a cached hit must not skip
        // re-setting them.
        let mut pt = PageTable::new();
        pt.map_base(Vpn(4), Pfn(1), false).unwrap();
        pt.access(Vpn(4), false).unwrap();
        assert_eq!(pt.sample_and_clear_access(Hvpn(0)).accessed, 1);
        pt.access(Vpn(4), false).unwrap();
        assert!(pt.base_entry(Vpn(4)).unwrap().accessed, "accessed bit lost to stale cache");
        pt.clear_region_access(Hvpn(0));
        pt.access(Vpn(4), false).unwrap();
        assert_eq!(pt.sample_and_clear_access(Hvpn(0)).accessed, 1);
    }

    #[test]
    fn cached_huge_region_entry_serves_sibling_pages() {
        // One access to a huge region caches a region-grained entry; a
        // different page of the same region must still set no bits twice
        // and translate with the right per-page frame.
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(4), Pfn(2048)).unwrap();
        pt.access(Vpn(4 * 512), true).unwrap();
        let t = pt.access(Vpn(4 * 512 + 99), false).unwrap();
        assert_eq!(t.pfn, Pfn(2048 + 99));
        assert_eq!(t.size, PageSize::Huge);
        // A write through the cached region entry (dirty already set).
        let t = pt.access(Vpn(4 * 512 + 7), true).unwrap();
        assert_eq!(t.pfn, Pfn(2048 + 7));
    }

    #[test]
    fn cache_set_survives_conflict_churn() {
        // More conflicting pages than one direct-mapped slot could hold:
        // with TC_WAYS ways + LRU, a small working set of conflicting
        // VPNs keeps hitting (correctness is unchanged either way; this
        // pins the set-associative shape).
        let mut pt = PageTable::new();
        let stride = TC_SETS as u64; // same set index every time
        for k in 0..3u64 {
            pt.map_base(Vpn(k * stride), Pfn(100 + k), false).unwrap();
        }
        for _ in 0..4 {
            for k in 0..3u64 {
                let t = pt.access(Vpn(k * stride), false).unwrap();
                assert_eq!(t.pfn, Pfn(100 + k));
            }
        }
    }

    #[test]
    fn base_vpns_in_range_spans_regions() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(10), Pfn(1), false).unwrap();
        pt.map_base(Vpn(600), Pfn(2), false).unwrap();
        pt.map_base(Vpn(1200), Pfn(3), false).unwrap();
        assert_eq!(
            pt.base_vpns_in_range(Vpn(0), Vpn(1024)).collect::<Vec<_>>(),
            vec![Vpn(10), Vpn(600)]
        );
        assert_eq!(pt.base_vpns_in_range(Vpn(11), Vpn(601)).collect::<Vec<_>>(), vec![Vpn(600)]);
        assert_eq!(pt.base_vpns_in_range(Vpn(0), Vpn(0)).count(), 0);
    }

    #[test]
    fn take_base_entries_in_range_matches_unmap_loop() {
        let mut a = PageTable::new();
        let mut b = PageTable::new();
        for pt in [&mut a, &mut b] {
            for v in [10u64, 600, 601, 1200] {
                pt.map_base(Vpn(v), Pfn(v), false).unwrap();
            }
        }
        // Reference: collect then unmap one by one.
        let vpns: Vec<Vpn> = a.base_vpns_in_range(Vpn(11), Vpn(1201)).collect();
        let mut ref_freed = Vec::new();
        for vpn in vpns {
            ref_freed.push((vpn, a.unmap_base(vpn).unwrap()));
        }
        // Drain form.
        let mut freed = Vec::new();
        b.take_base_entries_in_range(Vpn(11), Vpn(1201), |v, e| freed.push((v, e)));
        assert_eq!(freed, ref_freed);
        assert_eq!(a.base_count(), b.base_count());
        assert_eq!(
            a.mapped_regions().collect::<Vec<_>>(),
            b.mapped_regions().collect::<Vec<_>>()
        );
    }
}
