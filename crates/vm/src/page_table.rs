//! Mixed-granularity page table with accessed/dirty bits.
//!
//! One table maps base pages (4 KB) and huge regions (2 MB) side by side;
//! a huge mapping covers its whole region and shadows any base mapping
//! (the two are kept mutually exclusive per region).
//!
//! Accessed bits are set on every simulated access and sampled-and-cleared
//! by the policies — this is the substrate for Ingens' utilization
//! tracking and HawkEye's access-coverage sampling (§3.3).
//!
//! # Layout
//!
//! Entries are stored per 2 MB region in a `RegionChunk`: one optional
//! huge entry plus 512 frame slots and mapped/accessed/dirty/zero-COW
//! bitmaps. Intra-region operations are O(1) array/bit work and region
//! coverage sampling is a popcount, instead of per-page tree lookups.
//! A chunk exists iff the region has at least one mapping, so the
//! promotion scan list is simply the chunk keys.
//!
//! # Translation cache
//!
//! The table embeds a small direct-mapped software translation cache on
//! the [`PageTable::access`] hot path. A cached entry may satisfy an
//! access without touching the chunk only when doing so is invisible:
//! the entry's accessed bit is known set, and (for writes) its dirty bit
//! too, so the access would not change any table state. Every mutation
//! (map/unmap/split/collapse/remap) and every accessed-bit clear bumps a
//! generation counter that invalidates the whole cache in O(1) — the
//! invalidation contract callers would otherwise have to wire through
//! each path by hand. Disable with
//! [`PageTable::set_translation_cache_enabled`] to differentially test
//! that cached and uncached execution are bit-identical.

use crate::error::MapError;
use crate::types::{Hvpn, PageSize, Vpn};
use hawkeye_mem::Pfn;
use std::collections::BTreeMap;

/// Pages per huge region.
const REGION_PAGES: usize = 512;
/// Bitmap words per region.
const WORDS: usize = REGION_PAGES / 64;
/// Translation-cache slots (power of two; direct-mapped by VPN).
const TC_SLOTS: usize = 2048;

/// A 4 KB page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseEntry {
    /// Backing frame.
    pub pfn: Pfn,
    /// Hardware accessed bit (set on access, cleared by sampling).
    pub accessed: bool,
    /// Hardware dirty bit.
    pub dirty: bool,
    /// This entry maps the canonical zero page copy-on-write: reads share
    /// the zero frame; the first write must fault to allocate a private
    /// frame. Set by bloat recovery's zero-page de-duplication.
    pub zero_cow: bool,
}

/// A 2 MB page-table entry (`pfn` is huge-aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeEntry {
    /// Backing frame of the first base page (huge-aligned).
    pub pfn: Pfn,
    /// Hardware accessed bit.
    pub accessed: bool,
    /// Hardware dirty bit.
    pub dirty: bool,
}

/// Result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Frame backing the *specific base page* queried (for huge mappings,
    /// the region frame plus the page's offset).
    pub pfn: Pfn,
    /// Granularity of the mapping that translated the address.
    pub size: PageSize,
    /// Whether the mapping is a zero-page COW entry.
    pub zero_cow: bool,
}

/// One access-coverage sample of a huge region (see §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSample {
    /// Base pages currently mapped in the region (0-512); 512 if mapped
    /// huge.
    pub mapped: u32,
    /// Base pages whose accessed bit was set (for huge mappings: 512 if
    /// the single entry was accessed, else 0).
    pub accessed: u32,
    /// Whether the region is mapped by a huge page.
    pub is_huge: bool,
}

/// Per-region storage: an optional huge entry, or up to 512 base entries
/// as parallel frame slots + bitmaps. ~4.5 KB, boxed in the region map.
#[derive(Debug, Clone)]
struct RegionChunk {
    huge: Option<HugeEntry>,
    mapped: [u64; WORDS],
    accessed: [u64; WORDS],
    dirty: [u64; WORDS],
    zero_cow: [u64; WORDS],
    mapped_count: u32,
    pfns: [Pfn; REGION_PAGES],
}

impl RegionChunk {
    fn new() -> Box<Self> {
        Box::new(RegionChunk {
            huge: None,
            mapped: [0; WORDS],
            accessed: [0; WORDS],
            dirty: [0; WORDS],
            zero_cow: [0; WORDS],
            mapped_count: 0,
            pfns: [Pfn(0); REGION_PAGES],
        })
    }

    #[inline]
    fn bit(map: &[u64; WORDS], i: usize) -> bool {
        map[i / 64] >> (i % 64) & 1 != 0
    }

    #[inline]
    fn set(map: &mut [u64; WORDS], i: usize, v: bool) {
        let mask = 1u64 << (i % 64);
        if v {
            map[i / 64] |= mask;
        } else {
            map[i / 64] &= !mask;
        }
    }

    fn base_entry(&self, i: usize) -> Option<BaseEntry> {
        if !Self::bit(&self.mapped, i) {
            return None;
        }
        Some(BaseEntry {
            pfn: self.pfns[i],
            accessed: Self::bit(&self.accessed, i),
            dirty: Self::bit(&self.dirty, i),
            zero_cow: Self::bit(&self.zero_cow, i),
        })
    }

    /// First mapped page offset, if any.
    fn first_mapped(&self) -> Option<usize> {
        for (w, word) in self.mapped.iter().enumerate() {
            if *word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.huge.is_none() && self.mapped_count == 0
    }
}

/// One translation-cache slot; valid iff `epoch` matches the table's
/// current generation and `vpn` matches the lookup.
#[derive(Debug, Clone, Copy)]
struct TcEntry {
    vpn: Vpn,
    pfn: Pfn,
    size: PageSize,
    zero_cow: bool,
    /// The underlying entry's dirty bit at insertion time (its accessed
    /// bit is always set — insertion happens right after an access).
    dirty: bool,
    epoch: u64,
}

/// Mixed 4 KB / 2 MB page table.
///
/// # Examples
///
/// ```
/// use hawkeye_vm::{PageTable, Vpn, Hvpn, PageSize};
/// use hawkeye_mem::Pfn;
///
/// let mut pt = PageTable::new();
/// pt.map_base(Vpn(0), Pfn(10), false)?;
/// pt.map_huge(Hvpn(1), Pfn(512))?;
/// assert_eq!(pt.translate(Vpn(0)).unwrap().size, PageSize::Base);
/// let t = pt.translate(Vpn(512 + 7)).unwrap();
/// assert_eq!(t.size, PageSize::Huge);
/// assert_eq!(t.pfn, Pfn(512 + 7));
/// # Ok::<(), hawkeye_vm::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    chunks: BTreeMap<Hvpn, Box<RegionChunk>>,
    base_total: u64,
    huge_total: u64,
    /// Translation generation; bumped on any mutation or accessed-bit
    /// clear, invalidating every cache slot at once.
    epoch: u64,
    cache_enabled: bool,
    cache: Vec<TcEntry>,
}

impl Default for PageTable {
    fn default() -> Self {
        PageTable {
            chunks: BTreeMap::new(),
            base_total: 0,
            huge_total: 0,
            epoch: 1,
            cache_enabled: true,
            cache: vec![
                TcEntry {
                    vpn: Vpn(0),
                    pfn: Pfn(0),
                    size: PageSize::Base,
                    zero_cow: false,
                    dirty: false,
                    epoch: 0,
                };
                TC_SLOTS
            ],
        }
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables the embedded translation cache. Execution must
    /// be bit-identical either way; the switch exists for differential
    /// testing and debugging.
    pub fn set_translation_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Whether the translation cache is consulted on the access path.
    pub fn translation_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    #[inline]
    fn invalidate_cache(&mut self) {
        self.epoch += 1;
    }

    /// Number of base-page mappings.
    pub fn base_count(&self) -> u64 {
        self.base_total
    }

    /// Number of huge mappings.
    pub fn huge_count(&self) -> u64 {
        self.huge_total
    }

    /// Resident set size in base pages (base mappings + 512 per huge
    /// mapping). Zero-COW mappings count, as Linux's RSS does for mapped
    /// zero pages backed by real huge frames; callers wanting "unique"
    /// memory subtract shared zero pages themselves.
    pub fn rss_pages(&self) -> u64 {
        self.base_count() + 512 * self.huge_count()
    }

    /// Translates a base page, without touching accessed bits.
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        let c = self.chunks.get(&vpn.hvpn())?;
        if let Some(h) = &c.huge {
            return Some(Translation {
                pfn: Pfn(h.pfn.0 + vpn.huge_offset()),
                size: PageSize::Huge,
                zero_cow: false,
            });
        }
        let i = vpn.huge_offset() as usize;
        if !RegionChunk::bit(&c.mapped, i) {
            return None;
        }
        Some(Translation {
            pfn: c.pfns[i],
            size: PageSize::Base,
            zero_cow: RegionChunk::bit(&c.zero_cow, i),
        })
    }

    /// Translates and records an access (sets accessed, and dirty on
    /// writes). Returns `None` when unmapped — the caller takes a fault.
    ///
    /// A *write* to a zero-COW entry also returns `None`: the caller must
    /// take a COW fault and replace the mapping.
    #[inline]
    pub fn access(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        if self.cache_enabled {
            let e = &self.cache[vpn.0 as usize % TC_SLOTS];
            // A hit may bypass the chunk only when the access would be a
            // no-op on table state: accessed already set (invariant of
            // cached entries), dirty already set for writes, and not a
            // zero-COW write (which must fault).
            if e.epoch == self.epoch && e.vpn == vpn && (!write || (e.dirty && !e.zero_cow)) {
                return Some(Translation { pfn: e.pfn, size: e.size, zero_cow: e.zero_cow });
            }
        }
        self.access_slow(vpn, write)
    }

    fn access_slow(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        let c = self.chunks.get_mut(&vpn.hvpn())?;
        let (t, dirty) = if let Some(h) = &mut c.huge {
            h.accessed = true;
            h.dirty |= write;
            (
                Translation {
                    pfn: Pfn(h.pfn.0 + vpn.huge_offset()),
                    size: PageSize::Huge,
                    zero_cow: false,
                },
                h.dirty,
            )
        } else {
            let i = vpn.huge_offset() as usize;
            if !RegionChunk::bit(&c.mapped, i) {
                return None;
            }
            let zero_cow = RegionChunk::bit(&c.zero_cow, i);
            if write && zero_cow {
                return None;
            }
            RegionChunk::set(&mut c.accessed, i, true);
            if write {
                RegionChunk::set(&mut c.dirty, i, true);
            }
            (
                Translation { pfn: c.pfns[i], size: PageSize::Base, zero_cow },
                RegionChunk::bit(&c.dirty, i),
            )
        };
        if self.cache_enabled {
            self.cache[vpn.0 as usize % TC_SLOTS] = TcEntry {
                vpn,
                pfn: t.pfn,
                size: t.size,
                zero_cow: t.zero_cow,
                dirty,
                epoch: self.epoch,
            };
        }
        Some(t)
    }

    /// Looks up the base entry for `vpn`, if any.
    pub fn base_entry(&self, vpn: Vpn) -> Option<BaseEntry> {
        self.chunks.get(&vpn.hvpn())?.base_entry(vpn.huge_offset() as usize)
    }

    /// Looks up the huge entry for `hvpn`, if any.
    pub fn huge_entry(&self, hvpn: Hvpn) -> Option<&HugeEntry> {
        self.chunks.get(&hvpn)?.huge.as_ref()
    }

    /// Maps a base page.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if the page is mapped (by a base or
    /// huge entry).
    pub fn map_base(&mut self, vpn: Vpn, pfn: Pfn, zero_cow: bool) -> Result<(), MapError> {
        let c = self.chunks.entry(vpn.hvpn()).or_insert_with(RegionChunk::new);
        let i = vpn.huge_offset() as usize;
        if c.huge.is_some() || RegionChunk::bit(&c.mapped, i) {
            // Roll back a chunk this call created.
            if c.is_empty() {
                self.chunks.remove(&vpn.hvpn());
            }
            return Err(MapError::AlreadyMapped { vpn });
        }
        RegionChunk::set(&mut c.mapped, i, true);
        RegionChunk::set(&mut c.accessed, i, false);
        RegionChunk::set(&mut c.dirty, i, false);
        RegionChunk::set(&mut c.zero_cow, i, zero_cow);
        c.pfns[i] = pfn;
        c.mapped_count += 1;
        self.base_total += 1;
        self.invalidate_cache();
        Ok(())
    }

    /// Maps a huge region.
    ///
    /// # Errors
    ///
    /// [`MapError::HugeAlreadyMapped`] if a huge mapping exists;
    /// [`MapError::AlreadyMapped`] if any base page in the region is
    /// mapped (the caller must collapse/unmap those first).
    pub fn map_huge(&mut self, hvpn: Hvpn, pfn: Pfn) -> Result<(), MapError> {
        if let Some(c) = self.chunks.get(&hvpn) {
            if c.huge.is_some() {
                return Err(MapError::HugeAlreadyMapped { hvpn });
            }
            if let Some(i) = c.first_mapped() {
                return Err(MapError::AlreadyMapped { vpn: hvpn.vpn_at(i as u64) });
            }
        }
        let c = self.chunks.entry(hvpn).or_insert_with(RegionChunk::new);
        c.huge = Some(HugeEntry { pfn, accessed: false, dirty: false });
        self.huge_total += 1;
        self.invalidate_cache();
        Ok(())
    }

    /// Removes a base mapping, returning its entry.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no base entry exists for `vpn`.
    pub fn unmap_base(&mut self, vpn: Vpn) -> Result<BaseEntry, MapError> {
        let hvpn = vpn.hvpn();
        let c = self.chunks.get_mut(&hvpn).ok_or(MapError::NotMapped { vpn })?;
        let i = vpn.huge_offset() as usize;
        let e = c.base_entry(i).ok_or(MapError::NotMapped { vpn })?;
        RegionChunk::set(&mut c.mapped, i, false);
        RegionChunk::set(&mut c.accessed, i, false);
        RegionChunk::set(&mut c.dirty, i, false);
        RegionChunk::set(&mut c.zero_cow, i, false);
        c.mapped_count -= 1;
        if c.is_empty() {
            self.chunks.remove(&hvpn);
        }
        self.base_total -= 1;
        self.invalidate_cache();
        Ok(e)
    }

    /// Removes a huge mapping, returning its entry.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no huge entry exists for `hvpn`.
    pub fn unmap_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        let c = self
            .chunks
            .get_mut(&hvpn)
            .ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        let e = c.huge.take().ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        if c.is_empty() {
            self.chunks.remove(&hvpn);
        }
        self.huge_total -= 1;
        self.invalidate_cache();
        Ok(e)
    }

    /// Splits a huge mapping into 512 base mappings over the same frames
    /// (demotion). Accessed/dirty bits are inherited by every base entry,
    /// as hardware cannot tell which constituent pages were touched.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if the region has no huge mapping.
    pub fn split_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        let c = self
            .chunks
            .get_mut(&hvpn)
            .ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        let entry = c.huge.take().ok_or(MapError::NotMapped { vpn: hvpn.base_vpn() })?;
        c.mapped = [u64::MAX; WORDS];
        c.accessed = if entry.accessed { [u64::MAX; WORDS] } else { [0; WORDS] };
        c.dirty = if entry.dirty { [u64::MAX; WORDS] } else { [0; WORDS] };
        c.zero_cow = [0; WORDS];
        c.mapped_count = REGION_PAGES as u32;
        for (i, slot) in c.pfns.iter_mut().enumerate() {
            *slot = Pfn(entry.pfn.0 + i as u64);
        }
        self.huge_total -= 1;
        self.base_total += REGION_PAGES as u64;
        self.invalidate_cache();
        Ok(entry)
    }

    /// Removes and returns every base entry inside a huge region
    /// (promotion collapse: the caller copies the pages into a huge frame
    /// and then maps it with [`PageTable::map_huge`]).
    pub fn take_base_entries_in_region(&mut self, hvpn: Hvpn) -> Vec<(Vpn, BaseEntry)> {
        let Some(c) = self.chunks.get_mut(&hvpn) else { return Vec::new() };
        let mut out = Vec::with_capacity(c.mapped_count as usize);
        for i in 0..REGION_PAGES {
            if let Some(e) = c.base_entry(i) {
                out.push((hvpn.vpn_at(i as u64), e));
            }
        }
        self.base_total -= c.mapped_count as u64;
        c.mapped = [0; WORDS];
        c.accessed = [0; WORDS];
        c.dirty = [0; WORDS];
        c.zero_cow = [0; WORDS];
        c.mapped_count = 0;
        if c.is_empty() {
            self.chunks.remove(&hvpn);
        }
        self.invalidate_cache();
        out
    }

    /// Number of base pages mapped in a region (512 for huge mappings) —
    /// Ingens' *utilization* metric.
    pub fn region_mapped_count(&self, hvpn: Hvpn) -> u32 {
        match self.chunks.get(&hvpn) {
            None => 0,
            Some(c) if c.huge.is_some() => 512,
            Some(c) => c.mapped_count,
        }
    }

    /// Samples a region's accessed bits and clears them — one window of
    /// HawkEye's access-coverage measurement. Coverage is a popcount over
    /// the region's accessed bitmap.
    pub fn sample_and_clear_access(&mut self, hvpn: Hvpn) -> AccessSample {
        let Some(c) = self.chunks.get_mut(&hvpn) else { return AccessSample::default() };
        let s = if let Some(h) = &mut c.huge {
            let accessed = if h.accessed { 512 } else { 0 };
            h.accessed = false;
            AccessSample { mapped: 512, accessed, is_huge: true }
        } else {
            let accessed: u32 = c.accessed.iter().map(|w| w.count_ones()).sum();
            c.accessed = [0; WORDS];
            AccessSample { mapped: c.mapped_count, accessed, is_huge: false }
        };
        // Cached entries assume their accessed bit is still set.
        self.invalidate_cache();
        s
    }

    /// Clears a region's accessed bits without computing the sample (the
    /// "arm" phase of two-phase sampling).
    pub fn clear_region_access(&mut self, hvpn: Hvpn) {
        let Some(c) = self.chunks.get_mut(&hvpn) else { return };
        if let Some(h) = &mut c.huge {
            h.accessed = false;
        } else {
            c.accessed = [0; WORDS];
        }
        self.invalidate_cache();
    }

    /// Iterates all huge mappings in VA order.
    pub fn huge_mappings(&self) -> impl Iterator<Item = (Hvpn, &HugeEntry)> {
        self.chunks.iter().filter_map(|(k, c)| c.huge.as_ref().map(|h| (*k, h)))
    }

    /// Iterates all base mappings in VA order.
    pub fn base_mappings(&self) -> impl Iterator<Item = (Vpn, BaseEntry)> + '_ {
        self.chunks.iter().flat_map(|(h, c)| {
            let h = *h;
            (0..REGION_PAGES).filter_map(move |i| c.base_entry(i).map(|e| (h.vpn_at(i as u64), e)))
        })
    }

    /// The VPNs of base mappings in `[start, end)` (range unmap support;
    /// only regions intersecting the range are visited).
    pub fn base_vpns_in_range(&self, start: Vpn, end: Vpn) -> Vec<Vpn> {
        if end.0 <= start.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let hend = Vpn(end.0 - 1).hvpn();
        for (h, c) in self.chunks.range(start.hvpn()..=hend) {
            for i in 0..REGION_PAGES {
                let vpn = h.vpn_at(i as u64);
                if vpn >= start && vpn < end && RegionChunk::bit(&c.mapped, i) {
                    out.push(vpn);
                }
            }
        }
        out
    }

    /// The distinct huge regions that currently have any mapping, in VA
    /// order (the scan list used by promotion policies).
    pub fn mapped_regions(&self) -> Vec<Hvpn> {
        self.chunks.keys().copied().collect()
    }

    /// The regions mapped only by base pages, in VA order — promotion
    /// candidates, without the allocation-and-filter dance over
    /// [`PageTable::mapped_regions`].
    pub fn base_only_regions(&self) -> impl Iterator<Item = Hvpn> + '_ {
        self.chunks.iter().filter(|(_, c)| c.huge.is_none()).map(|(k, _)| *k)
    }

    /// Rewrites the frame of the base mapping at `vpn` (page migration).
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no base entry exists.
    pub fn remap_base(&mut self, vpn: Vpn, new_pfn: Pfn) -> Result<(), MapError> {
        let c = self.chunks.get_mut(&vpn.hvpn()).ok_or(MapError::NotMapped { vpn })?;
        let i = vpn.huge_offset() as usize;
        if c.huge.is_some() || !RegionChunk::bit(&c.mapped, i) {
            return Err(MapError::NotMapped { vpn });
        }
        c.pfns[i] = new_pfn;
        self.invalidate_cache();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_huge_coexist_in_different_regions() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(0), Pfn(1), false).unwrap();
        pt.map_huge(Hvpn(1), Pfn(512)).unwrap();
        assert_eq!(pt.base_count(), 1);
        assert_eq!(pt.huge_count(), 1);
        assert_eq!(pt.rss_pages(), 513);
    }

    #[test]
    fn huge_mapping_shadows_whole_region() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        for i in [0u64, 100, 511] {
            let t = pt.translate(Vpn(i)).unwrap();
            assert_eq!(t.size, PageSize::Huge);
            assert_eq!(t.pfn, Pfn(i));
        }
        assert!(pt.translate(Vpn(512)).is_none());
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(5), Pfn(1), false).unwrap();
        assert!(matches!(pt.map_base(Vpn(5), Pfn(2), false), Err(MapError::AlreadyMapped { .. })));
        // Huge map over existing base entry rejected.
        assert!(matches!(pt.map_huge(Hvpn(0), Pfn(0)), Err(MapError::AlreadyMapped { .. })));
        pt.map_huge(Hvpn(1), Pfn(512)).unwrap();
        assert!(matches!(pt.map_huge(Hvpn(1), Pfn(1024)), Err(MapError::HugeAlreadyMapped { .. })));
        // Base map under a huge mapping rejected.
        assert!(matches!(
            pt.map_base(Vpn(513), Pfn(9), false),
            Err(MapError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn access_sets_and_sampling_clears_bits() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map_base(Vpn(i), Pfn(100 + i), false).unwrap();
        }
        pt.access(Vpn(0), false).unwrap();
        pt.access(Vpn(1), true).unwrap();
        let s = pt.sample_and_clear_access(Hvpn(0));
        assert_eq!(s.mapped, 10);
        assert_eq!(s.accessed, 2);
        assert!(!s.is_huge);
        // Bits were cleared.
        let s2 = pt.sample_and_clear_access(Hvpn(0));
        assert_eq!(s2.accessed, 0);
        // Dirty bit persists.
        assert!(pt.base_entry(Vpn(1)).unwrap().dirty);
        assert!(!pt.base_entry(Vpn(0)).unwrap().dirty);
    }

    #[test]
    fn huge_access_sampling() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(2), Pfn(1024)).unwrap();
        assert_eq!(pt.sample_and_clear_access(Hvpn(2)).accessed, 0);
        pt.access(Vpn(2 * 512 + 3), false).unwrap();
        let s = pt.sample_and_clear_access(Hvpn(2));
        assert_eq!((s.mapped, s.accessed), (512, 512));
        assert!(s.is_huge);
    }

    #[test]
    fn zero_cow_write_faults() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(7), Pfn(0), true).unwrap();
        // Reads succeed.
        let t = pt.access(Vpn(7), false).unwrap();
        assert!(t.zero_cow);
        // Writes demand a COW fault — including via a fresh cached entry.
        assert!(pt.access(Vpn(7), true).is_none());
        // Kernel resolves the fault by remapping.
        pt.unmap_base(Vpn(7)).unwrap();
        pt.map_base(Vpn(7), Pfn(55), false).unwrap();
        assert!(pt.access(Vpn(7), true).is_some());
    }

    #[test]
    fn split_huge_inherits_bits() {
        let mut pt = PageTable::new();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        pt.access(Vpn(5), true).unwrap();
        let e = pt.split_huge(Hvpn(0)).unwrap();
        assert_eq!(e.pfn, Pfn(0));
        assert_eq!(pt.base_count(), 512);
        assert_eq!(pt.huge_count(), 0);
        let b = pt.base_entry(Vpn(100)).unwrap();
        assert_eq!(b.pfn, Pfn(100));
        assert!(b.accessed && b.dirty);
    }

    #[test]
    fn collapse_takes_all_entries() {
        let mut pt = PageTable::new();
        for i in 0..50 {
            pt.map_base(Vpn(i * 2), Pfn(i), false).unwrap();
        }
        let taken = pt.take_base_entries_in_region(Hvpn(0));
        assert_eq!(taken.len(), 50);
        assert_eq!(pt.base_count(), 0);
        pt.map_huge(Hvpn(0), Pfn(512)).unwrap();
        assert_eq!(pt.region_mapped_count(Hvpn(0)), 512);
    }

    #[test]
    fn mapped_regions_sorted_and_deduped() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(1030), Pfn(1), false).unwrap();
        pt.map_base(Vpn(1031), Pfn(2), false).unwrap();
        pt.map_huge(Hvpn(0), Pfn(0)).unwrap();
        pt.map_base(Vpn(5000), Pfn(3), false).unwrap();
        assert_eq!(pt.mapped_regions(), vec![Hvpn(0), Hvpn(2), Hvpn(9)]);
        assert_eq!(pt.base_only_regions().collect::<Vec<_>>(), vec![Hvpn(2), Hvpn(9)]);
    }

    #[test]
    fn remap_base_moves_frame() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(3), Pfn(9), false).unwrap();
        pt.remap_base(Vpn(3), Pfn(90)).unwrap();
        assert_eq!(pt.translate(Vpn(3)).unwrap().pfn, Pfn(90));
        assert!(pt.remap_base(Vpn(4), Pfn(1)).is_err());
    }

    #[test]
    fn region_mapped_count_partial() {
        let mut pt = PageTable::new();
        for i in 0..461 {
            pt.map_base(Vpn(i), Pfn(i), false).unwrap();
        }
        // 461/512 = 90%: Ingens' default promotion threshold.
        assert_eq!(pt.region_mapped_count(Hvpn(0)), 461);
    }

    #[test]
    fn empty_chunks_are_dropped() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(5), Pfn(1), false).unwrap();
        pt.unmap_base(Vpn(5)).unwrap();
        assert!(pt.mapped_regions().is_empty());
        pt.map_huge(Hvpn(3), Pfn(512)).unwrap();
        pt.unmap_huge(Hvpn(3)).unwrap();
        assert!(pt.mapped_regions().is_empty());
        assert_eq!(pt.rss_pages(), 0);
    }

    #[test]
    fn cache_hits_skip_nothing_observable() {
        // Same access sequence with the cache on and off must produce
        // identical translations and leave identical table state.
        let mut on = PageTable::new();
        let mut off = PageTable::new();
        off.set_translation_cache_enabled(false);
        for pt in [&mut on, &mut off] {
            pt.map_base(Vpn(1), Pfn(11), false).unwrap();
            pt.map_base(Vpn(2), Pfn(12), true).unwrap();
            pt.map_huge(Hvpn(1), Pfn(1024)).unwrap();
        }
        let seq: Vec<(u64, bool)> =
            vec![(1, false), (1, false), (1, true), (1, true), (2, false), (2, false), (600, true), (600, false), (3, false)];
        for (v, w) in seq {
            assert_eq!(on.access(Vpn(v), w), off.access(Vpn(v), w), "vpn {v} write {w}");
        }
        for v in [1u64, 2, 600] {
            assert_eq!(on.base_entry(Vpn(v)), off.base_entry(Vpn(v)));
        }
        assert_eq!(
            on.sample_and_clear_access(Hvpn(0)),
            off.sample_and_clear_access(Hvpn(0))
        );
    }

    #[test]
    fn cache_invalidated_by_mutations() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(9), Pfn(1), false).unwrap();
        pt.access(Vpn(9), true).unwrap(); // populates the cache
        pt.unmap_base(Vpn(9)).unwrap();
        assert!(pt.access(Vpn(9), true).is_none(), "stale cache entry survived unmap");
        pt.map_base(Vpn(9), Pfn(2), false).unwrap();
        assert_eq!(pt.access(Vpn(9), false).unwrap().pfn, Pfn(2));
        pt.remap_base(Vpn(9), Pfn(3)).unwrap();
        assert_eq!(pt.access(Vpn(9), false).unwrap().pfn, Pfn(3));
    }

    #[test]
    fn cache_invalidated_by_sampling() {
        // After a sample clears accessed bits, a cached hit must not skip
        // re-setting them.
        let mut pt = PageTable::new();
        pt.map_base(Vpn(4), Pfn(1), false).unwrap();
        pt.access(Vpn(4), false).unwrap();
        assert_eq!(pt.sample_and_clear_access(Hvpn(0)).accessed, 1);
        pt.access(Vpn(4), false).unwrap();
        assert!(pt.base_entry(Vpn(4)).unwrap().accessed, "accessed bit lost to stale cache");
        pt.clear_region_access(Hvpn(0));
        pt.access(Vpn(4), false).unwrap();
        assert_eq!(pt.sample_and_clear_access(Hvpn(0)).accessed, 1);
    }

    #[test]
    fn base_vpns_in_range_spans_regions() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn(10), Pfn(1), false).unwrap();
        pt.map_base(Vpn(600), Pfn(2), false).unwrap();
        pt.map_base(Vpn(1200), Pfn(3), false).unwrap();
        assert_eq!(pt.base_vpns_in_range(Vpn(0), Vpn(1024)), vec![Vpn(10), Vpn(600)]);
        assert_eq!(pt.base_vpns_in_range(Vpn(11), Vpn(601)), vec![Vpn(600)]);
        assert!(pt.base_vpns_in_range(Vpn(0), Vpn(0)).is_empty());
    }
}
