//! Virtual-memory substrate of the HawkEye simulator.
//!
//! Models the per-process pieces of Linux's `mm`: virtual memory areas,
//! a page table supporting mixed 4 KB / 2 MB mappings with accessed/dirty
//! bits, RSS accounting, `madvise(MADV_DONTNEED)`-style unmapping, and the
//! canonical-zero-page copy-on-write mappings that HawkEye's bloat recovery
//! (§3.2) de-duplicates zero-filled pages into.
//!
//! The kernel crate drives these address spaces: it owns the physical
//! allocator and charges simulated time; this crate is purely the mapping
//! machinery.
//!
//! # Examples
//!
//! ```
//! use hawkeye_vm::{AddressSpace, Vpn, VmaKind};
//! use hawkeye_mem::Pfn;
//!
//! let mut space = AddressSpace::new();
//! space.mmap(Vpn(0), 1024, VmaKind::Anon)?;
//! space.map_base(Vpn(3), Pfn(77))?;
//! assert_eq!(space.translate(Vpn(3)).unwrap().pfn, Pfn(77));
//! assert_eq!(space.rss_pages(), 1);
//! # Ok::<(), hawkeye_vm::MapError>(())
//! ```

pub mod error;
pub mod page_state;
pub mod page_table;
pub mod space;
pub mod types;
pub mod vma;

pub use error::MapError;
pub use page_state::PageStateWord;
pub use page_table::{AccessSample, BaseEntry, HugeEntry, PageTable, Translation};
pub use space::AddressSpace;
pub use types::{Hvpn, PageSize, Vpn};
pub use vma::{Vma, VmaKind};
