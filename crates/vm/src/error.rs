//! Error types of the virtual-memory layer.

use crate::types::{Hvpn, Vpn};
use std::error::Error;
use std::fmt;

/// Failure of a mapping operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page is already mapped.
    AlreadyMapped {
        /// Offending page.
        vpn: Vpn,
    },
    /// The virtual page (or region) has no mapping.
    NotMapped {
        /// Offending page.
        vpn: Vpn,
    },
    /// The huge region is already covered by a huge mapping.
    HugeAlreadyMapped {
        /// Offending region.
        hvpn: Hvpn,
    },
    /// No VMA covers the address.
    NoVma {
        /// Offending page.
        vpn: Vpn,
    },
    /// The requested VMA overlaps an existing one.
    VmaOverlap {
        /// Start of the requested area.
        start: Vpn,
    },
    /// The region is not entirely inside one VMA (huge mappings must be).
    RegionNotCovered {
        /// Offending region.
        hvpn: Hvpn,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::AlreadyMapped { vpn } => write!(f, "{vpn} is already mapped"),
            MapError::NotMapped { vpn } => write!(f, "{vpn} is not mapped"),
            MapError::HugeAlreadyMapped { hvpn } => {
                write!(f, "{hvpn} is already mapped by a huge page")
            }
            MapError::NoVma { vpn } => write!(f, "no vma covers {vpn}"),
            MapError::VmaOverlap { start } => {
                write!(f, "requested vma at {start} overlaps an existing area")
            }
            MapError::RegionNotCovered { hvpn } => {
                write!(f, "{hvpn} is not fully covered by a single vma")
            }
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_address() {
        let e = MapError::AlreadyMapped { vpn: Vpn(0x10) };
        assert!(e.to_string().contains("0x10"));
        let e = MapError::RegionNotCovered { hvpn: Hvpn(2) };
        assert!(e.to_string().contains("hvpn"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MapError>();
    }
}
