//! Virtual-address newtypes.

use hawkeye_mem::{BASE_PAGES_PER_HUGE, BASE_PAGE_SHIFT};
use std::fmt;

/// Page size of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// 4 KB base page.
    #[default]
    Base,
    /// 2 MB huge page.
    Huge,
}

impl PageSize {
    /// Number of base pages this mapping covers (1 or 512).
    #[inline]
    pub fn base_pages(self) -> u64 {
        match self {
            PageSize::Base => 1,
            PageSize::Huge => BASE_PAGES_PER_HUGE,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base => write!(f, "4KB"),
            PageSize::Huge => write!(f, "2MB"),
        }
    }
}

/// A virtual page number at base-page (4 KB) granularity.
///
/// # Examples
///
/// ```
/// use hawkeye_vm::{Vpn, Hvpn};
///
/// let vpn = Vpn(513);
/// assert_eq!(vpn.hvpn(), Hvpn(1));
/// assert_eq!(vpn.huge_offset(), 1);
/// assert!(!vpn.is_huge_aligned());
/// assert!(Vpn(512).is_huge_aligned());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The huge-page-sized region containing this page.
    #[inline]
    pub fn hvpn(self) -> Hvpn {
        Hvpn(self.0 >> 9)
    }

    /// Offset (0-511) of this page within its huge region.
    #[inline]
    pub fn huge_offset(self) -> u64 {
        self.0 & (BASE_PAGES_PER_HUGE - 1)
    }

    /// Whether this page starts a huge region.
    #[inline]
    pub fn is_huge_aligned(self) -> bool {
        self.huge_offset() == 0
    }

    /// The virtual byte address of this page.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0 << BASE_PAGE_SHIFT
    }

    /// Constructs from a virtual byte address (truncating within the page).
    #[inline]
    pub fn from_addr(addr: u64) -> Self {
        Vpn(addr >> BASE_PAGE_SHIFT)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A huge-page-region number: index of a 2 MB-aligned virtual region.
///
/// # Examples
///
/// ```
/// use hawkeye_vm::{Hvpn, Vpn};
///
/// let h = Hvpn(2);
/// assert_eq!(h.base_vpn(), Vpn(1024));
/// assert_eq!(h.vpn_at(5), Vpn(1029));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hvpn(pub u64);

impl Hvpn {
    /// First base page of the region.
    #[inline]
    pub fn base_vpn(self) -> Vpn {
        Vpn(self.0 << 9)
    }

    /// The `i`-th base page of the region (`i` in 0..512).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= 512`.
    #[inline]
    pub fn vpn_at(self, i: u64) -> Vpn {
        debug_assert!(i < BASE_PAGES_PER_HUGE);
        Vpn((self.0 << 9) + i)
    }

    /// Iterates the 512 base pages of the region.
    pub fn base_pages(self) -> impl Iterator<Item = Vpn> {
        let start = self.0 << 9;
        (start..start + BASE_PAGES_PER_HUGE).map(Vpn)
    }
}

impl fmt::Display for Hvpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hvpn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_hvpn_mapping() {
        assert_eq!(Vpn(0).hvpn(), Hvpn(0));
        assert_eq!(Vpn(511).hvpn(), Hvpn(0));
        assert_eq!(Vpn(512).hvpn(), Hvpn(1));
        assert_eq!(Hvpn(1).base_vpn(), Vpn(512));
        assert_eq!(Vpn(1000).huge_offset(), 1000 - 512);
    }

    #[test]
    fn region_iteration_covers_512_pages() {
        let pages: Vec<Vpn> = Hvpn(3).base_pages().collect();
        assert_eq!(pages.len(), 512);
        assert_eq!(pages[0], Vpn(3 * 512));
        assert_eq!(pages[511], Vpn(4 * 512 - 1));
        assert!(pages.iter().all(|v| v.hvpn() == Hvpn(3)));
    }

    #[test]
    fn addr_round_trip() {
        assert_eq!(Vpn::from_addr(0x1234_5678), Vpn(0x1234_5678 >> 12));
        assert_eq!(Vpn(5).addr(), 5 * 4096);
    }

    #[test]
    fn page_size_base_pages() {
        assert_eq!(PageSize::Base.base_pages(), 1);
        assert_eq!(PageSize::Huge.base_pages(), 512);
        assert_eq!(format!("{} {}", PageSize::Base, PageSize::Huge), "4KB 2MB");
    }
}
