//! Virtual memory areas.
//!
//! A [`Vma`] is a contiguous range of virtual pages with a kind. Linux THP
//! only backs *anonymous* areas with huge pages, which is the property
//! HawkEye's bloat recovery relies on (§3.2: huge pages are zero-filled
//! anonymous allocations), so the kind matters to every policy.

use crate::types::{Hvpn, Vpn};
use std::fmt;

/// What backs a virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VmaKind {
    /// Anonymous, zero-fill-on-demand memory (heap, mmap(MAP_ANONYMOUS)).
    /// The only kind eligible for transparent huge pages.
    #[default]
    Anon,
    /// File-backed mapping; never huge, prefers non-zeroed frames.
    File,
}

/// A contiguous virtual memory area.
///
/// # Examples
///
/// ```
/// use hawkeye_vm::{Vma, VmaKind, Vpn};
///
/// let vma = Vma::new(Vpn(1024), 2048, VmaKind::Anon);
/// assert!(vma.contains(Vpn(1024)));
/// assert!(vma.contains(Vpn(3071)));
/// assert!(!vma.contains(Vpn(3072)));
/// assert_eq!(vma.pages(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    start: Vpn,
    pages: u64,
    kind: VmaKind,
}

impl Vma {
    /// Creates an area of `pages` base pages starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is 0.
    pub fn new(start: Vpn, pages: u64, kind: VmaKind) -> Self {
        assert!(pages > 0, "empty vma");
        Vma { start, pages, kind }
    }

    /// First page of the area.
    pub fn start(&self) -> Vpn {
        self.start
    }

    /// One past the last page of the area.
    pub fn end(&self) -> Vpn {
        Vpn(self.start.0 + self.pages)
    }

    /// Length in base pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The area's kind.
    pub fn kind(&self) -> VmaKind {
        self.kind
    }

    /// Whether `vpn` lies inside the area.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.start && vpn < self.end()
    }

    /// Whether the area is eligible for transparent huge pages.
    pub fn huge_eligible(&self) -> bool {
        self.kind == VmaKind::Anon
    }

    /// Whether an entire huge region lies inside the area (a precondition
    /// for mapping it with a huge page).
    pub fn covers_region(&self, hvpn: Hvpn) -> bool {
        let first = hvpn.base_vpn();
        let last = hvpn.vpn_at(511);
        self.contains(first) && self.contains(last)
    }

    /// Whether two areas overlap.
    pub fn overlaps(&self, other: &Vma) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Iterates the huge regions fully covered by this area.
    pub fn covered_regions(&self) -> impl Iterator<Item = Hvpn> + '_ {
        let first = self.start.0.div_ceil(512);
        let last = self.end().0 / 512;
        (first..last).map(Hvpn)
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vma[{:#x}..{:#x} {:?}]", self.start.0, self.end().0, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_bounds() {
        let v = Vma::new(Vpn(10), 5, VmaKind::Anon);
        assert!(v.contains(Vpn(10)));
        assert!(v.contains(Vpn(14)));
        assert!(!v.contains(Vpn(15)));
        assert!(!v.contains(Vpn(9)));
    }

    #[test]
    #[should_panic(expected = "empty vma")]
    fn empty_vma_rejected() {
        let _ = Vma::new(Vpn(0), 0, VmaKind::Anon);
    }

    #[test]
    fn only_anon_is_huge_eligible() {
        assert!(Vma::new(Vpn(0), 512, VmaKind::Anon).huge_eligible());
        assert!(!Vma::new(Vpn(0), 512, VmaKind::File).huge_eligible());
    }

    #[test]
    fn region_coverage() {
        // Aligned, exactly one region.
        let v = Vma::new(Vpn(512), 512, VmaKind::Anon);
        assert!(v.covers_region(Hvpn(1)));
        assert!(!v.covers_region(Hvpn(0)));
        assert!(!v.covers_region(Hvpn(2)));
        // Unaligned VMA covers no complete region despite 512 pages.
        let v = Vma::new(Vpn(100), 512, VmaKind::Anon);
        assert!(!v.covers_region(Hvpn(0)));
        assert!(!v.covers_region(Hvpn(1)));
        assert_eq!(v.covered_regions().count(), 0);
        // Large area covers interior regions only.
        let v = Vma::new(Vpn(100), 3 * 512, VmaKind::Anon);
        let regions: Vec<Hvpn> = v.covered_regions().collect();
        assert_eq!(regions, vec![Hvpn(1), Hvpn(2)]);
    }

    #[test]
    fn overlap_detection() {
        let a = Vma::new(Vpn(0), 100, VmaKind::Anon);
        let b = Vma::new(Vpn(99), 10, VmaKind::Anon);
        let c = Vma::new(Vpn(100), 10, VmaKind::Anon);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
