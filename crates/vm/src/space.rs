//! Per-process address space: VMAs plus the page table.
//!
//! `AddressSpace` enforces the VMA discipline (mappings only inside areas,
//! huge mappings only inside huge-eligible areas that cover the whole
//! region) and implements `madvise(MADV_DONTNEED)`-style range unmapping,
//! which is how the paper's Redis experiment releases memory in phase P2
//! (§2.1) — freed ranges break huge mappings exactly as Linux does.

use crate::error::MapError;
use crate::page_table::{AccessSample, BaseEntry, HugeEntry, PageTable, Translation};
use crate::types::{Hvpn, PageSize, Vpn};
use crate::vma::{Vma, VmaKind};
use hawkeye_mem::Pfn;
use std::collections::BTreeMap;

/// A mapping released by an unmap operation; the kernel frees the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreedMapping {
    /// First virtual page of the released mapping.
    pub vpn: Vpn,
    /// First frame of the released mapping.
    pub pfn: Pfn,
    /// Granularity (one base page or a whole huge page).
    pub size: PageSize,
    /// Whether the mapping was a shared zero-COW entry (the frame is the
    /// canonical zero page and must *not* be freed).
    pub zero_cow: bool,
}

/// A process's virtual address space.
///
/// # Examples
///
/// ```
/// use hawkeye_vm::{AddressSpace, Vpn, Hvpn, VmaKind};
/// use hawkeye_mem::Pfn;
///
/// let mut space = AddressSpace::new();
/// space.mmap(Vpn(0), 4 * 512, VmaKind::Anon)?;
/// space.map_huge(Hvpn(1), Pfn(512))?;
/// assert_eq!(space.rss_pages(), 512);
/// let freed = space.madvise_dontneed(Vpn(512), 512);
/// assert_eq!(freed.len(), 1);
/// assert_eq!(space.rss_pages(), 0);
/// # Ok::<(), hawkeye_vm::MapError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: BTreeMap<u64, Vma>,
    pt: PageTable,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an area of `pages` base pages at `start`.
    ///
    /// # Errors
    ///
    /// [`MapError::VmaOverlap`] if the range overlaps an existing area.
    pub fn mmap(&mut self, start: Vpn, pages: u64, kind: VmaKind) -> Result<(), MapError> {
        let vma = Vma::new(start, pages, kind);
        if self.vmas.values().any(|v| v.overlaps(&vma)) {
            return Err(MapError::VmaOverlap { start });
        }
        self.vmas.insert(start.0, vma);
        Ok(())
    }

    /// Removes the area starting exactly at `start`, unmapping everything
    /// inside it. Returns the released mappings.
    ///
    /// # Errors
    ///
    /// [`MapError::NoVma`] if no area starts at `start`.
    pub fn munmap(&mut self, start: Vpn) -> Result<Vec<FreedMapping>, MapError> {
        let vma = self.vmas.remove(&start.0).ok_or(MapError::NoVma { vpn: start })?;
        Ok(self.unmap_range(vma.start(), vma.pages()))
    }

    /// The area containing `vpn`, if any.
    pub fn find_vma(&self, vpn: Vpn) -> Option<&Vma> {
        self.vmas
            .range(..=vpn.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(vpn))
    }

    /// Iterates areas in VA order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Read access to the underlying page table.
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// Mutable access to the underlying page table (for samplers that
    /// clear accessed bits).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.pt
    }

    /// Resident set size in base pages.
    pub fn rss_pages(&self) -> u64 {
        self.pt.rss_pages()
    }

    /// Number of huge mappings.
    pub fn huge_pages(&self) -> u64 {
        self.pt.huge_count()
    }

    /// Translates without setting accessed bits.
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        self.pt.translate(vpn)
    }

    /// Translates an access, setting accessed/dirty bits. `None` means the
    /// caller must take a page fault (unmapped, or write to zero-COW).
    pub fn access(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        self.pt.access(vpn, write)
    }

    /// Maps a base page after VMA validation.
    ///
    /// # Errors
    ///
    /// [`MapError::NoVma`] if no area covers `vpn`;
    /// [`MapError::AlreadyMapped`] if a mapping exists.
    pub fn map_base(&mut self, vpn: Vpn, pfn: Pfn) -> Result<(), MapError> {
        self.find_vma(vpn).ok_or(MapError::NoVma { vpn })?;
        self.pt.map_base(vpn, pfn, false)
    }

    /// Maps a base page as a zero-COW entry (shared canonical zero page).
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::map_base`].
    pub fn map_zero_cow(&mut self, vpn: Vpn, zero_pfn: Pfn) -> Result<(), MapError> {
        self.find_vma(vpn).ok_or(MapError::NoVma { vpn })?;
        self.pt.map_base(vpn, zero_pfn, true)
    }

    /// Maps a huge page after validating that a single huge-eligible VMA
    /// covers the whole region.
    ///
    /// # Errors
    ///
    /// [`MapError::RegionNotCovered`] if no huge-eligible area covers the
    /// full region; otherwise as [`PageTable::map_huge`].
    pub fn map_huge(&mut self, hvpn: Hvpn, pfn: Pfn) -> Result<(), MapError> {
        let covered = self
            .find_vma(hvpn.base_vpn())
            .map(|v| v.huge_eligible() && v.covers_region(hvpn))
            .unwrap_or(false);
        if !covered {
            return Err(MapError::RegionNotCovered { hvpn });
        }
        self.pt.map_huge(hvpn, pfn)
    }

    /// Whether a huge-eligible VMA fully covers `hvpn` (promotion
    /// precondition).
    pub fn region_promotable(&self, hvpn: Hvpn) -> bool {
        self.find_vma(hvpn.base_vpn())
            .map(|v| v.huge_eligible() && v.covers_region(hvpn))
            .unwrap_or(false)
    }

    /// Unmaps one base page.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no base mapping exists.
    pub fn unmap_base(&mut self, vpn: Vpn) -> Result<BaseEntry, MapError> {
        self.pt.unmap_base(vpn)
    }

    /// Unmaps one huge region.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no huge mapping exists.
    pub fn unmap_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        self.pt.unmap_huge(hvpn)
    }

    /// Splits a huge mapping into base mappings (demotion).
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no huge mapping exists.
    pub fn split_huge(&mut self, hvpn: Hvpn) -> Result<HugeEntry, MapError> {
        self.pt.split_huge(hvpn)
    }

    /// Samples and clears a region's accessed bits.
    pub fn sample_and_clear_access(&mut self, hvpn: Hvpn) -> AccessSample {
        self.pt.sample_and_clear_access(hvpn)
    }

    /// Clears a region's accessed bits without computing the sample — the
    /// cheap "arm" phase of two-phase access sampling.
    pub fn clear_region_access(&mut self, hvpn: Hvpn) {
        self.pt.clear_region_access(hvpn)
    }

    /// `madvise(MADV_DONTNEED)`: releases all mappings in
    /// `[start, start+pages)`. Huge mappings that straddle the range
    /// boundary are split first (exactly Linux's behaviour: releasing part
    /// of a THP breaks the huge mapping), and the covered constituent
    /// pages are then released.
    ///
    /// Returns the released mappings; the kernel frees the frames (except
    /// shared zero-COW pages, flagged in the result).
    pub fn madvise_dontneed(&mut self, start: Vpn, pages: u64) -> Vec<FreedMapping> {
        self.unmap_range(start, pages)
    }

    fn unmap_range(&mut self, start: Vpn, pages: u64) -> Vec<FreedMapping> {
        let end = Vpn(start.0 + pages);
        let mut freed = Vec::new();
        // Huge mappings intersecting the range.
        let hstart = start.hvpn();
        let hend = Vpn(end.0.saturating_sub(1)).hvpn();
        for h in hstart.0..=hend.0 {
            let hvpn = Hvpn(h);
            if self.pt.huge_entry(hvpn).is_none() {
                continue;
            }
            let fully_inside = hvpn.base_vpn() >= start && Vpn(hvpn.vpn_at(511).0 + 1) <= end;
            if fully_inside {
                let e = self.pt.unmap_huge(hvpn).expect("checked above");
                freed.push(FreedMapping { vpn: hvpn.base_vpn(), pfn: e.pfn, size: PageSize::Huge, zero_cow: false });
            } else {
                // Partially covered: break the huge page, then the base
                // loop below releases the covered constituents.
                self.pt.split_huge(hvpn).expect("checked above");
            }
        }
        // Base mappings inside the range, drained in one allocation-free
        // pass (only intersecting regions are scanned).
        self.pt.take_base_entries_in_range(start, end, |vpn, e| {
            freed.push(FreedMapping { vpn, pfn: e.pfn, size: PageSize::Base, zero_cow: e.zero_cow });
        });
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_anon(pages: u64) -> AddressSpace {
        let mut s = AddressSpace::new();
        s.mmap(Vpn(0), pages, VmaKind::Anon).unwrap();
        s
    }

    #[test]
    fn mmap_rejects_overlap() {
        let mut s = AddressSpace::new();
        s.mmap(Vpn(0), 100, VmaKind::Anon).unwrap();
        assert!(matches!(s.mmap(Vpn(99), 10, VmaKind::Anon), Err(MapError::VmaOverlap { .. })));
        s.mmap(Vpn(100), 10, VmaKind::File).unwrap();
        assert_eq!(s.vmas().count(), 2);
    }

    #[test]
    fn find_vma_picks_correct_area() {
        let mut s = AddressSpace::new();
        s.mmap(Vpn(0), 10, VmaKind::Anon).unwrap();
        s.mmap(Vpn(100), 10, VmaKind::File).unwrap();
        assert_eq!(s.find_vma(Vpn(5)).unwrap().kind(), VmaKind::Anon);
        assert_eq!(s.find_vma(Vpn(105)).unwrap().kind(), VmaKind::File);
        assert!(s.find_vma(Vpn(50)).is_none());
        assert!(s.find_vma(Vpn(110)).is_none());
    }

    #[test]
    fn map_requires_vma() {
        let mut s = space_with_anon(100);
        assert!(s.map_base(Vpn(5), Pfn(1)).is_ok());
        assert!(matches!(s.map_base(Vpn(200), Pfn(2)), Err(MapError::NoVma { .. })));
    }

    #[test]
    fn huge_map_requires_covering_anon_vma() {
        let mut s = AddressSpace::new();
        s.mmap(Vpn(0), 512, VmaKind::Anon).unwrap();
        s.mmap(Vpn(512), 512, VmaKind::File).unwrap();
        s.mmap(Vpn(1024), 100, VmaKind::Anon).unwrap();
        assert!(s.map_huge(Hvpn(0), Pfn(0)).is_ok());
        // File VMA: not eligible.
        assert!(matches!(s.map_huge(Hvpn(1), Pfn(512)), Err(MapError::RegionNotCovered { .. })));
        // Partial VMA: not covered.
        assert!(matches!(s.map_huge(Hvpn(2), Pfn(1024)), Err(MapError::RegionNotCovered { .. })));
        assert!(s.region_promotable(Hvpn(0)));
        assert!(!s.region_promotable(Hvpn(1)));
        assert!(!s.region_promotable(Hvpn(2)));
    }

    #[test]
    fn munmap_releases_mappings() {
        let mut s = space_with_anon(1024);
        s.map_base(Vpn(0), Pfn(1)).unwrap();
        s.map_huge(Hvpn(1), Pfn(512)).unwrap();
        let freed = s.munmap(Vpn(0)).unwrap();
        assert_eq!(freed.len(), 2);
        assert_eq!(s.rss_pages(), 0);
        assert!(s.find_vma(Vpn(0)).is_none());
        assert!(s.munmap(Vpn(0)).is_err());
    }

    #[test]
    fn dontneed_full_huge_page() {
        let mut s = space_with_anon(1024);
        s.map_huge(Hvpn(0), Pfn(0)).unwrap();
        let freed = s.madvise_dontneed(Vpn(0), 512);
        assert_eq!(freed.len(), 1);
        assert_eq!(freed[0].size, PageSize::Huge);
        assert_eq!(s.rss_pages(), 0);
        // VMA still exists: pages can fault back in.
        assert!(s.find_vma(Vpn(0)).is_some());
    }

    #[test]
    fn dontneed_partial_huge_page_splits() {
        let mut s = space_with_anon(1024);
        s.map_huge(Hvpn(0), Pfn(0)).unwrap();
        // Release only the first 100 pages: the huge mapping must break.
        let freed = s.madvise_dontneed(Vpn(0), 100);
        assert_eq!(freed.len(), 100);
        assert!(freed.iter().all(|f| f.size == PageSize::Base));
        // 412 base mappings remain, backed by the huge frame's tail.
        assert_eq!(s.rss_pages(), 412);
        assert_eq!(s.translate(Vpn(100)).unwrap().pfn, Pfn(100));
        assert_eq!(s.translate(Vpn(100)).unwrap().size, PageSize::Base);
        assert!(s.translate(Vpn(99)).is_none());
    }

    #[test]
    fn dontneed_reports_zero_cow() {
        let mut s = space_with_anon(100);
        s.map_zero_cow(Vpn(3), Pfn(0)).unwrap();
        s.map_base(Vpn(4), Pfn(10)).unwrap();
        let freed = s.madvise_dontneed(Vpn(0), 100);
        let zc: Vec<_> = freed.iter().filter(|f| f.zero_cow).collect();
        assert_eq!(zc.len(), 1);
        assert_eq!(zc[0].vpn, Vpn(3));
    }

    #[test]
    fn access_faults_on_unmapped() {
        let mut s = space_with_anon(100);
        assert!(s.access(Vpn(5), false).is_none());
        s.map_base(Vpn(5), Pfn(9)).unwrap();
        assert!(s.access(Vpn(5), false).is_some());
    }

    #[test]
    fn dontneed_empty_range_is_noop() {
        let mut s = space_with_anon(100);
        s.map_base(Vpn(5), Pfn(9)).unwrap();
        let freed = s.madvise_dontneed(Vpn(50), 0);
        assert!(freed.is_empty());
        assert_eq!(s.rss_pages(), 1);
    }
}
