//! Packed per-page state + version word for multi-core machines.
//!
//! One [`AtomicU64`] per page packs the lock state into the top byte and
//! a 56-bit version below it (the vmcache buffer-manager layout):
//!
//! ```text
//!   63        56 55                                            0
//!  +------------+-----------------------------------------------+
//!  | state byte |                 56-bit version                |
//!  +------------+-----------------------------------------------+
//!   state: 0 = unlocked, 1..=252 = shared(n), 253 = locked,
//!          254 = marked (second-chance eviction hint)
//! ```
//!
//! Translation fast paths take **optimistic reads**: snapshot the word,
//! do the walk, and re-validate that the version is unchanged and no
//! writer holds the lock. State transitions (map, promote, demote,
//! collapse, dedup) CAS the word to `locked`, mutate, and release with a
//! version bump so every concurrent optimist restarts. Shared locks
//! count readers in the state byte and never bump the version.
//!
//! The simulator's multi-core replay (`hawkeye-kernel`'s `multicore`
//! module) drives these words both from a seeded deterministic
//! interleaver (producing the `lock.*` registry counters) and from real
//! OS threads (producing wall-clock contention for the timing sidecar).
//!
//! # Examples
//!
//! ```
//! use hawkeye_vm::PageStateWord;
//!
//! let w = PageStateWord::new();
//! let snap = w.optimistic_begin().expect("unlocked");
//! assert!(w.optimistic_validate(snap), "no writer intervened");
//!
//! let before = w.load();
//! assert!(w.try_lock_exclusive(before));
//! assert!(w.optimistic_begin().is_none(), "readers back off");
//! w.unlock_exclusive();
//! assert!(!w.optimistic_validate(snap), "version bumped");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// State byte: no holders.
pub const UNLOCKED: u8 = 0;
/// State byte values `1..=MAX_SHARED` count shared holders.
pub const MAX_SHARED: u8 = 252;
/// State byte: one exclusive holder.
pub const LOCKED: u8 = 253;
/// State byte: unlocked but marked (second-chance hint).
pub const MARKED: u8 = 254;

const STATE_SHIFT: u32 = 56;
const VERSION_MASK: u64 = (1u64 << STATE_SHIFT) - 1;

/// Packs `state` over the version bits of `word`.
#[inline]
fn same_version(word: u64, state: u8) -> u64 {
    (word & VERSION_MASK) | ((state as u64) << STATE_SHIFT)
}

/// Packs `state` over a bumped version (wrapping in 56 bits).
#[inline]
fn next_version(word: u64, state: u8) -> u64 {
    ((word.wrapping_add(1)) & VERSION_MASK) | ((state as u64) << STATE_SHIFT)
}

/// A page's packed lock-state + version word. See the module docs for
/// the layout and protocol.
#[derive(Debug, Default)]
pub struct PageStateWord {
    word: AtomicU64,
}

impl PageStateWord {
    /// A fresh word: unlocked, version 0.
    pub fn new() -> Self {
        PageStateWord { word: AtomicU64::new(0) }
    }

    /// Raw word snapshot (acquire).
    #[inline]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// The state byte of a raw word.
    #[inline]
    pub fn state_of(word: u64) -> u8 {
        (word >> STATE_SHIFT) as u8
    }

    /// The 56-bit version of a raw word.
    #[inline]
    pub fn version_of(word: u64) -> u64 {
        word & VERSION_MASK
    }

    /// Starts an optimistic read: returns a snapshot to validate against,
    /// or `None` while a writer holds the word (the reader should spin or
    /// fall back to a shared lock).
    #[inline]
    pub fn optimistic_begin(&self) -> Option<u64> {
        let w = self.load();
        if Self::state_of(w) == LOCKED {
            None
        } else {
            Some(w)
        }
    }

    /// Ends an optimistic read: true iff no exclusive writer released
    /// since `snapshot` (shared locks taken/released in between are
    /// harmless and intentionally ignored — they never mutate).
    #[inline]
    pub fn optimistic_validate(&self, snapshot: u64) -> bool {
        let w = self.load();
        Self::version_of(w) == Self::version_of(snapshot) && Self::state_of(w) != LOCKED
    }

    /// One CAS attempt at the exclusive lock from snapshot `old`. Fails
    /// if the word changed or a holder is present (`old` itself must show
    /// `UNLOCKED` or `MARKED`).
    #[inline]
    pub fn try_lock_exclusive(&self, old: u64) -> bool {
        let s = Self::state_of(old);
        if s != UNLOCKED && s != MARKED {
            return false;
        }
        self.word
            .compare_exchange(old, same_version(old, LOCKED), Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Spins until the exclusive lock is held; returns the number of
    /// failed CAS/occupied-word attempts (0 on the uncontended path).
    pub fn lock_exclusive(&self) -> u64 {
        let mut retries = 0u64;
        loop {
            let old = self.load();
            if self.try_lock_exclusive(old) {
                return retries;
            }
            retries += 1;
            std::hint::spin_loop();
        }
    }

    /// Releases the exclusive lock with a version bump, so every
    /// optimistic reader that overlapped the critical section restarts.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the word is not exclusively locked.
    pub fn unlock_exclusive(&self) {
        let w = self.load();
        debug_assert_eq!(Self::state_of(w), LOCKED, "unlock_exclusive of unheld word");
        self.word.store(next_version(w, UNLOCKED), Ordering::Release);
    }

    /// Releases the exclusive lock, leaving the page marked.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the word is not exclusively locked.
    pub fn unlock_exclusive_marked(&self) {
        let w = self.load();
        debug_assert_eq!(Self::state_of(w), LOCKED, "unlock of unheld word");
        self.word.store(next_version(w, MARKED), Ordering::Release);
    }

    /// One CAS attempt at a shared lock from snapshot `old`: increments
    /// the holder count (a `MARKED` word becomes shared-1, clearing the
    /// mark). Fails on an exclusive holder, a full count, or a changed
    /// word.
    #[inline]
    pub fn try_lock_shared(&self, old: u64) -> bool {
        let s = Self::state_of(old);
        let new_state = match s {
            MARKED => 1,
            s if s < MAX_SHARED => s + 1,
            _ => return false,
        };
        self.word
            .compare_exchange(
                old,
                same_version(old, new_state),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Spins until a shared lock is held; returns failed attempts.
    pub fn lock_shared(&self) -> u64 {
        let mut retries = 0u64;
        loop {
            let old = self.load();
            if self.try_lock_shared(old) {
                return retries;
            }
            retries += 1;
            std::hint::spin_loop();
        }
    }

    /// Drops one shared holder. No version bump — shared critical
    /// sections never mutate.
    ///
    /// # Panics
    ///
    /// Debug builds panic if no shared holder is present.
    pub fn unlock_shared(&self) {
        loop {
            let w = self.load();
            let s = Self::state_of(w);
            debug_assert!((1..=MAX_SHARED).contains(&s), "unlock_shared of unheld word");
            if self
                .word
                .compare_exchange_weak(
                    w,
                    same_version(w, s - 1),
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Upgrades a sole shared holder to the exclusive lock (one CAS
    /// attempt; fails if other readers arrived or the word changed).
    #[inline]
    pub fn try_upgrade(&self, old: u64) -> bool {
        if Self::state_of(old) != 1 {
            return false;
        }
        self.word
            .compare_exchange(old, same_version(old, LOCKED), Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Best-effort second-chance mark: CASes an unlocked word to
    /// `MARKED` (same version). Held or already-marked words are left
    /// alone. Returns whether the mark landed.
    pub fn mark(&self) -> bool {
        let old = self.load();
        if Self::state_of(old) != UNLOCKED {
            return false;
        }
        self.word
            .compare_exchange(old, same_version(old, MARKED), Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Whether the current word carries the second-chance mark.
    pub fn is_marked(&self) -> bool {
        Self::state_of(self.load()) == MARKED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_packs_state_and_version_independently() {
        assert_eq!(PageStateWord::state_of(same_version(7, LOCKED)), LOCKED);
        assert_eq!(PageStateWord::version_of(same_version(7, LOCKED)), 7);
        // Version bump wraps inside 56 bits and never leaks into state.
        let top = VERSION_MASK;
        assert_eq!(PageStateWord::version_of(next_version(top, UNLOCKED)), 0);
        assert_eq!(PageStateWord::state_of(next_version(top, MARKED)), MARKED);
    }

    #[test]
    fn exclusive_round_trip_bumps_version_once() {
        let w = PageStateWord::new();
        let v0 = PageStateWord::version_of(w.load());
        assert_eq!(w.lock_exclusive(), 0, "uncontended");
        w.unlock_exclusive();
        assert_eq!(PageStateWord::version_of(w.load()), v0 + 1);
        assert_eq!(PageStateWord::state_of(w.load()), UNLOCKED);
    }

    #[test]
    fn optimistic_read_fails_across_a_write() {
        let w = PageStateWord::new();
        let snap = w.optimistic_begin().expect("unlocked");
        assert!(w.optimistic_validate(snap));
        w.lock_exclusive();
        assert!(!w.optimistic_validate(snap), "in-flight writer invalidates");
        assert!(w.optimistic_begin().is_none());
        w.unlock_exclusive();
        assert!(!w.optimistic_validate(snap), "version moved on");
        let snap2 = w.optimistic_begin().expect("unlocked again");
        assert!(w.optimistic_validate(snap2));
    }

    #[test]
    fn shared_locks_count_holders_and_block_writers() {
        let w = PageStateWord::new();
        assert_eq!(w.lock_shared(), 0);
        assert_eq!(w.lock_shared(), 0);
        assert_eq!(PageStateWord::state_of(w.load()), 2);
        assert!(!w.try_lock_exclusive(w.load()), "readers hold off writers");
        // Shared readers never bump the version.
        let v = PageStateWord::version_of(w.load());
        w.unlock_shared();
        w.unlock_shared();
        assert_eq!(PageStateWord::version_of(w.load()), v);
        assert!(w.try_lock_exclusive(w.load()));
        w.unlock_exclusive();
    }

    #[test]
    fn upgrade_succeeds_only_for_the_sole_reader() {
        let w = PageStateWord::new();
        w.lock_shared();
        assert!(w.try_upgrade(w.load()));
        w.unlock_exclusive();
        w.lock_shared();
        w.lock_shared();
        assert!(!w.try_upgrade(w.load()), "two readers can't upgrade");
        w.unlock_shared();
        w.unlock_shared();
    }

    #[test]
    fn mark_is_cleared_by_the_next_holder() {
        let w = PageStateWord::new();
        assert!(w.mark());
        assert!(!w.mark(), "already marked");
        assert!(w.is_marked());
        // A shared lock clears the mark (second chance consumed).
        assert!(w.try_lock_shared(w.load()));
        assert!(!w.is_marked());
        w.unlock_shared();
        // An exclusive lock on a marked word also clears it on release.
        assert!(w.mark());
        assert!(w.try_lock_exclusive(w.load()));
        w.unlock_exclusive();
        assert!(!w.is_marked());
    }

    #[test]
    fn shared_count_saturates_at_max_shared() {
        let w = PageStateWord::new();
        for _ in 0..MAX_SHARED {
            assert!(w.try_lock_shared(w.load()));
        }
        assert!(!w.try_lock_shared(w.load()), "count full");
        for _ in 0..MAX_SHARED {
            w.unlock_shared();
        }
        assert_eq!(PageStateWord::state_of(w.load()), UNLOCKED);
    }
}
