//! Property-based tests for the mixed-granularity page table and address
//! space: random map/unmap/split/collapse/madvise sequences must keep the
//! mapping bijective per VA, RSS accounting exact, and translations
//! consistent.

// Requires the external `proptest` crate; see the crate's Cargo.toml for
// how to re-enable. Default builds must work offline.
#![cfg(feature = "proptest")]
use hawkeye_mem::Pfn;
use hawkeye_vm::{AddressSpace, Hvpn, PageSize, VmaKind, Vpn};
use proptest::prelude::*;
use std::collections::BTreeMap;

const REGIONS: u64 = 8;

#[derive(Debug, Clone)]
enum Op {
    MapBase { slot: u64 },
    MapHuge { region: u64 },
    UnmapBase { slot: u64 },
    SplitHuge { region: u64 },
    Madvise { start: u64, len: u64 },
    Access { slot: u64, write: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let pages = REGIONS * 512;
    prop_oneof![
        (0..pages).prop_map(|slot| Op::MapBase { slot }),
        (0..REGIONS).prop_map(|region| Op::MapHuge { region }),
        (0..pages).prop_map(|slot| Op::UnmapBase { slot }),
        (0..REGIONS).prop_map(|region| Op::SplitHuge { region }),
        (0..pages, 1u64..600).prop_map(|(start, len)| Op::Madvise { start, len }),
        (0..pages, any::<bool>()).prop_map(|(slot, write)| Op::Access { slot, write }),
    ]
}

/// A reference model: which base pages are resident, via which granularity.
#[derive(Default)]
struct Model {
    /// vpn -> (pfn, huge?)
    mapped: BTreeMap<u64, (u64, bool)>,
}

impl Model {
    fn rss(&self) -> u64 {
        self.mapped.len() as u64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_ops_agree_with_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut space = AddressSpace::new();
        space.mmap(Vpn(0), REGIONS * 512, VmaKind::Anon).unwrap();
        let mut model = Model::default();
        let mut next_pfn = 1_000_000u64; // fake frames, distinct per mapping

        for op in ops {
            match op {
                Op::MapBase { slot } => {
                    let vpn = Vpn(slot);
                    let res = space.map_base(vpn, Pfn(next_pfn));
                    if model.mapped.contains_key(&slot)
                        || model.mapped.contains_key(&(slot / 512 * 512))
                            && model.mapped.get(&(slot / 512 * 512)).map(|m| m.1) == Some(true)
                    {
                        prop_assert!(res.is_err(), "double map must fail at {vpn}");
                    } else if res.is_ok() {
                        model.mapped.insert(slot, (next_pfn, false));
                        next_pfn += 1;
                    }
                }
                Op::MapHuge { region } => {
                    let hvpn = Hvpn(region);
                    let base = region * 512;
                    let occupied = (base..base + 512).any(|v| model.mapped.contains_key(&v));
                    let res = space.map_huge(hvpn, Pfn(next_pfn * 512 & !511));
                    if occupied {
                        prop_assert!(res.is_err(), "huge map over mappings must fail");
                    } else if res.is_ok() {
                        let hpfn = next_pfn * 512 & !511;
                        for i in 0..512 {
                            model.mapped.insert(base + i, (hpfn + i, true));
                        }
                        next_pfn += 1;
                    }
                }
                Op::UnmapBase { slot } => {
                    let res = space.unmap_base(Vpn(slot));
                    match model.mapped.get(&slot) {
                        Some((_, false)) => {
                            prop_assert!(res.is_ok());
                            model.mapped.remove(&slot);
                        }
                        _ => prop_assert!(res.is_err(), "unmap of {slot} must fail"),
                    }
                }
                Op::SplitHuge { region } => {
                    let base = region * 512;
                    let is_huge = model.mapped.get(&base).map(|m| m.1) == Some(true);
                    let res = space.split_huge(Hvpn(region));
                    prop_assert_eq!(res.is_ok(), is_huge);
                    if is_huge {
                        for i in 0..512 {
                            if let Some(e) = model.mapped.get_mut(&(base + i)) {
                                e.1 = false;
                            }
                        }
                    }
                }
                Op::Madvise { start, len } => {
                    let end = (start + len).min(REGIONS * 512);
                    let freed = space.madvise_dontneed(Vpn(start), end.saturating_sub(start));
                    // Count released base pages in the model.
                    let mut expect = 0;
                    for v in start..end {
                        if model.mapped.remove(&v).is_some() {
                            expect += 1;
                        }
                    }
                    let got: u64 =
                        freed.iter().map(|f| f.size.base_pages()).sum();
                    prop_assert_eq!(got, expect, "madvise released wrong amount");
                    // Straddled huge mappings were split: sync the model's
                    // granularity flags (contents unchanged).
                    for v in (start / 512 * 512)..((end + 511) / 512 * 512).min(REGIONS * 512) {
                        if let Some(e) = model.mapped.get_mut(&v) {
                            if space.page_table().huge_entry(Vpn(v).hvpn()).is_none() {
                                e.1 = false;
                            }
                        }
                    }
                }
                Op::Access { slot, write } => {
                    let t = space.access(Vpn(slot), write);
                    match model.mapped.get(&slot) {
                        Some((pfn, huge)) => {
                            let t = t.expect("mapped page must translate");
                            prop_assert_eq!(t.pfn.0, *pfn);
                            prop_assert_eq!(t.size == PageSize::Huge, *huge);
                        }
                        None => prop_assert!(t.is_none(), "unmapped page translated"),
                    }
                }
            }
            // Global invariant: RSS matches the model exactly.
            prop_assert_eq!(space.rss_pages(), model.rss());
        }
    }

    #[test]
    fn sampling_counts_match_recent_accesses(
        touched in proptest::collection::btree_set(0u64..512, 0..200),
    ) {
        let mut space = AddressSpace::new();
        space.mmap(Vpn(0), 512, VmaKind::Anon).unwrap();
        for v in 0..512u64 {
            space.map_base(Vpn(v), Pfn(v)).unwrap();
        }
        // Clear boot-time access bits.
        let _ = space.sample_and_clear_access(Hvpn(0));
        for v in &touched {
            space.access(Vpn(*v), false).unwrap();
        }
        let s = space.sample_and_clear_access(Hvpn(0));
        prop_assert_eq!(s.mapped, 512);
        prop_assert_eq!(s.accessed as usize, touched.len());
        // And the bits were cleared by the sample.
        let s2 = space.sample_and_clear_access(Hvpn(0));
        prop_assert_eq!(s2.accessed, 0);
    }
}
