//! Seeded-interleaving stress test for [`PageStateWord`].
//!
//! A std-only deterministic scheduler drives a set of *virtual threads*
//! through randomized lock/unlock/upgrade/optimistic-read transitions on
//! a small array of shared words. One SplitMix64 stream picks which
//! virtual thread steps next, so every interleaving is replayable from
//! its seed — no timing, no dev-deps, runs offline.
//!
//! Invariants asserted at every step and at drain:
//!
//! * **no lost updates** — a plain (non-atomic-in-the-model) counter per
//!   word is incremented once per exclusive critical section; its final
//!   value must equal the number of successful exclusive acquisitions;
//! * **state coherence** — the word's state byte always equals the
//!   model's holder census (shared count, exclusive flag);
//! * **version discipline** — the version bumps exactly on exclusive
//!   release and never otherwise, so an optimistic snapshot taken before
//!   a write never validates after it;
//! * **no stuck states** — after every virtual thread drains, every word
//!   is unlocked (or cleanly marked) with zero holders.
//!
//! A final real-thread smoke hammers one word from OS threads: the
//! outcome (total increments) is exact even though the interleaving is
//! not, so the assertion is host-speed-independent.

use hawkeye_mem::rng::SplitMix64;
use hawkeye_vm::page_state::{LOCKED, MARKED, UNLOCKED};
use hawkeye_vm::PageStateWord;

const WORDS: usize = 8;
const VTHREADS: usize = 12;
const STEPS: usize = 60_000;

/// What one virtual thread is doing between scheduler steps.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Vt {
    Idle,
    /// Holding a shared lock on word `w` for `left` more steps.
    Shared { w: usize, left: u32 },
    /// Holding the exclusive lock on word `w` for `left` more steps.
    Exclusive { w: usize, left: u32 },
    /// Mid optimistic read of word `w` with `snap`; validates after
    /// `left` steps and checks the verdict against `writes_seen`.
    Optimistic { w: usize, snap: u64, left: u32, writes_seen: u64 },
}

/// Reference model for one word.
#[derive(Debug, Default)]
struct Model {
    shared: u32,
    exclusive: bool,
    marked: bool,
    /// Exclusive critical sections completed (version bumps).
    writes: u64,
    /// The plain counter mutated under the exclusive lock.
    value: u64,
}

fn check_coherence(words: &[PageStateWord], model: &[Model]) {
    for (i, (word, m)) in words.iter().zip(model.iter()).enumerate() {
        let s = PageStateWord::state_of(word.load());
        let expect = if m.exclusive {
            LOCKED
        } else if m.shared > 0 {
            m.shared as u8
        } else if m.marked {
            MARKED
        } else {
            UNLOCKED
        };
        assert_eq!(s, expect, "word {i} state byte vs model {m:?}");
        assert_eq!(
            PageStateWord::version_of(word.load()),
            m.writes & ((1u64 << 56) - 1),
            "word {i}: version must count exclusive releases exactly"
        );
    }
}

fn stress(seed: u64) {
    let words: Vec<PageStateWord> = (0..WORDS).map(|_| PageStateWord::new()).collect();
    let mut model: Vec<Model> = (0..WORDS).map(|_| Model::default()).collect();
    let mut vts = vec![Vt::Idle; VTHREADS];
    let mut rng = SplitMix64::new(seed);
    let mut exclusive_acquires = vec![0u64; WORDS];

    let step = |vt: &mut Vt,
                    model: &mut Vec<Model>,
                    exclusive_acquires: &mut Vec<u64>,
                    rng: &mut SplitMix64| {
        match *vt {
            Vt::Idle => {
                let w = rng.below(WORDS as u64) as usize;
                let word = &words[w];
                match rng.below(10) {
                    // Try the exclusive lock (single CAS, like the
                    // machine's state-transition paths).
                    0..=2 => {
                        let old = word.load();
                        let ok = word.try_lock_exclusive(old);
                        let free = !model[w].exclusive && model[w].shared == 0;
                        assert_eq!(ok, free, "exclusive CAS vs model for word {w}");
                        if ok {
                            model[w].exclusive = true;
                            model[w].marked = false;
                            exclusive_acquires[w] += 1;
                            // The protected mutation: not atomic — the
                            // lock is what makes this safe.
                            model[w].value += 1;
                            *vt = Vt::Exclusive { w, left: rng.below(4) as u32 };
                        }
                    }
                    // Take a shared lock.
                    3..=5 => {
                        let old = word.load();
                        let ok = word.try_lock_shared(old);
                        let can = !model[w].exclusive && model[w].shared < 252;
                        assert_eq!(ok, can, "shared CAS vs model for word {w}");
                        if ok {
                            model[w].shared += 1;
                            model[w].marked = false;
                            *vt = Vt::Shared { w, left: rng.below(6) as u32 };
                        }
                    }
                    // Optimistic read spanning a few steps.
                    6..=8 => {
                        if let Some(snap) = word.optimistic_begin() {
                            assert!(!model[w].exclusive, "optimists back off from writers");
                            *vt = Vt::Optimistic {
                                w,
                                snap,
                                left: 1 + rng.below(5) as u32,
                                writes_seen: model[w].writes,
                            };
                        } else {
                            assert!(model[w].exclusive, "begin only fails under a writer");
                        }
                    }
                    // Second-chance mark.
                    _ => {
                        let landed = word.mark();
                        let free = !model[w].exclusive && model[w].shared == 0 && !model[w].marked;
                        assert_eq!(landed, free, "mark vs model for word {w}");
                        if landed {
                            model[w].marked = true;
                        }
                    }
                }
            }
            Vt::Shared { w, left } => {
                if left > 0 {
                    // Occasionally attempt the sole-reader upgrade.
                    if rng.below(8) == 0 {
                        let old = words[w].load();
                        let ok = words[w].try_upgrade(old);
                        assert_eq!(
                            ok,
                            model[w].shared == 1 && !model[w].exclusive,
                            "upgrade vs model for word {w}"
                        );
                        if ok {
                            model[w].shared = 0;
                            model[w].exclusive = true;
                            exclusive_acquires[w] += 1;
                            model[w].value += 1;
                            *vt = Vt::Exclusive { w, left };
                            return;
                        }
                    }
                    *vt = Vt::Shared { w, left: left - 1 };
                } else {
                    words[w].unlock_shared();
                    model[w].shared -= 1;
                    *vt = Vt::Idle;
                }
            }
            Vt::Exclusive { w, left } => {
                if left > 0 {
                    *vt = Vt::Exclusive { w, left: left - 1 };
                } else {
                    if rng.below(5) == 0 {
                        words[w].unlock_exclusive_marked();
                        model[w].marked = true;
                    } else {
                        words[w].unlock_exclusive();
                    }
                    model[w].exclusive = false;
                    model[w].writes += 1;
                    *vt = Vt::Idle;
                }
            }
            Vt::Optimistic { w, snap, left, writes_seen } => {
                if left > 0 {
                    *vt = Vt::Optimistic { w, snap, left: left - 1, writes_seen };
                } else {
                    let ok = words[w].optimistic_validate(snap);
                    let clean = model[w].writes == writes_seen && !model[w].exclusive;
                    assert_eq!(
                        ok, clean,
                        "word {w}: optimistic verdict must track intervening writes exactly"
                    );
                    *vt = Vt::Idle;
                }
            }
        }
    };

    for _ in 0..STEPS {
        let who = rng.below(VTHREADS as u64) as usize;
        let mut vt = vts[who];
        step(&mut vt, &mut model, &mut exclusive_acquires, &mut rng);
        vts[who] = vt;
        check_coherence(&words, &model);
    }

    // Drain: every virtual thread releases what it holds; nothing may be
    // stuck.
    for (who, slot) in vts.iter_mut().enumerate() {
        let mut vt = *slot;
        let mut fuel = 64;
        while vt != Vt::Idle {
            step(&mut vt, &mut model, &mut exclusive_acquires, &mut rng);
            fuel -= 1;
            assert!(fuel > 0, "virtual thread {who} stuck in {vt:?}");
        }
        *slot = vt;
    }
    check_coherence(&words, &model);
    for (i, m) in model.iter().enumerate() {
        assert_eq!(m.shared, 0, "word {i} leaked shared holders");
        assert!(!m.exclusive, "word {i} leaked the exclusive lock");
        assert_eq!(
            m.value, exclusive_acquires[i],
            "word {i}: lost update — counter diverged from exclusive acquisitions"
        );
    }
}

#[test]
fn seeded_interleavings_preserve_lock_invariants() {
    for seed in [1u64, 7, 0xDEADBEEF] {
        stress(seed);
    }
}

#[test]
fn real_threads_never_lose_exclusive_updates() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const THREADS: usize = 4;
    const PER_THREAD: u64 = 20_000;
    let word = Arc::new(PageStateWord::new());
    // Intentionally a plain cell mutated only under the exclusive lock;
    // the release store in unlock_exclusive publishes it.
    let value = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (word, value, retries) = (word.clone(), value.clone(), retries.clone());
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    let r = word.lock_exclusive();
                    retries.fetch_add(r, Ordering::Relaxed);
                    let v = value.load(Ordering::Relaxed);
                    value.store(v + 1, Ordering::Relaxed);
                    word.unlock_exclusive();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(value.load(Ordering::Relaxed), THREADS as u64 * PER_THREAD);
    assert_eq!(
        PageStateWord::version_of(word.load()),
        THREADS as u64 * PER_THREAD,
        "one version bump per critical section"
    );
}
