//! Differential test for the page table's embedded translation cache.
//!
//! Two page tables — cache on and cache off — are driven through the same
//! randomized interleaving of accesses and mutations (map, unmap, split,
//! collapse, remap, sampling). Every return value and every piece of
//! observable state must be identical: the cache may only short-circuit
//! accesses that are state no-ops.

use hawkeye_mem::rng::SplitMix64;
use hawkeye_mem::Pfn;
use hawkeye_vm::{Hvpn, PageTable, Vpn};

const REGIONS: u64 = 4;
const PAGES: u64 = REGIONS * 512;

fn assert_same_state(on: &PageTable, off: &PageTable, step: usize) {
    assert_eq!(on.base_count(), off.base_count(), "base_count @ {step}");
    assert_eq!(on.huge_count(), off.huge_count(), "huge_count @ {step}");
    assert_eq!(
        on.mapped_regions().collect::<Vec<_>>(),
        off.mapped_regions().collect::<Vec<_>>(),
        "regions @ {step}"
    );
    for v in 0..PAGES {
        assert_eq!(on.translate(Vpn(v)), off.translate(Vpn(v)), "translate {v} @ {step}");
        assert_eq!(on.base_entry(Vpn(v)), off.base_entry(Vpn(v)), "entry {v} @ {step}");
    }
    for h in 0..REGIONS {
        assert_eq!(
            on.huge_entry(Hvpn(h)).copied(),
            off.huge_entry(Hvpn(h)).copied(),
            "huge {h} @ {step}"
        );
    }
}

#[test]
fn random_interleaving_identical_with_and_without_cache() {
    for seed in 0..8 {
        let mut rng = SplitMix64::new(0xD1F + seed);
        let mut on = PageTable::new();
        let mut off = PageTable::new();
        off.set_translation_cache_enabled(false);
        assert!(on.translation_cache_enabled());
        assert!(!off.translation_cache_enabled());

        for step in 0..4000 {
            let vpn = Vpn(rng.below(PAGES));
            let hvpn = Hvpn(rng.below(REGIONS));
            match rng.below(100) {
                // Touches dominate, as on the real hot path.
                0..=59 => {
                    let write = rng.below(2) == 1;
                    assert_eq!(
                        on.access(vpn, write),
                        off.access(vpn, write),
                        "access {vpn:?} write {write} @ {step}"
                    );
                }
                60..=69 => {
                    let zero_cow = rng.below(4) == 0;
                    let pfn = Pfn(rng.below(1 << 20));
                    assert_eq!(
                        on.map_base(vpn, pfn, zero_cow).is_ok(),
                        off.map_base(vpn, pfn, zero_cow).is_ok(),
                        "map_base @ {step}"
                    );
                }
                70..=74 => {
                    assert_eq!(
                        on.unmap_base(vpn).ok(),
                        off.unmap_base(vpn).ok(),
                        "unmap_base @ {step}"
                    );
                }
                75..=79 => {
                    let pfn = Pfn(hvpn.0 << 9);
                    assert_eq!(
                        on.map_huge(hvpn, pfn).is_ok(),
                        off.map_huge(hvpn, pfn).is_ok(),
                        "map_huge @ {step}"
                    );
                }
                80..=83 => {
                    assert_eq!(
                        on.unmap_huge(hvpn).ok(),
                        off.unmap_huge(hvpn).ok(),
                        "unmap_huge @ {step}"
                    );
                }
                84..=87 => {
                    assert_eq!(
                        on.split_huge(hvpn).ok(),
                        off.split_huge(hvpn).ok(),
                        "split_huge @ {step}"
                    );
                }
                88..=90 => {
                    let mut taken_on = Vec::new();
                    let mut taken_off = Vec::new();
                    on.take_base_entries_in_region(hvpn, |v, e| taken_on.push((v, e)));
                    off.take_base_entries_in_region(hvpn, |v, e| taken_off.push((v, e)));
                    assert_eq!(taken_on, taken_off, "collapse @ {step}");
                }
                91..=93 => {
                    let pfn = Pfn(rng.below(1 << 20));
                    assert_eq!(
                        on.remap_base(vpn, pfn).is_ok(),
                        off.remap_base(vpn, pfn).is_ok(),
                        "remap @ {step}"
                    );
                }
                94..=96 => {
                    assert_eq!(
                        on.sample_and_clear_access(hvpn),
                        off.sample_and_clear_access(hvpn),
                        "sample @ {step}"
                    );
                }
                _ => {
                    on.clear_region_access(hvpn);
                    off.clear_region_access(hvpn);
                }
            }
        }
        assert_same_state(&on, &off, 4000);
    }
}

#[test]
fn hammered_page_state_survives_cache_hits() {
    // Repeated hits on one cached page must keep accessed/dirty bits and
    // samples identical to the uncached table.
    let mut on = PageTable::new();
    let mut off = PageTable::new();
    off.set_translation_cache_enabled(false);
    for pt in [&mut on, &mut off] {
        pt.map_base(Vpn(3), Pfn(30), false).unwrap();
    }
    for round in 0..50 {
        for _ in 0..20 {
            assert_eq!(on.access(Vpn(3), true), off.access(Vpn(3), true));
            assert_eq!(on.access(Vpn(3), false), off.access(Vpn(3), false));
        }
        assert_eq!(
            on.sample_and_clear_access(Hvpn(0)),
            off.sample_and_clear_access(Hvpn(0)),
            "round {round}"
        );
    }
    assert_same_state(&on, &off, 50);
}
