//! Two-level (guest/host) virtualization experiments.
//!
//! Virtualized systems translate twice — guest-virtual → guest-physical
//! (the guest's page tables) and guest-physical → host-physical (EPT/NPT)
//! — so a TLB miss walks a two-dimensional structure of up to 24 entries.
//! Huge pages only deliver their full benefit when **both** layers map
//! huge; the paper's Fig. 9 evaluates HawkEye at the host, the guest, and
//! both, and Fig. 11 shows that guest-side async pre-zeroing plus
//! host-side same-page merging recovers free guest memory *without* a
//! balloon driver.
//!
//! [`VirtSystem`] runs full guest kernels (policies and all) whose
//! "physical" frames are guest-physical addresses backed 1:1 by a host
//! process per VM; guest accesses drive host faults (EPT violations), a
//! nested TLB, host-side KSM, and a simple SSD swap for overcommit.
//!
//! # Examples
//!
//! ```
//! use hawkeye_virt::{VirtSystem, VmSpec};
//! use hawkeye_kernel::{KernelConfig, BasePagesOnly, MemOp, workload::script};
//! use hawkeye_policies::LinuxThp;
//! use hawkeye_vm::{Vpn, VmaKind};
//!
//! let mut sys = VirtSystem::new(KernelConfig::small(), Box::new(LinuxThp::default()));
//! let vm = sys.add_vm(VmSpec { frames: 8 * 1024 }, Box::new(BasePagesOnly));
//! sys.spawn_in_vm(vm, script("w", vec![
//!     MemOp::Mmap { start: Vpn(0), pages: 512, kind: VmaKind::Anon },
//!     MemOp::TouchRange { start: Vpn(0), pages: 512, write: true, think: 50, stride: 1, repeats: 1 },
//! ]));
//! sys.run();
//! assert!(sys.guest(vm).process(1).unwrap().is_finished());
//! ```

pub mod system;

pub use system::{VirtConfig, VirtError, VirtSystem, VmId, VmSpec};
