//! The two-level virtualization driver.
//!
//! Each VM is a full guest [`Simulator`] (its own kernel, policy and
//! workloads) whose physical frames are guest-physical addresses. A host
//! [`Machine`] backs each VM with one host process whose virtual pages
//! *are* the VM's guest-physical pages, so the host's huge-page policy
//! manages EPT mappings exactly like process memory. An
//! [`hawkeye_kernel::AccessHook`] bridges every guest touch to the host:
//! EPT faults on first access, copy-on-write when host KSM merged the
//! frame into the zero page, swap-in when the frame was evicted, and the
//! extra nested-walk cost whenever the host side maps the frame with base
//! pages.

use hawkeye_kernel::{
    AccessHook, FaultAction, HugePagePolicy, KernelConfig, Machine, Simulator, Workload,
};
use hawkeye_mem::{PageContent, Pfn};
use hawkeye_metrics::Cycles;
use hawkeye_trace::TraceEvent;
use hawkeye_vm::{Hvpn, PageSize, VmaKind, Vpn};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Error from the host side of the virtualization bridge.
///
/// These conditions used to abort the whole process (`unwrap`/`assert!` in
/// the bridge path); they now propagate so a finished or missing guest
/// process degrades gracefully — the touch is dropped, the error counted in
/// [`VirtStats::bridge_errors`], and the suite keeps running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtError {
    /// The host process backing a VM does not exist (e.g. already exited).
    NoProcess {
        /// Host pid that was expected to back the VM.
        pid: u32,
    },
    /// The host fault loop did not converge for a guest-physical address.
    FaultLoopDiverged {
        /// Guest-physical address (frame number) that kept faulting.
        gpa: u64,
    },
    /// The host ran out of memory with nothing left to evict.
    NothingEvictable,
    /// Repeated eviction could not free enough memory to map a page.
    Thrashing {
        /// Guest-physical page that could not be mapped.
        gpa: u64,
    },
}

impl fmt::Display for VirtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VirtError::NoProcess { pid } => write!(f, "no host process with pid {pid}"),
            VirtError::FaultLoopDiverged { gpa } => {
                write!(f, "host fault loop did not converge at gpa {gpa:#x}")
            }
            VirtError::NothingEvictable => {
                f.write_str("host out of memory with nothing evictable")
            }
            VirtError::Thrashing { gpa } => {
                write!(f, "host thrashing: could not free memory for gpa {gpa:#x}")
            }
        }
    }
}

impl Error for VirtError {}

/// Size of one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmSpec {
    /// Guest-physical frames (4 KB each).
    pub frames: u64,
}

/// Handle to a VM inside a [`VirtSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmId(pub usize);

/// Host-side virtualization tunables.
#[derive(Debug, Clone, Copy)]
pub struct VirtConfig {
    /// Enable host-side same-page merging of zero guest pages (the
    /// balloon-free memory sharing of Fig. 11).
    pub ksm: bool,
    /// KSM scan budget per host tick, in guest pages.
    pub ksm_pages_per_tick: u64,
    /// Enable the paravirtual balloon baseline: guest-free frames are
    /// periodically returned to the host.
    pub balloon: bool,
    /// Balloon scan budget per host tick, in guest pages.
    pub balloon_pages_per_tick: u64,
    /// Cost of evicting one page to swap.
    pub swap_out: Cycles,
    /// Cost of faulting one page back from swap.
    pub swap_in: Cycles,
    /// Fraction of the guest walk duration charged *extra* when the host
    /// maps the frame with base pages (longer EPT legs of the 2-D walk).
    pub host_base_walk_penalty: f64,
    /// Zero pages per huge page required before host KSM demotes it.
    pub dedup_min_zero: u32,
}

impl Default for VirtConfig {
    fn default() -> Self {
        VirtConfig {
            ksm: false,
            ksm_pages_per_tick: 8192,
            balloon: false,
            balloon_pages_per_tick: 8192,
            swap_out: Cycles::from_micros(60),
            swap_in: Cycles::from_micros(100),
            host_base_walk_penalty: 0.5,
            dedup_min_zero: 64,
        }
    }
}

/// Host-side event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtStats {
    /// EPT (host) faults taken on guest accesses.
    pub ept_faults: u64,
    /// Host copy-on-write faults (writes to KSM-merged pages).
    pub host_cow_faults: u64,
    /// Pages swapped out under host pressure.
    pub swap_outs: u64,
    /// Pages faulted back from swap.
    pub swap_ins: u64,
    /// Guest pages merged into the host zero page by KSM.
    pub ksm_merged: u64,
    /// Guest-free pages returned to the host by the balloon.
    pub ballooned: u64,
    /// Guest touches dropped because the host bridge hit a [`VirtError`]
    /// (missing process, eviction failure); nonzero values mean the run
    /// degraded rather than aborting.
    pub bridge_errors: u64,
}

struct HostSide {
    machine: Machine,
    policy: Box<dyn HugePagePolicy>,
    cfg: VirtConfig,
    swapped: HashSet<(u32, u64)>,
    host_pids: Vec<u32>,
    evict_rr: usize,
    stats: VirtStats,
}

impl HostSide {
    /// The bridge target: one guest page touch.
    ///
    /// # Errors
    ///
    /// See [`VirtError`]; the bridge counts the error and drops the touch.
    fn guest_touch(
        &mut self,
        host_pid: u32,
        gpa: u64,
        write: bool,
        walk: Cycles,
    ) -> Result<Cycles, VirtError> {
        let vpn = Vpn(gpa);
        let mut cost = Cycles::ZERO;
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 6 {
                return Err(VirtError::FaultLoopDiverged { gpa });
            }
            let tr = {
                let p = self
                    .machine
                    .process_mut(host_pid)
                    .ok_or(VirtError::NoProcess { pid: host_pid })?;
                p.space_mut().access(vpn, write)
            };
            match tr {
                Some(t) => {
                    if walk > Cycles::ZERO {
                        // Nested-walk surcharge: host base mappings make
                        // the EPT legs long; host huge mappings keep them
                        // short.
                        if t.size == PageSize::Base {
                            cost += Cycles::new(
                                (walk.get() as f64 * self.cfg.host_base_walk_penalty) as u64,
                            );
                        }
                    }
                    if write {
                        self.machine
                            .pm_mut()
                            .frame_mut(t.pfn)
                            .set_content(PageContent::non_zero(6));
                    }
                    return Ok(cost);
                }
                None => {
                    // Unmapped, swapped, or a write to a KSM-merged page.
                    let zero_cow = self
                        .machine
                        .process(host_pid)
                        .and_then(|p| p.space().translate(vpn))
                        .map(|t| t.zero_cow)
                        .unwrap_or(false);
                    if write && zero_cow {
                        let (c, _) = self.fallible(host_pid, vpn, |hs, pid, v| {
                            hs.machine.cow_fault(pid, v).map(|c| (c, false)).map_err(|_| ())
                        })?;
                        cost += c;
                        self.stats.host_cow_faults += 1;
                        self.machine.metrics().add("virt.host_cow_faults", 1);
                        self.machine.trace().emit(
                            host_pid,
                            TraceEvent::Fault { vpn: gpa, huge: false, cow: true, cycles: c.get() },
                        );
                        continue;
                    }
                    if self.swapped.remove(&(host_pid, gpa)) {
                        cost += self.cfg.swap_in;
                        self.stats.swap_ins += 1;
                        self.machine.metrics().add("virt.swap_ins", 1);
                    }
                    // EPT violation: ask the host policy.
                    let action = self.policy.on_fault(&mut self.machine, host_pid, vpn);
                    let (c, huge) = self.apply_fault(host_pid, vpn, action)?;
                    cost += c;
                    self.stats.ept_faults += 1;
                    self.machine.metrics().add("virt.ept_faults", 1);
                    self.machine.trace().emit(
                        host_pid,
                        TraceEvent::Fault { vpn: gpa, huge, cow: false, cycles: c.get() },
                    );
                }
            }
        }
    }

    /// Returns the fault cost and whether the host mapped the page huge.
    fn apply_fault(
        &mut self,
        pid: u32,
        vpn: Vpn,
        action: FaultAction,
    ) -> Result<(Cycles, bool), VirtError> {
        match action {
            FaultAction::MapBase => self.fallible(pid, vpn, |hs, pid, v| {
                hs.machine.fault_map_base(pid, v).map(|c| (c, false)).map_err(|_| ())
            }),
            FaultAction::MapHuge => self.fallible(pid, vpn, |hs, pid, v| {
                hs.machine.fault_map_huge(pid, v).map_err(|_| ())
            }),
            FaultAction::MapBaseAt(pfn) => {
                Ok((self.machine.fault_map_base_at(pid, vpn, pfn), false))
            }
        }
    }

    /// Runs a fallible host mapping operation, swapping pages out and
    /// retrying on memory exhaustion.
    ///
    /// # Errors
    ///
    /// [`VirtError::NothingEvictable`] when eviction frees nothing;
    /// [`VirtError::Thrashing`] when retries exhaust without mapping.
    fn fallible(
        &mut self,
        pid: u32,
        vpn: Vpn,
        mut op: impl FnMut(&mut Self, u32, Vpn) -> Result<(Cycles, bool), ()>,
    ) -> Result<(Cycles, bool), VirtError> {
        let mut cost = Cycles::ZERO;
        for _ in 0..64 {
            match op(self, pid, vpn) {
                Ok((c, huge)) => return Ok((cost + c, huge)),
                Err(()) => {
                    let evicted = self.swap_out(1024, (pid, vpn.0));
                    if evicted == 0 {
                        return Err(VirtError::NothingEvictable);
                    }
                    cost += self.cfg.swap_out * evicted;
                }
            }
        }
        Err(VirtError::Thrashing { gpa: vpn.0 })
    }

    /// Evicts up to `want` host base pages to swap, round-robin across
    /// VMs, never evicting `protect`.
    fn swap_out(&mut self, want: u64, protect: (u32, u64)) -> u64 {
        let mut evicted = 0;
        let nvms = self.host_pids.len().max(1);
        let mut attempts = 0;
        while evicted < want && attempts < nvms * 2 {
            let pid = self.host_pids[self.evict_rr % nvms];
            self.evict_rr += 1;
            attempts += 1;
            // Demote one huge mapping if no base pages are available.
            let Some(p) = self.machine.process(pid) else { continue };
            let victims: Vec<Vpn> = p
                .space()
                .page_table()
                .base_mappings()
                .filter(|(v, e)| !(e.zero_cow || (pid == protect.0 && v.0 == protect.1)))
                .map(|(v, _)| v)
                .take((want - evicted) as usize)
                .collect();
            if victims.is_empty() {
                let huge: Option<Hvpn> = self
                    .machine
                    .process(pid)
                    .and_then(|p| p.space().page_table().huge_mappings().map(|(h, _)| h).next());
                if let Some(h) = huge {
                    self.machine.demote(pid, h);
                }
                continue;
            }
            for v in victims {
                let Some(p) = self.machine.process_mut(pid) else { break };
                let Ok(e) = p.space_mut().unmap_base(v) else { continue };
                self.machine.pm_mut().free(e.pfn, hawkeye_mem::Order(0));
                self.machine.mmu_mut().invalidate_page(pid, v);
                self.swapped.insert((pid, v.0));
                evicted += 1;
                self.stats.swap_outs += 1;
            }
        }
        evicted
    }
}

struct HostBridge {
    host: Arc<Mutex<HostSide>>,
    host_pid: u32,
}

impl AccessHook for HostBridge {
    fn on_touch(
        &mut self,
        _pid: u32,
        _vpn: Vpn,
        pfn: Pfn,
        _size: PageSize,
        write: bool,
        walk: Cycles,
    ) -> Cycles {
        let mut host = self.host.lock().expect("host mutex poisoned");
        match host.guest_touch(self.host_pid, pfn.0, write, walk) {
            Ok(cost) => cost,
            Err(_) => {
                // Degrade instead of aborting the suite: the touch is
                // dropped and the error surfaces in the stats.
                host.stats.bridge_errors += 1;
                Cycles::ZERO
            }
        }
    }
}

struct VmEntry {
    sim: Simulator,
    host_pid: u32,
    ksm_cursor: u64,
    balloon_cursor: u64,
}

/// A host plus a set of VMs.
///
/// The host sits behind an `Arc<Mutex<..>>` shared with the per-VM
/// `HostBridge`s, keeping the whole system `Send`: a bench scenario can
/// build a `VirtSystem` on one thread and run it on another. The mutex is
/// uncontended — guests run rounds sequentially within one system — so
/// locking is a pointer check, not a scalability cost.
pub struct VirtSystem {
    host: Arc<Mutex<HostSide>>,
    vms: Vec<VmEntry>,
    guest_template: KernelConfig,
    next_tick: Cycles,
}

impl VirtSystem {
    /// Boots the host with `host_cfg` and `host_policy`, default
    /// [`VirtConfig`].
    pub fn new(host_cfg: KernelConfig, host_policy: Box<dyn HugePagePolicy>) -> Self {
        Self::with_virt_config(host_cfg, host_policy, VirtConfig::default())
    }

    /// Boots the host with explicit virtualization tunables.
    pub fn with_virt_config(
        host_cfg: KernelConfig,
        host_policy: Box<dyn HugePagePolicy>,
        vcfg: VirtConfig,
    ) -> Self {
        let guest_template = host_cfg.clone();
        let next_tick = guest_template_tick(&guest_template);
        let machine = Machine::new(host_cfg);
        VirtSystem {
            host: Arc::new(Mutex::new(HostSide {
                machine,
                policy: host_policy,
                cfg: vcfg,
                swapped: HashSet::new(),
                host_pids: Vec::new(),
                evict_rr: 0,
                stats: VirtStats::default(),
            })),
            vms: Vec::new(),
            guest_template,
            next_tick,
        }
    }

    /// Locks the host side (uncontended within one system).
    fn host(&self) -> MutexGuard<'_, HostSide> {
        self.host.lock().expect("host mutex poisoned")
    }

    /// Creates a VM of `spec.frames` guest-physical frames running
    /// `guest_policy` in its kernel.
    pub fn add_vm(&mut self, spec: VmSpec, guest_policy: Box<dyn HugePagePolicy>) -> VmId {
        let host_pid = {
            let mut host = self.host();
            let pid = host.machine.spawn(hawkeye_kernel::workload::script("vm", vec![]));
            host.machine
                .process_mut(pid)
                .expect("just spawned")
                .space_mut()
                .mmap(Vpn(0), spec.frames, VmaKind::Anon)
                .expect("fresh space");
            host.host_pids.push(pid);
            pid
        };
        let mut guest_cfg = self.guest_template.clone();
        guest_cfg.frames = spec.frames;
        guest_cfg.nested = true; // two-dimensional walks
        let mut sim = Simulator::new(guest_cfg, guest_policy);
        sim.set_access_hook(Some(Box::new(HostBridge { host: Arc::clone(&self.host), host_pid })));
        self.vms.push(VmEntry { sim, host_pid, ksm_cursor: 0, balloon_cursor: 0 });
        VmId(self.vms.len() - 1)
    }

    /// Spawns a workload inside a VM's guest kernel. Returns the guest
    /// pid.
    pub fn spawn_in_vm(&mut self, vm: VmId, workload: Box<dyn Workload>) -> u32 {
        self.vms[vm.0].sim.spawn(workload)
    }

    /// The guest machine of a VM.
    pub fn guest(&self, vm: VmId) -> &Machine {
        self.vms[vm.0].sim.machine()
    }

    /// Mutable guest machine (experiment setup).
    pub fn guest_mut(&mut self, vm: VmId) -> &mut Machine {
        self.vms[vm.0].sim.machine_mut()
    }

    /// Reads host state through a closure (the host sits behind a mutex
    /// shared with the per-VM bridges).
    pub fn with_host<R>(&self, f: impl FnOnce(&Machine) -> R) -> R {
        f(&self.host().machine)
    }

    /// Mutates host state through a closure (fragmentation setup etc.).
    pub fn with_host_mut<R>(&mut self, f: impl FnOnce(&mut Machine) -> R) -> R {
        f(&mut self.host().machine)
    }

    /// Host-side virtualization counters.
    pub fn virt_stats(&self) -> VirtStats {
        self.host().stats
    }

    /// Runs until every guest workload completes (or each guest hits its
    /// configured `max_time`).
    pub fn run(&mut self) -> Cycles {
        self.run_while(|_| true)
    }

    /// Runs while the predicate over the host machine holds.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&Machine) -> bool) -> Cycles {
        loop {
            if !keep_going(&self.host().machine) {
                break;
            }
            let mut any = false;
            for vm in &mut self.vms {
                any |= vm.sim.round();
            }
            if !any {
                break;
            }
            self.host_round();
            let now = self.host().machine.now();
            if now >= self.guest_template.max_time {
                break;
            }
        }
        self.host().machine.now()
    }

    fn host_round(&mut self) {
        let quantum = self.guest_template.quantum;
        {
            let mut host = self.host();
            host.machine.advance(quantum);
        }
        let now = self.host().machine.now();
        if now < self.next_tick {
            return;
        }
        self.next_tick += self.guest_template.tick_period;
        {
            let mut host = self.host();
            let HostSide { machine, policy, .. } = &mut *host;
            policy.on_tick(machine);
        }
        let (ksm, balloon, ksm_budget, balloon_budget) = {
            let h = self.host();
            (h.cfg.ksm, h.cfg.balloon, h.cfg.ksm_pages_per_tick, h.cfg.balloon_pages_per_tick)
        };
        for i in 0..self.vms.len() {
            if balloon {
                self.balloon_pass(i, balloon_budget);
            }
            if ksm {
                self.ksm_pass(i, ksm_budget);
            }
        }
    }

    /// Balloon: return guest-free frames to the host.
    fn balloon_pass(&mut self, vm: usize, budget: u64) {
        let host_pid = self.vms[vm].host_pid;
        let frames = self.vms[vm].sim.machine().pm().total_frames();
        let mut host = self.host.lock().expect("host mutex poisoned");
        let mut cursor = self.vms[vm].balloon_cursor;
        for _ in 0..budget {
            let gpa = cursor % frames;
            cursor += 1;
            let guest_free = self.vms[vm].sim.machine().pm().frame(Pfn(gpa)).is_free();
            if !guest_free {
                continue;
            }
            host.swapped.remove(&(host_pid, gpa));
            let vpn = Vpn(gpa);
            let mapping = host
                .machine
                .process(host_pid)
                .and_then(|p| p.space().translate(vpn).map(|t| (t.pfn, t.size, t.zero_cow)));
            let Some((pfn, size, zero_cow)) = mapping else { continue };
            match size {
                PageSize::Huge => {
                    // Ballooning base pages out of a host huge mapping
                    // splits it first (exactly the paper's observation
                    // that ballooning and THP conflict).
                    host.machine.demote(host_pid, vpn.hvpn());
                    let Some(p) = host.machine.process_mut(host_pid) else { continue };
                    let Ok(e) = p.space_mut().unmap_base(vpn) else { continue };
                    host.machine.pm_mut().free(e.pfn, hawkeye_mem::Order(0));
                }
                PageSize::Base => {
                    let Some(p) = host.machine.process_mut(host_pid) else { continue };
                    let Ok(_) = p.space_mut().unmap_base(vpn) else { continue };
                    if !zero_cow {
                        host.machine.pm_mut().free(pfn, hawkeye_mem::Order(0));
                    }
                }
            }
            host.machine.mmu_mut().invalidate_page(host_pid, vpn);
            host.stats.ballooned += 1;
            host.machine.metrics().add("virt.ballooned_pages", 1);
        }
        self.vms[vm].balloon_cursor = cursor;
    }

    /// KSM: merge zero guest pages into the host zero page. Zero-ness is
    /// judged from the *guest* frame contents (the authoritative data),
    /// mirrored onto host frames before de-duplication.
    fn ksm_pass(&mut self, vm: usize, budget: u64) {
        let host_pid = self.vms[vm].host_pid;
        let frames = self.vms[vm].sim.machine().pm().total_frames();
        let min_zero = self.host().cfg.dedup_min_zero;
        let mut scanned = 0u64;
        let mut cursor = self.vms[vm].ksm_cursor;
        while scanned < budget {
            let region = Hvpn((cursor / 512) % (frames / 512).max(1));
            cursor = (region.0 + 1) * 512;
            scanned += 512;
            // Mirror guest content onto host frames for this region.
            let mut zero_gpas: Vec<u64> = Vec::new();
            {
                let guest_pm = self.vms[vm].sim.machine().pm();
                for i in 0..512u64 {
                    let gpa = region.vpn_at(i).0;
                    if gpa < frames && guest_pm.frame(Pfn(gpa)).is_zeroed() {
                        zero_gpas.push(gpa);
                    }
                }
            }
            let mut host = self.host.lock().expect("host mutex poisoned");
            let host_huge =
                host.machine.process(host_pid).map(|p| {
                    p.space().page_table().huge_entry(region).is_some()
                }).unwrap_or(false);
            if host_huge {
                // Sync content, then let the kernel primitive do the work.
                let mapping = host
                    .machine
                    .process(host_pid)
                    .and_then(|p| p.space().translate(region.base_vpn()));
                let Some(t) = mapping else { continue };
                let base_pfn = t.pfn;
                for i in 0..512u64 {
                    let content = if zero_gpas.contains(&(region.vpn_at(i).0)) {
                        PageContent::Zero
                    } else {
                        PageContent::non_zero(6)
                    };
                    host.machine.pm_mut().frame_mut(Pfn(base_pfn.0 + i)).set_content(content);
                }
                if let Some(hawkeye_kernel::DedupOutcome::Deduped { zero_pages, .. }) =
                    host.machine.dedup_zero_pages(host_pid, region, min_zero)
                {
                    host.stats.ksm_merged += zero_pages as u64;
                    host.machine.metrics().add("virt.ksm_merged_pages", zero_pages as u64);
                }
            } else {
                // Base mappings: merge zero pages individually.
                for gpa in zero_gpas {
                    let vpn = Vpn(gpa);
                    let entry = host
                        .machine
                        .process(host_pid)
                        .and_then(|p| p.space().page_table().base_entry(vpn));
                    let Some(e) = entry else { continue };
                    if e.zero_cow {
                        continue;
                    }
                    let zero_pfn = host.machine.zero_pfn();
                    let Some(p) = host.machine.process_mut(host_pid) else { continue };
                    let space = p.space_mut();
                    if space.unmap_base(vpn).is_err() {
                        continue;
                    }
                    let Ok(()) = space.map_zero_cow(vpn, zero_pfn) else { continue };
                    host.machine.pm_mut().free(e.pfn, hawkeye_mem::Order(0));
                    host.machine.mmu_mut().invalidate_page(host_pid, vpn);
                    host.stats.ksm_merged += 1;
                    host.machine.metrics().add("virt.ksm_merged_pages", 1);
                }
            }
            if cursor / 512 >= (frames / 512).max(1) && scanned >= budget {
                break;
            }
        }
        self.vms[vm].ksm_cursor = cursor;
    }
}

fn guest_template_tick(cfg: &KernelConfig) -> Cycles {
    cfg.tick_period
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_core::{HawkEye, HawkEyeConfig};
    use hawkeye_kernel::{workload::script, BasePagesOnly, MemOp};
    use hawkeye_policies::LinuxThp;

    fn touch_workload(pages: u64) -> Box<dyn Workload> {
        script(
            "guest-touch",
            vec![
                MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages, write: true, think: 60, stride: 1, repeats: 1 },
            ],
        )
    }

    /// Compile-time check: the whole virtualization stack must stay
    /// `Send` so bench scenarios can run `VirtSystem`s on worker threads.
    #[allow(dead_code)]
    fn assert_send<T: Send>() {}

    #[test]
    fn virt_system_is_send() {
        assert_send::<VirtSystem>();
        assert_send::<HostBridge>();
        assert_send::<VirtStats>();
    }

    #[test]
    fn missing_host_process_degrades_instead_of_panicking() {
        // Regression: a bridge touch against a pid the host never spawned
        // used to abort via `.expect("vm process")`. It must now count a
        // bridge error, charge zero cycles, and leave the system usable.
        let sys = VirtSystem::new(KernelConfig::small(), Box::new(LinuxThp::default()));
        let mut bridge = HostBridge { host: Arc::clone(&sys.host), host_pid: 999 };
        let cost = bridge.on_touch(1, Vpn(0), Pfn(0), PageSize::Base, true, Cycles::ZERO);
        assert_eq!(cost, Cycles::ZERO);
        assert_eq!(sys.virt_stats().bridge_errors, 1);
        // The underlying error is typed and printable.
        let err = sys.host().guest_touch(999, 0, false, Cycles::ZERO).unwrap_err();
        assert_eq!(err, VirtError::NoProcess { pid: 999 });
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn guest_accesses_back_host_memory() {
        let mut sys = VirtSystem::new(KernelConfig::small(), Box::new(LinuxThp::default()));
        let vm = sys.add_vm(VmSpec { frames: 8 * 1024 }, Box::new(BasePagesOnly));
        let gpid = sys.spawn_in_vm(vm, touch_workload(2048));
        sys.run();
        let guest = sys.guest(vm);
        assert!(guest.process(gpid).unwrap().is_finished());
        assert!(sys.virt_stats().ept_faults > 0);
        // Host memory is held even after the guest process exits (the
        // guest kernel keeps the freed frames; no balloon).
        sys.with_host(|h| {
            assert!(h.pm().allocated_pages() > 2048, "{}", h.pm().allocated_pages());
        });
    }

    #[test]
    fn host_linux_maps_guest_memory_huge() {
        let mut sys = VirtSystem::new(KernelConfig::small(), Box::new(LinuxThp::default()));
        let vm = sys.add_vm(VmSpec { frames: 8 * 1024 }, Box::new(BasePagesOnly));
        sys.spawn_in_vm(vm, touch_workload(2048));
        sys.run();
        sys.with_host(|h| {
            let huge = h.process(1).unwrap().space().huge_pages();
            assert!(huge >= 4, "host THP should back the VM hugely: {huge}");
        });
    }

    #[test]
    fn ksm_recovers_guest_zeroed_memory() {
        let mut vcfg = VirtConfig { ksm: true, ..Default::default() };
        vcfg.dedup_min_zero = 64;
        let mut sys = VirtSystem::with_virt_config(
            KernelConfig::small(),
            Box::new(LinuxThp::default()),
            vcfg,
        );
        // Guest runs HawkEye: its pre-zeroing daemon cleans freed pages,
        // making them mergeable at the host.
        let vm = sys.add_vm(VmSpec { frames: 16 * 1024 }, Box::new(HawkEye::new(HawkEyeConfig::default())));
        sys.spawn_in_vm(
            vm,
            script(
                "alloc-free",
                vec![
                    MemOp::Mmap { start: Vpn(0), pages: 8 * 512, kind: VmaKind::Anon },
                    MemOp::TouchRange { start: Vpn(0), pages: 8 * 512, write: true, think: 0, stride: 1, repeats: 1 },
                    MemOp::Madvise { start: Vpn(0), pages: 8 * 512 },
                    MemOp::Compute { cycles: 8_000_000_000 },
                ],
            ),
        );
        sys.run();
        let stats = sys.virt_stats();
        assert!(stats.ksm_merged > 2048, "host reclaimed guest-freed memory: {stats:?}");
        sys.with_host(|h| h.pm().check_invariants());
    }

    #[test]
    fn balloon_returns_free_guest_memory() {
        let vcfg = VirtConfig { balloon: true, ..Default::default() };
        let mut sys = VirtSystem::with_virt_config(
            KernelConfig::small(),
            Box::new(LinuxThp::default()),
            vcfg,
        );
        let vm = sys.add_vm(VmSpec { frames: 16 * 1024 }, Box::new(BasePagesOnly));
        sys.spawn_in_vm(
            vm,
            script(
                "alloc-free",
                vec![
                    MemOp::Mmap { start: Vpn(0), pages: 4 * 512, kind: VmaKind::Anon },
                    MemOp::TouchRange { start: Vpn(0), pages: 4 * 512, write: true, think: 0, stride: 1, repeats: 1 },
                    MemOp::Madvise { start: Vpn(0), pages: 4 * 512 },
                    MemOp::Compute { cycles: 5_000_000_000 },
                ],
            ),
        );
        sys.run();
        assert!(sys.virt_stats().ballooned >= 2048, "{:?}", sys.virt_stats());
        sys.with_host(|h| h.pm().check_invariants());
    }

    #[test]
    fn overcommit_swaps_instead_of_crashing() {
        // Host: 16 MiB; two VMs of 12 MiB each, both touching everything.
        let mut cfg = KernelConfig::small();
        cfg.frames = 4096;
        let mut sys = VirtSystem::new(cfg, Box::new(BasePagesOnly));
        let a = sys.add_vm(VmSpec { frames: 3072 }, Box::new(BasePagesOnly));
        let b = sys.add_vm(VmSpec { frames: 3072 }, Box::new(BasePagesOnly));
        sys.spawn_in_vm(a, touch_workload(2560));
        sys.spawn_in_vm(b, touch_workload(2560));
        sys.run();
        let stats = sys.virt_stats();
        assert!(stats.swap_outs > 0, "overcommit must swap: {stats:?}");
        for vm in [a, b] {
            assert!(sys.guest(vm).process(1).unwrap().is_finished());
            assert!(!sys.guest(vm).process(1).unwrap().is_oom());
        }
        sys.with_host(|h| h.pm().check_invariants());
    }

    #[test]
    fn nested_walks_cost_more_with_host_base_pages() {
        // Same guest workload; host policy differs (base vs huge).
        let run = |host_policy: Box<dyn HugePagePolicy>| {
            let mut sys = VirtSystem::new(KernelConfig::with_mib(512), host_policy);
            let vm = sys.add_vm(VmSpec { frames: 64 * 1024 }, Box::new(BasePagesOnly));
            let pid = sys.spawn_in_vm(
                vm,
                Box::new(hawkeye_workloads::PatternScan::random(48 * 1024, 300_000, 50)),
            );
            sys.run();
            sys.guest(vm).process(pid).unwrap().cpu_time()
        };
        let host_base = run(Box::new(BasePagesOnly));
        #[allow(clippy::box_default)] // coerces to Box<dyn HugePagePolicy>
        let host_huge = run(Box::new(LinuxThp::default()));
        assert!(
            host_huge < host_base,
            "host huge pages must shorten nested walks: {host_huge} vs {host_base}"
        );
    }
}
