//! Process-wide per-core busy/stall counters from the real-thread
//! contention replay.
//!
//! When a machine runs with `cores > 1`, [`crate::multicore`] replays the
//! recorded per-core lock/allocator plan on real OS threads and measures
//! how long each core thread was busy and how much of that time it spent
//! stalled acquiring page-state locks or allocator shards. Those are
//! *host-side* measurements — genuinely nondeterministic — so, exactly
//! like [`crate::sched_stats`], they never enter deterministic simulation
//! output. The bench harness drains them into the `.wallclock.json`
//! sidecar (the one artifact allowed to vary run to run), where
//! WALLCLOCK.md renders multi-core utilization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Hard cap on simulated cores (also the registry's per-core key count).
pub const MAX_CORES: usize = 8;

static CORES: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: [AtomicU64; MAX_CORES] = [const { AtomicU64::new(0) }; MAX_CORES];
static STALL_NS: [AtomicU64; MAX_CORES] = [const { AtomicU64::new(0) }; MAX_CORES];
static RETRIES: [AtomicU64; MAX_CORES] = [const { AtomicU64::new(0) }; MAX_CORES];

/// One core's accumulated real-thread replay measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreBusy {
    /// Nanoseconds the core's replay thread ran in total.
    pub busy_ns: u64,
    /// Nanoseconds spent inside lock-acquisition loops (contended).
    pub stall_ns: u64,
    /// CAS retries observed while acquiring page-state words.
    pub retries: u64,
}

/// Adds one replay's per-core measurements to the process-wide totals and
/// raises the recorded core count to at least `cores`.
pub(crate) fn flush_core(core: usize, busy_ns: u64, stall_ns: u64, retries: u64) {
    if core >= MAX_CORES {
        return;
    }
    BUSY_NS[core].fetch_add(busy_ns, Ordering::Relaxed);
    STALL_NS[core].fetch_add(stall_ns, Ordering::Relaxed);
    RETRIES[core].fetch_add(retries, Ordering::Relaxed);
}

/// Records that a machine with `cores` simulated cores ran (the sidecar
/// reports the maximum seen since the last [`reset`]).
pub(crate) fn note_cores(cores: u32) {
    CORES.fetch_max(cores as u64, Ordering::Relaxed);
}

/// The per-core totals accumulated by every multi-core replay in this
/// process since start (or the last [`reset`]). `cores` is 0 when no
/// multi-core machine ran.
pub fn snapshot() -> (u32, Vec<CoreBusy>) {
    let cores = CORES.load(Ordering::Relaxed) as usize;
    let per_core = (0..cores.min(MAX_CORES))
        .map(|i| CoreBusy {
            busy_ns: BUSY_NS[i].load(Ordering::Relaxed),
            stall_ns: STALL_NS[i].load(Ordering::Relaxed),
            retries: RETRIES[i].load(Ordering::Relaxed),
        })
        .collect();
    (cores as u32, per_core)
}

/// Zeroes the totals (benchmark harnesses isolate per-target windows).
pub fn reset() {
    CORES.store(0, Ordering::Relaxed);
    for i in 0..MAX_CORES {
        BUSY_NS[i].store(0, Ordering::Relaxed);
        STALL_NS[i].store(0, Ordering::Relaxed);
        RETRIES[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_accumulates_per_core_and_reset_zeroes() {
        // Other tests may flush concurrently; assert on deltas.
        let (_, before) = {
            note_cores(4);
            snapshot()
        };
        let b0 = before.first().copied().unwrap_or_default();
        flush_core(0, 100, 40, 7);
        note_cores(4);
        let (cores, after) = snapshot();
        assert!(cores >= 4);
        assert!(after[0].busy_ns >= b0.busy_ns + 100);
        assert!(after[0].stall_ns >= b0.stall_ns + 40);
        assert!(after[0].retries >= b0.retries + 7);
        // Out-of-range cores are ignored, not a panic.
        flush_core(MAX_CORES + 1, 1, 1, 1);
        reset();
        let (cores, per_core) = snapshot();
        // Concurrent tests may re-note cores after the reset; the totals
        // restart from zero either way.
        assert!(per_core.len() == cores as usize && cores <= MAX_CORES as u32);
    }
}
