//! Multi-core contention: the per-core access plan, its deterministic
//! replay, and the real-thread replay.
//!
//! One simulated [`crate::Machine`] stays a serial discrete-event
//! simulation — that is what keeps every aggregate counter (faults,
//! promotions, touched pages, allocation totals) pinned exactly across
//! core counts. What a multi-core machine *adds* is an account of where
//! cores would have collided: every state transition the paper's kernel
//! takes under a page lock (map, promote, demote, collapse, dedup) and
//! every allocator trip is recorded, as it happens, into a per-core
//! **access plan**:
//!
//! * app operations (faults, COW breaks, madvise) land on the faulting
//!   process's home core (`pid % app_cores`);
//! * promotion/demotion/dedup/compaction land on the khugepaged core;
//! * pre-zeroing lands on the pre-zero daemon core.
//!
//! With `cores = N`, the last two cores host the daemons and the rest run
//! app processes (at `N = 2` both daemons share core 1), so daemons
//! genuinely contend with app cores for the same page-state words and
//! buddy shards — the paper's "one core scans while others fault" story.
//!
//! The plan is replayed twice at the end of each run call:
//!
//! 1. **Deterministic replay** — a discrete-event interleaving over
//!    per-core virtual clocks: cores advance in (virtual time, core id)
//!    order; an op on a resource another core still holds stalls until
//!    the holder's release and charges one CAS retry per backoff window.
//!    Its outputs — the `lock.*` registry counters, the retry/hold
//!    histograms, and the [`TraceEvent::Contention`] journal events — are
//!    exact functions of the plan, so they are bit-reproducible for a
//!    fixed core count (and absent entirely at `cores = 1`).
//! 2. **Real-thread replay** — one OS thread per core re-executes the
//!    plan against genuine [`PageStateWord`]s and a shared
//!    [`ShardedBuddy`], measuring wall-clock busy/stall per core into
//!    [`crate::core_stats`]. Host-dependent by design; it feeds only the
//!    `.wallclock.json` sidecar, never deterministic artifacts.

use hawkeye_mem::shard::ShardedBuddy;
use hawkeye_mem::{AllocPref, Order};
use hawkeye_metrics::{Cycles, LogHistogram, MetricsSink};
use hawkeye_trace::{TraceEvent, TraceSink};
use hawkeye_vm::PageStateWord;
use std::collections::BTreeMap;

pub use crate::core_stats::MAX_CORES;

/// Virtual cycles of spinning per modeled CAS retry while stalled on a
/// held resource (a cache-line ping-pong plus a short backoff).
const RETRY_BACKOFF: u64 = 256;

/// Virtual cycles a shard lock is held per allocator trip (list pop and
/// bookkeeping; zeroing happens outside the lock in this model).
const ALLOC_HOLD: u64 = 120;

/// Per-drain cap on ops re-executed by the real-thread replay (the
/// deterministic replay always consumes the full plan; the wall-clock
/// measurement only needs a representative slice per core).
const REAL_REPLAY_CAP: usize = 32_768;

/// Page-state words backing the real-thread replay (keys hash onto this
/// table, so distinct hot regions map to distinct words).
const WORD_TABLE: usize = 1024;

/// Resource-key namespace bit for allocator shards (page keys use
/// pid/hvpn bits only and never reach bit 63).
const SHARD_NS: u64 = 1 << 63;

/// The machine-wide compaction resource: compaction passes serialize
/// against each other (disjoint from every [`page_key`] and shard key).
pub const COMPACT_KEY: u64 = 1 << 62;

/// What a core does to a shared resource, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcOp {
    /// Exclusive page-state lock on `key`, held for `hold` cycles (the
    /// cycles the serial engine charged the operation).
    Lock {
        /// Resource key: `pid << 24 | hvpn` (see [`page_key`]).
        key: u64,
        /// Cycles the lock is held.
        hold: u64,
    },
    /// One allocator trip against the core's home shard.
    Alloc {
        /// Block order requested.
        order: u8,
    },
}

/// Stable page-state resource key for (`pid`, `hvpn`): app faults and
/// daemon promote/demote/dedup on the same region collide on it.
pub fn page_key(pid: u32, hvpn: u64) -> u64 {
    ((pid as u64) << 24) ^ (hvpn & ((1 << 24) - 1))
}

/// Which daemon (or the app pool) a core hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRole {
    /// Runs application processes.
    App,
    /// Runs promotion/demotion/dedup/compaction (khugepaged).
    Khugepaged,
    /// Runs the async pre-zeroing daemon.
    Prezero,
}

impl CoreRole {
    /// Stable numeric tag for trace payloads (0 app, 1 khugepaged,
    /// 2 prezero).
    pub fn tag(self) -> u64 {
        match self {
            CoreRole::App => 0,
            CoreRole::Khugepaged => 1,
            CoreRole::Prezero => 2,
        }
    }
}

/// How `cores` split between app processes and the two daemons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreLayout {
    /// Total simulated cores (2–[`MAX_CORES`] here; 1 disables recording).
    pub cores: u32,
    /// Cores `0..app_cores` run app processes.
    pub app_cores: u32,
}

impl CoreLayout {
    /// Splits `cores` (clamped to `2..=MAX_CORES`): the top two cores go
    /// to khugepaged and the pre-zero daemon (sharing one core at
    /// `cores = 2`), the rest to app processes.
    pub fn new(cores: u32) -> Self {
        let cores = cores.clamp(2, MAX_CORES as u32);
        let app_cores = (cores - 2).max(1);
        CoreLayout { cores, app_cores }
    }

    /// The home core of `pid`'s app-side operations.
    pub fn app_core(&self, pid: u32) -> usize {
        (pid % self.app_cores) as usize
    }

    /// The core hosting khugepaged.
    pub fn khugepaged_core(&self) -> usize {
        self.app_cores as usize
    }

    /// The core hosting the pre-zero daemon (khugepaged's core when only
    /// one daemon core exists).
    pub fn prezero_core(&self) -> usize {
        ((self.app_cores + 1) as usize).min(self.cores as usize - 1)
    }

    /// The role of `core` (the pre-zero tag wins on a shared daemon core
    /// only when no khugepaged core exists separately).
    pub fn role(&self, core: usize) -> CoreRole {
        if core < self.app_cores as usize {
            CoreRole::App
        } else if core == self.prezero_core() && self.prezero_core() != self.khugepaged_core() {
            CoreRole::Prezero
        } else {
            CoreRole::Khugepaged
        }
    }

    /// Buddy shards: one per app core, shared by the daemon cores
    /// (`home_shard` folds them in), so daemon allocations contend with
    /// app allocations on real arenas.
    pub fn shards(&self) -> usize {
        self.app_cores as usize
    }

    /// The home shard of `core`'s allocator trips.
    pub fn home_shard(&self, core: usize) -> usize {
        core % self.shards()
    }
}

/// One core's contention totals from the deterministic replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreContention {
    /// Lock + shard acquisitions replayed.
    pub acquisitions: u64,
    /// Modeled CAS retries while a resource was held elsewhere.
    pub cas_retries: u64,
    /// Virtual cycles stalled waiting for holders to release.
    pub stall_cycles: u64,
}

/// Per-core registry keys (static names; [`MAX_CORES`] slots).
const CORE_ACQ: [&str; MAX_CORES] = [
    "lock.core0.acquisitions",
    "lock.core1.acquisitions",
    "lock.core2.acquisitions",
    "lock.core3.acquisitions",
    "lock.core4.acquisitions",
    "lock.core5.acquisitions",
    "lock.core6.acquisitions",
    "lock.core7.acquisitions",
];
const CORE_RETRY: [&str; MAX_CORES] = [
    "lock.core0.cas_retries",
    "lock.core1.cas_retries",
    "lock.core2.cas_retries",
    "lock.core3.cas_retries",
    "lock.core4.cas_retries",
    "lock.core5.cas_retries",
    "lock.core6.cas_retries",
    "lock.core7.cas_retries",
];
const CORE_STALL: [&str; MAX_CORES] = [
    "lock.core0.stall_cycles",
    "lock.core1.stall_cycles",
    "lock.core2.stall_cycles",
    "lock.core3.stall_cycles",
    "lock.core4.stall_cycles",
    "lock.core5.stall_cycles",
    "lock.core6.stall_cycles",
    "lock.core7.stall_cycles",
];

/// Records the per-core access plan during serial execution and replays
/// it (deterministically into the registry/journal, concurrently into
/// [`crate::core_stats`]) when drained.
#[derive(Debug)]
pub struct ConcRecorder {
    layout: CoreLayout,
    /// Ops queued since the last drain, one plan per core.
    plans: Vec<Vec<ConcOp>>,
    /// Deterministic-replay state, persistent across drains so chunked
    /// runs (`run_for` loops) replay exactly like one long run.
    vclock: Vec<u64>,
    res_free_at: BTreeMap<u64, u64>,
    /// Cumulative per-core totals across drains.
    totals: Vec<CoreContention>,
    /// Real-thread replay substrate, reused across drains.
    words: Vec<PageStateWord>,
    shards: ShardedBuddy,
}

impl ConcRecorder {
    /// A recorder for a `cores`-core machine (`cores >= 2`; core counts
    /// above [`MAX_CORES`] are clamped).
    pub fn new(cores: u32) -> Self {
        let layout = CoreLayout::new(cores);
        let n = layout.cores as usize;
        ConcRecorder {
            layout,
            plans: (0..n).map(|_| Vec::new()).collect(),
            vclock: vec![0; n],
            res_free_at: BTreeMap::new(),
            totals: vec![CoreContention::default(); n],
            words: (0..WORD_TABLE).map(|_| PageStateWord::new()).collect(),
            // 4096 frames per shard: enough for huge-order (512-page)
            // replay allocations with room to spare.
            shards: ShardedBuddy::new(4096 * layout.shards() as u64, layout.shards()),
        }
    }

    /// The core layout.
    pub fn layout(&self) -> CoreLayout {
        self.layout
    }

    /// Cumulative per-core contention totals (deterministic replay).
    pub fn totals(&self) -> &[CoreContention] {
        &self.totals
    }

    fn record(&mut self, core: usize, op: ConcOp) {
        self.plans[core].push(op);
    }

    /// Records an app-side page operation: the page-state lock (held for
    /// the cycles the serial engine charged) and optionally one allocator
    /// trip.
    pub fn app(&mut self, pid: u32, key: u64, hold: Cycles, alloc: Option<Order>) {
        let core = self.layout.app_core(pid);
        self.op(core, key, hold, alloc);
    }

    /// Records a khugepaged-side operation (promotion, demotion, dedup,
    /// compaction).
    pub fn khugepaged(&mut self, key: u64, hold: Cycles, alloc: Option<Order>) {
        let core = self.layout.khugepaged_core();
        self.op(core, key, hold, alloc);
    }

    /// Records one pre-zero daemon pass: `trips` arena-lock trips on the
    /// pre-zero core (one per max-order block walked).
    pub fn prezero(&mut self, trips: u64) {
        let core = self.layout.prezero_core();
        for _ in 0..trips.min(64) {
            self.record(core, ConcOp::Alloc { order: 0 });
        }
    }

    fn op(&mut self, core: usize, key: u64, hold: Cycles, alloc: Option<Order>) {
        if let Some(order) = alloc {
            self.record(core, ConcOp::Alloc { order: order.0 });
        }
        self.record(core, ConcOp::Lock { key, hold: hold.get() });
    }

    /// Replays everything recorded since the last drain: deterministic
    /// interleaving into `metrics` + `trace`, real threads into
    /// [`crate::core_stats`]. No-op when nothing was recorded.
    pub fn drain(&mut self, metrics: &MetricsSink, trace: &TraceSink) {
        if self.plans.iter().all(Vec::is_empty) {
            return;
        }
        let per_core = self.deterministic_replay(metrics, trace);
        self.real_replay();
        for (core, c) in per_core.iter().enumerate() {
            self.totals[core].acquisitions += c.acquisitions;
            self.totals[core].cas_retries += c.cas_retries;
            self.totals[core].stall_cycles += c.stall_cycles;
        }
        for plan in &mut self.plans {
            plan.clear();
        }
    }

    /// The discrete-event interleaving. Cores advance in (virtual time,
    /// core id) order; each op waits out the current holder of its
    /// resource, charging one CAS retry per [`RETRY_BACKOFF`] window of
    /// the stall. Everything here is a pure function of the recorded
    /// plan, so its registry/journal output is reproducible bit for bit.
    fn deterministic_replay(
        &mut self,
        metrics: &MetricsSink,
        trace: &TraceSink,
    ) -> Vec<CoreContention> {
        let n = self.layout.cores as usize;
        let mut next = vec![0usize; n];
        let mut out = vec![CoreContention::default(); n];
        let mut retry_hist = LogHistogram::new();
        let mut hold_hist = LogHistogram::new();
        // The runnable core with the smallest virtual clock (ties by
        // core id) executes its next op.
        while let Some(core) = (0..n)
            .filter(|&c| next[c] < self.plans[c].len())
            .min_by_key(|&c| (self.vclock[c], c))
        {
            let op = self.plans[core][next[core]];
            next[core] += 1;
            let (res, hold) = match op {
                ConcOp::Lock { key, hold } => (key, hold),
                ConcOp::Alloc { .. } => {
                    (SHARD_NS | self.layout.home_shard(core) as u64, ALLOC_HOLD)
                }
            };
            let mut t = self.vclock[core];
            out[core].acquisitions += 1;
            let free_at = self.res_free_at.get(&res).copied().unwrap_or(0);
            if free_at > t {
                let stall = free_at - t;
                let retries = 1 + stall / RETRY_BACKOFF;
                out[core].stall_cycles += stall;
                out[core].cas_retries += retries;
                retry_hist.observe(retries);
                t = free_at;
            } else {
                retry_hist.observe(0);
            }
            hold_hist.observe(hold);
            let end = t + hold;
            self.res_free_at.insert(res, end);
            self.vclock[core] = end;
        }
        let mut daemon_stall = 0u64;
        for (core, c) in out.iter().enumerate() {
            if c.acquisitions == 0 {
                continue;
            }
            metrics.add(CORE_ACQ[core], c.acquisitions);
            metrics.add(CORE_RETRY[core], c.cas_retries);
            metrics.add(CORE_STALL[core], c.stall_cycles);
            metrics.add("lock.acquisitions", c.acquisitions);
            metrics.add("lock.cas_retries", c.cas_retries);
            metrics.add("lock.stall_cycles", c.stall_cycles);
            let role = self.layout.role(core);
            if role != CoreRole::App {
                daemon_stall += c.stall_cycles;
            }
            trace.emit(
                0,
                TraceEvent::Contention {
                    core: core as u64,
                    role: role.tag(),
                    acquisitions: c.acquisitions,
                    cas_retries: c.cas_retries,
                    stall_cycles: c.stall_cycles,
                },
            );
        }
        metrics.add("lock.daemon_stall_cycles", daemon_stall);
        metrics.merge_hist("lock.retry_spins", &retry_hist);
        metrics.merge_hist("lock.hold_cycles", &hold_hist);
        out
    }

    /// Re-executes (a slice of) each core's plan on a real OS thread
    /// against shared [`PageStateWord`]s and the [`ShardedBuddy`],
    /// measuring genuine wall-clock contention into
    /// [`crate::core_stats`]. Aggregate outcomes (every lock released,
    /// every frame freed) are exact; timings are host-dependent and stay
    /// in the wall-clock sidecar.
    fn real_replay(&mut self) {
        use std::time::Instant;
        crate::core_stats::note_cores(self.layout.cores);
        let words = &self.words;
        let shards = &self.shards;
        let layout = self.layout;
        std::thread::scope(|s| {
            for (core, plan) in self.plans.iter().enumerate() {
                if plan.is_empty() {
                    continue;
                }
                let slice = &plan[..plan.len().min(REAL_REPLAY_CAP)];
                s.spawn(move || {
                    let t0 = Instant::now();
                    let mut stall_ns = 0u64;
                    let mut retries = 0u64;
                    for op in slice {
                        match *op {
                            ConcOp::Lock { key, .. } => {
                                let w = &words[(key % WORD_TABLE as u64) as usize];
                                let a0 = Instant::now();
                                let r = w.lock_exclusive();
                                if r > 0 {
                                    stall_ns += a0.elapsed().as_nanos() as u64;
                                    retries += r;
                                }
                                w.unlock_exclusive();
                            }
                            ConcOp::Alloc { order } => {
                                let mut waits = 0u64;
                                let a0 = Instant::now();
                                let home = layout.home_shard(core);
                                if let Ok(a) = shards.alloc_contended(
                                    home,
                                    Order(order),
                                    AllocPref::Zeroed,
                                    &mut waits,
                                ) {
                                    shards.free(a.pfn, a.order);
                                }
                                if waits > 0 {
                                    stall_ns += a0.elapsed().as_nanos() as u64;
                                    retries += waits;
                                }
                            }
                        }
                    }
                    crate::core_stats::flush_core(
                        core,
                        t0.elapsed().as_nanos() as u64,
                        stall_ns,
                        retries,
                    );
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_metrics::registry;
    use hawkeye_trace::scope;

    #[test]
    fn layout_places_daemons_on_top_cores() {
        let l = CoreLayout::new(4);
        assert_eq!((l.cores, l.app_cores), (4, 2));
        assert_eq!(l.khugepaged_core(), 2);
        assert_eq!(l.prezero_core(), 3);
        assert_eq!(l.role(0), CoreRole::App);
        assert_eq!(l.role(2), CoreRole::Khugepaged);
        assert_eq!(l.role(3), CoreRole::Prezero);
        assert_eq!(l.app_core(1), 1);
        assert_eq!(l.app_core(2), 0);
        // Two cores: one app core, both daemons share core 1.
        let two = CoreLayout::new(2);
        assert_eq!(two.app_cores, 1);
        assert_eq!(two.khugepaged_core(), 1);
        assert_eq!(two.prezero_core(), 1);
        assert_eq!(two.role(1), CoreRole::Khugepaged);
        // Clamped at both ends.
        assert_eq!(CoreLayout::new(1).cores, 2);
        assert_eq!(CoreLayout::new(99).cores, MAX_CORES as u32);
    }

    #[test]
    fn deterministic_replay_counts_contention_exactly() {
        // Two cores hammer the same key back to back: core 1's ops all
        // arrive while core 0 still holds the resource (and vice versa),
        // so the interleaving is fully determined.
        let run = || {
            registry::scope::begin();
            scope::begin(1 << 12);
            let mut rec = ConcRecorder::new(4);
            for i in 0..50u32 {
                rec.app(0, page_key(1, 7), Cycles::new(1000), None);
                rec.khugepaged(page_key(1, 7), Cycles::new(500 + i as u64), None);
            }
            let metrics = MetricsSink::attach_current();
            let trace = TraceSink::attach_current();
            rec.drain(&metrics, &trace);
            let reg = registry::scope::end().expect("registry");
            let journal = scope::end().expect("journal");
            (format!("{reg:?}"), journal.records.len())
        };
        let (a, events_a) = run();
        let (b, events_b) = run();
        assert_eq!(a, b, "replay must be bit-reproducible");
        assert_eq!(events_a, events_b);
        assert!(events_a > 0, "contention events emitted");
        assert!(a.contains("lock.cas_retries"), "retries recorded: {a}");
    }

    #[test]
    fn disjoint_keys_do_not_contend() {
        registry::scope::begin();
        let mut rec = ConcRecorder::new(4);
        for i in 0..20u32 {
            rec.app(0, page_key(1, i as u64), Cycles::new(100), None);
            rec.app(1, page_key(2, 1000 + i as u64), Cycles::new(100), None);
        }
        let metrics = MetricsSink::attach_current();
        rec.drain(&metrics, &TraceSink::disabled());
        let reg = registry::scope::end().expect("registry");
        let m = reg.machine(0).expect("attached");
        assert_eq!(m.counter("lock.acquisitions"), 40);
        assert_eq!(m.counter("lock.cas_retries"), 0, "no shared resources");
        assert_eq!(m.counter("lock.stall_cycles"), 0);
    }

    #[test]
    fn chunked_drains_match_one_big_drain() {
        let run = |chunks: usize| {
            registry::scope::begin();
            let mut rec = ConcRecorder::new(3);
            let metrics = MetricsSink::attach_current();
            for c in 0..chunks {
                for i in 0..30u64 {
                    rec.app(0, page_key(1, 5), Cycles::new(700), Some(Order(0)));
                    rec.khugepaged(page_key(1, 5), Cycles::new(300 + i), None);
                }
                let _ = c;
                rec.drain(&metrics, &TraceSink::disabled());
            }
            let reg = registry::scope::end().expect("registry");
            format!("{:?}", reg.machine(0).map(|m| m.counters().collect::<Vec<_>>()))
        };
        // 3 chunks of 30 vs 1 chunk of 90: persistent virtual clocks make
        // the split invisible to the deterministic counters.
        let chunked = run(3);
        let whole = {
            registry::scope::begin();
            let mut rec = ConcRecorder::new(3);
            let metrics = MetricsSink::attach_current();
            for _ in 0..3 {
                for i in 0..30u64 {
                    rec.app(0, page_key(1, 5), Cycles::new(700), Some(Order(0)));
                    rec.khugepaged(page_key(1, 5), Cycles::new(300 + i), None);
                }
            }
            rec.drain(&metrics, &TraceSink::disabled());
            let reg = registry::scope::end().expect("registry");
            format!("{:?}", reg.machine(0).map(|m| m.counters().collect::<Vec<_>>()))
        };
        assert_eq!(chunked, whole);
    }

    #[test]
    fn real_replay_accumulates_core_busy_time() {
        let (_, before) = crate::core_stats::snapshot();
        let b0 = before.first().copied().unwrap_or_default();
        let mut rec = ConcRecorder::new(2);
        for _ in 0..200 {
            rec.app(1, page_key(1, 3), Cycles::new(100), Some(Order(0)));
            rec.khugepaged(page_key(1, 3), Cycles::new(100), None);
        }
        rec.drain(&MetricsSink::disabled(), &TraceSink::disabled());
        let (cores, after) = crate::core_stats::snapshot();
        assert!(cores >= 2);
        assert!(after[0].busy_ns > b0.busy_ns, "core 0 thread ran");
        rec.shards.check_invariants();
        assert_eq!(rec.shards.free_pages(), 4096, "every replay frame freed");
    }
}
