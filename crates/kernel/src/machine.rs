//! The simulated machine: physical memory + MMU + processes.
//!
//! `Machine` exposes the mechanism layer that huge-page *policies* are
//! composed from, mirroring the kernel facilities HawkEye patches:
//!
//! * fault-time allocation of base/huge frames (with pre-zeroed-list
//!   preference and synchronous-zeroing cost accounting),
//! * promotion — collapsing a region's base pages into a huge page
//!   (khugepaged's `collapse_huge_page`),
//! * demotion — splitting a huge mapping back to base pages,
//! * zero-page de-duplication — HawkEye's bloat recovery primitive,
//! * compaction, file-cache reclaim, and the async pre-zeroing step,
//! * `madvise(MADV_DONTNEED)` with THP splitting and TLB shootdowns.

use crate::config::KernelConfig;
use crate::multicore::{page_key, ConcRecorder};
use crate::process::Process;
use crate::rng::SplitMix64;
use crate::stats::KernelStats;
use crate::workload::Workload;
use hawkeye_mem::{
    compact, AllocPref, Allocation, FrameKind, Order, OwnerTag, PageContent, Pfn, PhysMemory,
    HUGE_ORDER,
};
use hawkeye_metrics::{Cycles, MetricsSink, Recorder, SimClock, Subsystem, UNHALTED};
use hawkeye_mem::fmfi::fmfi;
use hawkeye_tlb::Mmu;
use hawkeye_trace::{TraceEvent, TraceSink};
use hawkeye_vm::{Hvpn, PageSize, Vpn};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Error from a promotion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteError {
    /// No such process.
    NoProcess,
    /// The region is not fully covered by a huge-eligible VMA.
    NotPromotable,
    /// The region is already mapped huge.
    AlreadyHuge,
    /// Nothing is mapped in the region.
    EmptyRegion,
    /// No contiguous 2 MB block could be allocated.
    NoContiguousMemory,
}

impl fmt::Display for PromoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PromoteError::NoProcess => "no such process",
            PromoteError::NotPromotable => "region is not fully covered by an anonymous vma",
            PromoteError::AlreadyHuge => "region is already mapped huge",
            PromoteError::EmptyRegion => "region has no mapped pages",
            PromoteError::NoContiguousMemory => "no contiguous huge block available",
        };
        f.write_str(s)
    }
}

impl Error for PromoteError {}

/// Outcome of a successful promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promoted {
    /// Pages copied from existing base mappings.
    pub copied_pages: u32,
    /// Previously-unmapped pages now implicitly resident (bloat risk).
    pub filled_pages: u32,
    /// Daemon cycles charged.
    pub cycles: Cycles,
}

/// Outcome of a bloat-recovery scan of one huge page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupOutcome {
    /// Below the threshold: the huge page was kept.
    Kept {
        /// Zero-filled base pages found.
        zero_pages: u32,
        /// Scan cycles charged.
        cycles: Cycles,
    },
    /// Demoted and de-duplicated: zero pages now share the canonical zero
    /// page and their frames were freed (pre-zeroed, conveniently).
    Deduped {
        /// Zero pages de-duplicated.
        zero_pages: u32,
        /// Cycles charged (scan + demotion + remap).
        cycles: Cycles,
    },
}

/// Out-of-memory error: allocation failed even after reclaim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("out of memory")
    }
}

impl Error for OutOfMemory {}

/// The simulated machine.
pub struct Machine {
    config: KernelConfig,
    pm: PhysMemory,
    mmu: Mmu,
    clock: SimClock,
    processes: BTreeMap<u32, Process>,
    next_pid: u32,
    zero_pfn: Pfn,
    file_pages: BTreeSet<Pfn>,
    stats: KernelStats,
    recorder: Recorder,
    trace: TraceSink,
    metrics: MetricsSink,
    /// Multi-core access-plan recorder; `None` at `cores = 1`, where the
    /// machine is exactly the serial engine (no recording, no overhead).
    conc: Option<ConcRecorder>,
}

impl Machine {
    /// Boots a machine.
    ///
    /// # Panics
    ///
    /// Panics if the configured frame count is not a valid
    /// [`PhysMemory`] size.
    pub fn new(config: KernelConfig) -> Self {
        // One sink per machine, attached to the current thread's trace
        // scope (disabled otherwise); clones share its simulated clock.
        // The metrics sink mirrors the pattern for the cycle-attribution
        // registry; both hand out per-scope machine ids in creation order.
        let trace = TraceSink::attach_current();
        let metrics = MetricsSink::attach_current();
        let mut pm = PhysMemory::with_cross_merge(config.frames, config.cross_merge);
        pm.set_trace_sink(trace.clone());
        pm.set_metrics_sink(metrics.clone());
        let mut mmu = Mmu::new(config.tlb);
        mmu.set_nested(config.nested);
        mmu.set_trace_sink(trace.clone());
        mmu.set_metrics_sink(metrics.clone());
        // Reserve the canonical zero page.
        let z = pm.alloc(Order(0), AllocPref::Zeroed).expect("boot memory");
        pm.frame_mut(z.pfn).set_kind(FrameKind::Pinned);
        let conc = (config.cores > 1).then(|| ConcRecorder::new(config.cores));
        Machine {
            config,
            pm,
            mmu,
            clock: SimClock::new(),
            processes: BTreeMap::new(),
            next_pid: 1,
            zero_pfn: z.pfn,
            file_pages: BTreeSet::new(),
            stats: KernelStats::default(),
            recorder: Recorder::new(),
            trace,
            metrics,
            conc,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Advances simulated time. The [`crate::Simulator`] does this once
    /// per scheduler round; custom drivers (e.g. the virtualization layer
    /// advancing a host machine in lockstep with guests) use it directly.
    pub fn advance(&mut self, d: Cycles) {
        self.clock.advance(d);
        self.trace.set_now(self.clock.now());
    }

    /// Runs the per-period metric sampling (the simulator calls this on
    /// its own; custom drivers may call it at their sampling points).
    pub fn sample_metrics_now(&mut self) {
        self.sample_metrics();
    }

    /// The configuration the machine was booted with.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Kernel-wide statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The machine's event-journal sink (disabled no-op handle unless a
    /// trace scope was active when the machine booted).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The machine's cycle-attribution sink (disabled no-op handle unless
    /// a registry scope was active when the machine booted). Policies and
    /// daemons use it for counters/histograms; cycle charges flow through
    /// the fault primitives and [`Machine::record_unhalted`].
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Credits one scheduler quantum's executed cycles to `pid`'s PMU
    /// window and the machine's `CPU_CLK_UNHALTED` counter. The simulator
    /// calls this once per quantum, after attributing the same cycles by
    /// subsystem — keeping `Σ cycles.cpu.* == cycles.unhalted` exact.
    pub fn record_unhalted(&mut self, pid: u32, spent: Cycles) {
        self.mmu.record_unhalted(pid, spent);
        self.metrics.add(UNHALTED, spent.get());
    }

    /// Physical memory state.
    pub fn pm(&self) -> &PhysMemory {
        &self.pm
    }

    /// Mutable physical memory (frame metadata edits by policies).
    pub fn pm_mut(&mut self) -> &mut PhysMemory {
        &mut self.pm
    }

    /// The MMU model (PMU counters live here).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Mutable MMU (HawkEye-PMU samples counter windows).
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// The canonical zero page's frame.
    pub fn zero_pfn(&self) -> Pfn {
        self.zero_pfn
    }

    /// Metric recorder (time series for the figures).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Records a metric sample at the current time.
    pub fn record(&mut self, name: &str, value: f64) {
        let now = self.clock.now();
        self.recorder.record_at(name, now, value);
    }

    /// Fraction of physical memory allocated.
    pub fn utilization(&self) -> f64 {
        self.pm.utilization()
    }

    /// Free-memory fragmentation index at the huge-page order.
    pub fn fmfi(&self) -> f64 {
        fmfi(&self.pm, HUGE_ORDER)
    }

    /// Creates a process running `workload`. Returns its pid.
    pub fn spawn(&mut self, workload: Box<dyn Workload>) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        let mut p = Process::new(pid, workload);
        p.space_mut()
            .page_table_mut()
            .set_translation_cache_enabled(self.config.fast_path);
        self.processes.insert(pid, p);
        pid
    }

    /// All pids ever spawned, in order.
    pub fn pids(&self) -> Vec<u32> {
        self.processes.keys().copied().collect()
    }

    /// Pids of processes still running.
    pub fn running_pids(&self) -> Vec<u32> {
        self.processes.values().filter(|p| !p.is_finished()).map(Process::pid).collect()
    }

    /// Looks up a process.
    pub fn process(&self, pid: u32) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Looks up a process mutably.
    pub fn process_mut(&mut self, pid: u32) -> Option<&mut Process> {
        self.processes.get_mut(&pid)
    }

    /// Split borrow for the touch hot path: one process lookup hands the
    /// run loop every piece a mapped touch needs (address space, MMU
    /// model, frame contents, cost table) as disjoint borrows.
    pub(crate) fn touch_parts(
        &mut self,
        pid: u32,
    ) -> Option<(&mut Process, &mut Mmu, &mut PhysMemory, &KernelConfig)> {
        let p = self.processes.get_mut(&pid)?;
        Some((p, &mut self.mmu, &mut self.pm, &self.config))
    }

    // ---- allocation & fault primitives -----------------------------------

    /// Allocates a user block, reclaiming file-cache pages on pressure.
    /// Returns the allocation and the reclaim cycles incurred (if any).
    pub fn alloc_user(&mut self, order: Order, pref: AllocPref) -> Option<(Allocation, Cycles)> {
        if let Ok(a) = self.pm.alloc(order, pref) {
            return Some((a, Cycles::ZERO));
        }
        // Direct reclaim: drop file pages and retry.
        let want = (order.pages() * 4).max(1024);
        let reclaimed = self.reclaim_file_pages(want);
        if reclaimed == 0 {
            return None;
        }
        let cost = self.config.costs.reclaim_4k * reclaimed;
        self.pm.alloc(order, pref).ok().map(|a| (a, cost))
    }

    /// Maps a freshly allocated base page at `vpn` for `pid`, charging the
    /// fault handler plus synchronous zeroing if the frame was dirty.
    ///
    /// # Errors
    ///
    /// [`OutOfMemory`] if no frame could be allocated even after reclaim.
    pub fn fault_map_base(&mut self, pid: u32, vpn: Vpn) -> Result<Cycles, OutOfMemory> {
        let (a, reclaim_cost) = self.alloc_user(Order(0), AllocPref::Zeroed).ok_or(OutOfMemory)?;
        let mut cost = self.config.costs.fault_base_4k + reclaim_cost;
        self.metrics.charge_cpu(Subsystem::Fault, cost);
        if !a.was_zeroed {
            self.pm.zero_block(a.pfn, Order(0));
            self.stats.sync_zeroed_pages += 1;
            cost += self.config.costs.zero_4k;
            self.metrics.charge_cpu(Subsystem::Zero, self.config.costs.zero_4k);
        }
        self.finish_map_base(pid, vpn, a.pfn);
        self.conc_app(pid, vpn.hvpn(), cost, Some(Order(0)));
        Ok(cost)
    }

    /// Maps a policy-provided frame (FreeBSD-style reservations) at `vpn`.
    pub fn fault_map_base_at(&mut self, pid: u32, vpn: Vpn, pfn: Pfn) -> Cycles {
        let mut cost = self.config.costs.fault_base_4k;
        self.metrics.charge_cpu(Subsystem::Fault, cost);
        if !self.pm.frame(pfn).is_zeroed() {
            self.pm.zero_block(pfn, Order(0));
            self.stats.sync_zeroed_pages += 1;
            cost += self.config.costs.zero_4k;
            self.metrics.charge_cpu(Subsystem::Zero, self.config.costs.zero_4k);
        }
        self.finish_map_base(pid, vpn, pfn);
        self.conc_app(pid, vpn.hvpn(), cost, None);
        cost
    }

    fn finish_map_base(&mut self, pid: u32, vpn: Vpn, pfn: Pfn) {
        {
            let f = self.pm.frame_mut(pfn);
            f.set_kind(FrameKind::Anon);
            f.set_owner(Some(OwnerTag { pid, vpn: vpn.0 }));
            f.set_movable(true);
        }
        let p = self.processes.get_mut(&pid).expect("faulting process exists");
        p.space_mut().map_base(vpn, pfn).expect("fault target is valid and unmapped");
    }

    /// Maps a huge page over `vpn`'s region, charging the huge fault
    /// handler plus synchronous zeroing if needed. Falls back to a base
    /// mapping when no contiguous block is available (Linux behaviour).
    ///
    /// Returns `(cycles, was_huge)`.
    ///
    /// # Errors
    ///
    /// [`OutOfMemory`] if neither a huge nor a base frame could be
    /// allocated.
    pub fn fault_map_huge(&mut self, pid: u32, vpn: Vpn) -> Result<(Cycles, bool), OutOfMemory> {
        let hvpn = vpn.hvpn();
        let promotable = self
            .processes
            .get(&pid)
            .map(|p| p.space().region_promotable(hvpn))
            .unwrap_or(false);
        // Any existing base mapping in the region forbids a huge fault.
        let region_empty = self
            .processes
            .get(&pid)
            .map(|p| p.space().page_table().region_mapped_count(hvpn) == 0)
            .unwrap_or(false);
        if !promotable || !region_empty {
            return self.fault_map_base(pid, vpn).map(|c| (c, false));
        }
        let Ok(a) = self.pm.alloc(HUGE_ORDER, AllocPref::Zeroed) else {
            return self.fault_map_base(pid, vpn).map(|c| (c, false));
        };
        let mut cost = self.config.costs.fault_base_2m;
        self.metrics.charge_cpu(Subsystem::Fault, cost);
        if !a.was_zeroed {
            self.pm.zero_block(a.pfn, HUGE_ORDER);
            self.stats.sync_zeroed_pages += 512;
            cost += self.config.costs.zero_2m();
            self.metrics.charge_cpu(Subsystem::Zero, self.config.costs.zero_2m());
        }
        self.install_huge_frames(pid, hvpn, a.pfn);
        let p = self.processes.get_mut(&pid).expect("faulting process exists");
        p.space_mut().map_huge(hvpn, a.pfn).expect("region checked promotable and empty");
        self.conc_app(pid, hvpn, cost, Some(HUGE_ORDER));
        Ok((cost, true))
    }

    fn install_huge_frames(&mut self, pid: u32, hvpn: Hvpn, base_pfn: Pfn) {
        for i in 0..512u64 {
            let f = self.pm.frame_mut(Pfn(base_pfn.0 + i));
            f.set_kind(FrameKind::Anon);
            f.set_owner(Some(OwnerTag { pid, vpn: hvpn.vpn_at(i).0 }));
            f.set_movable(false);
        }
    }

    /// Handles a write to a zero-COW mapping: allocates a private zeroed
    /// frame and remaps. Returns the fault cycles.
    ///
    /// # Errors
    ///
    /// [`OutOfMemory`] on allocation failure.
    pub fn cow_fault(&mut self, pid: u32, vpn: Vpn) -> Result<Cycles, OutOfMemory> {
        let (a, reclaim_cost) = self.alloc_user(Order(0), AllocPref::Zeroed).ok_or(OutOfMemory)?;
        let mut cost =
            self.config.costs.fault_base_4k + self.config.costs.cow_extra + reclaim_cost;
        self.metrics.charge_cpu(Subsystem::Fault, cost);
        if !a.was_zeroed {
            self.pm.zero_block(a.pfn, Order(0));
            self.stats.sync_zeroed_pages += 1;
            cost += self.config.costs.zero_4k;
            self.metrics.charge_cpu(Subsystem::Zero, self.config.costs.zero_4k);
        }
        {
            let f = self.pm.frame_mut(a.pfn);
            f.set_kind(FrameKind::Anon);
            f.set_owner(Some(OwnerTag { pid, vpn: vpn.0 }));
        }
        let p = self.processes.get_mut(&pid).expect("faulting process exists");
        let space = p.space_mut();
        space.unmap_base(vpn).expect("zero-cow entry exists");
        space.map_base(vpn, a.pfn).expect("just unmapped");
        self.mmu.invalidate_page(pid, vpn);
        let p = self.processes.get_mut(&pid).expect("exists");
        p.stats_mut().cow_faults += 1;
        self.conc_app(pid, vpn.hvpn(), cost, Some(Order(0)));
        Ok(cost)
    }

    // ---- promotion / demotion / de-duplication ---------------------------

    /// Collapses a region's base mappings into a huge page (khugepaged).
    /// Charged to daemon time.
    ///
    /// # Errors
    ///
    /// See [`PromoteError`].
    pub fn promote(&mut self, pid: u32, hvpn: Hvpn) -> Result<Promoted, PromoteError> {
        let p = self.processes.get(&pid).ok_or(PromoteError::NoProcess)?;
        let space = p.space();
        if space.page_table().huge_entry(hvpn).is_some() {
            return Err(PromoteError::AlreadyHuge);
        }
        if !space.region_promotable(hvpn) {
            return Err(PromoteError::NotPromotable);
        }
        if space.page_table().region_mapped_count(hvpn) == 0 {
            return Err(PromoteError::EmptyRegion);
        }
        let a = self
            .pm
            .alloc(HUGE_ORDER, AllocPref::Zeroed)
            .map_err(|_| PromoteError::NoContiguousMemory)?;

        let p = self.processes.get_mut(&pid).expect("checked above");
        let mut cost = Cycles::ZERO;
        let mut copied = 0u32;
        let mut taken = 0u32;
        let mut covered = [false; 512];
        // Copy mapped pages into the huge frame; free their old frames.
        // (Callback drain: the entries never materialize in a Vec.)
        let pm = &mut self.pm;
        let mmu = &mut self.mmu;
        let costs = &self.config.costs;
        p.space_mut().page_table_mut().take_base_entries_in_region(hvpn, |vpn, e| {
            let off = vpn.huge_offset();
            covered[off as usize] = true;
            taken += 1;
            let dst = Pfn(a.pfn.0 + off);
            if e.zero_cow {
                // Shared zero page: the destination must be zero.
                if !pm.frame(dst).is_zeroed() {
                    pm.zero_block(dst, Order(0));
                    cost += costs.zero_4k;
                }
            } else {
                let content = pm.frame(e.pfn).content();
                pm.frame_mut(dst).set_content(content);
                pm.free(e.pfn, Order(0));
                cost += costs.copy_4k;
                copied += 1;
            }
            mmu.invalidate_page(pid, vpn);
        });
        // Previously-unmapped tail: must read as zero (bloat risk).
        let filled = 512 - taken;
        if !a.was_zeroed {
            for (i, covered) in covered.iter().enumerate() {
                if *covered {
                    continue;
                }
                let dst = Pfn(a.pfn.0 + i as u64);
                if !self.pm.frame(dst).is_zeroed() {
                    self.pm.zero_block(dst, Order(0));
                    cost += self.config.costs.zero_4k;
                }
            }
        }
        self.install_huge_frames(pid, hvpn, a.pfn);
        let p = self.processes.get_mut(&pid).expect("exists");
        p.space_mut().map_huge(hvpn, a.pfn).expect("entries taken, region covered");
        self.mmu.invalidate_region(pid, hvpn.0);
        self.stats.promotions += 1;
        self.stats.promote_copied_pages += copied as u64;
        // Attribute the promotion's copy and zero portions separately;
        // together they are exactly `cost`.
        let copy_cost = self.config.costs.copy_4k * copied as u64;
        self.charge_daemon(Subsystem::Copy, copy_cost);
        self.charge_daemon(Subsystem::Zero, cost - copy_cost);
        self.metrics.observe("promote_cycles", cost.get());
        self.trace.emit(
            pid,
            TraceEvent::Promote { hvpn: hvpn.0, copied, filled, cycles: cost.get() },
        );
        self.conc_khugepaged(pid, hvpn, cost, Some(HUGE_ORDER));
        Ok(Promoted { copied_pages: copied, filled_pages: filled, cycles: cost })
    }

    /// Promotes a region whose 512 base mappings already sit on one
    /// contiguous, aligned huge block (FreeBSD-style reservations): no
    /// copying — the base PTEs are replaced by a single huge PTE.
    ///
    /// # Errors
    ///
    /// [`PromoteError::EmptyRegion`] unless all 512 pages are mapped;
    /// [`PromoteError::NotPromotable`] if the mappings are not contiguous
    /// on an aligned block (or VMA coverage fails);
    /// [`PromoteError::AlreadyHuge`] / [`PromoteError::NoProcess`] as for
    /// [`Machine::promote`].
    pub fn promote_in_place(&mut self, pid: u32, hvpn: Hvpn) -> Result<(), PromoteError> {
        let p = self.processes.get(&pid).ok_or(PromoteError::NoProcess)?;
        let space = p.space();
        if space.page_table().huge_entry(hvpn).is_some() {
            return Err(PromoteError::AlreadyHuge);
        }
        if !space.region_promotable(hvpn) {
            return Err(PromoteError::NotPromotable);
        }
        if space.page_table().region_mapped_count(hvpn) != 512 {
            return Err(PromoteError::EmptyRegion);
        }
        // Verify physical contiguity and alignment.
        let first = space
            .page_table()
            .base_entry(hvpn.base_vpn())
            .ok_or(PromoteError::EmptyRegion)?
            .pfn;
        if !first.is_aligned(HUGE_ORDER) {
            return Err(PromoteError::NotPromotable);
        }
        for i in 0..512u64 {
            let e = space
                .page_table()
                .base_entry(hvpn.vpn_at(i))
                .ok_or(PromoteError::EmptyRegion)?;
            if e.zero_cow || e.pfn.0 != first.0 + i {
                return Err(PromoteError::NotPromotable);
            }
        }
        let p = self.processes.get_mut(&pid).expect("checked");
        let pt = p.space_mut().page_table_mut();
        pt.take_base_entries_in_region(hvpn, |_, _| {});
        pt.map_huge(hvpn, first).expect("entries taken");
        self.install_huge_frames(pid, hvpn, first);
        self.mmu.invalidate_region(pid, hvpn.0);
        self.stats.promotions += 1;
        let cost = self.config.costs.fault_base_4k; // PTE rewrite bookkeeping
        // Promotion work rides under `copy` even when nothing is copied,
        // keeping all promotion cycles in one report column.
        self.charge_daemon(Subsystem::Copy, cost);
        self.metrics.observe("promote_cycles", cost.get());
        self.trace.emit(
            pid,
            TraceEvent::Promote { hvpn: hvpn.0, copied: 0, filled: 0, cycles: cost.get() },
        );
        self.conc_khugepaged(pid, hvpn, cost, None);
        Ok(())
    }

    /// Splits a huge mapping back into base mappings (demotion). The
    /// physical block stays in place; its frames become individually
    /// movable.
    ///
    /// Returns the daemon cycles charged, or `None` if the region was not
    /// mapped huge.
    pub fn demote(&mut self, pid: u32, hvpn: Hvpn) -> Option<Cycles> {
        let p = self.processes.get_mut(&pid)?;
        let entry = p.space_mut().split_huge(hvpn).ok()?;
        for i in 0..512u64 {
            let f = self.pm.frame_mut(Pfn(entry.pfn.0 + i));
            f.set_movable(true);
            f.set_owner(Some(OwnerTag { pid, vpn: hvpn.vpn_at(i).0 }));
        }
        self.mmu.invalidate_region(pid, hvpn.0);
        self.stats.demotions += 1;
        let cost = self.config.costs.fault_base_4k; // split bookkeeping
        self.charge_daemon(Subsystem::Fault, cost);
        self.trace.emit(pid, TraceEvent::Demote { hvpn: hvpn.0, cycles: cost.get() });
        self.conc_khugepaged(pid, hvpn, cost, None);
        Some(cost)
    }

    /// Bloat recovery on one huge page: scans the 512 constituent pages
    /// for zero content (stopping each page's scan at its first non-zero
    /// byte), and if at least `min_zero` pages are zero-filled, demotes
    /// the huge page and de-duplicates the zero pages against the
    /// canonical zero page, freeing their frames.
    ///
    /// Returns `None` if the region is not mapped huge for `pid`.
    pub fn dedup_zero_pages(&mut self, pid: u32, hvpn: Hvpn, min_zero: u32) -> Option<DedupOutcome> {
        let p = self.processes.get(&pid)?;
        let entry = *p.space().page_table().huge_entry(hvpn)?;
        self.stats.bloat_scans += 1;
        // Scan phase.
        let mut scan_bytes = 0u64;
        let mut zero_pages = 0u32;
        for i in 0..512u64 {
            let content = self.pm.frame(Pfn(entry.pfn.0 + i)).content();
            scan_bytes += content.scan_bytes();
            zero_pages += content.is_zero() as u32;
        }
        let mut cost = self.config.costs.scan(scan_bytes);
        let scan_cost = cost;
        if zero_pages < min_zero {
            self.charge_daemon(Subsystem::Scan, cost);
            self.trace.emit(
                pid,
                TraceEvent::Dedup { hvpn: hvpn.0, zero_pages, demoted: false, cycles: cost.get() },
            );
            self.conc_khugepaged(pid, hvpn, cost, None);
            return Some(DedupOutcome::Kept { zero_pages, cycles: cost });
        }
        // Demote, then replace zero pages with canonical-zero COW entries.
        let demote_cost = self.demote(pid, hvpn).expect("huge entry present");
        cost += demote_cost;
        let zero_pfn = self.zero_pfn;
        let p = self.processes.get_mut(&pid).expect("exists");
        let space = p.space_mut();
        let mut freed = Vec::new();
        for i in 0..512u64 {
            let vpn = hvpn.vpn_at(i);
            let pfn = Pfn(entry.pfn.0 + i);
            if self.pm.frame(pfn).is_zeroed() {
                space.unmap_base(vpn).expect("split created this entry");
                space.map_zero_cow(vpn, zero_pfn).expect("just unmapped");
                freed.push((vpn, pfn));
            }
        }
        for (vpn, pfn) in freed {
            self.pm.free(pfn, Order(0));
            self.mmu.invalidate_page(pid, vpn);
            cost += self.config.costs.cow_extra; // remap bookkeeping
        }
        self.stats.deduped_zero_pages += zero_pages as u64;
        // The scan portion goes under `scan`, the remap remainder under
        // `dedup`; the demotion was already charged (to `fault`) by
        // `demote` itself, so it is *excluded* here. Historically it was
        // charged twice — once inside `demote`, once again in the `dedup`
        // remainder — inflating daemon_cycles by one split cost per
        // recovery. The regression test `demote_not_double_counted` pins
        // the fixed ledger: the daemon delta equals the reported cycles.
        self.charge_daemon(Subsystem::Scan, scan_cost);
        self.charge_daemon(Subsystem::Dedup, cost - scan_cost - demote_cost);
        self.trace.emit(
            pid,
            TraceEvent::Dedup { hvpn: hvpn.0, zero_pages, demoted: true, cycles: cost.get() },
        );
        self.conc_khugepaged(pid, hvpn, cost - demote_cost, None);
        Some(DedupOutcome::Deduped { zero_pages, cycles: cost })
    }

    // ---- background machinery --------------------------------------------

    /// One step of the async pre-zeroing daemon: zero up to `pages` pages
    /// from the non-zero free lists. Returns pages zeroed.
    pub fn prezero(&mut self, pages: u64) -> u64 {
        let z = self.pm.prezero_step(pages);
        self.stats.prezeroed_pages += z;
        self.charge_daemon(Subsystem::Zero, self.config.costs.zero_4k * z);
        if z > 0 {
            if let Some(rec) = self.conc.as_mut() {
                // One arena-lock trip per huge-sized block zeroed.
                rec.prezero(z.div_ceil(512));
            }
        }
        z
    }

    /// Runs a compaction pass migrating at most `max_pages`, updating page
    /// tables and shooting down stale TLB entries.
    pub fn run_compaction(&mut self, max_pages: u64) -> hawkeye_mem::CompactionStats {
        let processes = &mut self.processes;
        let mmu = &mut self.mmu;
        let file_pages = &mut self.file_pages;
        let stats = compact::compact(&mut self.pm, max_pages, |src, dst, owner| {
            migrate_frame(processes, mmu, file_pages, src, dst, owner)
        });
        self.stats.compaction_runs += 1;
        self.stats.compaction_migrated += stats.migrated_pages;
        let cost = self.config.costs.copy_4k * stats.migrated_pages;
        self.charge_daemon(Subsystem::Compact, cost);
        if stats.migrated_pages > 0 {
            if let Some(rec) = self.conc.as_mut() {
                // Compaction serializes on one machine-wide resource.
                rec.khugepaged(crate::multicore::COMPACT_KEY, cost, None);
            }
        }
        stats
    }

    /// Reclaims up to `n` file-cache pages. Returns the count actually
    /// reclaimed.
    pub fn reclaim_file_pages(&mut self, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            let Some(pfn) = self.file_pages.pop_first() else { break };
            self.pm.free(pfn, Order(0));
            done += 1;
        }
        self.stats.reclaimed_pages += done;
        done
    }

    /// Number of file-cache pages currently held.
    pub fn file_pages(&self) -> u64 {
        self.file_pages.len() as u64
    }

    /// Fragments physical memory the way the paper's experiments do
    /// (reading files until memory fills, then releasing a scattered
    /// subset): fills free memory with file-cache pages up to `fill`
    /// utilization, then frees each with probability `free_prob`.
    pub fn fragment(&mut self, fill: f64, free_prob: f64, seed: u64) {
        let target = (self.config.frames as f64 * fill) as u64;
        let mut pages = Vec::new();
        while self.pm.allocated_pages() < target {
            let Ok(a) = self.pm.alloc(Order(0), AllocPref::NonZeroed) else { break };
            let f = self.pm.frame_mut(a.pfn);
            f.set_kind(FrameKind::File);
            f.set_content(PageContent::non_zero(0));
            pages.push(a.pfn);
        }
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut pages);
        let keep_from = (pages.len() as f64 * free_prob) as usize;
        for pfn in pages.drain(..keep_from) {
            self.pm.free(pfn, Order(0));
        }
        // The remainder stays resident as reclaimable file cache.
        self.file_pages.extend(pages);
    }

    /// `madvise(MADV_DONTNEED)` on `[start, start+pages)` of `pid`:
    /// releases mappings (splitting straddled huge pages), frees frames,
    /// and shoots down the TLB. Returns the kernel cycles charged to the
    /// caller.
    pub fn madvise_dontneed(&mut self, pid: u32, start: Vpn, pages: u64) -> Cycles {
        let Some(p) = self.processes.get_mut(&pid) else { return Cycles::ZERO };
        // Regions with huge mappings that will be split or removed.
        let end = Vpn(start.0 + pages);
        let touched_regions: Vec<Hvpn> = if pages == 0 {
            Vec::new()
        } else {
            (start.hvpn().0..=Vpn(end.0 - 1).hvpn().0).map(Hvpn).collect()
        };
        let had_huge: Vec<Hvpn> = touched_regions
            .iter()
            .copied()
            .filter(|h| p.space().page_table().huge_entry(*h).is_some())
            .collect();
        let freed = p.space_mut().madvise_dontneed(start, pages);
        let mut cost = Cycles::ZERO;
        let mut demotions = 0;
        for h in &had_huge {
            self.mmu.invalidate_region(pid, h.0);
            // If base entries remain in the region, it was split (partial
            // coverage): its surviving frames become individually movable.
            let p = self.processes.get(&pid).expect("exists");
            if p.space().page_table().region_mapped_count(*h) > 0 {
                demotions += 1;
                // Split cost is folded into the per-page unmap charge below.
                self.trace.emit(pid, TraceEvent::Demote { hvpn: h.0, cycles: 0 });
                let pm = &mut self.pm;
                for (_, e) in p.space().page_table().base_mappings_in_region(*h) {
                    pm.frame_mut(e.pfn).set_movable(true);
                }
            }
        }
        self.stats.demotions += demotions;
        for f in freed {
            cost += self.config.costs.fault_base_4k / 4; // unmap bookkeeping
            if f.zero_cow {
                continue;
            }
            match f.size {
                PageSize::Huge => {
                    self.pm.free(f.pfn, HUGE_ORDER);
                }
                PageSize::Base => {
                    self.pm.free(f.pfn, Order(0));
                    self.mmu.invalidate_page(pid, f.vpn);
                }
            }
        }
        // The caller (the simulator's syscall path) folds `cost` into the
        // faulting process's quantum; attribute it here so the CPU ledger
        // stays exact.
        self.metrics.charge_cpu(Subsystem::Fault, cost);
        if pages > 0 {
            self.conc_app(pid, start.hvpn(), cost, None);
        }
        cost
    }

    /// Tears down an exited process: unmaps everything, frees frames,
    /// drops MMU state. The process entry remains for statistics.
    pub fn exit_process(&mut self, pid: u32) {
        let Some(p) = self.processes.get_mut(&pid) else { return };
        let starts: Vec<Vpn> = p.space().vmas().map(|v| v.start()).collect();
        for start in starts {
            let p = self.processes.get_mut(&pid).expect("exists");
            let Ok(freed) = p.space_mut().munmap(start) else { continue };
            for f in freed {
                if f.zero_cow {
                    continue;
                }
                match f.size {
                    PageSize::Huge => self.pm.free(f.pfn, HUGE_ORDER),
                    PageSize::Base => self.pm.free(f.pfn, Order(0)),
                }
            }
        }
        // Keep PMU counters: tables report per-process overheads after
        // completion.
        self.mmu.flush_translations(pid);
    }

    fn charge_daemon(&mut self, sub: Subsystem, c: Cycles) {
        self.stats.daemon_cycles += c;
        self.metrics.charge_daemon(sub, c);
    }

    // ---- multi-core access plan ------------------------------------------
    //
    // Every page-state transition the real kernel takes under a page lock
    // lands in the recorder as (core, resource, hold) so the replay can
    // interleave cores. The hooks are no-ops at `cores = 1` — the serial
    // engine's counters, journal and timings are untouched.

    /// Records an app-core page operation on `pid`'s region of `vpn`.
    fn conc_app(&mut self, pid: u32, hvpn: Hvpn, hold: Cycles, alloc: Option<Order>) {
        if let Some(rec) = self.conc.as_mut() {
            rec.app(pid, page_key(pid, hvpn.0), hold, alloc);
        }
    }

    /// Records a khugepaged-core operation on `pid`'s region of `hvpn`.
    fn conc_khugepaged(&mut self, pid: u32, hvpn: Hvpn, hold: Cycles, alloc: Option<Order>) {
        if let Some(rec) = self.conc.as_mut() {
            rec.khugepaged(page_key(pid, hvpn.0), hold, alloc);
        }
    }

    /// Replays the recorded per-core plan (no-op at `cores = 1`): the
    /// deterministic interleaving publishes `lock.*` counters and
    /// [`TraceEvent::Contention`] events; the real-thread replay feeds
    /// [`crate::core_stats`]. The simulator calls this at run-loop exit.
    pub fn drain_concurrency(&mut self) {
        if let Some(rec) = self.conc.as_mut() {
            rec.drain(&self.metrics, &self.trace);
        }
    }

    /// The multi-core recorder, when `cores > 1` (differential tests
    /// inspect its cumulative totals).
    pub fn concurrency(&self) -> Option<&ConcRecorder> {
        self.conc.as_ref()
    }

    pub(crate) fn stats_oom(&mut self, pid: u32) {
        self.stats.oom_events += 1;
        self.trace.emit(pid, TraceEvent::Oom);
    }

    /// Records the standard per-sample series (memory, per-process RSS /
    /// huge pages). Called by the simulator on the sampling period.
    pub(crate) fn sample_metrics(&mut self) {
        let now = self.clock.now();
        let alloc = self.pm.allocated_pages() as f64;
        self.recorder.record_at("mem.allocated_pages", now, alloc);
        self.recorder.record_at("mem.zeroed_free_pages", now, self.pm.zeroed_free_pages() as f64);
        self.metrics.set_gauge("mem.utilization", self.pm.utilization());
        self.metrics.set_gauge("mem.zeroed_free_pages", self.pm.zeroed_free_pages() as f64);
        // Journal a cumulative attribution snapshot so the analyzer can
        // reconstruct cycle breakdowns over time (and check the residue).
        if self.trace.is_enabled() {
            if let Some(m) = self.metrics.snapshot() {
                self.trace.emit(
                    0,
                    TraceEvent::CycleSample {
                        walk: m.cpu_cycles(Subsystem::Walk),
                        fault: m.cpu_cycles(Subsystem::Fault),
                        zero: m.cpu_cycles(Subsystem::Zero),
                        copy: m.cpu_cycles(Subsystem::Copy),
                        scan: m.cpu_cycles(Subsystem::Scan),
                        compact: m.cpu_cycles(Subsystem::Compact),
                        dedup: m.cpu_cycles(Subsystem::Dedup),
                        idle: m.cpu_cycles(Subsystem::Idle),
                        unhalted: m.unhalted(),
                        daemon: m.daemon_total(),
                    },
                );
            }
        }
        let rows: Vec<(u32, f64, f64)> = self
            .processes
            .values()
            .map(|p| (p.pid(), p.space().rss_pages() as f64, p.space().huge_pages() as f64))
            .collect();
        for (pid, rss, huge) in rows {
            self.recorder.record_at(&format!("p{pid}.rss_pages"), now, rss);
            self.recorder.record_at(&format!("p{pid}.huge_pages"), now, huge);
            let life = self.mmu.lifetime(pid);
            self.recorder.record_at(&format!("p{pid}.mmu_overhead"), now, life.mmu_overhead());
        }
    }

    /// Average simulated seconds between two instants (helper for tables).
    pub fn secs_since(&self, t0: Cycles) -> f64 {
        (self.clock.now().saturating_sub(t0)).as_secs()
    }

    /// Simulated throughput helper: operations per simulated second.
    pub fn ops_per_sec(&self, ops: u64, since: Cycles) -> f64 {
        let dt = self.secs_since(since);
        if dt <= 0.0 {
            return 0.0;
        }
        ops as f64 / dt
    }
}

/// Migrates one frame's mapping from `src` to `dst` during compaction,
/// using the source frame's reverse-map tag.
fn migrate_frame(
    processes: &mut BTreeMap<u32, Process>,
    mmu: &mut Mmu,
    file_pages: &mut BTreeSet<Pfn>,
    src: Pfn,
    dst: Pfn,
    owner: Option<OwnerTag>,
) -> bool {
    let Some(owner) = owner else {
        // Unowned page: file cache. Keep the reclaim index pointing at
        // the page's new home, or later reclaim would free a stale frame.
        if file_pages.remove(&src) {
            file_pages.insert(dst);
            return true;
        }
        // Unowned and not file cache (e.g. a policy-internal reservation):
        // refuse to move what we cannot re-index.
        return false;
    };
    let Some(p) = processes.get_mut(&owner.pid) else {
        return false; // stale tag: veto the move
    };
    let vpn = Vpn(owner.vpn);
    // The tag must agree with the page table; veto otherwise.
    match p.space().page_table().base_entry(vpn) {
        Some(e) if e.pfn == src && !e.zero_cow => {}
        _ => return false,
    }
    p.space_mut().page_table_mut().remap_base(vpn, dst).expect("entry checked");
    mmu.invalidate_page(owner.pid, vpn);
    let _ = src;
    true
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.clock.now())
            .field("frames", &self.pm.total_frames())
            .field("allocated", &self.pm.allocated_pages())
            .field("processes", &self.processes.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::script;

    fn machine() -> Machine {
        Machine::new(KernelConfig::small())
    }

    fn spawn_with_vma(m: &mut Machine, pages: u64) -> u32 {
        let pid = m.spawn(script("t", vec![]));
        m.process_mut(pid)
            .unwrap()
            .space_mut()
            .mmap(Vpn(0), pages, hawkeye_vm::VmaKind::Anon)
            .unwrap();
        pid
    }

    #[test]
    fn boot_reserves_zero_page() {
        let m = machine();
        assert_eq!(m.pm().allocated_pages(), 1);
        assert!(m.pm().frame(m.zero_pfn()).is_zeroed());
        assert!(!m.pm().frame(m.zero_pfn()).is_movable());
    }

    #[test]
    fn base_fault_maps_and_charges() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        let c = m.fault_map_base(pid, Vpn(5)).unwrap();
        assert!(c >= m.config().costs.fault_base_4k);
        let p = m.process(pid).unwrap();
        assert_eq!(p.space().rss_pages(), 1);
        let t = p.space().translate(Vpn(5)).unwrap();
        assert_eq!(m.pm().frame(t.pfn).owner().unwrap().pid, pid);
    }

    #[test]
    fn huge_fault_maps_whole_region() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        let (c, huge) = m.fault_map_huge(pid, Vpn(700)).unwrap();
        assert!(huge);
        assert!(c >= m.config().costs.fault_base_2m);
        let p = m.process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 1);
        assert!(p.space().translate(Vpn(512)).is_some());
        assert!(p.space().translate(Vpn(100)).is_none());
    }

    #[test]
    fn huge_fault_falls_back_on_partial_region() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_base(pid, Vpn(600)).unwrap();
        let (_, huge) = m.fault_map_huge(pid, Vpn(700)).unwrap();
        assert!(!huge, "existing base mapping forbids huge fault");
    }

    #[test]
    fn promote_collapses_and_frees_old_frames() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        for i in 0..100 {
            m.fault_map_base(pid, Vpn(512 + i)).unwrap();
        }
        let before = m.pm().allocated_pages();
        let out = m.promote(pid, Hvpn(1)).unwrap();
        assert_eq!(out.copied_pages, 100);
        assert_eq!(out.filled_pages, 412);
        // 512 new - 100 freed.
        assert_eq!(m.pm().allocated_pages(), before + 412);
        assert_eq!(m.process(pid).unwrap().space().huge_pages(), 1);
        assert_eq!(m.stats().promotions, 1);
        // Promoting again fails.
        assert_eq!(m.promote(pid, Hvpn(1)), Err(PromoteError::AlreadyHuge));
        m.pm().check_invariants();
    }

    #[test]
    fn promote_requires_mapped_pages_and_vma() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        assert_eq!(m.promote(pid, Hvpn(1)), Err(PromoteError::EmptyRegion));
        assert_eq!(m.promote(pid, Hvpn(5)), Err(PromoteError::NotPromotable));
        assert_eq!(m.promote(99, Hvpn(0)), Err(PromoteError::NoProcess));
    }

    #[test]
    fn demote_splits_mapping_in_place() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        let c = m.demote(pid, Hvpn(0));
        assert!(c.is_some());
        let p = m.process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 0);
        assert_eq!(p.space().rss_pages(), 512);
        assert_eq!(m.stats().demotions, 1);
        assert!(m.demote(pid, Hvpn(0)).is_none(), "already split");
    }

    #[test]
    fn dedup_reclaims_zero_pages() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        // Dirty 100 pages; 412 remain zero (bloat).
        let base_pfn = m.process(pid).unwrap().space().translate(Vpn(0)).unwrap().pfn;
        for i in 0..100u64 {
            m.pm_mut().frame_mut(Pfn(base_pfn.0 + i)).set_content(PageContent::non_zero(9));
        }
        let before = m.pm().allocated_pages();
        let out = m.dedup_zero_pages(pid, Hvpn(0), 256).unwrap();
        match out {
            DedupOutcome::Deduped { zero_pages, .. } => assert_eq!(zero_pages, 412),
            other => panic!("expected dedup, got {other:?}"),
        }
        assert_eq!(m.pm().allocated_pages(), before - 412);
        // Freed frames return to the *zeroed* pool.
        assert!(m.pm().zeroed_free_pages() >= 412);
        let p = m.process(pid).unwrap();
        // RSS unchanged (zero-cow entries still count), huge gone.
        assert_eq!(p.space().huge_pages(), 0);
        assert_eq!(p.space().rss_pages(), 512);
        // A write to a deduped page takes a COW fault.
        assert!(p.space().translate(Vpn(200)).unwrap().zero_cow);
        m.pm().check_invariants();
    }

    #[test]
    fn dedup_respects_threshold() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        let base_pfn = m.process(pid).unwrap().space().translate(Vpn(0)).unwrap().pfn;
        for i in 0..400u64 {
            m.pm_mut().frame_mut(Pfn(base_pfn.0 + i)).set_content(PageContent::non_zero(9));
        }
        let out = m.dedup_zero_pages(pid, Hvpn(0), 256).unwrap();
        assert!(matches!(out, DedupOutcome::Kept { zero_pages: 112, .. }));
        assert_eq!(m.process(pid).unwrap().space().huge_pages(), 1);
    }

    #[test]
    fn demote_not_double_counted() {
        // Regression: dedup recovery used to fold the demotion cycles into
        // its `dedup` daemon charge even though `demote` had already
        // charged them under `fault`, so `daemon_cycles` grew by one extra
        // split cost per recovered huge page. The ledger must advance by
        // exactly the cycles the outcome reports.
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        let base_pfn = m.process(pid).unwrap().space().translate(Vpn(0)).unwrap().pfn;
        for i in 0..100u64 {
            m.pm_mut().frame_mut(Pfn(base_pfn.0 + i)).set_content(PageContent::non_zero(9));
        }
        let before = m.stats().daemon_cycles;
        let out = m.dedup_zero_pages(pid, Hvpn(0), 256).unwrap();
        let DedupOutcome::Deduped { cycles, .. } = out else { panic!("expected dedup: {out:?}") };
        assert_eq!(m.stats().daemon_cycles - before, cycles, "daemon ledger == reported cycles");
        // A plain demotion also charges exactly what it reports.
        m.fault_map_huge(pid, Vpn(512)).unwrap();
        let before = m.stats().daemon_cycles;
        let c = m.demote(pid, Hvpn(1)).unwrap();
        assert_eq!(m.stats().daemon_cycles - before, c);
    }

    #[test]
    fn multicore_recording_leaves_serial_state_identical() {
        // The recorder observes the serial engine; it must never perturb
        // it. Identical op sequences at 1 and 4 cores leave identical
        // machine state (the differential test pins whole policies).
        let run = |cores: u32| {
            let mut cfg = KernelConfig::small();
            cfg.cores = cores;
            let mut m = Machine::new(cfg);
            let pid = spawn_with_vma(&mut m, 2048);
            for i in 0..512u64 {
                m.fault_map_base(pid, Vpn(i)).unwrap();
            }
            m.promote(pid, Hvpn(0)).unwrap();
            m.demote(pid, Hvpn(0));
            m.fault_map_huge(pid, Vpn(512)).unwrap();
            m.dedup_zero_pages(pid, Hvpn(1), 1).unwrap();
            m.prezero(64);
            m.run_compaction(128);
            (format!("{:?}", m.stats()), m.pm().allocated_pages(), m.pm().zeroed_free_pages())
        };
        assert_eq!(run(1), run(4));
        // ...and at 4 cores a contention plan was actually recorded.
        let mut cfg = KernelConfig::small();
        cfg.cores = 4;
        let mut m = Machine::new(cfg);
        let pid = spawn_with_vma(&mut m, 1024);
        for i in 0..512u64 {
            m.fault_map_base(pid, Vpn(i)).unwrap();
        }
        m.promote(pid, Hvpn(0)).unwrap();
        assert!(m.concurrency().is_some());
        m.drain_concurrency();
        let rec = m.concurrency().unwrap();
        let acq: u64 = rec.totals().iter().map(|c| c.acquisitions).sum();
        assert!(acq >= 513, "512 faults + 1 promotion recorded, got {acq}");
    }

    #[test]
    fn cow_fault_allocates_private_copy() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        m.dedup_zero_pages(pid, Hvpn(0), 1).unwrap();
        let before = m.pm().allocated_pages();
        let c = m.cow_fault(pid, Vpn(7)).unwrap();
        assert!(c > m.config().costs.fault_base_4k);
        assert_eq!(m.pm().allocated_pages(), before + 1);
        let t = m.process(pid).unwrap().space().translate(Vpn(7)).unwrap();
        assert!(!t.zero_cow);
        assert_ne!(t.pfn, m.zero_pfn());
    }

    #[test]
    fn madvise_frees_huge_and_base() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 2048);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        m.fault_map_base(pid, Vpn(512)).unwrap();
        let before = m.pm().allocated_pages();
        m.madvise_dontneed(pid, Vpn(0), 1024);
        assert_eq!(m.pm().allocated_pages(), before - 513);
        assert_eq!(m.process(pid).unwrap().space().rss_pages(), 0);
        m.pm().check_invariants();
    }

    #[test]
    fn madvise_partial_huge_splits_and_counts_demotion() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        m.madvise_dontneed(pid, Vpn(0), 64);
        assert_eq!(m.stats().demotions, 1);
        let p = m.process(pid).unwrap();
        assert_eq!(p.space().rss_pages(), 448);
        // Remaining frames are movable again.
        let t = p.space().translate(Vpn(100)).unwrap();
        assert!(m.pm().frame(t.pfn).is_movable());
        m.pm().check_invariants();
    }

    #[test]
    fn fragmentation_and_reclaim() {
        let mut m = machine();
        m.fragment(0.9, 0.5, 42);
        assert!(m.fmfi() > 0.5, "fmfi {}", m.fmfi());
        assert!(m.file_pages() > 0);
        let freed = m.reclaim_file_pages(100);
        assert_eq!(freed, 100);
        m.pm().check_invariants();
    }

    #[test]
    fn alloc_user_reclaims_under_pressure() {
        let mut m = machine();
        m.fragment(1.0, 0.0, 7); // everything is file cache
        assert_eq!(m.pm().free_pages(), 0);
        let (a, cost) = m.alloc_user(Order(0), AllocPref::Zeroed).expect("reclaim saves us");
        assert!(cost > Cycles::ZERO);
        let _ = a;
        assert!(m.stats().reclaimed_pages > 0);
    }

    #[test]
    fn exit_frees_everything() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 1024);
        m.fault_map_huge(pid, Vpn(0)).unwrap();
        m.fault_map_base(pid, Vpn(600)).unwrap();
        m.exit_process(pid);
        assert_eq!(m.pm().allocated_pages(), 1); // just the zero page
        m.pm().check_invariants();
    }

    #[test]
    fn compaction_assembles_huge_blocks_and_remaps() {
        let mut m = machine();
        let pid = spawn_with_vma(&mut m, 8192);
        // Scatter base pages widely.
        m.fragment(0.8, 0.7, 3);
        for i in 0..64 {
            m.fault_map_base(pid, Vpn(i * 7)).unwrap();
        }
        let stats = m.run_compaction(u64::MAX);
        // Whatever was migrated, translations must still resolve.
        for i in 0..64 {
            let t = m.process(pid).unwrap().space().translate(Vpn(i * 7)).unwrap();
            assert!(!m.pm().frame(t.pfn).is_free());
            assert_eq!(m.pm().frame(t.pfn).owner().map(|o| o.pid), Some(pid));
        }
        let _ = stats;
        m.pm().check_invariants();
    }
}
