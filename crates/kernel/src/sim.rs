//! The simulation run loop.
//!
//! Processes run on their own cores: each round grants every runnable
//! process one quantum of cycles, then wall-clock simulated time advances
//! by that quantum. Policy ticks (background daemon work) and metric
//! sampling happen on their configured periods.

use crate::config::KernelConfig;
use crate::machine::{Machine, OutOfMemory};
use crate::policy::{FaultAction, HugePagePolicy, Steering};
use crate::process::OpCursor;
use crate::workload::{MemOp, Workload};
use hawkeye_mem::Pfn;
use hawkeye_metrics::{Cycles, Subsystem};
use hawkeye_trace::TraceEvent;
use hawkeye_vm::{PageSize, Vpn};

/// Interposer on the touch path, invoked once per page touch after
/// translation. The virtualization layer uses this to model the host side
/// of two-level translation: EPT faults on first access to a
/// guest-physical frame, copy-on-write on KSM-merged pages, swap-ins, and
/// the extra nested-walk cost when the host maps the frame with base
/// pages.
///
/// `Send` is a supertrait so a hooked simulator stays movable across
/// threads (the virtualization bridge shares its host behind a mutex).
pub trait AccessHook: Send {
    /// Returns extra cycles charged to the access. `pfn` is the backing
    /// frame of the specific page; `walk` is the walk duration of this
    /// access (zero on TLB hits).
    fn on_touch(
        &mut self,
        pid: u32,
        vpn: Vpn,
        pfn: Pfn,
        size: PageSize,
        write: bool,
        walk: Cycles,
    ) -> Cycles;
}

/// The simulator: a [`Machine`] plus a policy and the scheduler state.
///
/// # Examples
///
/// ```
/// use hawkeye_kernel::{KernelConfig, Simulator, BasePagesOnly, MemOp, workload::script};
/// use hawkeye_vm::{Vpn, VmaKind};
///
/// let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
/// let pid = sim.spawn(script("w", vec![
///     MemOp::Mmap { start: Vpn(0), pages: 64, kind: VmaKind::Anon },
///     MemOp::TouchRange { start: Vpn(0), pages: 64, write: true, think: 50, stride: 1 , repeats: 1},
/// ]));
/// sim.run();
/// let p = sim.machine().process(pid).unwrap();
/// assert_eq!(p.stats().faults, 64);
/// ```
pub struct Simulator {
    machine: Machine,
    policy: Option<Box<dyn HugePagePolicy>>,
    next_tick: Cycles,
    next_sample: Cycles,
    hook: Option<Box<dyn AccessHook>>,
    /// Event-skip scheduling enabled (config knob gated by the
    /// `HAWKEYE_NO_EVENT_SKIP` environment override).
    event_skip: bool,
}

/// Per-quantum CPU-side cycle attribution, accumulated alongside `spent`
/// and flushed to the machine's metrics sink when the quantum ends. The
/// fault primitives charge their own costs at the call site (they know
/// their zero/fault split); the ledger covers what the run loop itself
/// adds to `spent`, so per quantum
/// `machine charges + ledger == spent == CPU_CLK_UNHALTED delta`.
#[derive(Debug, Default, Clone, Copy)]
struct CpuLedger {
    /// TLB-miss translation cycles (page walks plus L2-lookup cost).
    walk: Cycles,
    /// Syscall entry and access-hook (EPT/nested) cycles.
    fault: Cycles,
    /// Application compute: think time, in-core accesses, spin loops.
    idle: Cycles,
}

/// One process's closed-form share of each quantum in a skip batch.
#[derive(Debug, Clone, Copy)]
enum SkipArm {
    /// Pending `Compute`: the whole quantum is idle compute.
    Compute,
    /// Pending huge-page `TouchRange` streak: `touches` per quantum at
    /// `cost` cycles each, all guaranteed L1 hits inside the current
    /// region (backed by `region_pfn`).
    Range { touches: u64, cost: Cycles, write: bool, repeats: u32, region_pfn: Pfn },
}

/// A batch of quanta the event-skip scheduler charges without executing:
/// `quanta` rounds in which every running process follows its
/// [`SkipArm`].
#[derive(Debug, Clone)]
struct SkipPlan {
    quanta: u64,
    arms: Vec<(u32, SkipArm)>,
}

/// The page sequence a guaranteed-L1-hit streak covers.
#[derive(Clone, Copy)]
enum StreakShape<'a> {
    /// Consecutive pages after `after` within its huge region
    /// (`TouchRange` with stride 1).
    Consecutive { after: Vpn, region_pfn: Pfn },
    /// The leading entries of a `TouchList` tail — all one base page, or
    /// all inside one huge region.
    Listed { vpns: &'a [Vpn], size: PageSize, region_pfn: Pfn },
}

impl Simulator {
    /// Boots a machine and installs a policy.
    pub fn new(mut config: KernelConfig, policy: Box<dyn HugePagePolicy>) -> Self {
        let next_tick = config.tick_period;
        let next_sample = config.sample_period;
        let event_skip =
            config.event_skip && std::env::var_os("HAWKEYE_NO_EVENT_SKIP").is_none();
        // `HAWKEYE_CORES=<n>` overrides the configured core count, so any
        // existing binary can run multi-core without a config change. An
        // unparsable value warns once and keeps the configured count.
        if let Some(n) = hawkeye_metrics::env::parse::<u32>("HAWKEYE_CORES") {
            config.cores = n.clamp(1, crate::core_stats::MAX_CORES as u32);
        }
        Simulator {
            machine: Machine::new(config),
            policy: Some(policy),
            next_tick,
            next_sample,
            hook: None,
            event_skip,
        }
    }

    /// Installs (or clears) the per-touch interposer.
    pub fn set_access_hook(&mut self, hook: Option<Box<dyn AccessHook>>) {
        self.hook = hook;
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (experiment setup: fragmentation, VMAs...).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The installed policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.as_ref().map(|p| p.name().to_string()).unwrap_or_default()
    }

    /// Spawns a process running `workload`.
    pub fn spawn(&mut self, workload: Box<dyn Workload>) -> u32 {
        self.machine.spawn(workload)
    }

    /// Applies an external steering decision to the installed policy
    /// (fleet hook API). Call at quantum boundaries only — between
    /// [`Simulator::run_for`] slices — never mid-run.
    pub fn steer(&mut self, s: &Steering) {
        let mut policy = self.policy.take().expect("policy installed");
        policy.on_steer(&mut self.machine, s);
        self.policy = Some(policy);
    }

    /// Force-terminates `pid` (fleet migration: the tenant leaves this
    /// host), freeing its memory and notifying the policy exactly as a
    /// natural exit would. No-op for unknown or already-finished pids.
    pub fn kill(&mut self, pid: u32) {
        let running = self.machine.process(pid).is_some_and(|p| !p.is_finished());
        if !running {
            return;
        }
        self.machine.exit_process(pid);
        let at = self.machine.now();
        self.machine.process_mut(pid).expect("exists").mark_finished(at, false);
        let mut policy = self.policy.take().expect("policy installed");
        policy.on_exit(&mut self.machine, pid);
        self.policy = Some(policy);
    }

    /// Balloons `pages` pages out of `pid` starting at `start`
    /// (`madvise(DONTNEED)` driven by the host, not the guest), notifying
    /// the policy's release hook. Returns the simulated cost charged.
    pub fn balloon(&mut self, pid: u32, start: Vpn, pages: u64) -> Cycles {
        let cost = self.machine.madvise_dontneed(pid, start, pages);
        let mut policy = self.policy.take().expect("policy installed");
        policy.on_release(&mut self.machine, pid, start, pages);
        self.policy = Some(policy);
        cost
    }

    /// Runs until every process finishes or `max_time` elapses. Returns
    /// the final simulated time.
    pub fn run(&mut self) -> Cycles {
        self.run_while(|_| true)
    }

    /// Runs for at most `dur` more simulated time.
    pub fn run_for(&mut self, dur: Cycles) -> Cycles {
        let deadline = self.machine.now() + dur;
        self.run_while_deadline(move |m| m.now() < deadline, Some(deadline))
    }

    /// Runs while `keep_going(machine)` holds (checked before every
    /// quantum, exactly as the plain tick loop would), every process is
    /// not yet finished, and `max_time` has not elapsed.
    pub fn run_while(&mut self, keep_going: impl FnMut(&Machine) -> bool) -> Cycles {
        self.run_while_deadline(keep_going, None)
    }

    /// The run loop. After each executed round, the event-skip scheduler
    /// plans the span to the next interesting event — the earliest op
    /// transition, huge-region boundary, policy tick, metric sample,
    /// `max_time` or `deadline` across all processes — and charges the
    /// quanta in between in closed form instead of executing them.
    /// `keep_going` is still evaluated at every quantum boundary against
    /// exactly the machine state the tick loop would have shown it, so
    /// predicates (even ones watching per-touch statistics) fire on the
    /// identical quantum.
    fn run_while_deadline(
        &mut self,
        mut keep_going: impl FnMut(&Machine) -> bool,
        deadline: Option<Cycles>,
    ) -> Cycles {
        let mut total = 0u64;
        let mut skipped = 0u64;
        'run: while keep_going(&self.machine)
            && self.machine.now() < self.machine.config().max_time
            && self.round()
        {
            total += 1;
            if !self.event_skip {
                continue;
            }
            // Re-plan after each batch: a batch usually ends at a cap
            // (tick/sample), where only an executed round can make
            // progress, so this inner loop terminates.
            while let Some(plan) = self.skip_plan(deadline) {
                for _ in 0..plan.quanta {
                    if !keep_going(&self.machine) {
                        break 'run;
                    }
                    self.apply_skip_quantum(&plan);
                    total += 1;
                    skipped += 1;
                }
            }
        }
        self.machine.mmu_mut().flush_metrics();
        self.machine.drain_concurrency();
        crate::sched_stats::flush(total, skipped);
        self.machine.now()
    }

    /// Executes one scheduler round. Returns false when no process is
    /// runnable.
    pub fn round(&mut self) -> bool {
        let pids = self.machine.running_pids();
        if pids.is_empty() {
            return false;
        }
        let quantum = self.machine.config().quantum;
        let mut policy = self.policy.take().expect("policy installed");
        for pid in pids {
            self.step_process(&mut *policy, pid, quantum);
        }
        // Drain walk durations batched during the quantum into the
        // registry (additive merge — readers see exactly what per-walk
        // observation would have produced, without its per-touch cost).
        self.machine.mmu_mut().flush_metrics();
        self.machine.advance(quantum);
        let now = self.machine.now();
        if now >= self.next_tick {
            policy.on_tick(&mut self.machine);
            self.next_tick += self.machine.config().tick_period;
        }
        let sample_period = self.machine.config().sample_period;
        if sample_period > Cycles::ZERO && now >= self.next_sample {
            self.machine.sample_metrics();
            self.next_sample += sample_period;
        }
        self.policy = Some(policy);
        true
    }

    /// Plans how many upcoming quanta can be charged in closed form, or
    /// `None` when the very next quantum is interesting.
    ///
    /// A quantum is skippable when **every** running process would spend
    /// it inside a provably uniform stretch of its pending op:
    ///
    /// * `Compute` with more than a quantum left — the round charges
    ///   exactly one idle quantum and bumps progress; skippable while
    ///   `left > j·quantum` for each skipped round `j`, hence
    ///   `kₚ = (left − 1) / quantum`.
    /// * A stride-1 `TouchRange` mid-way through a resident huge region —
    ///   the round executes `t = ⌈quantum / c⌉` touches at `c = (access +
    ///   think) · repeats` cycles each, all guaranteed L1 hits (the
    ///   region's entry is resident and its accessed/dirty bits were set
    ///   by this round's touches; a write over a zero-COW mapping or a
    ///   region boundary would fault or walk, so those end the span).
    ///   Skippable while the remaining in-region span keeps at least one
    ///   touch for the resuming round: `kₚ = (T_rem − 1) / t` with
    ///   `T_rem = min(pages − i, 512 − offset)`.
    ///
    /// The batch is further capped so no policy tick, metric sample,
    /// `max_time` or `run_for` deadline falls inside it — those are the
    /// "interesting events" the scheduler jumps between. Mid-batch,
    /// nothing can evict the L1 entries the plans rely on (each process
    /// only refreshes its own region's entry) and no process can finish,
    /// fault or change a policy-visible structure, which is what makes
    /// the closed forms exact.
    fn skip_plan(&self, deadline: Option<Cycles>) -> Option<SkipPlan> {
        let cfg = self.machine.config();
        let quantum = cfg.quantum;
        if quantum == Cycles::ZERO {
            return None;
        }
        let now = self.machine.now();
        // Full quanta that fit strictly before `next`.
        let quanta_before = |next: Cycles| -> u64 {
            let d = next.saturating_sub(now);
            if d == Cycles::ZERO {
                0
            } else {
                (d.get() - 1) / quantum.get()
            }
        };
        let mut k = quanta_before(self.next_tick).min(quanta_before(cfg.max_time));
        if cfg.sample_period > Cycles::ZERO {
            k = k.min(quanta_before(self.next_sample));
        }
        if let Some(d) = deadline {
            k = k.min(quanta_before(d));
        }
        if k == 0 {
            return None;
        }
        let pids = self.machine.running_pids();
        if pids.is_empty() {
            return None;
        }
        let fast = self.fast_path_on();
        let access = cfg.costs.access;
        let mut arms = Vec::with_capacity(pids.len());
        for pid in pids {
            let p = self.machine.process(pid)?;
            let cursor = p.pending.as_ref()?;
            match &cursor.op {
                MemOp::Compute { cycles } => {
                    let left = cycles.saturating_sub(cursor.progress);
                    k = k.min(left.saturating_sub(1) / quantum.get());
                    arms.push((pid, SkipArm::Compute));
                }
                MemOp::TouchRange { start, pages, write, think, stride, repeats } => {
                    if !fast || (*stride).max(1) != 1 {
                        return None;
                    }
                    let i = cursor.progress;
                    if i == 0 {
                        // The resuming round opens with a full-model
                        // touch that may fault.
                        return None;
                    }
                    let vpn = Vpn(start.0 + i);
                    let off = vpn.huge_offset();
                    if off == 0 {
                        return None;
                    }
                    let repeats = (*repeats).max(1);
                    let c = (access + Cycles::new(*think as u64)) * repeats as u64;
                    if c == Cycles::ZERO {
                        return None;
                    }
                    let t = quantum.get().div_ceil(c.get());
                    let t_rem = (pages - i).min(512 - off);
                    if t_rem <= t {
                        return None;
                    }
                    let tr = p.space().translate(vpn)?;
                    if tr.size != PageSize::Huge || (*write && tr.zero_cow) {
                        return None;
                    }
                    if !self.machine.mmu().probe_l1(pid, vpn, PageSize::Huge) {
                        return None;
                    }
                    k = k.min((t_rem - 1) / t);
                    arms.push((
                        pid,
                        SkipArm::Range {
                            touches: t,
                            cost: c,
                            write: *write,
                            repeats,
                            region_pfn: Pfn(tr.pfn.0 - off),
                        },
                    ));
                }
                _ => return None,
            }
        }
        if k == 0 {
            return None;
        }
        Some(SkipPlan { quanta: k, arms })
    }

    /// Charges one planned quantum without executing it. Mirrors
    /// [`Simulator::step_process`]'s per-round effects exactly, process
    /// by process in scheduling order, then advances the clock: ledger
    /// flush (all idle — skipped quanta walk and fault nothing),
    /// `cpu_time`, `CPU_CLK_UNHALTED`, TLB hit streaks, dirt draws and
    /// frame contents for writes, touch statistics, and op progress.
    fn apply_skip_quantum(&mut self, plan: &SkipPlan) {
        let quantum = self.machine.config().quantum;
        for (pid, arm) in &plan.arms {
            let pid = *pid;
            match arm {
                SkipArm::Compute => {
                    self.machine.metrics().charge_cpu(Subsystem::Idle, quantum);
                    let p = self.machine.process_mut(pid).expect("planned process runs");
                    p.pending.as_mut().expect("pending compute").progress += quantum.get();
                    p.charge(quantum);
                    self.machine.record_unhalted(pid, quantum);
                }
                SkipArm::Range { touches, cost, write, repeats, region_pfn } => {
                    let spent = *cost * *touches;
                    self.machine.metrics().charge_cpu(Subsystem::Idle, spent);
                    {
                        let (p, mmu, pm, _) =
                            self.machine.touch_parts(pid).expect("planned process runs");
                        let cursor = p.pending.as_mut().expect("pending range");
                        let start = match &cursor.op {
                            MemOp::TouchRange { start, .. } => *start,
                            _ => unreachable!("planned op is a range"),
                        };
                        let vpn = Vpn(start.0 + cursor.progress);
                        cursor.progress += *touches;
                        assert!(
                            mmu.record_l1_hits(pid, vpn, PageSize::Huge, *touches),
                            "planned streak entry evicted mid-skip"
                        );
                        if *write {
                            let off = vpn.huge_offset();
                            for j in 0..*touches {
                                let dirt = p.dirt_offset();
                                pm.frame_mut(Pfn(region_pfn.0 + off + j))
                                    .set_content(hawkeye_mem::PageContent::non_zero(dirt));
                            }
                        }
                        let st = p.stats_mut();
                        st.touches += *touches;
                        st.accesses += *repeats as u64 * *touches;
                        p.charge(spent);
                    }
                    self.machine.record_unhalted(pid, spent);
                }
            }
        }
        self.machine.advance(quantum);
    }

    /// Runs one process for (up to) a quantum of its own CPU.
    fn step_process(&mut self, policy: &mut dyn HugePagePolicy, pid: u32, quantum: Cycles) {
        let base_now = self.machine.now();
        let mut spent = Cycles::ZERO;
        let mut ledger = CpuLedger::default();
        let mut finished = false;
        let mut oom = false;
        while spent < quantum {
            let cursor = {
                let p = self.machine.process_mut(pid).expect("running process");
                match p.pending.take() {
                    Some(c) => Some(c),
                    None => p.next_op().map(|op| OpCursor { op, progress: 0 }),
                }
            };
            let Some(cursor) = cursor else {
                finished = true;
                break;
            };
            match self.exec_slice(policy, pid, cursor, quantum, &mut spent, &mut ledger) {
                Ok(Some(rest)) => {
                    self.machine.process_mut(pid).expect("exists").pending = Some(rest);
                }
                Ok(None) => {}
                Err(OutOfMemory) => {
                    finished = true;
                    oom = true;
                    break;
                }
            }
        }
        {
            // Attribute the run loop's share of this quantum; the fault
            // primitives charged theirs already. Together they sum to
            // `spent`, which `record_unhalted` credits below.
            let m = self.machine.metrics();
            m.charge_cpu(Subsystem::Walk, ledger.walk);
            m.charge_cpu(Subsystem::Fault, ledger.fault);
            m.charge_cpu(Subsystem::Idle, ledger.idle);
        }
        let p = self.machine.process_mut(pid).expect("exists");
        p.charge(spent);
        self.machine.record_unhalted(pid, spent);
        if finished {
            if oom {
                self.machine.stats_oom(pid);
            }
            self.machine.exit_process(pid);
            let at = base_now + spent;
            self.machine.process_mut(pid).expect("exists").mark_finished(at, oom);
            policy.on_exit(&mut self.machine, pid);
        }
    }

    /// Executes (part of) one op; returns the remaining cursor when the
    /// quantum expires mid-op.
    fn exec_slice(
        &mut self,
        policy: &mut dyn HugePagePolicy,
        pid: u32,
        mut cursor: OpCursor,
        quantum: Cycles,
        spent: &mut Cycles,
        ledger: &mut CpuLedger,
    ) -> Result<Option<OpCursor>, OutOfMemory> {
        let syscall_cost = Cycles::from_nanos(500);
        match &cursor.op {
            MemOp::Mmap { start, pages, kind } => {
                let p = self.machine.process_mut(pid).expect("exists");
                p.space_mut().mmap(*start, *pages, *kind).expect("workload mmap is valid");
                *spent += syscall_cost;
                ledger.fault += syscall_cost;
                Ok(None)
            }
            MemOp::Munmap { start } => {
                let start = *start;
                let range = self
                    .machine
                    .process(pid)
                    .and_then(|p| p.space().find_vma(start).map(|v| (v.start(), v.pages())));
                if let Some((s, pages)) = range {
                    // The madvise cost is attributed inside the machine;
                    // only the syscall entry is the run loop's to tag.
                    *spent += self.machine.madvise_dontneed(pid, s, pages) + syscall_cost;
                    ledger.fault += syscall_cost;
                    let p = self.machine.process_mut(pid).expect("exists");
                    let _ = p.space_mut().munmap(s);
                    policy.on_release(&mut self.machine, pid, s, pages);
                }
                Ok(None)
            }
            MemOp::Madvise { start, pages } => {
                let (start, pages) = (*start, *pages);
                *spent += self.machine.madvise_dontneed(pid, start, pages) + syscall_cost;
                ledger.fault += syscall_cost;
                policy.on_release(&mut self.machine, pid, start, pages);
                Ok(None)
            }
            MemOp::Compute { cycles } => {
                let total = Cycles::new(*cycles);
                let done = Cycles::new(cursor.progress);
                let left = total.saturating_sub(done);
                let room = quantum.saturating_sub(*spent);
                if left <= room {
                    *spent += left;
                    ledger.idle += left;
                    Ok(None)
                } else {
                    *spent += room;
                    ledger.idle += room;
                    cursor.progress += room.get();
                    Ok(Some(cursor))
                }
            }
            MemOp::Touch { vpn, write, repeats, think } => {
                let (vpn, write, repeats, think) = (*vpn, *write, *repeats, *think);
                self.touch_page(policy, pid, vpn, write, repeats, think, spent, ledger)?;
                Ok(None)
            }
            MemOp::TouchRange { start, pages, write, think, stride, repeats } => {
                let (start, pages, write, think, stride, repeats) =
                    (*start, *pages, *write, *think, (*stride).max(1), (*repeats).max(1));
                let fast = self.fast_path_on() && stride == 1;
                let mut i = cursor.progress;
                while i < pages {
                    if *spent >= quantum {
                        cursor.progress = i;
                        return Ok(Some(cursor));
                    }
                    let vpn = Vpn(start.0 + i * stride);
                    let tr = self.touch_page(policy, pid, vpn, write, repeats, think, spent, ledger)?;
                    i += 1;
                    if fast && tr.size == PageSize::Huge && i < pages {
                        // The rest of this huge region is resident behind
                        // the L1 entry the touch above just used: charge
                        // the guaranteed-hit streak in closed form.
                        let max = (pages - i).min(511 - vpn.huge_offset());
                        i += self.charge_streak(
                            pid,
                            StreakShape::Consecutive { after: vpn, region_pfn: Pfn(tr.pfn.0 - vpn.huge_offset()) },
                            write,
                            repeats,
                            think,
                            max,
                            quantum,
                            spent,
                            ledger,
                        );
                    }
                }
                Ok(None)
            }
            MemOp::TouchList { vpns, write, think } => {
                let (write, think) = (*write, *think);
                let fast = self.fast_path_on();
                let mut i = cursor.progress as usize;
                while i < vpns.len() {
                    if *spent >= quantum {
                        cursor.progress = i as u64;
                        return Ok(Some(cursor));
                    }
                    let vpn = vpns[i];
                    let tr = self.touch_page(policy, pid, vpn, write, 1, think, spent, ledger)?;
                    i += 1;
                    if fast {
                        // Later list entries guaranteed to hit the same L1
                        // entry: repeats of this page, or (for a huge
                        // mapping) any page of the same region.
                        let run = vpns[i..]
                            .iter()
                            .take_while(|v| match tr.size {
                                PageSize::Huge => v.hvpn() == vpn.hvpn(),
                                PageSize::Base => **v == vpn,
                            })
                            .count() as u64;
                        if run > 0 {
                            let region_pfn = match tr.size {
                                PageSize::Huge => Pfn(tr.pfn.0 - vpn.huge_offset()),
                                PageSize::Base => tr.pfn,
                            };
                            let n = self.charge_streak(
                                pid,
                                StreakShape::Listed { vpns: &vpns[i..], size: tr.size, region_pfn },
                                write,
                                1,
                                think,
                                run,
                                quantum,
                                spent,
                                ledger,
                            );
                            i += n as usize;
                        }
                    }
                }
                Ok(None)
            }
        }
    }

    /// Whether batched streak execution applies: the fast path is on and
    /// no access hook is interposing (hooks must see every touch).
    fn fast_path_on(&self) -> bool {
        self.machine.config().fast_path && self.hook.is_none()
    }

    /// Charges up to `max` touches that are each guaranteed to hit the L1
    /// TLB on the entry used by the touch just executed, without walking
    /// the per-access model. Returns how many touches were charged (0
    /// falls the caller back to per-access execution).
    ///
    /// Exactness argument, piece by piece against what `max` per-access
    /// iterations would do:
    /// * *page table*: every page in the streak is mapped by the entry the
    ///   preceding touch translated through, whose accessed bit (and dirty
    ///   bit, for writes) that touch already set — the per-access
    ///   `AddressSpace::access` calls would be state no-ops, and cannot
    ///   fault (a huge mapping covers its region; a resolved base page
    ///   stays resolved; COW writes never enter a streak because the
    ///   leading touch replaced the zero-COW mapping).
    /// * *TLB/PMU*: `Mmu::record_l1_hits` advances the LRU clock and hit
    ///   counters exactly as `n` hitting lookups would, and refuses
    ///   (returning 0 here) if the entry is somehow not resident.
    /// * *cycles*: an L1 hit's `AccessOutcome` charges zero, so each touch
    ///   costs exactly `(access + think) × repeats`.
    /// * *quantum*: the per-access loop stops before the first touch at
    ///   which `spent ≥ quantum`; with per-touch cost `c`, that is
    ///   `⌈(quantum − spent)/c⌉` more touches (all of them when `c = 0`).
    /// * *content*: `dirt_offset()` is drawn once per write touch in op
    ///   order (it advances the workload's RNG), and each touched frame
    ///   gets its sample; no observer runs mid-streak (policy ticks only
    ///   happen between rounds, and hooks disable batching).
    #[allow(clippy::too_many_arguments)]
    fn charge_streak(
        &mut self,
        pid: u32,
        shape: StreakShape<'_>,
        write: bool,
        repeats: u32,
        think: u32,
        max: u64,
        quantum: Cycles,
        spent: &mut Cycles,
        ledger: &mut CpuLedger,
    ) -> u64 {
        if max == 0 {
            return 0;
        }
        let (p, mmu, pm, config) = self.machine.touch_parts(pid).expect("exists");
        let c_touch = (config.costs.access + Cycles::new(think as u64)) * repeats as u64;
        let n = if c_touch > Cycles::ZERO {
            let room = quantum.saturating_sub(*spent);
            if room == Cycles::ZERO {
                return 0;
            }
            max.min(room.get().div_ceil(c_touch.get()))
        } else {
            max
        };
        let (probe_vpn, size) = match shape {
            StreakShape::Consecutive { after, .. } => (Vpn(after.0 + 1), PageSize::Huge),
            StreakShape::Listed { vpns, size, .. } => (vpns[0], size),
        };
        if !mmu.record_l1_hits(pid, probe_vpn, size, n) {
            return 0;
        }
        *spent += c_touch * n;
        ledger.idle += c_touch * n;
        if write {
            // One dirt draw per touch, in op order; frame contents never
            // feed back into the workload RNG, so draw-then-apply per
            // touch matches the per-access order.
            for j in 0..n {
                let dirt = p.dirt_offset();
                let pfn = match shape {
                    StreakShape::Consecutive { after, region_pfn } => {
                        Pfn(region_pfn.0 + Vpn(after.0 + 1 + j).huge_offset())
                    }
                    StreakShape::Listed { vpns, size, region_pfn } => match size {
                        PageSize::Huge => Pfn(region_pfn.0 + vpns[j as usize].huge_offset()),
                        PageSize::Base => region_pfn,
                    },
                };
                pm.frame_mut(pfn).set_content(hawkeye_mem::PageContent::non_zero(dirt));
            }
        }
        let st = p.stats_mut();
        st.touches += n;
        st.accesses += repeats as u64 * n;
        n
    }

    /// One page touch: translation (with TLB timing), fault handling via
    /// the policy, content dirtying, and repeat accesses. Costs accumulate
    /// directly into `spent` (and their attribution into `ledger`), so
    /// fault work done before a mid-touch OOM stays counted in the
    /// quantum — matching the registry charges the fault primitives
    /// already made. Returns the translation the touch resolved to (streak
    /// batching uses it to extend over the rest of a huge region).
    ///
    /// # Fault accounting
    ///
    /// Every trip around the fault loop — a missing mapping resolved by
    /// the policy *or* a write hitting a zero-COW page — charges one
    /// `ProcStats::faults` and its handler cost to
    /// `ProcStats::fault_cycles`. COW resolutions are additionally
    /// counted in `ProcStats::cow_faults`, so COW faults are a *subset*
    /// of `faults`, not a separate pool. A touch
    /// can legitimately fault twice (unmapped, then the policy maps the
    /// region zero-COW and a write must immediately COW), which is why
    /// the loop guard allows a few iterations.
    #[allow(clippy::too_many_arguments)]
    fn touch_page(
        &mut self,
        policy: &mut dyn HugePagePolicy,
        pid: u32,
        vpn: Vpn,
        write: bool,
        repeats: u32,
        think: u32,
        spent: &mut Cycles,
        ledger: &mut CpuLedger,
    ) -> Result<hawkeye_vm::Translation, OutOfMemory> {
        let repeats = repeats.max(1);
        if let Some(tr) = self.touch_mapped(pid, vpn, write, repeats, think, spent, ledger) {
            return Ok(tr);
        }
        let access_cost = self.machine.config().costs.access;
        let mut guard = 0;
        let translation = loop {
            let tr = {
                let p = self.machine.process_mut(pid).expect("running process");
                p.space_mut().access(vpn, write)
            };
            if let Some(t) = tr {
                break t;
            }
            guard += 1;
            assert!(guard <= 3, "fault loop did not converge at {vpn}");
            // Distinguish zero-COW writes from missing mappings.
            let zero_cow = self
                .machine
                .process(pid)
                .and_then(|p| p.space().translate(vpn))
                .map(|t| t.zero_cow)
                .unwrap_or(false);
            let (fault_cost, huge) = if write && zero_cow {
                (self.machine.cow_fault(pid, vpn)?, false)
            } else {
                let action = policy.on_fault(&mut self.machine, pid, vpn);
                self.apply_fault_action(pid, vpn, action)?
            };
            *spent += fault_cost;
            let p = self.machine.process_mut(pid).expect("exists");
            let st = p.stats_mut();
            st.faults += 1;
            st.fault_cycles += fault_cost;
            self.machine.metrics().observe("fault_cycles", fault_cost.get());
            self.machine.trace().emit(
                pid,
                TraceEvent::Fault {
                    vpn: vpn.0,
                    huge,
                    cow: write && zero_cow,
                    cycles: fault_cost.get(),
                },
            );
        };
        let out = self.machine.mmu_mut().access(pid, vpn, translation.size, write);
        let compute = (access_cost + Cycles::new(think as u64)) * repeats as u64;
        *spent += out.cycles + compute;
        ledger.walk += out.cycles;
        ledger.idle += compute;
        if let Some(hook) = self.hook.as_mut() {
            let hook_cost =
                hook.on_touch(pid, vpn, translation.pfn, translation.size, write, out.walk_cycles);
            *spent += hook_cost;
            ledger.fault += hook_cost;
        }
        if write && !translation.zero_cow {
            let dirt = self.machine.process_mut(pid).expect("exists").dirt_offset();
            self.machine
                .pm_mut()
                .frame_mut(translation.pfn)
                .set_content(hawkeye_mem::PageContent::non_zero(dirt));
        }
        let p = self.machine.process_mut(pid).expect("exists");
        let st = p.stats_mut();
        st.touches += 1;
        st.accesses += repeats as u64;
        Ok(translation)
    }

    /// The no-fault arm of [`Simulator::touch_page`]: when the page is
    /// already mapped (and, for writes, resolved past any zero-COW), one
    /// process lookup serves the translation, the dirt draw and the stats
    /// update. Returns `None` — with no state change beyond the
    /// side-effect-free failed translation — when a fault is needed, and
    /// the caller falls back to the fault loop.
    #[allow(clippy::too_many_arguments)]
    fn touch_mapped(
        &mut self,
        pid: u32,
        vpn: Vpn,
        write: bool,
        repeats: u32,
        think: u32,
        spent: &mut Cycles,
        ledger: &mut CpuLedger,
    ) -> Option<hawkeye_vm::Translation> {
        let (p, mmu, pm, config) = self.machine.touch_parts(pid).expect("running process");
        let translation = p.space_mut().access(vpn, write)?;
        let out = mmu.access(pid, vpn, translation.size, write);
        let compute = (config.costs.access + Cycles::new(think as u64)) * repeats as u64;
        *spent += out.cycles + compute;
        ledger.walk += out.cycles;
        ledger.idle += compute;
        if let Some(hook) = self.hook.as_mut() {
            let hook_cost =
                hook.on_touch(pid, vpn, translation.pfn, translation.size, write, out.walk_cycles);
            *spent += hook_cost;
            ledger.fault += hook_cost;
        }
        if write && !translation.zero_cow {
            let dirt = p.dirt_offset();
            pm.frame_mut(translation.pfn).set_content(hawkeye_mem::PageContent::non_zero(dirt));
        }
        let st = p.stats_mut();
        st.touches += 1;
        st.accesses += repeats as u64;
        Some(translation)
    }

    /// Returns the fault cost and whether the fault was served huge.
    fn apply_fault_action(
        &mut self,
        pid: u32,
        vpn: Vpn,
        action: FaultAction,
    ) -> Result<(Cycles, bool), OutOfMemory> {
        match action {
            FaultAction::MapBase => Ok((self.machine.fault_map_base(pid, vpn)?, false)),
            FaultAction::MapHuge => {
                let (cost, huge) = self.machine.fault_map_huge(pid, vpn)?;
                if huge {
                    let p = self.machine.process_mut(pid).expect("exists");
                    p.stats_mut().huge_faults += 1;
                }
                Ok((cost, huge))
            }
            FaultAction::MapBaseAt(pfn) => {
                Ok((self.machine.fault_map_base_at(pid, vpn, pfn), false))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BasePagesOnly;
    use crate::workload::script;
    use hawkeye_vm::VmaKind;

    /// A policy that always tries huge faults (Linux-2MB with THP=always).
    struct AlwaysHuge;
    impl HugePagePolicy for AlwaysHuge {
        fn name(&self) -> &str {
            "always-huge"
        }
        fn on_fault(&mut self, _m: &mut Machine, _pid: u32, _vpn: Vpn) -> FaultAction {
            FaultAction::MapHuge
        }
    }

    fn touch_workload(pages: u64, write: bool) -> Box<dyn Workload> {
        script(
            "touch",
            vec![
                MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages, write, think: 100, stride: 1 , repeats: 1},
            ],
        )
    }

    /// Compile-time check: simulations must be movable to worker threads
    /// (the bench scenario engine fans independent runs across cores).
    #[allow(dead_code)]
    fn assert_send<T: Send>() {}

    #[test]
    fn simulator_is_send() {
        assert_send::<Simulator>();
        assert_send::<Machine>();
        assert_send::<Box<dyn HugePagePolicy>>();
        assert_send::<Box<dyn Workload>>();
        assert_send::<Box<dyn AccessHook>>();
    }

    #[test]
    fn base_policy_faults_once_per_page() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(touch_workload(2048, true));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished());
        assert!(!p.is_oom());
        assert_eq!(p.stats().faults, 2048);
        assert_eq!(p.stats().huge_faults, 0);
        assert_eq!(p.stats().touches, 2048);
        // Memory was freed at exit.
        assert_eq!(sim.machine().pm().allocated_pages(), 1);
    }

    #[test]
    fn huge_policy_reduces_faults_512x() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(AlwaysHuge));
        let pid = sim.spawn(touch_workload(2048, true));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().faults, 4, "one fault per 2 MB region");
        assert_eq!(p.stats().huge_faults, 4);
    }

    #[test]
    fn huge_faults_faster_overall_for_spatial_workloads() {
        // Table 1's core claim, in miniature: despite higher per-fault
        // latency, huge faults win on total time for sequential touch.
        let mut sim_base = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid_b = sim_base.spawn(touch_workload(16 * 512, true));
        sim_base.run();
        let mut sim_huge = Simulator::new(KernelConfig::small(), Box::new(AlwaysHuge));
        let pid_h = sim_huge.spawn(touch_workload(16 * 512, true));
        sim_huge.run();
        let tb = sim_base.machine().process(pid_b).unwrap().cpu_time();
        let th = sim_huge.machine().process(pid_h).unwrap().cpu_time();
        assert!(
            th.get() * 2 < tb.get(),
            "huge {th} should beat base {tb} by >2x (sync zeroing dominates either way)"
        );
    }

    #[test]
    fn time_advances_by_quanta_and_finish_time_recorded() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(touch_workload(64, false));
        let end = sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.finish_time().unwrap() <= end);
        assert!(p.cpu_time() > Cycles::ZERO);
    }

    #[test]
    fn oom_is_detected_and_marked() {
        let mut cfg = KernelConfig::small();
        cfg.frames = 1024; // 4 MiB machine
        let mut sim = Simulator::new(cfg, Box::new(BasePagesOnly));
        let pid = sim.spawn(touch_workload(4096, true)); // wants 16 MiB
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished());
        assert!(p.is_oom());
        assert_eq!(sim.machine().stats().oom_events, 1);
    }

    #[test]
    fn madvise_then_retouch_faults_again() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(script(
            "cycle",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 128, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 128, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Madvise { start: Vpn(0), pages: 128 },
                MemOp::TouchRange { start: Vpn(0), pages: 128, write: true, think: 0, stride: 1 , repeats: 1},
            ],
        ));
        sim.run();
        assert_eq!(sim.machine().process(pid).unwrap().stats().faults, 256);
    }

    #[test]
    fn run_for_respects_duration() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        // Endless compute workload.
        let _pid = sim.spawn(script(
            "spin",
            vec![MemOp::Compute { cycles: u64::MAX / 2 }],
        ));
        let t = sim.run_for(Cycles::from_millis(50));
        assert!(t >= Cycles::from_millis(50));
        assert!(t < Cycles::from_millis(60));
    }

    #[test]
    fn repeats_amortize_tlb_cost() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(script(
            "hot",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 1, kind: VmaKind::Anon },
                MemOp::Touch { vpn: Vpn(0), write: true, repeats: 1000, think: 10 },
            ],
        ));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().touches, 1);
        assert_eq!(p.stats().accesses, 1000);
        assert_eq!(p.stats().faults, 1);
    }

    #[test]
    fn registry_breakdown_sums_to_unhalted() {
        use hawkeye_metrics::registry;
        // Both fault shapes (read faults hit the zero page, write faults
        // allocate + zero): the CPU ledger must attribute every unhalted
        // cycle either way, and the daemon ledger must match the kernel's
        // own daemon_cycles stat.
        for write in [false, true] {
            registry::scope::begin();
            let mut sim = Simulator::new(KernelConfig::small(), Box::new(AlwaysHuge));
            sim.spawn(touch_workload(2048, write));
            sim.run();
            let stats = sim.machine().stats();
            let reg = registry::scope::end().expect("registry");
            let m = reg.machine(0).expect("machine attached to scope");
            assert!(m.unhalted() > 0, "write={write}: no unhalted cycles recorded");
            assert_eq!(
                m.residue(),
                0,
                "write={write}: sum of cycles.cpu.* must equal CPU_CLK_UNHALTED"
            );
            assert_eq!(
                m.daemon_total(),
                stats.daemon_cycles.get(),
                "write={write}: daemon ledger must match stats.daemon_cycles"
            );
            assert!(m.cpu_cycles(Subsystem::Walk) > 0, "write={write}: walks charged");
            assert!(m.cpu_cycles(Subsystem::Fault) > 0, "write={write}: faults charged");
            assert!(m.cpu_cycles(Subsystem::Idle) > 0, "write={write}: compute charged");
        }
    }
}
