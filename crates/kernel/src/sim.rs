//! The simulation run loop.
//!
//! Processes run on their own cores: each round grants every runnable
//! process one quantum of cycles, then wall-clock simulated time advances
//! by that quantum. Policy ticks (background daemon work) and metric
//! sampling happen on their configured periods.

use crate::config::KernelConfig;
use crate::machine::{Machine, OutOfMemory};
use crate::policy::{FaultAction, HugePagePolicy};
use crate::process::OpCursor;
use crate::workload::{MemOp, Workload};
use hawkeye_mem::Pfn;
use hawkeye_metrics::{Cycles, Subsystem};
use hawkeye_trace::TraceEvent;
use hawkeye_vm::{PageSize, Vpn};

/// Interposer on the touch path, invoked once per page touch after
/// translation. The virtualization layer uses this to model the host side
/// of two-level translation: EPT faults on first access to a
/// guest-physical frame, copy-on-write on KSM-merged pages, swap-ins, and
/// the extra nested-walk cost when the host maps the frame with base
/// pages.
///
/// `Send` is a supertrait so a hooked simulator stays movable across
/// threads (the virtualization bridge shares its host behind a mutex).
pub trait AccessHook: Send {
    /// Returns extra cycles charged to the access. `pfn` is the backing
    /// frame of the specific page; `walk` is the walk duration of this
    /// access (zero on TLB hits).
    fn on_touch(
        &mut self,
        pid: u32,
        vpn: Vpn,
        pfn: Pfn,
        size: PageSize,
        write: bool,
        walk: Cycles,
    ) -> Cycles;
}

/// The simulator: a [`Machine`] plus a policy and the scheduler state.
///
/// # Examples
///
/// ```
/// use hawkeye_kernel::{KernelConfig, Simulator, BasePagesOnly, MemOp, workload::script};
/// use hawkeye_vm::{Vpn, VmaKind};
///
/// let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
/// let pid = sim.spawn(script("w", vec![
///     MemOp::Mmap { start: Vpn(0), pages: 64, kind: VmaKind::Anon },
///     MemOp::TouchRange { start: Vpn(0), pages: 64, write: true, think: 50, stride: 1 , repeats: 1},
/// ]));
/// sim.run();
/// let p = sim.machine().process(pid).unwrap();
/// assert_eq!(p.stats().faults, 64);
/// ```
pub struct Simulator {
    machine: Machine,
    policy: Option<Box<dyn HugePagePolicy>>,
    next_tick: Cycles,
    next_sample: Cycles,
    hook: Option<Box<dyn AccessHook>>,
}

/// Per-quantum CPU-side cycle attribution, accumulated alongside `spent`
/// and flushed to the machine's metrics sink when the quantum ends. The
/// fault primitives charge their own costs at the call site (they know
/// their zero/fault split); the ledger covers what the run loop itself
/// adds to `spent`, so per quantum
/// `machine charges + ledger == spent == CPU_CLK_UNHALTED delta`.
#[derive(Debug, Default, Clone, Copy)]
struct CpuLedger {
    /// TLB-miss translation cycles (page walks plus L2-lookup cost).
    walk: Cycles,
    /// Syscall entry and access-hook (EPT/nested) cycles.
    fault: Cycles,
    /// Application compute: think time, in-core accesses, spin loops.
    idle: Cycles,
}

/// The page sequence a guaranteed-L1-hit streak covers.
#[derive(Clone, Copy)]
enum StreakShape<'a> {
    /// Consecutive pages after `after` within its huge region
    /// (`TouchRange` with stride 1).
    Consecutive { after: Vpn, region_pfn: Pfn },
    /// The leading entries of a `TouchList` tail — all one base page, or
    /// all inside one huge region.
    Listed { vpns: &'a [Vpn], size: PageSize, region_pfn: Pfn },
}

impl Simulator {
    /// Boots a machine and installs a policy.
    pub fn new(config: KernelConfig, policy: Box<dyn HugePagePolicy>) -> Self {
        let next_tick = config.tick_period;
        let next_sample = config.sample_period;
        Simulator {
            machine: Machine::new(config),
            policy: Some(policy),
            next_tick,
            next_sample,
            hook: None,
        }
    }

    /// Installs (or clears) the per-touch interposer.
    pub fn set_access_hook(&mut self, hook: Option<Box<dyn AccessHook>>) {
        self.hook = hook;
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (experiment setup: fragmentation, VMAs...).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The installed policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.as_ref().map(|p| p.name().to_string()).unwrap_or_default()
    }

    /// Spawns a process running `workload`.
    pub fn spawn(&mut self, workload: Box<dyn Workload>) -> u32 {
        self.machine.spawn(workload)
    }

    /// Runs until every process finishes or `max_time` elapses. Returns
    /// the final simulated time.
    pub fn run(&mut self) -> Cycles {
        self.run_while(|_| true)
    }

    /// Runs for at most `dur` more simulated time.
    pub fn run_for(&mut self, dur: Cycles) -> Cycles {
        let deadline = self.machine.now() + dur;
        self.run_while(move |m| m.now() < deadline)
    }

    /// Runs while `keep_going(machine)` holds (checked each round), every
    /// process is not yet finished, and `max_time` has not elapsed.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&Machine) -> bool) -> Cycles {
        while keep_going(&self.machine)
            && self.machine.now() < self.machine.config().max_time
            && self.round()
        {}
        self.machine.now()
    }

    /// Executes one scheduler round. Returns false when no process is
    /// runnable.
    pub fn round(&mut self) -> bool {
        let pids = self.machine.running_pids();
        if pids.is_empty() {
            return false;
        }
        let quantum = self.machine.config().quantum;
        let mut policy = self.policy.take().expect("policy installed");
        for pid in pids {
            self.step_process(&mut *policy, pid, quantum);
        }
        self.machine.advance(quantum);
        let now = self.machine.now();
        if now >= self.next_tick {
            policy.on_tick(&mut self.machine);
            self.next_tick += self.machine.config().tick_period;
        }
        let sample_period = self.machine.config().sample_period;
        if sample_period > Cycles::ZERO && now >= self.next_sample {
            self.machine.sample_metrics();
            self.next_sample += sample_period;
        }
        self.policy = Some(policy);
        true
    }

    /// Runs one process for (up to) a quantum of its own CPU.
    fn step_process(&mut self, policy: &mut dyn HugePagePolicy, pid: u32, quantum: Cycles) {
        let base_now = self.machine.now();
        let mut spent = Cycles::ZERO;
        let mut ledger = CpuLedger::default();
        let mut finished = false;
        let mut oom = false;
        while spent < quantum {
            let cursor = {
                let p = self.machine.process_mut(pid).expect("running process");
                match p.pending.take() {
                    Some(c) => Some(c),
                    None => p.next_op().map(|op| OpCursor { op, progress: 0 }),
                }
            };
            let Some(cursor) = cursor else {
                finished = true;
                break;
            };
            match self.exec_slice(policy, pid, cursor, quantum, &mut spent, &mut ledger) {
                Ok(Some(rest)) => {
                    self.machine.process_mut(pid).expect("exists").pending = Some(rest);
                }
                Ok(None) => {}
                Err(OutOfMemory) => {
                    finished = true;
                    oom = true;
                    break;
                }
            }
        }
        {
            // Attribute the run loop's share of this quantum; the fault
            // primitives charged theirs already. Together they sum to
            // `spent`, which `record_unhalted` credits below.
            let m = self.machine.metrics();
            m.charge_cpu(Subsystem::Walk, ledger.walk);
            m.charge_cpu(Subsystem::Fault, ledger.fault);
            m.charge_cpu(Subsystem::Idle, ledger.idle);
        }
        let p = self.machine.process_mut(pid).expect("exists");
        p.charge(spent);
        self.machine.record_unhalted(pid, spent);
        if finished {
            if oom {
                self.machine.stats_oom(pid);
            }
            self.machine.exit_process(pid);
            let at = base_now + spent;
            self.machine.process_mut(pid).expect("exists").mark_finished(at, oom);
            policy.on_exit(&mut self.machine, pid);
        }
    }

    /// Executes (part of) one op; returns the remaining cursor when the
    /// quantum expires mid-op.
    fn exec_slice(
        &mut self,
        policy: &mut dyn HugePagePolicy,
        pid: u32,
        mut cursor: OpCursor,
        quantum: Cycles,
        spent: &mut Cycles,
        ledger: &mut CpuLedger,
    ) -> Result<Option<OpCursor>, OutOfMemory> {
        let syscall_cost = Cycles::from_nanos(500);
        match &cursor.op {
            MemOp::Mmap { start, pages, kind } => {
                let p = self.machine.process_mut(pid).expect("exists");
                p.space_mut().mmap(*start, *pages, *kind).expect("workload mmap is valid");
                *spent += syscall_cost;
                ledger.fault += syscall_cost;
                Ok(None)
            }
            MemOp::Munmap { start } => {
                let start = *start;
                let range = self
                    .machine
                    .process(pid)
                    .and_then(|p| p.space().find_vma(start).map(|v| (v.start(), v.pages())));
                if let Some((s, pages)) = range {
                    // The madvise cost is attributed inside the machine;
                    // only the syscall entry is the run loop's to tag.
                    *spent += self.machine.madvise_dontneed(pid, s, pages) + syscall_cost;
                    ledger.fault += syscall_cost;
                    let p = self.machine.process_mut(pid).expect("exists");
                    let _ = p.space_mut().munmap(s);
                    policy.on_release(&mut self.machine, pid, s, pages);
                }
                Ok(None)
            }
            MemOp::Madvise { start, pages } => {
                let (start, pages) = (*start, *pages);
                *spent += self.machine.madvise_dontneed(pid, start, pages) + syscall_cost;
                ledger.fault += syscall_cost;
                policy.on_release(&mut self.machine, pid, start, pages);
                Ok(None)
            }
            MemOp::Compute { cycles } => {
                let total = Cycles::new(*cycles);
                let done = Cycles::new(cursor.progress);
                let left = total.saturating_sub(done);
                let room = quantum.saturating_sub(*spent);
                if left <= room {
                    *spent += left;
                    ledger.idle += left;
                    Ok(None)
                } else {
                    *spent += room;
                    ledger.idle += room;
                    cursor.progress += room.get();
                    Ok(Some(cursor))
                }
            }
            MemOp::Touch { vpn, write, repeats, think } => {
                let (vpn, write, repeats, think) = (*vpn, *write, *repeats, *think);
                self.touch_page(policy, pid, vpn, write, repeats, think, spent, ledger)?;
                Ok(None)
            }
            MemOp::TouchRange { start, pages, write, think, stride, repeats } => {
                let (start, pages, write, think, stride, repeats) =
                    (*start, *pages, *write, *think, (*stride).max(1), (*repeats).max(1));
                let fast = self.fast_path_on() && stride == 1;
                let mut i = cursor.progress;
                while i < pages {
                    if *spent >= quantum {
                        cursor.progress = i;
                        return Ok(Some(cursor));
                    }
                    let vpn = Vpn(start.0 + i * stride);
                    let tr = self.touch_page(policy, pid, vpn, write, repeats, think, spent, ledger)?;
                    i += 1;
                    if fast && tr.size == PageSize::Huge && i < pages {
                        // The rest of this huge region is resident behind
                        // the L1 entry the touch above just used: charge
                        // the guaranteed-hit streak in closed form.
                        let max = (pages - i).min(511 - vpn.huge_offset());
                        i += self.charge_streak(
                            pid,
                            StreakShape::Consecutive { after: vpn, region_pfn: Pfn(tr.pfn.0 - vpn.huge_offset()) },
                            write,
                            repeats,
                            think,
                            max,
                            quantum,
                            spent,
                            ledger,
                        );
                    }
                }
                Ok(None)
            }
            MemOp::TouchList { vpns, write, think } => {
                let (write, think) = (*write, *think);
                let fast = self.fast_path_on();
                let mut i = cursor.progress as usize;
                while i < vpns.len() {
                    if *spent >= quantum {
                        cursor.progress = i as u64;
                        return Ok(Some(cursor));
                    }
                    let vpn = vpns[i];
                    let tr = self.touch_page(policy, pid, vpn, write, 1, think, spent, ledger)?;
                    i += 1;
                    if fast {
                        // Later list entries guaranteed to hit the same L1
                        // entry: repeats of this page, or (for a huge
                        // mapping) any page of the same region.
                        let run = vpns[i..]
                            .iter()
                            .take_while(|v| match tr.size {
                                PageSize::Huge => v.hvpn() == vpn.hvpn(),
                                PageSize::Base => **v == vpn,
                            })
                            .count() as u64;
                        if run > 0 {
                            let region_pfn = match tr.size {
                                PageSize::Huge => Pfn(tr.pfn.0 - vpn.huge_offset()),
                                PageSize::Base => tr.pfn,
                            };
                            let n = self.charge_streak(
                                pid,
                                StreakShape::Listed { vpns: &vpns[i..], size: tr.size, region_pfn },
                                write,
                                1,
                                think,
                                run,
                                quantum,
                                spent,
                                ledger,
                            );
                            i += n as usize;
                        }
                    }
                }
                Ok(None)
            }
        }
    }

    /// Whether batched streak execution applies: the fast path is on and
    /// no access hook is interposing (hooks must see every touch).
    fn fast_path_on(&self) -> bool {
        self.machine.config().fast_path && self.hook.is_none()
    }

    /// Charges up to `max` touches that are each guaranteed to hit the L1
    /// TLB on the entry used by the touch just executed, without walking
    /// the per-access model. Returns how many touches were charged (0
    /// falls the caller back to per-access execution).
    ///
    /// Exactness argument, piece by piece against what `max` per-access
    /// iterations would do:
    /// * *page table*: every page in the streak is mapped by the entry the
    ///   preceding touch translated through, whose accessed bit (and dirty
    ///   bit, for writes) that touch already set — the per-access
    ///   `AddressSpace::access` calls would be state no-ops, and cannot
    ///   fault (a huge mapping covers its region; a resolved base page
    ///   stays resolved; COW writes never enter a streak because the
    ///   leading touch replaced the zero-COW mapping).
    /// * *TLB/PMU*: `Mmu::record_l1_hits` advances the LRU clock and hit
    ///   counters exactly as `n` hitting lookups would, and refuses
    ///   (returning 0 here) if the entry is somehow not resident.
    /// * *cycles*: an L1 hit's `AccessOutcome` charges zero, so each touch
    ///   costs exactly `(access + think) × repeats`.
    /// * *quantum*: the per-access loop stops before the first touch at
    ///   which `spent ≥ quantum`; with per-touch cost `c`, that is
    ///   `⌈(quantum − spent)/c⌉` more touches (all of them when `c = 0`).
    /// * *content*: `dirt_offset()` is drawn once per write touch in op
    ///   order (it advances the workload's RNG), and each touched frame
    ///   gets its sample; no observer runs mid-streak (policy ticks only
    ///   happen between rounds, and hooks disable batching).
    #[allow(clippy::too_many_arguments)]
    fn charge_streak(
        &mut self,
        pid: u32,
        shape: StreakShape<'_>,
        write: bool,
        repeats: u32,
        think: u32,
        max: u64,
        quantum: Cycles,
        spent: &mut Cycles,
        ledger: &mut CpuLedger,
    ) -> u64 {
        if max == 0 {
            return 0;
        }
        let access_cost = self.machine.config().costs.access;
        let c_touch = (access_cost + Cycles::new(think as u64)) * repeats as u64;
        let n = if c_touch > Cycles::ZERO {
            let room = quantum.saturating_sub(*spent);
            if room == Cycles::ZERO {
                return 0;
            }
            max.min(room.get().div_ceil(c_touch.get()))
        } else {
            max
        };
        let (probe_vpn, size) = match shape {
            StreakShape::Consecutive { after, .. } => (Vpn(after.0 + 1), PageSize::Huge),
            StreakShape::Listed { vpns, size, .. } => (vpns[0], size),
        };
        if !self.machine.mmu_mut().record_l1_hits(pid, probe_vpn, size, n) {
            return 0;
        }
        *spent += c_touch * n;
        ledger.idle += c_touch * n;
        if write {
            // One dirt draw per touch, in op order, then apply to frames;
            // the draw is separated from the application only to keep the
            // process borrow out of the inner loop.
            let p = self.machine.process_mut(pid).expect("exists");
            let dirts: Vec<u16> = (0..n).map(|_| p.dirt_offset()).collect();
            let pm = self.machine.pm_mut();
            for (j, dirt) in dirts.into_iter().enumerate() {
                let pfn = match shape {
                    StreakShape::Consecutive { after, region_pfn } => {
                        Pfn(region_pfn.0 + Vpn(after.0 + 1 + j as u64).huge_offset())
                    }
                    StreakShape::Listed { vpns, size, region_pfn } => match size {
                        PageSize::Huge => Pfn(region_pfn.0 + vpns[j].huge_offset()),
                        PageSize::Base => region_pfn,
                    },
                };
                pm.frame_mut(pfn).set_content(hawkeye_mem::PageContent::non_zero(dirt));
            }
        }
        let st = self.machine.process_mut(pid).expect("exists").stats_mut();
        st.touches += n;
        st.accesses += repeats as u64 * n;
        n
    }

    /// One page touch: translation (with TLB timing), fault handling via
    /// the policy, content dirtying, and repeat accesses. Costs accumulate
    /// directly into `spent` (and their attribution into `ledger`), so
    /// fault work done before a mid-touch OOM stays counted in the
    /// quantum — matching the registry charges the fault primitives
    /// already made. Returns the translation the touch resolved to (streak
    /// batching uses it to extend over the rest of a huge region).
    ///
    /// # Fault accounting
    ///
    /// Every trip around the fault loop — a missing mapping resolved by
    /// the policy *or* a write hitting a zero-COW page — charges one
    /// `ProcStats::faults` and its handler cost to
    /// `ProcStats::fault_cycles`. COW resolutions are additionally
    /// counted in `ProcStats::cow_faults`, so COW faults are a *subset*
    /// of `faults`, not a separate pool. A touch
    /// can legitimately fault twice (unmapped, then the policy maps the
    /// region zero-COW and a write must immediately COW), which is why
    /// the loop guard allows a few iterations.
    #[allow(clippy::too_many_arguments)]
    fn touch_page(
        &mut self,
        policy: &mut dyn HugePagePolicy,
        pid: u32,
        vpn: Vpn,
        write: bool,
        repeats: u32,
        think: u32,
        spent: &mut Cycles,
        ledger: &mut CpuLedger,
    ) -> Result<hawkeye_vm::Translation, OutOfMemory> {
        let repeats = repeats.max(1);
        let access_cost = self.machine.config().costs.access;
        let mut guard = 0;
        let translation = loop {
            let tr = {
                let p = self.machine.process_mut(pid).expect("running process");
                p.space_mut().access(vpn, write)
            };
            if let Some(t) = tr {
                break t;
            }
            guard += 1;
            assert!(guard <= 3, "fault loop did not converge at {vpn}");
            // Distinguish zero-COW writes from missing mappings.
            let zero_cow = self
                .machine
                .process(pid)
                .and_then(|p| p.space().translate(vpn))
                .map(|t| t.zero_cow)
                .unwrap_or(false);
            let (fault_cost, huge) = if write && zero_cow {
                (self.machine.cow_fault(pid, vpn)?, false)
            } else {
                let action = policy.on_fault(&mut self.machine, pid, vpn);
                self.apply_fault_action(pid, vpn, action)?
            };
            *spent += fault_cost;
            let p = self.machine.process_mut(pid).expect("exists");
            let st = p.stats_mut();
            st.faults += 1;
            st.fault_cycles += fault_cost;
            self.machine.metrics().observe("fault_cycles", fault_cost.get());
            self.machine.trace().emit(
                pid,
                TraceEvent::Fault {
                    vpn: vpn.0,
                    huge,
                    cow: write && zero_cow,
                    cycles: fault_cost.get(),
                },
            );
        };
        let out = self.machine.mmu_mut().access(pid, vpn, translation.size, write);
        let compute = (access_cost + Cycles::new(think as u64)) * repeats as u64;
        *spent += out.cycles + compute;
        ledger.walk += out.cycles;
        ledger.idle += compute;
        if let Some(hook) = self.hook.as_mut() {
            let hook_cost =
                hook.on_touch(pid, vpn, translation.pfn, translation.size, write, out.walk_cycles);
            *spent += hook_cost;
            ledger.fault += hook_cost;
        }
        if write && !translation.zero_cow {
            let dirt = self.machine.process_mut(pid).expect("exists").dirt_offset();
            self.machine
                .pm_mut()
                .frame_mut(translation.pfn)
                .set_content(hawkeye_mem::PageContent::non_zero(dirt));
        }
        let p = self.machine.process_mut(pid).expect("exists");
        let st = p.stats_mut();
        st.touches += 1;
        st.accesses += repeats as u64;
        Ok(translation)
    }

    /// Returns the fault cost and whether the fault was served huge.
    fn apply_fault_action(
        &mut self,
        pid: u32,
        vpn: Vpn,
        action: FaultAction,
    ) -> Result<(Cycles, bool), OutOfMemory> {
        match action {
            FaultAction::MapBase => Ok((self.machine.fault_map_base(pid, vpn)?, false)),
            FaultAction::MapHuge => {
                let (cost, huge) = self.machine.fault_map_huge(pid, vpn)?;
                if huge {
                    let p = self.machine.process_mut(pid).expect("exists");
                    p.stats_mut().huge_faults += 1;
                }
                Ok((cost, huge))
            }
            FaultAction::MapBaseAt(pfn) => {
                Ok((self.machine.fault_map_base_at(pid, vpn, pfn), false))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BasePagesOnly;
    use crate::workload::script;
    use hawkeye_vm::VmaKind;

    /// A policy that always tries huge faults (Linux-2MB with THP=always).
    struct AlwaysHuge;
    impl HugePagePolicy for AlwaysHuge {
        fn name(&self) -> &str {
            "always-huge"
        }
        fn on_fault(&mut self, _m: &mut Machine, _pid: u32, _vpn: Vpn) -> FaultAction {
            FaultAction::MapHuge
        }
    }

    fn touch_workload(pages: u64, write: bool) -> Box<dyn Workload> {
        script(
            "touch",
            vec![
                MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages, write, think: 100, stride: 1 , repeats: 1},
            ],
        )
    }

    /// Compile-time check: simulations must be movable to worker threads
    /// (the bench scenario engine fans independent runs across cores).
    #[allow(dead_code)]
    fn assert_send<T: Send>() {}

    #[test]
    fn simulator_is_send() {
        assert_send::<Simulator>();
        assert_send::<Machine>();
        assert_send::<Box<dyn HugePagePolicy>>();
        assert_send::<Box<dyn Workload>>();
        assert_send::<Box<dyn AccessHook>>();
    }

    #[test]
    fn base_policy_faults_once_per_page() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(touch_workload(2048, true));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished());
        assert!(!p.is_oom());
        assert_eq!(p.stats().faults, 2048);
        assert_eq!(p.stats().huge_faults, 0);
        assert_eq!(p.stats().touches, 2048);
        // Memory was freed at exit.
        assert_eq!(sim.machine().pm().allocated_pages(), 1);
    }

    #[test]
    fn huge_policy_reduces_faults_512x() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(AlwaysHuge));
        let pid = sim.spawn(touch_workload(2048, true));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().faults, 4, "one fault per 2 MB region");
        assert_eq!(p.stats().huge_faults, 4);
    }

    #[test]
    fn huge_faults_faster_overall_for_spatial_workloads() {
        // Table 1's core claim, in miniature: despite higher per-fault
        // latency, huge faults win on total time for sequential touch.
        let mut sim_base = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid_b = sim_base.spawn(touch_workload(16 * 512, true));
        sim_base.run();
        let mut sim_huge = Simulator::new(KernelConfig::small(), Box::new(AlwaysHuge));
        let pid_h = sim_huge.spawn(touch_workload(16 * 512, true));
        sim_huge.run();
        let tb = sim_base.machine().process(pid_b).unwrap().cpu_time();
        let th = sim_huge.machine().process(pid_h).unwrap().cpu_time();
        assert!(
            th.get() * 2 < tb.get(),
            "huge {th} should beat base {tb} by >2x (sync zeroing dominates either way)"
        );
    }

    #[test]
    fn time_advances_by_quanta_and_finish_time_recorded() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(touch_workload(64, false));
        let end = sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.finish_time().unwrap() <= end);
        assert!(p.cpu_time() > Cycles::ZERO);
    }

    #[test]
    fn oom_is_detected_and_marked() {
        let mut cfg = KernelConfig::small();
        cfg.frames = 1024; // 4 MiB machine
        let mut sim = Simulator::new(cfg, Box::new(BasePagesOnly));
        let pid = sim.spawn(touch_workload(4096, true)); // wants 16 MiB
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished());
        assert!(p.is_oom());
        assert_eq!(sim.machine().stats().oom_events, 1);
    }

    #[test]
    fn madvise_then_retouch_faults_again() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(script(
            "cycle",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 128, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 128, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Madvise { start: Vpn(0), pages: 128 },
                MemOp::TouchRange { start: Vpn(0), pages: 128, write: true, think: 0, stride: 1 , repeats: 1},
            ],
        ));
        sim.run();
        assert_eq!(sim.machine().process(pid).unwrap().stats().faults, 256);
    }

    #[test]
    fn run_for_respects_duration() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        // Endless compute workload.
        let _pid = sim.spawn(script(
            "spin",
            vec![MemOp::Compute { cycles: u64::MAX / 2 }],
        ));
        let t = sim.run_for(Cycles::from_millis(50));
        assert!(t >= Cycles::from_millis(50));
        assert!(t < Cycles::from_millis(60));
    }

    #[test]
    fn repeats_amortize_tlb_cost() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(script(
            "hot",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 1, kind: VmaKind::Anon },
                MemOp::Touch { vpn: Vpn(0), write: true, repeats: 1000, think: 10 },
            ],
        ));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().touches, 1);
        assert_eq!(p.stats().accesses, 1000);
        assert_eq!(p.stats().faults, 1);
    }

    #[test]
    fn registry_breakdown_sums_to_unhalted() {
        use hawkeye_metrics::registry;
        // Both fault shapes (read faults hit the zero page, write faults
        // allocate + zero): the CPU ledger must attribute every unhalted
        // cycle either way, and the daemon ledger must match the kernel's
        // own daemon_cycles stat.
        for write in [false, true] {
            registry::scope::begin();
            let mut sim = Simulator::new(KernelConfig::small(), Box::new(AlwaysHuge));
            sim.spawn(touch_workload(2048, write));
            sim.run();
            let stats = sim.machine().stats();
            let reg = registry::scope::end().expect("registry");
            let m = reg.machine(0).expect("machine attached to scope");
            assert!(m.unhalted() > 0, "write={write}: no unhalted cycles recorded");
            assert_eq!(
                m.residue(),
                0,
                "write={write}: sum of cycles.cpu.* must equal CPU_CLK_UNHALTED"
            );
            assert_eq!(
                m.daemon_total(),
                stats.daemon_cycles.get(),
                "write={write}: daemon ledger must match stats.daemon_cycles"
            );
            assert!(m.cpu_cycles(Subsystem::Walk) > 0, "write={write}: walks charged");
            assert!(m.cpu_cycles(Subsystem::Fault) > 0, "write={write}: faults charged");
            assert!(m.cpu_cycles(Subsystem::Idle) > 0, "write={write}: compute charged");
        }
    }
}
