//! The simulated operating-system kernel.
//!
//! This crate glues the substrates together into a runnable machine:
//!
//! * [`Machine`] — physical memory + MMU + processes + the canonical zero
//!   page, exposing the primitives every huge-page policy is built from:
//!   fault-time allocation, promotion (collapse), demotion (split),
//!   zero-page de-duplication, compaction, file-cache reclaim, and the
//!   async pre-zeroing step.
//! * [`HugePagePolicy`] — the plug-in interface. The `policies` crate
//!   implements Linux THP, FreeBSD reservations and Ingens; the `core`
//!   crate implements HawkEye-G and HawkEye-PMU.
//! * [`Simulator`] — the run loop: round-robin process execution in
//!   parallel-core quanta, periodic policy ticks (daemon work), metric
//!   sampling, and completion/OOM tracking.
//! * [`Workload`] / [`MemOp`] — the interface workload generators drive.
//!
//! # Examples
//!
//! ```
//! use hawkeye_kernel::{KernelConfig, Simulator, BasePagesOnly, workload::script};
//! use hawkeye_vm::{Vpn, VmaKind};
//! use hawkeye_kernel::MemOp;
//!
//! let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
//! let w = script("touch-1mb", vec![
//!     MemOp::Mmap { start: Vpn(0), pages: 256, kind: VmaKind::Anon },
//!     MemOp::TouchRange { start: Vpn(0), pages: 256, write: true, think: 100, stride: 1 , repeats: 1},
//! ]);
//! let pid = sim.spawn(w);
//! sim.run();
//! assert!(sim.machine().process(pid).unwrap().is_finished());
//! ```

pub mod config;
pub mod core_stats;
pub mod machine;
pub mod multicore;
pub mod policy;
pub mod process;
pub use hawkeye_mem::rng;
pub mod sched_stats;
pub mod sim;
pub mod stats;
pub mod workload;

pub use config::{CostModel, KernelConfig};
pub use machine::{DedupOutcome, Machine, PromoteError, Promoted};
pub use policy::{BasePagesOnly, FaultAction, HugePagePolicy, Steering};
pub use process::{ProcStats, Process};
pub use sim::{AccessHook, Simulator};
pub use stats::KernelStats;
pub use workload::{MemOp, Workload};
