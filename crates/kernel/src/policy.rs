//! The huge-page policy plug-in interface.
//!
//! A policy decides (1) what to map on a page fault and (2) what background
//! work to do each tick — promotion scanning (khugepaged), compaction,
//! async pre-zeroing, bloat recovery, reservations. The `policies` crate
//! implements the paper's baselines (Linux, FreeBSD, Ingens) and the
//! `core` crate implements HawkEye against this interface.

use crate::machine::Machine;
use hawkeye_mem::Pfn;
use hawkeye_vm::Vpn;

/// How to satisfy a page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Allocate and map a single base page.
    MapBase,
    /// Try to allocate and map a huge page over the faulting region,
    /// falling back to a base page when impossible (Linux THP fault path).
    MapHuge,
    /// Map this specific, policy-reserved frame (FreeBSD reservations).
    MapBaseAt(Pfn),
}

/// A transparent-huge-page management policy.
///
/// Methods receive the whole [`Machine`], mirroring how these algorithms
/// live inside the kernel with access to every subsystem.
///
/// `Send` is a supertrait so a boxed policy (and therefore the whole
/// [`crate::Simulator`]) can move to a worker thread: the bench scenario
/// engine runs independent simulations on separate cores.
pub trait HugePagePolicy: Send {
    /// Policy name (used in tables: "Linux-2MB", "Ingens-90%", ...).
    fn name(&self) -> &str;

    /// Decides how to satisfy a fault by `pid` at `vpn`.
    fn on_fault(&mut self, m: &mut Machine, pid: u32, vpn: Vpn) -> FaultAction;

    /// Periodic background work (called every
    /// [`crate::KernelConfig::tick_period`]).
    fn on_tick(&mut self, _m: &mut Machine) {}

    /// Notification that `pid` released `[start, start+pages)` via
    /// `madvise`/`munmap` (reservation-based policies care).
    fn on_release(&mut self, _m: &mut Machine, _pid: u32, _start: Vpn, _pages: u64) {}

    /// Notification that a process exited.
    fn on_exit(&mut self, _m: &mut Machine, _pid: u32) {}
}

/// The no-THP baseline ("Linux-4KB" in the paper's tables): every fault
/// maps a base page; no background work.
///
/// # Examples
///
/// ```
/// use hawkeye_kernel::{BasePagesOnly, HugePagePolicy};
///
/// assert_eq!(BasePagesOnly.name(), "Linux-4KB");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BasePagesOnly;

impl HugePagePolicy for BasePagesOnly {
    fn name(&self) -> &str {
        "Linux-4KB"
    }

    fn on_fault(&mut self, _m: &mut Machine, _pid: u32, _vpn: Vpn) -> FaultAction {
        FaultAction::MapBase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;

    #[test]
    fn base_pages_only_always_maps_base() {
        let mut m = Machine::new(KernelConfig::small());
        let mut p = BasePagesOnly;
        assert_eq!(p.on_fault(&mut m, 1, Vpn(0)), FaultAction::MapBase);
        // Default hooks are no-ops.
        p.on_tick(&mut m);
        p.on_release(&mut m, 1, Vpn(0), 10);
        p.on_exit(&mut m, 1);
    }
}
