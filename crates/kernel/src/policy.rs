//! The huge-page policy plug-in interface.
//!
//! A policy decides (1) what to map on a page fault and (2) what background
//! work to do each tick — promotion scanning (khugepaged), compaction,
//! async pre-zeroing, bloat recovery, reservations. The `policies` crate
//! implements the paper's baselines (Linux, FreeBSD, Ingens) and the
//! `core` crate implements HawkEye against this interface.

use crate::machine::Machine;
use hawkeye_mem::Pfn;
use hawkeye_vm::Vpn;

/// How to satisfy a page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Allocate and map a single base page.
    MapBase,
    /// Try to allocate and map a huge page over the faulting region,
    /// falling back to a base page when impossible (Linux THP fault path).
    MapHuge,
    /// Map this specific, policy-reserved frame (FreeBSD reservations).
    MapBaseAt(Pfn),
}

/// A steering decision from an external controller (the fleet layer's
/// userspace hook API, mirroring eBPF-mm): knobs a policy may honor on
/// its next ticks. Applied at quantum boundaries via
/// [`crate::Simulator::steer`], never mid-fault, so a steered run stays
/// deterministic for a given decision sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Steering {
    /// Scale factor on promotion spending, `0.0 ..= 1.0`: `1.0` leaves the
    /// policy's own khugepaged budget untouched, `0.0` pauses promotion.
    pub promotion_throttle: f64,
    /// Hard cap on promotions per policy tick (`None` = policy default).
    pub khugepaged_budget: Option<u64>,
    /// Extra demotion/bloat-recovery urgency, `0.0 ..= 1.0`: `> 0.0` asks
    /// the policy to run recovery scans even below its own watermarks.
    pub demotion_pressure: f64,
}

impl Default for Steering {
    fn default() -> Self {
        Steering { promotion_throttle: 1.0, khugepaged_budget: None, demotion_pressure: 0.0 }
    }
}

/// A transparent-huge-page management policy.
///
/// Methods receive the whole [`Machine`], mirroring how these algorithms
/// live inside the kernel with access to every subsystem.
///
/// `Send` is a supertrait so a boxed policy (and therefore the whole
/// [`crate::Simulator`]) can move to a worker thread: the bench scenario
/// engine runs independent simulations on separate cores.
pub trait HugePagePolicy: Send {
    /// Policy name (used in tables: "Linux-2MB", "Ingens-90%", ...).
    fn name(&self) -> &str;

    /// Decides how to satisfy a fault by `pid` at `vpn`.
    fn on_fault(&mut self, m: &mut Machine, pid: u32, vpn: Vpn) -> FaultAction;

    /// Periodic background work (called every
    /// [`crate::KernelConfig::tick_period`]).
    fn on_tick(&mut self, _m: &mut Machine) {}

    /// Notification that `pid` released `[start, start+pages)` via
    /// `madvise`/`munmap` (reservation-based policies care).
    fn on_release(&mut self, _m: &mut Machine, _pid: u32, _start: Vpn, _pages: u64) {}

    /// Notification that a process exited.
    fn on_exit(&mut self, _m: &mut Machine, _pid: u32) {}

    /// An external controller steered this policy (fleet hook API).
    /// Policies that expose no such knobs ignore it — the default keeps
    /// every baseline bit-identical whether or not a fleet hook runs.
    fn on_steer(&mut self, _m: &mut Machine, _s: &Steering) {}
}

/// The no-THP baseline ("Linux-4KB" in the paper's tables): every fault
/// maps a base page; no background work.
///
/// # Examples
///
/// ```
/// use hawkeye_kernel::{BasePagesOnly, HugePagePolicy};
///
/// assert_eq!(BasePagesOnly.name(), "Linux-4KB");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BasePagesOnly;

impl HugePagePolicy for BasePagesOnly {
    fn name(&self) -> &str {
        "Linux-4KB"
    }

    fn on_fault(&mut self, _m: &mut Machine, _pid: u32, _vpn: Vpn) -> FaultAction {
        FaultAction::MapBase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;

    #[test]
    fn base_pages_only_always_maps_base() {
        let mut m = Machine::new(KernelConfig::small());
        let mut p = BasePagesOnly;
        assert_eq!(p.on_fault(&mut m, 1, Vpn(0)), FaultAction::MapBase);
        // Default hooks are no-ops.
        p.on_tick(&mut m);
        p.on_release(&mut m, 1, Vpn(0), 10);
        p.on_exit(&mut m, 1);
        p.on_steer(&mut m, &Steering::default());
    }

    #[test]
    fn default_steering_is_hands_off() {
        let s = Steering::default();
        assert_eq!(s.promotion_throttle, 1.0);
        assert_eq!(s.khugepaged_budget, None);
        assert_eq!(s.demotion_pressure, 0.0);
    }
}
