//! Simulated processes.

use crate::workload::{MemOp, Workload};
use hawkeye_metrics::Cycles;
use hawkeye_vm::AddressSpace;

/// Per-process statistics (the rows of the paper's Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProcStats {
    /// Page faults taken (both sizes). Every trip through the fault loop
    /// counts: a write that lands on a zero-COW mapping is a fault like
    /// any other, so `cow_faults` (and `huge_faults`) are subsets of this
    /// total — a single touch can contribute two faults when the policy
    /// maps a region zero-COW and the write must immediately break it.
    pub faults: u64,
    /// Huge-page faults among them.
    pub huge_faults: u64,
    /// Copy-on-write faults among them (zero-page de-dup write-backs).
    pub cow_faults: u64,
    /// Total cycles spent inside the fault handler.
    pub fault_cycles: Cycles,
    /// Page touches executed.
    pub touches: u64,
    /// Memory accesses (touches × repeats).
    pub accesses: u64,
}

/// Execution state of one simulated process.
///
/// Processes run on their own core: each scheduler round grants a quantum,
/// and the process's [`Process::cpu_time`] tracks consumed cycles (equal to
/// wall-clock sim time while the process is runnable).
pub struct Process {
    pid: u32,
    name: String,
    space: AddressSpace,
    workload: Box<dyn Workload>,
    pub(crate) pending: Option<OpCursor>,
    cpu_time: Cycles,
    finished: bool,
    finish_time: Option<Cycles>,
    oom: bool,
    stats: ProcStats,
}

/// Partial progress through a sliced operation.
#[derive(Debug, Clone)]
pub(crate) struct OpCursor {
    pub(crate) op: MemOp,
    pub(crate) progress: u64,
}

impl Process {
    pub(crate) fn new(pid: u32, workload: Box<dyn Workload>) -> Self {
        Process {
            pid,
            name: workload.name().to_string(),
            space: AddressSpace::new(),
            workload,
            pending: None,
            cpu_time: Cycles::ZERO,
            finished: false,
            finish_time: None,
            oom: false,
            stats: ProcStats::default(),
        }
    }

    /// Process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process's address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable address space (used by the machine and policies).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// CPU time consumed so far.
    pub fn cpu_time(&self) -> Cycles {
        self.cpu_time
    }

    pub(crate) fn charge(&mut self, c: Cycles) {
        self.cpu_time += c;
    }

    /// Whether the workload has completed (or hit OOM).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Wall-clock simulated instant of completion.
    pub fn finish_time(&self) -> Option<Cycles> {
        self.finish_time
    }

    /// Whether the process died of an out-of-memory condition.
    pub fn is_oom(&self) -> bool {
        self.oom
    }

    pub(crate) fn mark_finished(&mut self, at: Cycles, oom: bool) {
        self.finished = true;
        self.finish_time = Some(at);
        self.oom = oom;
    }

    /// Per-process statistics.
    pub fn stats(&self) -> ProcStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ProcStats {
        &mut self.stats
    }

    pub(crate) fn next_op(&mut self) -> Option<MemOp> {
        self.workload.next_op()
    }

    pub(crate) fn dirt_offset(&mut self) -> u16 {
        self.workload.dirt_offset()
    }
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("cpu_time", &self.cpu_time)
            .field("finished", &self.finished)
            .field("oom", &self.oom)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::script;

    #[test]
    fn lifecycle() {
        let mut p = Process::new(7, script("w", vec![]));
        assert_eq!(p.pid(), 7);
        assert_eq!(p.name(), "w");
        assert!(!p.is_finished());
        p.charge(Cycles::new(100));
        assert_eq!(p.cpu_time().get(), 100);
        p.mark_finished(Cycles::new(500), false);
        assert!(p.is_finished());
        assert!(!p.is_oom());
        assert_eq!(p.finish_time(), Some(Cycles::new(500)));
        assert!(format!("{p:?}").contains("pid"));
    }

    #[test]
    fn oom_marking() {
        let mut p = Process::new(1, script("w", vec![]));
        p.mark_finished(Cycles::new(1), true);
        assert!(p.is_oom());
    }
}
