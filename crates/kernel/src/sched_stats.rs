//! Process-wide event-skip scheduler counters.
//!
//! The run loop tracks, per [`crate::Simulator`], how many scheduler
//! quanta elapsed and how many of those were charged in closed form by
//! the event-skip scheduler instead of executed. Simulators flush their
//! local counters here when a run call returns, so harnesses (the bench
//! suite's wall-clock artifacts, the CI skip-efficiency gate) can read
//! machine-independent totals without threading handles through every
//! layer.
//!
//! The counters are host-side instrumentation only: they are never part
//! of deterministic simulation output (reports, traces, metric
//! registries) — skipping changes *how* quanta are charged, not what any
//! simulated observable reads.

use std::sync::atomic::{AtomicU64, Ordering};

static QUANTA_TOTAL: AtomicU64 = AtomicU64::new(0);
static QUANTA_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Adds one run call's quanta to the process-wide totals.
pub(crate) fn flush(total: u64, skipped: u64) {
    if total > 0 {
        QUANTA_TOTAL.fetch_add(total, Ordering::Relaxed);
    }
    if skipped > 0 {
        QUANTA_SKIPPED.fetch_add(skipped, Ordering::Relaxed);
    }
}

/// `(quanta_total, quanta_skipped)` accumulated by every simulator run
/// in this process since start (or the last [`reset`]).
pub fn snapshot() -> (u64, u64) {
    (QUANTA_TOTAL.load(Ordering::Relaxed), QUANTA_SKIPPED.load(Ordering::Relaxed))
}

/// Zeroes the totals (benchmark harnesses isolate per-target windows).
pub fn reset() {
    QUANTA_TOTAL.store(0, Ordering::Relaxed);
    QUANTA_SKIPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_accumulates_and_reset_zeroes() {
        // Other tests in the process may flush concurrently; assert on
        // deltas of a private baseline rather than absolute values.
        let (t0, s0) = snapshot();
        flush(10, 7);
        let (t1, s1) = snapshot();
        assert!(t1 >= t0 + 10);
        assert!(s1 >= s0 + 7);
        reset();
        // After reset the totals restart from zero (possibly plus
        // concurrent flushes, which only add).
        let (t2, _) = snapshot();
        assert!(t2 < t1);
    }
}
