//! The workload interface: a stream of memory operations.
//!
//! Workload generators (the `workloads` crate) implement [`Workload`] and
//! emit [`MemOp`]s; the simulator executes them, taking page faults and
//! charging simulated time. Range and list operations keep per-op overhead
//! low — a workload can describe millions of page touches in a handful of
//! ops, and the simulator slices them against scheduler quanta.

use hawkeye_vm::{VmaKind, Vpn};

/// One memory operation emitted by a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOp {
    /// Create an anonymous or file-backed area.
    Mmap {
        /// First page of the area.
        start: Vpn,
        /// Length in base pages.
        pages: u64,
        /// Anonymous or file-backed.
        kind: VmaKind,
    },
    /// Remove the area starting at `start`, releasing its memory.
    Munmap {
        /// Area start (must match the `Mmap`).
        start: Vpn,
    },
    /// `madvise(MADV_DONTNEED)` on a range: release mappings, keep the VMA.
    Madvise {
        /// First page of the range.
        start: Vpn,
        /// Length in base pages.
        pages: u64,
    },
    /// Touch a single page `repeats` times (first access may fault; the
    /// rest model intra-page locality as TLB hits).
    Touch {
        /// Page to touch.
        vpn: Vpn,
        /// Whether the touches are writes (dirtying the page).
        write: bool,
        /// Accesses to this page (≥ 1).
        repeats: u32,
        /// Compute cycles charged per access (application "think time").
        think: u32,
    },
    /// Touch `pages` pages starting at `start` with the given stride,
    /// `repeats` accesses each.
    TouchRange {
        /// First page.
        start: Vpn,
        /// Number of pages touched.
        pages: u64,
        /// Whether the touches are writes.
        write: bool,
        /// Compute cycles charged per access.
        think: u32,
        /// Distance between consecutive touched pages (≥ 1).
        stride: u64,
        /// Accesses per touched page (intra-page locality; ≥ 1).
        repeats: u32,
    },
    /// Touch an explicit list of pages once each (random patterns).
    TouchList {
        /// Pages to touch, in order.
        vpns: Vec<Vpn>,
        /// Whether the touches are writes.
        write: bool,
        /// Compute cycles charged per access.
        think: u32,
    },
    /// Pure computation.
    Compute {
        /// Cycles of CPU work.
        cycles: u64,
    },
}

impl MemOp {
    /// Convenience: a single-access read touch with no think time.
    pub fn read(vpn: Vpn) -> Self {
        MemOp::Touch { vpn, write: false, repeats: 1, think: 0 }
    }

    /// Convenience: a single-access write touch with no think time.
    pub fn write(vpn: Vpn) -> Self {
        MemOp::Touch { vpn, write: true, repeats: 1, think: 0 }
    }
}

/// A generator of memory operations, driven by the simulator.
///
/// `Send` is a supertrait: workloads are plain state machines owned by
/// one process, and the bench scenario engine moves whole simulations
/// (including their spawned workloads) onto worker threads.
pub trait Workload: Send {
    /// Short human-readable name (used in series names and tables).
    fn name(&self) -> &str;

    /// Produces the next operation, or `None` when the workload is done.
    fn next_op(&mut self) -> Option<MemOp>;

    /// First-non-zero-byte offset for pages this workload dirties (the
    /// Fig. 3 content model; the measured cross-workload average is 9.11,
    /// hence the default of 9).
    fn dirt_offset(&mut self) -> u16 {
        9
    }
}

/// A scripted workload replaying a fixed list of operations.
///
/// # Examples
///
/// ```
/// use hawkeye_kernel::workload::{script, Workload};
/// use hawkeye_kernel::MemOp;
/// use hawkeye_vm::Vpn;
///
/// let mut w = script("demo", vec![MemOp::read(Vpn(1))]);
/// assert_eq!(w.name(), "demo");
/// assert!(w.next_op().is_some());
/// assert!(w.next_op().is_none());
/// ```
pub fn script(name: impl Into<String>, ops: Vec<MemOp>) -> Box<dyn Workload> {
    Box::new(Script { name: name.into(), ops: ops.into_iter().collect() })
}

#[derive(Debug)]
struct Script {
    name: String,
    ops: std::collections::VecDeque<MemOp>,
}

impl Workload for Script {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> Option<MemOp> {
        self.ops.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_replays_in_order() {
        let mut w = script("s", vec![MemOp::read(Vpn(1)), MemOp::write(Vpn(2))]);
        assert_eq!(w.next_op(), Some(MemOp::Touch { vpn: Vpn(1), write: false, repeats: 1, think: 0 }));
        assert_eq!(w.next_op(), Some(MemOp::Touch { vpn: Vpn(2), write: true, repeats: 1, think: 0 }));
        assert_eq!(w.next_op(), None);
        assert_eq!(w.next_op(), None, "stays exhausted");
    }

    #[test]
    fn default_dirt_offset_matches_fig3_average() {
        let mut w = script("s", vec![]);
        assert_eq!(w.dirt_offset(), 9);
    }
}
