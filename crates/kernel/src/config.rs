//! Kernel configuration and the page-fault cost model.

use hawkeye_metrics::Cycles;
use hawkeye_tlb::TlbConfig;

/// Fault-path and daemon cost parameters, calibrated against §2.2 of the
/// paper (measured on the same Haswell generation):
///
/// * a 4 KB fault costs ≈ 3.5 µs of which ≈ 25 % is zeroing, so the
///   handler is ≈ 2.65 µs and the zeroing ≈ 0.85 µs;
/// * a 2 MB fault with a pre-zeroed frame costs ≈ 13 µs, while zeroing a
///   2 MB frame costs 512 × the base-page zeroing (≈ 450 µs — 97 % of the
///   465 µs synchronous huge fault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// 4 KB fault handler, excluding zeroing.
    pub fault_base_4k: Cycles,
    /// 2 MB fault handler, excluding zeroing.
    pub fault_base_2m: Cycles,
    /// Zero-filling one 4 KB page.
    pub zero_4k: Cycles,
    /// Copying one 4 KB page (promotion collapse, migration).
    pub copy_4k: Cycles,
    /// Zero-scan cost per byte examined (bloat recovery).
    pub scan_byte: f64,
    /// Fixed cost of any memory access that hits the L1 TLB (models the
    /// data-side work of the reference itself).
    pub access: Cycles,
    /// Handling a copy-on-write fault (on top of `fault_base_4k`).
    pub cow_extra: Cycles,
    /// Reclaiming one file-cache page.
    pub reclaim_4k: Cycles,
}

impl CostModel {
    /// Costs matching the paper's measurements.
    pub fn paper() -> Self {
        CostModel {
            fault_base_4k: Cycles::from_nanos(2_650),
            fault_base_2m: Cycles::from_nanos(13_000),
            zero_4k: Cycles::from_nanos(880),
            copy_4k: Cycles::from_nanos(650),
            scan_byte: 0.25,
            access: Cycles::new(4),
            cow_extra: Cycles::from_nanos(800),
            reclaim_4k: Cycles::from_nanos(400),
        }
    }

    /// Zero-filling a 2 MB frame (512 base pages).
    pub fn zero_2m(&self) -> Cycles {
        self.zero_4k * 512
    }

    /// Zero-scan cost for `bytes` examined.
    pub fn scan(&self, bytes: u64) -> Cycles {
        Cycles::new((bytes as f64 * self.scan_byte) as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Top-level simulator configuration.
///
/// # Examples
///
/// ```
/// use hawkeye_kernel::KernelConfig;
///
/// let cfg = KernelConfig::small();
/// assert!(cfg.frames >= 1024);
/// ```
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Physical memory size in 4 KB frames.
    pub frames: u64,
    /// TLB/MMU geometry.
    pub tlb: TlbConfig,
    /// Run with nested (two-dimensional) page walks.
    pub nested: bool,
    /// Buddy-allocator cross-zero-ness merging (see
    /// [`hawkeye_mem::PhysMemory::with_cross_merge`]). Baselines that do
    /// not maintain a zero pool should set this true.
    pub cross_merge: bool,
    /// Per-round execution quantum for each runnable process.
    pub quantum: Cycles,
    /// Period between policy ticks (daemon scheduling granularity).
    pub tick_period: Cycles,
    /// Period between metric samples (0 disables sampling).
    pub sample_period: Cycles,
    /// Hard stop for [`crate::Simulator::run`].
    pub max_time: Cycles,
    /// Cost model.
    pub costs: CostModel,
    /// Enable the simulator's fast path: the per-process translation
    /// cache and batched `TouchRange`/`TouchList` execution. The fast
    /// path is exact — every counter is bit-identical with it off — so
    /// this switch exists only for differential testing.
    pub fast_path: bool,
    /// Enable event-skip scheduling: when every runnable process is
    /// inside a provably uniform stretch of work (a long `Compute`, or a
    /// resident huge-page `TouchRange` streak), the run loop charges
    /// whole quanta in closed form instead of executing them, up to the
    /// next interesting event (op transition, region boundary, policy
    /// tick, metric sample, deadline). Exact — every counter, trace event
    /// and report byte is identical with it off — so this switch exists
    /// only for differential testing and A/B timing. The
    /// `HAWKEYE_NO_EVENT_SKIP` environment variable (checked at
    /// [`crate::Simulator::new`]) forces it off.
    pub event_skip: bool,
    /// Simulated cores (1–8). At 1 (the default) the machine is the
    /// classic serial engine, bit-identical with every pre-multicore
    /// artifact. Above 1 the last two cores host khugepaged and the
    /// pre-zeroing daemon while app processes spread over the rest, and
    /// the machine records a per-core lock/allocator access plan replayed
    /// by [`crate::multicore`] into `lock.*` contention metrics (the only
    /// counters allowed to differ across core counts — aggregate work
    /// counters stay pinned exactly). The `HAWKEYE_CORES` environment
    /// variable (checked at [`crate::Simulator::new`]) overrides this.
    pub cores: u32,
}

impl KernelConfig {
    /// A 256 MiB machine for unit tests and quick examples.
    pub fn small() -> Self {
        KernelConfig {
            frames: 64 * 1024,
            tlb: TlbConfig::haswell(),
            nested: false,
            cross_merge: false,
            quantum: Cycles::from_millis(2),
            tick_period: Cycles::from_millis(10),
            sample_period: Cycles::from_millis(100),
            max_time: Cycles::from_secs(300.0),
            costs: CostModel::paper(),
            fast_path: true,
            event_skip: true,
            cores: 1,
        }
    }

    /// A machine with `mib` MiB of physical memory (other parameters as
    /// [`KernelConfig::small`]).
    pub fn with_mib(mib: u64) -> Self {
        KernelConfig { frames: mib * 256, ..Self::small() }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs_match_section_2_2() {
        let c = CostModel::paper();
        // Full synchronous 4 KB fault ≈ 3.5 µs, zeroing ≈ 25 % of it.
        let full_4k = c.fault_base_4k + c.zero_4k;
        assert!((full_4k.as_micros() - 3.53).abs() < 0.05, "{}", full_4k.as_micros());
        let frac = c.zero_4k.as_micros() / full_4k.as_micros();
        assert!((0.2..=0.3).contains(&frac), "{frac}");
        // Full synchronous 2 MB fault ≈ 465 µs, zeroing ≈ 97 % of it.
        let full_2m = c.fault_base_2m + c.zero_2m();
        assert!((455.0..480.0).contains(&full_2m.as_micros()), "{}", full_2m.as_micros());
        let frac = c.zero_2m().as_micros() / full_2m.as_micros();
        assert!(frac > 0.95, "{frac}");
    }

    #[test]
    fn scan_cost_proportional_to_bytes() {
        let c = CostModel::paper();
        assert_eq!(c.scan(0), Cycles::ZERO);
        assert_eq!(c.scan(4096).get(), 1024);
        // An average in-use page (10 bytes) is ~400x cheaper than a bloat
        // page (4096 bytes) — the property §3.2 relies on.
        assert!(c.scan(4096).get() > 100 * c.scan(10).get().max(1));
    }

    #[test]
    fn with_mib_sets_frames() {
        assert_eq!(KernelConfig::with_mib(512).frames, 512 * 256);
        assert_eq!(KernelConfig::default().frames, KernelConfig::small().frames);
    }
}
