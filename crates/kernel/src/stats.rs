//! Kernel-wide event counters.

use hawkeye_metrics::Cycles;

/// Counters of kernel-level events across a run.
///
/// Per-process statistics live in [`crate::ProcStats`]; these are the
/// machine-wide ones the evaluation tables report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Huge-page promotions (khugepaged collapses + policy promotions).
    pub promotions: u64,
    /// Huge-page demotions (splits).
    pub demotions: u64,
    /// Base pages copied during promotion collapses.
    pub promote_copied_pages: u64,
    /// Zero-filled base pages de-duplicated to the canonical zero page.
    pub deduped_zero_pages: u64,
    /// Bloat-recovery scans (regions examined).
    pub bloat_scans: u64,
    /// Pages zeroed by the async pre-zeroing daemon.
    pub prezeroed_pages: u64,
    /// Pages zeroed synchronously on the fault path.
    pub sync_zeroed_pages: u64,
    /// Compaction passes run.
    pub compaction_runs: u64,
    /// Pages migrated by compaction.
    pub compaction_migrated: u64,
    /// File-cache pages reclaimed.
    pub reclaimed_pages: u64,
    /// Out-of-memory events (allocation failed after reclaim).
    pub oom_events: u64,
    /// Cycles consumed by background daemons (khugepaged, zeroing thread,
    /// bloat recovery) — they run on spare cores but are accounted here to
    /// bound policy overhead.
    pub daemon_cycles: Cycles,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = KernelStats::default();
        assert_eq!(s.promotions, 0);
        assert_eq!(s.daemon_cycles, Cycles::ZERO);
        assert_eq!(s, KernelStats::default());
    }
}
