//! CI skip-efficiency gate (see `scripts/ci.sh`).
//!
//! Runs a representative compute/stream workload with the event-skip
//! scheduler on and asserts a minimum fraction of scheduler quanta were
//! charged in closed form instead of executed. The assertion reads the
//! [`hawkeye_kernel::sched_stats`] counters — the simulator is
//! deterministic, so the ratio is an exact constant of the codebase and
//! the gate cannot flake the way a wall-clock threshold would.
//!
//! A regression that silently disables quantum jumping (a predicate
//! that always says "interesting", a cap computed as zero) fails this
//! gate even though every simulated observable — which skipping must
//! never change — still matches.

use hawkeye_core::{HawkEye, HawkEyeConfig};
use hawkeye_kernel::workload::script;
use hawkeye_kernel::{sched_stats, KernelConfig, MemOp, Simulator};
use hawkeye_vm::{Vpn, VmaKind};

/// A compressed stand-in for the suite's fault-then-work shape: fault a
/// working set in, then alternate long pure-compute stretches with
/// think-free streaming passes — the two stretches the event-skip
/// scheduler can charge in closed form.
fn representative_ops() -> Vec<MemOp> {
    let pages: u64 = 32 * 512;
    let mut ops = vec![MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon }];
    for round in 0..6 {
        ops.push(MemOp::TouchRange {
            start: Vpn(0),
            pages,
            write: round % 2 == 0,
            think: 0,
            stride: 1,
            repeats: 2,
        });
        ops.push(MemOp::Compute { cycles: 120_000_000 });
    }
    ops
}

#[test]
fn skip_ratio_meets_threshold() {
    sched_stats::reset();
    let cfg = KernelConfig::small();
    assert!(cfg.event_skip, "event-skip must be the default");
    let mut sim = Simulator::new(cfg, Box::new(HawkEye::new(HawkEyeConfig::default())));
    sim.spawn(script("rep", representative_ops()));
    sim.run();
    let (total, skipped) = sched_stats::snapshot();
    assert!(total > 100, "workload too small to be representative ({total} quanta)");
    let ratio = skipped as f64 / total as f64;
    // Deterministic floor with headroom below the measured ratio; a
    // drop this large means quantum jumping stopped engaging, not that
    // the workload drifted.
    let threshold = 0.5;
    assert!(
        ratio >= threshold,
        "event-skip efficiency regressed: {skipped}/{total} quanta skipped \
         ({:.1}% < {:.0}% floor)",
        ratio * 100.0,
        threshold * 100.0,
    );
}
