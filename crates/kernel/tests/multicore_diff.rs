//! Serial-vs-multicore differential across the nine evaluated policies.
//!
//! The determinism contract of the multi-core machine:
//!
//! * `cores = 1` (the default) IS the serial engine — no recorder exists,
//!   no `lock.*` key appears, no `contention` event is journaled;
//! * `cores = N` runs the identical serial logical simulation — every
//!   aggregate work observable (kernel stats, per-process stats, PMU
//!   counters, simulated time, non-`lock` registry counters, and the
//!   journal minus `contention` records) is bit-identical with the
//!   `cores = 1` run;
//! * for a fixed `N`, the contention outputs themselves are deterministic:
//!   two N-core runs produce byte-identical registries and journals
//!   including every `lock.*` counter and `contention` record;
//! * on a contending workload the modeled CAS-retry counter is positive —
//!   a counter-based smoke check, independent of host speed.

use hawkeye_core::{HawkEye, HawkEyeConfig};
use hawkeye_kernel::workload::script;
use hawkeye_kernel::{
    BasePagesOnly, HugePagePolicy, KernelConfig, MemOp, Simulator,
};
use hawkeye_policies::{FreeBsd, Ingens, IngensConfig, LinuxThp};
use hawkeye_trace::{Journal, TraceEvent, TraceRecord};
use hawkeye_vm::{Vpn, VmaKind};

/// The nine evaluated policies (the bench suite's `PolicyKind` matrix),
/// built fresh per run.
fn nine_policies(i: usize) -> (&'static str, Box<dyn HugePagePolicy>) {
    match i {
        0 => ("Linux-4KB", Box::new(BasePagesOnly)),
        1 => ("Linux-2MB", Box::new(LinuxThp::default())),
        2 => ("FreeBSD", Box::new(FreeBsd::default())),
        3 => ("Ingens", Box::new(Ingens::default())),
        4 => ("Ingens-90%", Box::new(Ingens::new(IngensConfig::fixed_90()))),
        5 => ("Ingens-50%", Box::new(Ingens::new(IngensConfig::fixed_50()))),
        6 => ("HawkEye-G", Box::new(HawkEye::new(HawkEyeConfig::default()))),
        7 => ("HawkEye-PMU", Box::new(HawkEye::new(HawkEyeConfig::pmu()))),
        _ => (
            "HawkEye-4KB",
            Box::new(HawkEye::new(HawkEyeConfig { huge_faults: false, ..Default::default() })),
        ),
    }
}

/// A workload that makes daemons and app cores touch the same regions:
/// fault a few MiB, idle long enough for promotion/dedup ticks to chew on
/// those regions, release some, and re-touch.
fn contending_workload(tag: &str) -> Box<dyn hawkeye_kernel::Workload> {
    let pages: u64 = 8 * 512;
    script(
        tag,
        vec![
            MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
            MemOp::TouchRange { start: Vpn(0), pages, write: true, think: 50, stride: 1, repeats: 1 },
            // Idle across many policy ticks: khugepaged promotes/scans the
            // regions the faults above just touched.
            MemOp::Compute { cycles: 120_000_000 },
            // Release two regions (madvise → app-core lock traffic), then
            // refault them while the daemons keep scanning.
            MemOp::Madvise { start: Vpn(0), pages: 1024 },
            MemOp::TouchRange { start: Vpn(0), pages, write: false, think: 0, stride: 1, repeats: 2 },
            MemOp::Compute { cycles: 60_000_000 },
        ],
    )
}

struct RunOut {
    stats: String,
    proc_stats: String,
    now: u64,
    journal: Journal,
    registry_debug: String,
    /// Non-`lock.*` counters of machine 0, in key order.
    work_counters: Vec<(String, u64)>,
    lock_counters: Vec<(String, u64)>,
}

fn run(cores: u32, policy: Box<dyn HugePagePolicy>, tag: &str) -> RunOut {
    hawkeye_metrics::registry::scope::begin();
    hawkeye_trace::scope::begin(1 << 18);
    let mut cfg = KernelConfig::small();
    cfg.cores = cores;
    let mut sim = Simulator::new(cfg, policy);
    let pid = sim.spawn(contending_workload(tag));
    sim.run();
    let journal = hawkeye_trace::scope::end().expect("trace scope active");
    let registry = hawkeye_metrics::registry::scope::end().expect("registry scope active");
    let m0 = registry.machine(0).expect("machine attached");
    let (mut work, mut lock) = (Vec::new(), Vec::new());
    for (k, v) in m0.counters() {
        if k.starts_with("lock.") {
            lock.push((k.to_string(), v));
        } else {
            work.push((k.to_string(), v));
        }
    }
    RunOut {
        stats: format!("{:?}", sim.machine().stats()),
        proc_stats: format!("{:?}", sim.machine().process(pid).map(|p| p.stats())),
        now: sim.machine().now().get(),
        journal,
        registry_debug: format!("{registry:?}"),
        work_counters: work,
        lock_counters: lock,
    }
}

/// The journal with `contention` records removed (the only records a
/// multi-core run may add).
fn without_contention(j: &Journal) -> Vec<TraceRecord> {
    j.records
        .iter()
        .filter(|r| !matches!(r.event, TraceEvent::Contention { .. }))
        .cloned()
        .collect()
}

#[test]
fn multicore_pins_aggregate_work_for_all_nine_policies() {
    for i in 0..9 {
        let (name, p1) = nine_policies(i);
        let (_, p4) = nine_policies(i);
        let serial = run(1, p1, "diff");
        let quad = run(4, p4, "diff");
        // The serial engine never grows contention artifacts.
        assert!(serial.lock_counters.is_empty(), "{name}: lock.* at cores=1");
        assert!(
            without_contention(&serial.journal).len() == serial.journal.records.len(),
            "{name}: contention events at cores=1"
        );
        // Aggregate work is pinned exactly across core counts.
        assert_eq!(serial.stats, quad.stats, "{name}: kernel stats differ");
        assert_eq!(serial.proc_stats, quad.proc_stats, "{name}: process stats differ");
        assert_eq!(serial.now, quad.now, "{name}: simulated time differs");
        assert_eq!(
            serial.work_counters, quad.work_counters,
            "{name}: non-lock registry counters differ"
        );
        assert_eq!(serial.journal.dropped, quad.journal.dropped, "{name}: dropped records");
        assert_eq!(
            without_contention(&serial.journal),
            without_contention(&quad.journal),
            "{name}: journals differ beyond contention records"
        );
    }
}

#[test]
fn multicore_contention_outputs_are_deterministic() {
    // Same policy, same core count, twice: byte-identical everything,
    // including every lock.* counter, histogram bucket and contention
    // record. (Covers 2, 4 and 8 cores — both daemon-core layouts.)
    for cores in [2u32, 4, 8] {
        let (_, pa) = nine_policies(6);
        let (_, pb) = nine_policies(6);
        let a = run(cores, pa, "det");
        let b = run(cores, pb, "det");
        assert_eq!(a.registry_debug, b.registry_debug, "cores={cores}: registries differ");
        assert_eq!(a.journal.records, b.journal.records, "cores={cores}: journals differ");
    }
}

#[test]
fn contending_daemons_retry_cas_here() {
    // Guard against the differentials passing vacuously: under HawkEye on
    // the contending workload, khugepaged ops overlap app faults on the
    // same regions, so the *modeled* CAS-retry counter must be positive.
    // Counter-based and derived from the deterministic replay — no
    // dependence on host speed.
    let (_, policy) = nine_policies(6);
    let out = run(4, policy, "smoke");
    let get = |k: &str| {
        out.lock_counters.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap_or(0)
    };
    assert!(get("lock.acquisitions") > 0, "no lock traffic recorded: {:?}", out.lock_counters);
    assert!(
        get("lock.cas_retries") > 0,
        "no CAS retries under the contending workload: {:?}",
        out.lock_counters
    );
    assert!(get("lock.stall_cycles") > 0, "no stalls: {:?}", out.lock_counters);
    // Contention records landed in the journal with matching totals.
    let traced: u64 = out
        .journal
        .records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::Contention { cas_retries, .. } => Some(cas_retries),
            _ => None,
        })
        .sum();
    assert_eq!(traced, get("lock.cas_retries"), "journal and registry disagree");
}

#[test]
fn hawkeye_cores_env_overrides_config() {
    // The knob is read at Simulator::new; exercise both directions.
    // (Env vars are process-global — set, test, and restore immediately;
    // no other test in this binary reads HAWKEYE_CORES concurrently.)
    std::env::set_var("HAWKEYE_CORES", "4");
    let sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
    assert!(sim.machine().concurrency().is_some(), "HAWKEYE_CORES=4 enables recording");
    std::env::set_var("HAWKEYE_CORES", "1");
    let mut cfg = KernelConfig::small();
    cfg.cores = 8;
    let sim = Simulator::new(cfg, Box::new(BasePagesOnly));
    assert!(sim.machine().concurrency().is_none(), "HAWKEYE_CORES=1 forces serial");
    std::env::remove_var("HAWKEYE_CORES");
}
