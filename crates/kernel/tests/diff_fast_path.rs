//! Differential test for the simulator fast path.
//!
//! Runs the same workload/policy pair twice — `fast_path` on (translation
//! cache + batched touch streaks) and off (per-access modeling all the
//! way) — and asserts every observable is bit-identical: per-process
//! stats, kernel stats, lifetime PMU counters, total walks, final
//! translations, frame contents, and simulated time. The fast path is an
//! optimization, not an approximation.

use hawkeye_kernel::rng::SplitMix64;
use hawkeye_kernel::workload::script;
use hawkeye_kernel::{
    BasePagesOnly, FaultAction, HugePagePolicy, KernelConfig, Machine, MemOp, Simulator, Workload,
};
use hawkeye_metrics::Cycles;
use hawkeye_vm::{Hvpn, Vpn, VmaKind};

/// Faults regions in huge when possible and churns mappings from its
/// tick: demotes one region, re-promotes another, and de-duplicates zero
/// pages — exercising every translation-cache invalidation path while
/// streaks are executing.
struct ChurnPolicy {
    flip: u64,
}

impl HugePagePolicy for ChurnPolicy {
    fn name(&self) -> &str {
        "churn"
    }

    fn on_fault(&mut self, _m: &mut Machine, _pid: u32, vpn: Vpn) -> FaultAction {
        // Alternate: even regions fault huge, odd regions base.
        if vpn.hvpn().0.is_multiple_of(2) {
            FaultAction::MapHuge
        } else {
            FaultAction::MapBase
        }
    }

    fn on_tick(&mut self, m: &mut Machine) {
        self.flip += 1;
        for pid in m.running_pids() {
            let regions: Vec<Hvpn> = m
                .process(pid)
                .map(|p| p.space().page_table().mapped_regions().collect())
                .unwrap_or_default();
            if regions.is_empty() {
                continue;
            }
            let pick = regions[(self.flip as usize) % regions.len()];
            let is_huge = m
                .process(pid)
                .and_then(|p| p.space().page_table().huge_entry(pick).copied())
                .is_some();
            if is_huge {
                if self.flip.is_multiple_of(3) {
                    m.demote(pid, pick);
                } else {
                    let _ = m.dedup_zero_pages(pid, pick, 1);
                }
            } else {
                let _ = m.promote(pid, pick);
            }
            // Exercise two-phase sampling invalidation as HawkEye does.
            let arm = Hvpn(regions[0].0);
            if let Some(p) = m.process_mut(pid) {
                if self.flip.is_multiple_of(2) {
                    p.space_mut().clear_region_access(arm);
                } else {
                    let _ = p.space_mut().sample_and_clear_access(arm);
                }
            }
        }
    }
}

/// Deterministic workload with a mix of streaming ranges, random lists
/// (with duplicates), repeat-heavy single-page touches, and releases.
struct MixWorkload {
    ops: Vec<MemOp>,
    next: usize,
    dirt: SplitMix64,
}

impl MixWorkload {
    fn new(seed: u64) -> Self {
        let pages: u64 = 16 * 512;
        let mut rng = SplitMix64::new(seed);
        let mut ops = vec![MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon }];
        for round in 0..6 {
            // Streaming pass (hits the TouchRange streak batcher).
            ops.push(MemOp::TouchRange {
                start: Vpn(0),
                pages,
                write: round % 2 == 0,
                think: (round % 3) as u32 * 10,
                stride: 1,
                repeats: 1 + (round % 4) as u32,
            });
            // Random list with intentional duplicate runs.
            let mut vpns = Vec::new();
            for _ in 0..600 {
                let v = Vpn(rng.below(pages));
                let dup = 1 + rng.below(3);
                for _ in 0..dup {
                    vpns.push(v);
                }
            }
            ops.push(MemOp::TouchList { vpns, write: rng.below(2) == 1, think: 20 });
            // Repeat hammer on one page.
            ops.push(MemOp::Touch {
                vpn: Vpn(rng.below(pages)),
                write: true,
                repeats: 300,
                think: 5,
            });
            // Release a region mid-run so retouches refault (and COW
            // writes land on deduped zero pages).
            if round == 2 || round == 4 {
                let h = rng.below(16);
                ops.push(MemOp::Madvise { start: Vpn(h * 512), pages: 512 });
            }
            // A think-free streak: infinite quantum batching limit.
            ops.push(MemOp::TouchRange {
                start: Vpn(0),
                pages: pages / 2,
                write: false,
                think: 0,
                stride: 1,
                repeats: 1,
            });
        }
        MixWorkload { ops, next: 0, dirt: SplitMix64::new(seed ^ 0xD1B7) }
    }
}

impl Workload for MixWorkload {
    fn name(&self) -> &str {
        "mix"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        let op = self.ops.get(self.next).cloned();
        self.next += 1;
        op
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.below(4096) as u16
    }
}

fn run(fast_path: bool, policy: Box<dyn HugePagePolicy>, seed: u64) -> Simulator {
    let mut cfg = KernelConfig::small();
    cfg.fast_path = fast_path;
    let mut sim = Simulator::new(cfg, policy);
    sim.spawn(Box::new(MixWorkload::new(seed)));
    sim.run();
    sim
}

fn assert_runs_identical(on: Simulator, off: Simulator) {
    assert_eq!(on.machine().now(), off.machine().now(), "sim time");
    assert_eq!(on.machine().stats(), off.machine().stats(), "kernel stats");
    assert_eq!(on.machine().mmu().total_walks(), off.machine().mmu().total_walks(), "walks");
    let pids = on.machine().pids();
    assert_eq!(pids, off.machine().pids());
    for pid in pids {
        let p_on = on.machine().process(pid).unwrap();
        let p_off = off.machine().process(pid).unwrap();
        assert_eq!(p_on.stats(), p_off.stats(), "proc stats pid {pid}");
        assert_eq!(p_on.cpu_time(), p_off.cpu_time(), "cpu time pid {pid}");
        assert_eq!(
            on.machine().mmu().lifetime(pid),
            off.machine().mmu().lifetime(pid),
            "pmu pid {pid}"
        );
        // Address spaces (emptied at exit, but compare anyway).
        for v in 0..(16 * 512) {
            assert_eq!(
                p_on.space().translate(Vpn(v)),
                p_off.space().translate(Vpn(v)),
                "translation {v}"
            );
        }
    }
    // Frame-content parity: the zero scanner must see the same world.
    let n = on.machine().pm().total_frames().min(off.machine().pm().total_frames());
    for pfn in 0..n {
        let a = on.machine().pm().frame(hawkeye_mem::Pfn(pfn));
        let b = off.machine().pm().frame(hawkeye_mem::Pfn(pfn));
        assert_eq!(a.is_zeroed(), b.is_zeroed(), "frame {pfn} zero-ness");
    }
}

#[test]
fn base_only_runs_identical() {
    let on = run(true, Box::new(BasePagesOnly), 11);
    let off = run(false, Box::new(BasePagesOnly), 11);
    assert_runs_identical(on, off);
}

#[test]
fn churn_policy_runs_identical() {
    for seed in [1u64, 2, 3] {
        let on = run(true, Box::new(ChurnPolicy { flip: 0 }), seed);
        let off = run(false, Box::new(ChurnPolicy { flip: 0 }), seed);
        assert_runs_identical(on, off);
    }
}

#[test]
fn quantum_boundaries_split_streaks_identically() {
    // A tiny quantum forces streak batching to stop exactly where the
    // per-access loop would.
    for fast in [true, false] {
        let mut cfg = KernelConfig::small();
        cfg.fast_path = fast;
        cfg.quantum = Cycles::new(10_000);
        let mut sim = Simulator::new(cfg, Box::new(ChurnPolicy { flip: 0 }));
        sim.spawn(Box::new(MixWorkload::new(99)));
        sim.run();
        let pid = sim.machine().pids()[0];
        let st = sim.machine().process(pid).unwrap().stats();
        if fast {
            // Stash via thread-local-free trick: compare against a rerun.
            let mut cfg2 = KernelConfig::small();
            cfg2.fast_path = false;
            cfg2.quantum = Cycles::new(10_000);
            let mut sim2 = Simulator::new(cfg2, Box::new(ChurnPolicy { flip: 0 }));
            sim2.spawn(Box::new(MixWorkload::new(99)));
            sim2.run();
            let st2 = sim2.machine().process(pid).unwrap().stats();
            assert_eq!(st, st2, "tiny-quantum stats");
            assert_eq!(sim.machine().now(), sim2.machine().now(), "tiny-quantum time");
        }
        assert!(st.touches > 0);
    }
}

/// Faults huge and, from its ticks, de-duplicates the zero pages of
/// region 0 — so the workload's later writes hit zero-COW mappings and
/// take COW faults through the touch fault loop.
struct DedupOnTick {
    done: bool,
}

impl HugePagePolicy for DedupOnTick {
    fn name(&self) -> &str {
        "dedup-on-tick"
    }
    fn on_fault(&mut self, _m: &mut Machine, _pid: u32, _vpn: Vpn) -> FaultAction {
        FaultAction::MapHuge
    }
    fn on_tick(&mut self, m: &mut Machine) {
        if self.done {
            return;
        }
        for pid in m.running_pids() {
            if let Some(hawkeye_kernel::DedupOutcome::Deduped { zero_pages, .. }) =
                m.dedup_zero_pages(pid, Hvpn(0), 1)
            {
                self.done = zero_pages > 0;
            }
        }
    }
}

#[test]
fn zero_cow_write_faults_count_in_both_counters() {
    // Satellite: a write that lands on a deduped (zero-COW) page is a
    // page fault like any other — counted in `faults`/`fault_cycles` —
    // and additionally in `cow_faults`, making cow_faults ⊆ faults.
    for fast in [true, false] {
        let mut cfg = KernelConfig::small();
        cfg.fast_path = fast;
        let mut sim = Simulator::new(cfg, Box::new(DedupOnTick { done: false }));
        let pid = sim.spawn(script(
            "cow",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 512, kind: VmaKind::Anon },
                // Read-fault the region huge: all 512 pages stay zero.
                MemOp::TouchRange { start: Vpn(0), pages: 512, write: false, think: 0, stride: 1, repeats: 1 },
                // Cross several ticks so the policy dedups the region.
                MemOp::Compute { cycles: 60_000_000 },
                // Now write everything back: each deduped page must COW.
                MemOp::TouchRange { start: Vpn(0), pages: 512, write: true, think: 0, stride: 1, repeats: 1 },
            ],
        ));
        sim.run();
        let deduped = sim.machine().stats().deduped_zero_pages;
        assert!(deduped > 0, "the tick deduped zero pages (fast={fast})");
        let st = sim.machine().process(pid).unwrap().stats();
        assert_eq!(st.huge_faults, 1, "region faulted huge (fast={fast})");
        assert_eq!(st.cow_faults, deduped, "one COW fault per deduped page (fast={fast})");
        assert_eq!(
            st.faults,
            1 + st.cow_faults,
            "COW faults are a subset of total faults (fast={fast})"
        );
        assert!(st.fault_cycles > Cycles::ZERO);
        assert_eq!(st.touches, 512 + 512);
    }
}

// ---------------------------------------------------------------------------
// Event-skip differential: the closed-form quantum jumper vs. the serial
// tick-loop reference, across every policy the evaluation compares.
// ---------------------------------------------------------------------------

use hawkeye_core::{HawkEye, HawkEyeConfig};
use hawkeye_policies::{FreeBsd, Ingens, IngensConfig, LinuxThp};

/// The nine evaluated policies (the bench suite's `PolicyKind` matrix),
/// built fresh per run.
fn nine_policies(i: usize) -> (&'static str, Box<dyn HugePagePolicy>) {
    match i {
        0 => ("Linux-4KB", Box::new(BasePagesOnly)),
        1 => ("Linux-2MB", Box::new(LinuxThp::default())),
        2 => ("FreeBSD", Box::new(FreeBsd::default())),
        3 => ("Ingens", Box::new(Ingens::default())),
        4 => ("Ingens-90%", Box::new(Ingens::new(IngensConfig::fixed_90()))),
        5 => ("Ingens-50%", Box::new(Ingens::new(IngensConfig::fixed_50()))),
        6 => ("HawkEye-G", Box::new(HawkEye::new(HawkEyeConfig::default()))),
        7 => ("HawkEye-PMU", Box::new(HawkEye::new(HawkEyeConfig::pmu()))),
        _ => (
            "HawkEye-4KB",
            Box::new(HawkEye::new(HawkEyeConfig { huge_faults: false, ..Default::default() })),
        ),
    }
}

/// [`MixWorkload`] with skippable stretches spliced in: long `Compute`
/// ops (the Compute skip arm) and think-free stride-1 streams over a
/// resident region (the TouchRange skip arm), so the event-skip
/// scheduler actually jumps quanta instead of trivially matching the
/// reference by never engaging.
struct SkipMixWorkload {
    inner: MixWorkload,
    extra: Vec<MemOp>,
    draining: bool,
}

impl SkipMixWorkload {
    fn new(seed: u64) -> Self {
        let extra = vec![
            // Long pure-compute stretch: many whole quanta with nothing
            // interesting in them.
            MemOp::Compute { cycles: 80_000_000 },
            // Think-free re-stream of the (resident) region: uniform
            // L1-hit streak spanning many quanta.
            MemOp::TouchRange {
                start: Vpn(0),
                pages: 16 * 512,
                write: false,
                think: 0,
                stride: 1,
                repeats: 4,
            },
            MemOp::Compute { cycles: 25_000_000 },
        ];
        SkipMixWorkload { inner: MixWorkload::new(seed), extra, draining: false }
    }
}

impl Workload for SkipMixWorkload {
    fn name(&self) -> &str {
        "skip-mix"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        if !self.draining {
            if let Some(op) = self.inner.next_op() {
                return Some(op);
            }
            self.draining = true;
            self.extra.reverse();
        }
        self.extra.pop()
    }

    fn dirt_offset(&mut self) -> u16 {
        self.inner.dirt_offset()
    }
}

/// Runs one policy under a trace scope and a metrics-registry scope,
/// with the event-skip scheduler on or off.
fn run_instrumented(
    event_skip: bool,
    policy: Box<dyn HugePagePolicy>,
    seed: u64,
) -> (Simulator, hawkeye_trace::Journal, String) {
    hawkeye_metrics::registry::scope::begin();
    hawkeye_trace::scope::begin(1 << 18);
    let mut cfg = KernelConfig::small();
    cfg.event_skip = event_skip;
    let mut sim = Simulator::new(cfg, policy);
    sim.spawn(Box::new(SkipMixWorkload::new(seed)));
    sim.run();
    let journal = hawkeye_trace::scope::end().expect("trace scope active");
    let registry = hawkeye_metrics::registry::scope::end().expect("registry scope active");
    // BTreeMap-backed Debug output is deterministic and covers every
    // counter, gauge, histogram bucket, and ledger cell.
    (sim, journal, format!("{registry:?}"))
}

#[test]
fn event_skip_matches_tick_loop_for_all_nine_policies() {
    for i in 0..9 {
        let (name, policy_on) = nine_policies(i);
        let (_, policy_off) = nine_policies(i);
        let (sim_on, journal_on, reg_on) = run_instrumented(true, policy_on, 7);
        let (sim_off, journal_off, reg_off) = run_instrumented(false, policy_off, 7);
        assert_eq!(
            journal_on.dropped, journal_off.dropped,
            "{name}: dropped trace records differ"
        );
        assert_eq!(
            journal_on.records.len(),
            journal_off.records.len(),
            "{name}: trace journal length differs"
        );
        assert_eq!(journal_on.records, journal_off.records, "{name}: trace journals differ");
        assert_eq!(reg_on, reg_off, "{name}: metrics registries differ");
        assert_runs_identical(sim_on, sim_off);
    }
}

#[test]
fn event_skip_actually_skips_quanta_here() {
    // Guard against the differential above passing vacuously: on this
    // workload the skip arms must engage. Counter-based (sched_stats),
    // so the assertion is deterministic.
    hawkeye_kernel::sched_stats::reset();
    let (_, policy) = nine_policies(6);
    let (sim, _, _) = run_instrumented(true, policy, 7);
    assert!(sim.machine().now() > Cycles::ZERO);
    let (total, skipped) = hawkeye_kernel::sched_stats::snapshot();
    assert!(total > 0, "run recorded no quanta");
    assert!(
        skipped > 0,
        "event-skip never engaged on the skip-mix workload ({total} quanta, 0 skipped)"
    );
}
