//! Structured event tracing for the HawkEye simulator.
//!
//! A journal is a bounded ring of [`TraceRecord`]s: typed kernel/VM events
//! stamped with simulated [`Cycles`] and the faulting pid. Emit sites across
//! the stack hold a [`TraceSink`] — a cheap cloneable handle that is a no-op
//! when tracing is disabled, so instrumentation costs one branch on the
//! simulated hot paths and cannot perturb counters.
//!
//! Scoping is per-thread: the bench scenario engine calls [`scope::begin`]
//! before running a scenario and [`scope::end`] after, collecting the journal
//! for that scenario only. Machines created inside a scope attach to its
//! buffer via [`TraceSink::attach_current`] and receive a per-scope machine id
//! in creation order, which keeps journals deterministic under the ordered
//! bench pool (each scenario runs start-to-finish on one worker thread).

#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hawkeye_metrics::Cycles;

/// Default ring capacity for a per-scenario journal: enough to keep every
/// daemon decision of a long bench run while bounding a fault-heavy scenario
/// to a few MiB of records.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A typed simulator event.
///
/// Payload fields are raw integers (bools as flags) so the journal can be
/// serialized generically via [`TraceEvent::fields`] without this crate
/// depending on any serializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A minor/major fault was serviced in the touch path.
    Fault {
        /// Faulting virtual page number (guest-physical frame for EPT faults).
        vpn: u64,
        /// The fault was satisfied with a huge mapping.
        huge: bool,
        /// The fault was a copy-on-write break of the shared zero page.
        cow: bool,
        /// Simulated cycles charged for servicing the fault.
        cycles: u64,
    },
    /// khugepaged-style promotion of a huge-page-aligned region.
    Promote {
        /// Huge virtual page number (vpn >> 9).
        hvpn: u64,
        /// 4 KiB pages copied from existing small mappings.
        copied: u32,
        /// 4 KiB pages filled fresh (unmapped or zero-backed).
        filled: u32,
        /// Simulated cycles charged for the promotion.
        cycles: u64,
    },
    /// A huge mapping was split back to 4 KiB mappings.
    Demote {
        /// Huge virtual page number.
        hvpn: u64,
        /// Simulated cycles charged (0 when folded into another operation).
        cycles: u64,
    },
    /// One compaction pass finished.
    Compact {
        /// 4 KiB pages migrated during the pass.
        migrated: u64,
        /// Fully-free huge blocks produced by the pass.
        huge_blocks: u64,
    },
    /// The async pre-zero thread zeroed free pages.
    PreZero {
        /// 4 KiB pages moved to the zeroed free list.
        pages: u64,
    },
    /// Bloat-recovery scanned a huge region for zero-page dedup.
    Dedup {
        /// Huge virtual page number scanned.
        hvpn: u64,
        /// Zero-filled 4 KiB pages found in the region.
        zero_pages: u32,
        /// The region crossed the threshold and was demoted + deduped.
        demoted: bool,
        /// Simulated cycles charged for the scan (and dedup, if any).
        cycles: u64,
    },
    /// An allocation failed after reclaim: the process is OOM-killed.
    Oom,
    /// Per-quantum PMU counter snapshot (emitted when a sampling policy
    /// drains the per-pid window).
    QuantumEnd {
        /// TLB-miss page-walk cycles on the load path this window.
        load_walk: u64,
        /// TLB-miss page-walk cycles on the store path this window.
        store_walk: u64,
        /// Unhalted cycles this window.
        unhalted: u64,
        /// Page walks performed this window.
        walks: u64,
    },
    /// Periodic cycle-attribution snapshot from the metrics registry:
    /// cumulative per-subsystem cycle totals for the emitting machine.
    /// Emitted at each metrics sample when both a trace scope and a
    /// registry scope are active. CPU-side fields sum to `unhalted`
    /// (the residue the analyzer checks); `daemon` is the background
    /// ledger's total.
    CycleSample {
        /// Cumulative CPU cycles spent in page walks.
        walk: u64,
        /// Cumulative CPU cycles spent in fault handling / PT maintenance.
        fault: u64,
        /// Cumulative CPU cycles spent zeroing pages.
        zero: u64,
        /// Cumulative CPU cycles spent copying pages.
        copy: u64,
        /// Cumulative CPU cycles spent in content scans.
        scan: u64,
        /// Cumulative CPU cycles spent in compaction.
        compact: u64,
        /// Cumulative CPU cycles spent deduplicating zero pages.
        dedup: u64,
        /// Cumulative CPU cycles spent in application compute.
        idle: u64,
        /// Cumulative `CPU_CLK_UNHALTED` at the snapshot.
        unhalted: u64,
        /// Cumulative daemon-ledger cycles (all subsystems).
        daemon: u64,
    },
    /// Per-core lock-contention summary from the multi-core replay
    /// (`cores > 1` runs only). One record per simulated core, emitted at
    /// run end. Values come from the *seeded deterministic* replay, so
    /// journals stay byte-identical for a given seed/core count even
    /// though they describe contention.
    Contention {
        /// Simulated core id.
        core: u64,
        /// Core role: 0 = application, 1 = khugepaged, 2 = pre-zero.
        role: u64,
        /// Page-state lock acquisitions performed by this core.
        acquisitions: u64,
        /// Failed CAS attempts while acquiring page-state locks.
        cas_retries: u64,
        /// Simulated cycles this core stalled waiting for locks/arenas.
        stall_cycles: u64,
    },
    /// An SLO burn-rate rule started breaching: both the fast and slow
    /// epoch-window means crossed the rule's threshold × burn factor.
    /// Emitted by the fleet telemetry pipeline (`hawkeye-obs`) into a
    /// synthetic `obs/slo` journal; `machine` carries the cohort index.
    SloBreach {
        /// Index of the rule in the evaluated rule set (see the
        /// `rules` section of the obs document / ALERTS.md).
        rule: u64,
        /// Fleet epoch at which the breach was detected.
        epoch: u64,
        /// Cohort index the rule was evaluated against.
        cohort: u64,
    },
    /// A previously-breaching SLO burn-rate rule recovered: at least one
    /// window mean moved back inside the threshold × burn band.
    SloRecover {
        /// Index of the rule in the evaluated rule set.
        rule: u64,
        /// Fleet epoch at which the recovery was detected.
        epoch: u64,
        /// Cohort index the rule was evaluated against.
        cohort: u64,
    },
}

impl TraceEvent {
    /// Stable lower-case tag for serialization.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Promote { .. } => "promote",
            TraceEvent::Demote { .. } => "demote",
            TraceEvent::Compact { .. } => "compact",
            TraceEvent::PreZero { .. } => "prezero",
            TraceEvent::Dedup { .. } => "dedup",
            TraceEvent::Oom => "oom",
            TraceEvent::QuantumEnd { .. } => "quantum_end",
            TraceEvent::CycleSample { .. } => "cycle_sample",
            TraceEvent::Contention { .. } => "contention",
            TraceEvent::SloBreach { .. } => "slo_breach",
            TraceEvent::SloRecover { .. } => "slo_recover",
        }
    }

    /// Payload as ordered `(name, value)` pairs; bools encode as 0/1.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            TraceEvent::Fault { vpn, huge, cow, cycles } => vec![
                ("vpn", vpn),
                ("huge", huge as u64),
                ("cow", cow as u64),
                ("cycles", cycles),
            ],
            TraceEvent::Promote { hvpn, copied, filled, cycles } => vec![
                ("hvpn", hvpn),
                ("copied", copied as u64),
                ("filled", filled as u64),
                ("cycles", cycles),
            ],
            TraceEvent::Demote { hvpn, cycles } => {
                vec![("hvpn", hvpn), ("cycles", cycles)]
            }
            TraceEvent::Compact { migrated, huge_blocks } => {
                vec![("migrated", migrated), ("huge_blocks", huge_blocks)]
            }
            TraceEvent::PreZero { pages } => vec![("pages", pages)],
            TraceEvent::Dedup { hvpn, zero_pages, demoted, cycles } => vec![
                ("hvpn", hvpn),
                ("zero_pages", zero_pages as u64),
                ("demoted", demoted as u64),
                ("cycles", cycles),
            ],
            TraceEvent::Oom => vec![],
            TraceEvent::QuantumEnd { load_walk, store_walk, unhalted, walks } => vec![
                ("load_walk", load_walk),
                ("store_walk", store_walk),
                ("unhalted", unhalted),
                ("walks", walks),
            ],
            TraceEvent::CycleSample {
                walk,
                fault,
                zero,
                copy,
                scan,
                compact,
                dedup,
                idle,
                unhalted,
                daemon,
            } => vec![
                ("walk", walk),
                ("fault", fault),
                ("zero", zero),
                ("copy", copy),
                ("scan", scan),
                ("compact", compact),
                ("dedup", dedup),
                ("idle", idle),
                ("unhalted", unhalted),
                ("daemon", daemon),
            ],
            TraceEvent::Contention { core, role, acquisitions, cas_retries, stall_cycles } => vec![
                ("core", core),
                ("role", role),
                ("acquisitions", acquisitions),
                ("cas_retries", cas_retries),
                ("stall_cycles", stall_cycles),
            ],
            TraceEvent::SloBreach { rule, epoch, cohort } => {
                vec![("rule", rule), ("epoch", epoch), ("cohort", cohort)]
            }
            TraceEvent::SloRecover { rule, epoch, cohort } => {
                vec![("rule", rule), ("epoch", epoch), ("cohort", cohort)]
            }
        }
    }

    /// Reconstructs an event from its serialized `(kind, fields)` form —
    /// the inverse of [`TraceEvent::kind`] + [`TraceEvent::fields`], used
    /// by the `hawkeye-analyze` journal parser. Field lookup is by name so
    /// readers tolerate reordered keys; returns `None` for an unknown kind
    /// or a missing field. Keys may be any string-like type, so streaming
    /// parsers can pass borrowed keys without building owned `String`s.
    pub fn from_fields<K: AsRef<str>>(kind: &str, fields: &[(K, u64)]) -> Option<TraceEvent> {
        let get = |name: &str| fields.iter().find(|(k, _)| k.as_ref() == name).map(|(_, v)| *v);
        Some(match kind {
            "fault" => TraceEvent::Fault {
                vpn: get("vpn")?,
                huge: get("huge")? != 0,
                cow: get("cow")? != 0,
                cycles: get("cycles")?,
            },
            "promote" => TraceEvent::Promote {
                hvpn: get("hvpn")?,
                copied: get("copied")? as u32,
                filled: get("filled")? as u32,
                cycles: get("cycles")?,
            },
            "demote" => TraceEvent::Demote { hvpn: get("hvpn")?, cycles: get("cycles")? },
            "compact" => TraceEvent::Compact {
                migrated: get("migrated")?,
                huge_blocks: get("huge_blocks")?,
            },
            "prezero" => TraceEvent::PreZero { pages: get("pages")? },
            "dedup" => TraceEvent::Dedup {
                hvpn: get("hvpn")?,
                zero_pages: get("zero_pages")? as u32,
                demoted: get("demoted")? != 0,
                cycles: get("cycles")?,
            },
            "oom" => TraceEvent::Oom,
            "quantum_end" => TraceEvent::QuantumEnd {
                load_walk: get("load_walk")?,
                store_walk: get("store_walk")?,
                unhalted: get("unhalted")?,
                walks: get("walks")?,
            },
            "cycle_sample" => TraceEvent::CycleSample {
                walk: get("walk")?,
                fault: get("fault")?,
                zero: get("zero")?,
                copy: get("copy")?,
                scan: get("scan")?,
                compact: get("compact")?,
                dedup: get("dedup")?,
                idle: get("idle")?,
                unhalted: get("unhalted")?,
                daemon: get("daemon")?,
            },
            "contention" => TraceEvent::Contention {
                core: get("core")?,
                role: get("role")?,
                acquisitions: get("acquisitions")?,
                cas_retries: get("cas_retries")?,
                stall_cycles: get("stall_cycles")?,
            },
            "slo_breach" => TraceEvent::SloBreach {
                rule: get("rule")?,
                epoch: get("epoch")?,
                cohort: get("cohort")?,
            },
            "slo_recover" => TraceEvent::SloRecover {
                rule: get("rule")?,
                epoch: get("epoch")?,
                cohort: get("cohort")?,
            },
            _ => return None,
        })
    }
}

/// One journal entry: an event stamped with simulated time, the pid it
/// concerns (0 for machine-global events), and the emitting machine's
/// per-scope id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of emission.
    pub at: Cycles,
    /// Process the event concerns; 0 for machine-global events.
    pub pid: u32,
    /// Per-scope machine id (creation order within the scope).
    pub machine: u32,
    /// The event payload.
    pub event: TraceEvent,
}

/// Bounded ring of records. When full, the oldest record is overwritten so
/// the journal keeps the *newest* events; `dropped` counts overwrites.
#[derive(Debug)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    capacity: usize,
    head: usize,
    dropped: u64,
    next_machine: u32,
}

impl TraceBuffer {
    /// Create a ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            records: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
            next_machine: 0,
        }
    }

    /// Append a record, overwriting the oldest when the ring is full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Allocate the next per-scope machine id.
    pub fn next_machine_id(&mut self) -> u32 {
        let id = self.next_machine;
        self.next_machine += 1;
        id
    }

    /// Total records ever pushed (kept + overwritten). Because the ring
    /// keeps the newest records, the oldest *kept* record has sequence
    /// number `dropped()`, so `pushed()` is also the sequence number the
    /// next push will get — a natural cursor for [`TraceBuffer::tail`].
    pub fn pushed(&self) -> u64 {
        self.dropped + self.records.len() as u64
    }

    /// Records with sequence number ≥ `since`, in emission order, without
    /// consuming the ring. A reader that remembers the `pushed()` value of
    /// its last read sees each record at most once; records overwritten
    /// between reads are silently skipped (the reader can detect gaps by
    /// comparing `since` against [`TraceBuffer::dropped`]).
    pub fn tail(&self, since: u64) -> Vec<TraceRecord> {
        let n = self.records.len();
        if n == 0 {
            return Vec::new();
        }
        let start = since.saturating_sub(self.dropped).min(n as u64) as usize;
        (start..n).map(|i| self.records[(self.head + i) % n].clone()).collect()
    }

    /// Consume the ring, returning records in emission order plus the
    /// overwrite count.
    pub fn drain(mut self) -> (Vec<TraceRecord>, u64) {
        self.records.rotate_left(self.head);
        (self.records, self.dropped)
    }
}

/// A finished scenario journal: records in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journal {
    /// Records in emission order (oldest kept first).
    pub records: Vec<TraceRecord>,
    /// Records overwritten because the ring filled up.
    pub dropped: u64,
}

impl Journal {
    /// Drains a shared buffer (e.g. one obtained via [`scope::detach`])
    /// into a finished journal. Sinks still holding the buffer keep
    /// writing into a drained 1-slot ring, harmlessly — same contract as
    /// [`scope::end`].
    pub fn drain_shared(shared: &Arc<Mutex<TraceBuffer>>) -> Journal {
        let mut buf = match shared.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let full = std::mem::replace(&mut *buf, TraceBuffer::new(1));
        let (records, dropped) = full.drain();
        Journal { records, dropped }
    }
}

/// Cheap cloneable emit handle. Disabled sinks (the default) are a no-op:
/// `emit`/`set_now` early-return on one branch, so instrumented code runs
/// identically whether or not a trace scope is active.
#[derive(Debug, Clone)]
pub struct TraceSink {
    shared: Option<Arc<Mutex<TraceBuffer>>>,
    machine: u32,
    now: Arc<AtomicU64>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink {
            shared: None,
            machine: 0,
            now: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl TraceSink {
    /// A permanently-disabled sink.
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// Attach to the current thread's trace scope, if one is active,
    /// claiming the next machine id in that scope. Returns a disabled sink
    /// otherwise.
    pub fn attach_current() -> Self {
        match scope::current() {
            Some(shared) => {
                let machine = match shared.lock() {
                    Ok(mut buf) => buf.next_machine_id(),
                    Err(_) => return TraceSink::disabled(),
                };
                TraceSink {
                    shared: Some(shared),
                    machine,
                    now: Arc::new(AtomicU64::new(0)),
                }
            }
            None => TraceSink::disabled(),
        }
    }

    /// True when emits reach a buffer.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Advance the sink's simulated clock; clones of this sink (handed to
    /// subsystems of the same machine) share it.
    #[inline]
    pub fn set_now(&self, now: Cycles) {
        if self.shared.is_none() {
            return;
        }
        self.now.store(now.get(), Ordering::Relaxed);
    }

    /// Record an event for `pid`, stamped with the sink's current simulated
    /// time. No-op when disabled.
    #[inline]
    pub fn emit(&self, pid: u32, event: TraceEvent) {
        let Some(shared) = &self.shared else { return };
        let rec = TraceRecord {
            at: Cycles::new(self.now.load(Ordering::Relaxed)),
            pid,
            machine: self.machine,
            event,
        };
        if let Ok(mut buf) = shared.lock() {
            buf.push(rec);
        }
    }
}

/// Per-thread trace scopes. A scope owns the buffer that sinks created on
/// this thread (between `begin` and `end`) emit into.
pub mod scope {
    use super::{Arc, Journal, Mutex, RefCell, TraceBuffer};

    thread_local! {
        static CURRENT: RefCell<Option<Arc<Mutex<TraceBuffer>>>> =
            const { RefCell::new(None) };
    }

    /// Open a trace scope on this thread with the given ring capacity.
    /// Replaces any previous scope (its journal is discarded).
    pub fn begin(capacity: usize) {
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(Arc::new(Mutex::new(TraceBuffer::new(capacity))));
        });
    }

    /// Close this thread's scope, returning its journal. Sinks still holding
    /// the buffer keep writing into a drained 1-slot ring, harmlessly.
    pub fn end() -> Option<Journal> {
        let shared = CURRENT.with(|c| c.borrow_mut().take())?;
        let mut buf = shared.lock().ok()?;
        let full = std::mem::replace(&mut *buf, TraceBuffer::new(1));
        let (records, dropped) = full.drain();
        Some(Journal { records, dropped })
    }

    /// Detach this thread's scope *without* draining it: the shared buffer
    /// is returned and sinks already attached to it keep emitting into it.
    /// This is how long-lived owners (the fleet orchestrator) capture a
    /// machine's journal beyond the `begin`/`end` bracket of its creating
    /// thread: begin a scope, build the machine (its sinks attach), detach
    /// the buffer, and read it later via [`TraceBuffer::tail`] or
    /// [`super::Journal::drain_shared`] from whatever thread owns the
    /// machine by then.
    pub fn detach() -> Option<Arc<Mutex<TraceBuffer>>> {
        CURRENT.with(|c| c.borrow_mut().take())
    }

    /// True when a scope is open on this thread.
    pub fn active() -> bool {
        CURRENT.with(|c| c.borrow().is_some())
    }

    pub(super) fn current() -> Option<Arc<Mutex<TraceBuffer>>> {
        CURRENT.with(|c| c.borrow().clone())
    }
}

/// Process-wide programmatic tracing override, OR-ed with the
/// `HAWKEYE_TRACE` environment variable by [`env_enabled`].
static FORCED: AtomicBool = AtomicBool::new(false);

/// Forces tracing on (or back off) for this process regardless of the
/// `HAWKEYE_TRACE` environment variable. The report pipeline
/// (`hawkeye-report`) uses this to capture journals from an in-process
/// suite run without mutating the environment; tests that need captured
/// journals should keep using `run_scenarios_capturing`, which scopes the
/// override per call instead of process-globally.
pub fn set_forced(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// True when tracing is requested: either the `HAWKEYE_TRACE` environment
/// variable is set, non-empty, and not `"0"` (read once per process), or
/// [`set_forced`] turned tracing on programmatically.
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    FORCED.load(Ordering::Relaxed)
        || *ENABLED.get_or_init(|| {
            std::env::var("HAWKEYE_TRACE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            at: Cycles::new(i),
            pid: 1,
            machine: 0,
            event: TraceEvent::PreZero { pages: i },
        }
    }

    #[test]
    fn ring_keeps_newest_on_wraparound() {
        let mut buf = TraceBuffer::new(4);
        for i in 0..7 {
            buf.push(rec(i));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 3);
        let (records, dropped) = buf.drain();
        assert_eq!(dropped, 3);
        let ats: Vec<u64> = records.iter().map(|r| r.at.get()).collect();
        assert_eq!(ats, vec![3, 4, 5, 6]);
    }

    #[test]
    fn ring_under_capacity_preserves_order() {
        let mut buf = TraceBuffer::new(8);
        for i in 0..5 {
            buf.push(rec(i));
        }
        let (records, dropped) = buf.drain();
        assert_eq!(dropped, 0);
        let ats: Vec<u64> = records.iter().map(|r| r.at.get()).collect();
        assert_eq!(ats, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut buf = TraceBuffer::new(0);
        buf.push(rec(1));
        buf.push(rec(2));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 1);
        let (records, _) = buf.drain();
        assert_eq!(records[0].at.get(), 2);
    }

    #[test]
    fn tail_cursors_over_a_wrapping_ring() {
        let mut buf = TraceBuffer::new(4);
        for i in 0..3 {
            buf.push(rec(i));
        }
        assert_eq!(buf.pushed(), 3);
        let ats: Vec<u64> = buf.tail(0).iter().map(|r| r.at.get()).collect();
        assert_eq!(ats, vec![0, 1, 2]);
        let cursor = buf.pushed();
        for i in 3..9 {
            buf.push(rec(i));
        }
        // Sequences 3..9 were pushed since the cursor; 3 and 4 were
        // overwritten (capacity 4 keeps 5..9's newest four).
        assert_eq!(buf.pushed(), 9);
        let ats: Vec<u64> = buf.tail(cursor).iter().map(|r| r.at.get()).collect();
        assert_eq!(ats, vec![5, 6, 7, 8]);
        assert!(buf.tail(buf.pushed()).is_empty(), "caught-up cursor sees nothing");
    }

    #[test]
    fn detach_keeps_sinks_live_and_drain_shared_collects() {
        scope::begin(16);
        let sink = TraceSink::attach_current();
        sink.emit(1, TraceEvent::PreZero { pages: 1 });
        let shared = scope::detach().expect("buffer");
        assert!(!scope::active(), "detach closes the thread scope");
        // The sink keeps emitting into the detached buffer.
        sink.emit(1, TraceEvent::PreZero { pages: 2 });
        assert_eq!(shared.lock().expect("buf").pushed(), 2);
        let journal = Journal::drain_shared(&shared);
        assert_eq!(journal.records.len(), 2);
        assert_eq!(journal.dropped, 0);
        // Post-drain emits land in the 1-slot replacement ring, harmlessly.
        sink.emit(1, TraceEvent::Oom);
        assert_eq!(Journal::drain_shared(&shared).records.len(), 1);
    }

    #[test]
    fn disabled_sink_is_noop() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.set_now(Cycles::new(99));
        sink.emit(1, TraceEvent::Oom);
        // Nothing to observe: the point is that neither call panics or
        // allocates a buffer.
        assert!(!sink.is_enabled());
    }

    #[test]
    fn attach_outside_scope_is_disabled() {
        assert!(!scope::active());
        let sink = TraceSink::attach_current();
        assert!(!sink.is_enabled());
        sink.emit(1, TraceEvent::Oom);
        assert!(scope::end().is_none());
    }

    #[test]
    fn scope_roundtrip_collects_records() {
        scope::begin(16);
        assert!(scope::active());
        let a = TraceSink::attach_current();
        let b = TraceSink::attach_current();
        assert!(a.is_enabled() && b.is_enabled());
        a.set_now(Cycles::new(10));
        a.emit(1, TraceEvent::Fault { vpn: 7, huge: false, cow: true, cycles: 300 });
        b.set_now(Cycles::new(20));
        b.emit(2, TraceEvent::Demote { hvpn: 3, cycles: 0 });
        let journal = scope::end().expect("journal");
        assert!(!scope::active());
        assert_eq!(journal.dropped, 0);
        assert_eq!(journal.records.len(), 2);
        // Machine ids were handed out in creation order.
        assert_eq!(journal.records[0].machine, 0);
        assert_eq!(journal.records[1].machine, 1);
        assert_eq!(journal.records[0].at, Cycles::new(10));
        assert_eq!(journal.records[1].pid, 2);
        // Stale sinks keep working after the scope closed.
        a.emit(1, TraceEvent::Oom);
        assert!(scope::end().is_none());
    }

    #[test]
    fn clones_share_the_clock() {
        scope::begin(16);
        let sink = TraceSink::attach_current();
        let clone = sink.clone();
        sink.set_now(Cycles::new(42));
        clone.emit(1, TraceEvent::Oom);
        let journal = scope::end().expect("journal");
        assert_eq!(journal.records[0].at, Cycles::new(42));
    }

    #[test]
    fn from_fields_inverts_fields_for_every_variant() {
        let events = vec![
            TraceEvent::Fault { vpn: 7, huge: true, cow: false, cycles: 6095 },
            TraceEvent::Promote { hvpn: 5, copied: 3, filled: 2, cycles: 100 },
            TraceEvent::Demote { hvpn: 9, cycles: 0 },
            TraceEvent::Compact { migrated: 128, huge_blocks: 4 },
            TraceEvent::PreZero { pages: 512 },
            TraceEvent::Dedup { hvpn: 1, zero_pages: 400, demoted: true, cycles: 77 },
            TraceEvent::Oom,
            TraceEvent::QuantumEnd { load_walk: 1, store_walk: 2, unhalted: 3, walks: 4 },
            TraceEvent::CycleSample {
                walk: 1,
                fault: 2,
                zero: 3,
                copy: 4,
                scan: 5,
                compact: 6,
                dedup: 7,
                idle: 8,
                unhalted: 36,
                daemon: 9,
            },
            TraceEvent::Contention {
                core: 3,
                role: 1,
                acquisitions: 250,
                cas_retries: 17,
                stall_cycles: 42_000,
            },
            TraceEvent::SloBreach { rule: 2, epoch: 5, cohort: 0 },
            TraceEvent::SloRecover { rule: 2, epoch: 7, cohort: 1 },
        ];
        for ev in events {
            let fields: Vec<(String, u64)> =
                ev.fields().into_iter().map(|(k, v)| (k.to_string(), v)).collect();
            let back = TraceEvent::from_fields(ev.kind(), &fields).expect("round-trip");
            assert_eq!(back, ev);
        }
        let none: &[(&str, u64)] = &[];
        assert!(TraceEvent::from_fields("nonsense", none).is_none());
        assert!(TraceEvent::from_fields("fault", none).is_none(), "missing fields reject");
    }

    #[test]
    fn event_kind_and_fields_are_stable() {
        let ev = TraceEvent::Promote { hvpn: 5, copied: 3, filled: 2, cycles: 100 };
        assert_eq!(ev.kind(), "promote");
        assert_eq!(
            ev.fields(),
            vec![("hvpn", 5), ("copied", 3), ("filled", 2), ("cycles", 100)]
        );
        assert_eq!(TraceEvent::Oom.kind(), "oom");
        assert!(TraceEvent::Oom.fields().is_empty());
        let slo = TraceEvent::SloBreach { rule: 1, epoch: 4, cohort: 0 };
        assert_eq!(slo.kind(), "slo_breach");
        assert_eq!(slo.fields(), vec![("rule", 1), ("epoch", 4), ("cohort", 0)]);
        assert_eq!(
            TraceEvent::SloRecover { rule: 1, epoch: 6, cohort: 0 }.kind(),
            "slo_recover"
        );
    }
}
