//! Shared experiment drivers for the HawkEye bench harness.
//!
//! Every paper table and figure has a `[[bench]]` target (run by
//! `cargo bench`) that prints its reproduction as a text table. The
//! helpers here keep those targets small: policy construction by name,
//! standard fragmented-machine setup, single-workload runs, and steady
//! -state ("dirty free memory") preparation for the fast-fault
//! experiments.
//!
//! Since the scenario-engine port, every target expresses its policy ×
//! workload × config matrix as [`Scenario`]s: independent simulations fan
//! out across cores via the in-tree worker pool ([`pool`]) and reassemble
//! in submission order, so output is byte-identical at any
//! `HAWKEYE_BENCH_THREADS` setting while the suite's wall-clock scales
//! with core count. [`Report`] prints the text table and writes the JSON
//! summary (`target/bench-results/<target>.json`) every target now emits.

#![warn(missing_docs)]

pub mod json;
pub mod pool;
pub mod scenario;
pub mod suite;
pub mod wallclock;

pub use json::Json;
pub use scenario::{
    cycles_json, queue_obs_doc, queue_trace_journals, run_scenarios, run_scenarios_capturing,
    run_scenarios_with, take_metric_snapshots, take_queued_obs_docs, take_queued_trace_journals,
    trace_json, write_json, write_json_in, Report, Row, Scenario,
};

use hawkeye_core::{HawkEye, HawkEyeConfig};
use hawkeye_kernel::{BasePagesOnly, HugePagePolicy, KernelConfig, Machine, Simulator, Workload};
use hawkeye_mem::{AllocPref, PageContent, Pfn};
use hawkeye_metrics::Cycles;
use hawkeye_policies::{FreeBsd, Ingens, IngensConfig, LinuxThp};

/// The policies the evaluation compares, by paper name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No THP ("Linux-4KB").
    Linux4k,
    /// Linux THP ("Linux-2MB").
    Linux2m,
    /// FreeBSD reservations.
    FreeBsd,
    /// Ingens, adaptive FMFI threshold.
    Ingens,
    /// Ingens fixed 90 % threshold.
    Ingens90,
    /// Ingens fixed 50 % threshold.
    Ingens50,
    /// HawkEye, access-coverage estimation.
    HawkEyeG,
    /// HawkEye, hardware-counter driven.
    HawkEyePmu,
    /// HawkEye with base-page faults only (async pre-zeroing isolated).
    HawkEye4k,
}

impl PolicyKind {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Linux4k => "Linux-4KB",
            PolicyKind::Linux2m => "Linux-2MB",
            PolicyKind::FreeBsd => "FreeBSD",
            PolicyKind::Ingens => "Ingens",
            PolicyKind::Ingens90 => "Ingens-90%",
            PolicyKind::Ingens50 => "Ingens-50%",
            PolicyKind::HawkEyeG => "HawkEye-G",
            PolicyKind::HawkEyePmu => "HawkEye-PMU",
            PolicyKind::HawkEye4k => "HawkEye-4KB",
        }
    }

    /// Builds a fresh policy instance.
    pub fn build(self) -> Box<dyn HugePagePolicy> {
        match self {
            PolicyKind::Linux4k => Box::new(BasePagesOnly),
            PolicyKind::Linux2m => Box::new(LinuxThp::default()),
            PolicyKind::FreeBsd => Box::new(FreeBsd::default()),
            PolicyKind::Ingens => Box::new(Ingens::default()),
            PolicyKind::Ingens90 => Box::new(Ingens::new(IngensConfig::fixed_90())),
            PolicyKind::Ingens50 => Box::new(Ingens::new(IngensConfig::fixed_50())),
            PolicyKind::HawkEyeG => Box::new(HawkEye::new(HawkEyeConfig::default())),
            PolicyKind::HawkEyePmu => Box::new(HawkEye::new(HawkEyeConfig::pmu())),
            PolicyKind::HawkEye4k => Box::new(HawkEye::new(HawkEyeConfig {
                huge_faults: false,
                ..Default::default()
            })),
        }
    }

    /// Whether the policy maintains the pre-zeroed pool (buddy cross-merge
    /// off).
    pub fn wants_zero_pool(self) -> bool {
        matches!(
            self,
            PolicyKind::HawkEyeG | PolicyKind::HawkEyePmu | PolicyKind::HawkEye4k
        )
    }

    /// Kernel config matched to the policy's allocator expectations.
    pub fn config(self, mib: u64) -> KernelConfig {
        KernelConfig {
            cross_merge: !self.wants_zero_pool(),
            ..KernelConfig::with_mib(mib)
        }
    }
}

/// Result of a single-workload run.
pub struct RunOutcome {
    /// The finished simulator (for further inspection).
    pub sim: Simulator,
    /// Pid of the measured workload.
    pub pid: u32,
}

impl RunOutcome {
    /// Wall-clock completion time of the workload in simulated seconds.
    pub fn exec_secs(&self) -> f64 {
        let p = self.sim.machine().process(self.pid).expect("pid valid");
        p.finish_time()
            .unwrap_or(self.sim.machine().now())
            .as_secs()
    }

    /// CPU seconds the workload consumed.
    pub fn cpu_secs(&self) -> f64 {
        self.sim
            .machine()
            .process(self.pid)
            .expect("pid valid")
            .cpu_time()
            .as_secs()
    }

    /// Page faults taken.
    pub fn faults(&self) -> u64 {
        self.sim
            .machine()
            .process(self.pid)
            .expect("pid valid")
            .stats()
            .faults
    }

    /// Seconds spent in the fault handler.
    pub fn fault_secs(&self) -> f64 {
        self.sim
            .machine()
            .process(self.pid)
            .expect("pid valid")
            .stats()
            .fault_cycles
            .as_secs()
    }

    /// Mean fault latency in microseconds.
    pub fn avg_fault_us(&self) -> f64 {
        let s = self
            .sim
            .machine()
            .process(self.pid)
            .expect("pid valid")
            .stats();
        if s.faults == 0 {
            return 0.0;
        }
        s.fault_cycles.as_micros() / s.faults as f64
    }

    /// Lifetime MMU overhead (Table 4 formula) as a fraction.
    pub fn mmu_overhead(&self) -> f64 {
        self.sim.machine().mmu().lifetime(self.pid).mmu_overhead()
    }
}

/// Runs one workload to completion (bounded by `max_secs`) on a fresh
/// machine under `kind`'s policy. `fragment` optionally pre-fragments
/// memory with the standard antagonist (fill, free-fraction, seed 7).
pub fn run_one(
    kind: PolicyKind,
    mib: u64,
    fragment: Option<(f64, f64)>,
    max_secs: f64,
    workload: Box<dyn Workload>,
) -> RunOutcome {
    let mut cfg = kind.config(mib);
    cfg.max_time = Cycles::from_secs(max_secs);
    let mut sim = Simulator::new(cfg, kind.build());
    if let Some((fill, free)) = fragment {
        sim.machine_mut().fragment(fill, free, 7);
    }
    let pid = sim.spawn(workload);
    sim.run();
    RunOutcome { sim, pid }
}

/// Dirties all currently-free memory (allocate everything, write, free),
/// modeling a steady-state machine where freed memory is never zero —
/// the environment in which async pre-zeroing matters (Table 8).
pub fn dirty_free_memory(m: &mut Machine) {
    let mut blocks = Vec::new();
    while let Some(order) = m.pm().largest_free_order() {
        match m.pm_mut().alloc(order, AllocPref::NonZeroed) {
            Ok(a) => blocks.push(a),
            Err(_) => break,
        }
    }
    for a in &blocks {
        for i in 0..a.order.pages() {
            m.pm_mut()
                .frame_mut(Pfn(a.pfn.0 + i))
                .set_content(PageContent::non_zero(5));
        }
    }
    for a in blocks {
        m.pm_mut().free(a.pfn, a.order);
    }
    debug_assert_eq!(m.pm().zeroed_free_pages(), 0);
}

/// Formats seconds with 2 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a speedup the way the paper does (`1.14x`).
pub fn spd(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a downsampled time series as two aligned columns (one block,
/// trailing newline included) — scenario rows carry these blocks back to
/// the ordered printer.
pub fn format_series(title: &str, series: &hawkeye_metrics::TimeSeries, points: usize) -> String {
    let mut out = format!("-- {title} --\n");
    for s in series.downsample(points) {
        out.push_str(&format!("  t={:>8.2}s  {:>14.1}\n", s.secs, s.value));
    }
    out
}

/// Prints a downsampled time series as two aligned columns.
pub fn print_series(title: &str, series: &hawkeye_metrics::TimeSeries, points: usize) {
    print!("{}", format_series(title, series, points));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_workloads::Spinup;

    #[test]
    fn all_policies_build_and_label() {
        for k in [
            PolicyKind::Linux4k,
            PolicyKind::Linux2m,
            PolicyKind::FreeBsd,
            PolicyKind::Ingens,
            PolicyKind::Ingens90,
            PolicyKind::Ingens50,
            PolicyKind::HawkEyeG,
            PolicyKind::HawkEyePmu,
            PolicyKind::HawkEye4k,
        ] {
            let p = k.build();
            assert_eq!(p.name(), k.label());
        }
    }

    #[test]
    fn run_one_completes_quick_workload() {
        let out = run_one(
            PolicyKind::Linux4k,
            64,
            None,
            10.0,
            Box::new(Spinup::new("s", 1024)),
        );
        assert!(out.exec_secs() > 0.0);
        assert_eq!(out.faults(), 1024);
        assert!(out.avg_fault_us() > 0.0);
    }

    #[test]
    fn dirty_free_memory_empties_zero_pool() {
        let mut m = Machine::new(KernelConfig::small());
        dirty_free_memory(&mut m);
        assert_eq!(m.pm().zeroed_free_pages(), 0);
        assert_eq!(m.pm().allocated_pages(), 1);
        m.pm().check_invariants();
    }

    #[test]
    fn fragmented_runs_disable_fault_time_huge_pages() {
        let out = run_one(
            PolicyKind::Linux2m,
            128,
            Some((1.0, 0.4)),
            5.0,
            Box::new(Spinup::new("s", 2048)),
        );
        let p = out.sim.machine().process(out.pid).unwrap();
        assert_eq!(
            p.stats().huge_faults,
            0,
            "no contiguity after fragmentation"
        );
    }
}
