//! Minimal JSON output for machine-readable bench results.
//!
//! No serde: the bench harness must stay offline-buildable, and all it
//! needs is deterministic serialization of headline numbers. Object keys
//! keep insertion order, numbers render via Rust's shortest-roundtrip
//! `f64` formatting, so the same results always produce the same bytes —
//! the determinism test compares these strings across worker counts.

use std::fmt;
use std::path::PathBuf;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// An integer value (exact for |n| < 2^53).
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Appends a field (no-op on non-objects).
    pub fn push(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            pairs.push((key.to_string(), value));
        }
    }
}

/// Appends `s` JSON-escaped (quoted) to `out`. Unescaped stretches are
/// copied in bulk; only the writer's escape set (`"`, `\`, control chars)
/// goes through per-character handling.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'"' && b != b'\\' && b >= 0x20 {
            continue;
        }
        out.push_str(&s[start..i]);
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            _ => {
                out.push_str("\\u00");
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.push(HEX[(b >> 4) as usize] as char);
                out.push(HEX[(b & 0xf) as usize] as char);
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Appends a finite `f64` to `out` exactly as Rust's `{}` formatting
/// renders it. Integer values (the overwhelmingly common case — every
/// counter goes through [`Json::int`]) take a manual decimal fast path;
/// fractional values fall back to the standard shortest-roundtrip
/// formatter.
pub(crate) fn num_into(x: f64, out: &mut String) {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x == x.trunc() && x.abs() < EXACT && !(x == 0.0 && x.is_sign_negative()) {
        let mut n = x as i64;
        if n < 0 {
            out.push('-');
            n = -n;
        }
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut n = n as u64;
        loop {
            i -= 1;
            buf[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
    } else {
        use fmt::Write as _;
        write!(out, "{x}").expect("writing to String cannot fail");
    }
}

impl Json {
    /// Serializes into `out`. This is the writer the artifact paths use:
    /// byte-for-byte the same output as `Display`, but appending to a
    /// `String` directly instead of going through the formatter machinery
    /// (which costs a virtual dispatch per token — measurable on
    /// multi-megabyte trace documents).
    pub fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) if x.is_finite() => num_into(*x, out),
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

/// Directory bench results are written to:
/// `HAWKEYE_BENCH_RESULTS` override, else `CARGO_TARGET_DIR`, else the
/// workspace `target/`, each with a `bench-results/` subdirectory.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HAWKEYE_BENCH_RESULTS") {
        return PathBuf::from(dir);
    }
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    target.join("bench-results")
}

/// Writes `<results_dir>/<target>.json` and returns the path. Errors are
/// returned, not panicked: a read-only checkout still gets its tables.
pub fn write_results(target: &str, json: &Json) -> std::io::Result<PathBuf> {
    write_results_in(&results_dir(), target, json)
}

/// Writes `<dir>/<stem>.json` and returns the path. The explicit-dir
/// variant of [`write_results`], used by `hawkeye-report` (and its
/// tests) to keep pipeline runs hermetic.
pub fn write_results_in(dir: &std::path::Path, stem: &str, json: &Json) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.json"));
    let mut doc = String::new();
    json.write_into(&mut doc);
    doc.push('\n');
    std::fs::write(&path, doc)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_values() {
        let j = Json::obj(vec![
            ("name", Json::str("fig 1 \"bloat\"")),
            ("rows", Json::Arr(vec![Json::int(3), Json::num(1.5), Json::Bool(true), Json::Null])),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig 1 \"bloat\"","rows":[3,1.5,true,null],"nan":null}"#
        );
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(Json::str("a\nb\t\u{1}").to_string(), "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn push_extends_objects_only() {
        let mut j = Json::obj(vec![]);
        j.push("k", Json::int(1));
        assert_eq!(j.to_string(), r#"{"k":1}"#);
        let mut arr = Json::Arr(vec![]);
        arr.push("ignored", Json::Null);
        assert_eq!(arr.to_string(), "[]");
    }

    #[test]
    fn identical_values_serialize_identically() {
        let build = || Json::obj(vec![("x", Json::num(0.30000000000000004))]);
        assert_eq!(build().to_string(), build().to_string());
    }

    #[test]
    fn fast_number_path_matches_std_formatting() {
        // The integer fast path in `num_into` must render exactly what
        // `{}` on the f64 renders — including sign edge cases the fast
        // path declines (negative zero) and magnitudes past 2^53.
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            53253.0,
            2.3e9,
            9_007_199_254_740_991.0,
            9_007_199_254_740_992.0,
            1e300,
            -1.5,
            0.30000000000000004,
            1e-12,
            u64::MAX as f64,
        ] {
            let mut fast = String::new();
            num_into(x, &mut fast);
            assert_eq!(fast, format!("{x}"), "mismatch for {x:e}");
        }
    }

    #[test]
    fn write_into_matches_display() {
        let j = Json::obj(vec![
            ("s", Json::str("a\"b\\c\nd\u{1}é")),
            ("n", Json::Arr(vec![Json::int(7), Json::num(-2.5), Json::Num(f64::INFINITY)])),
            ("b", Json::Bool(false)),
            ("z", Json::Null),
        ]);
        let mut fast = String::new();
        j.write_into(&mut fast);
        assert_eq!(fast, j.to_string());
        assert_eq!(
            fast,
            "{\"s\":\"a\\\"b\\\\c\\nd\\u0001é\",\"n\":[7,-2.5,null],\"b\":false,\"z\":null}"
        );
    }
}
