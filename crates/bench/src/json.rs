//! Minimal JSON output for machine-readable bench results.
//!
//! No serde: the bench harness must stay offline-buildable, and all it
//! needs is deterministic serialization of headline numbers. Object keys
//! keep insertion order, numbers render via Rust's shortest-roundtrip
//! `f64` formatting, so the same results always produce the same bytes —
//! the determinism test compares these strings across worker counts.

use std::fmt;
use std::path::PathBuf;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// An integer value (exact for |n| < 2^53).
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Appends a field (no-op on non-objects).
    pub fn push(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            pairs.push((key.to_string(), value));
        }
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Directory bench results are written to:
/// `HAWKEYE_BENCH_RESULTS` override, else `CARGO_TARGET_DIR`, else the
/// workspace `target/`, each with a `bench-results/` subdirectory.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HAWKEYE_BENCH_RESULTS") {
        return PathBuf::from(dir);
    }
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    target.join("bench-results")
}

/// Writes `<results_dir>/<target>.json` and returns the path. Errors are
/// returned, not panicked: a read-only checkout still gets its tables.
pub fn write_results(target: &str, json: &Json) -> std::io::Result<PathBuf> {
    write_results_in(&results_dir(), target, json)
}

/// Writes `<dir>/<stem>.json` and returns the path. The explicit-dir
/// variant of [`write_results`], used by `hawkeye-report` (and its
/// tests) to keep pipeline runs hermetic.
pub fn write_results_in(dir: &std::path::Path, stem: &str, json: &Json) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_values() {
        let j = Json::obj(vec![
            ("name", Json::str("fig 1 \"bloat\"")),
            ("rows", Json::Arr(vec![Json::int(3), Json::num(1.5), Json::Bool(true), Json::Null])),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig 1 \"bloat\"","rows":[3,1.5,true,null],"nan":null}"#
        );
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(Json::str("a\nb\t\u{1}").to_string(), "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn push_extends_objects_only() {
        let mut j = Json::obj(vec![]);
        j.push("k", Json::int(1));
        assert_eq!(j.to_string(), r#"{"k":1}"#);
        let mut arr = Json::Arr(vec![]);
        arr.push("ignored", Json::Null);
        assert_eq!(arr.to_string(), "[]");
    }

    #[test]
    fn identical_values_serialize_identically() {
        let build = || Json::obj(vec![("x", Json::num(0.30000000000000004))]);
        assert_eq!(build().to_string(), build().to_string());
    }
}
