//! The in-tree scoped worker pool, re-exported from its new home.
//!
//! The pool moved to [`hawkeye_fleet::pool`] so the fleet orchestrator
//! can fan host groups out across workers without depending on the bench
//! harness. This module keeps every `crate::pool::...` path working; the
//! semantics (submission-order results, `HAWKEYE_BENCH_THREADS`
//! override) are unchanged and still pinned by the tests next to the
//! implementation.

pub use hawkeye_fleet::pool::{run_ordered, worker_threads, Job};
