//! Fig. 11: memory-overcommitted VMs — HawkEye's pre-zeroing + host KSM
//! vs a balloon driver vs nothing.
//!
//! With total VM memory at 1.5× host memory, free guest memory must flow
//! back to the host somehow or the system swaps. The paper shows guest
//! async pre-zeroing plus host same-page merging matching ballooning's
//! throughput (2.3× for Redis) without any paravirtual interface.

use crate::{run_scenarios_with, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_core::{HawkEye, HawkEyeConfig};
use hawkeye_kernel::{HugePagePolicy, Workload};
use hawkeye_policies::LinuxThp;
use hawkeye_virt::{VirtConfig, VirtSystem, VmSpec};
use hawkeye_workloads::{HotspotWorkload, NpbKernel, RedisKv, RedisOp};

/// Phase-churning key-value store: allocates, releases, then serves — the
/// release phase is what KSM/balloon can recover.
fn kv(seed: u64) -> Box<dyn Workload> {
    Box::new(RedisKv::new(
        24 * 1024,
        vec![
            RedisOp::Insert {
                keys: 21 * 1024,
                value_pages: 1,
                think: 300,
            },
            RedisOp::DeleteFrac { fraction: 0.7 },
            RedisOp::Serve {
                requests: 400_000,
                think: 2_000,
            },
        ],
        seed,
    ))
}

#[derive(Clone, Copy)]
struct Config {
    label: &'static str,
    guests_hawkeye: bool,
    ksm: bool,
    balloon: bool,
}

fn guest_policy(hawkeye: bool) -> Box<dyn HugePagePolicy> {
    if hawkeye {
        Box::new(HawkEye::new(HawkEyeConfig::default()))
    } else {
        Box::new(LinuxThp::default())
    }
}

fn run(c: Config) -> (Vec<f64>, u64, u64) {
    let vcfg = VirtConfig {
        ksm: c.ksm,
        balloon: c.balloon,
        ..Default::default()
    };
    // Host 256 MiB; 4 VMs x 96 MiB = 1.5x overcommit.
    let mut sys = VirtSystem::with_virt_config(
        PolicyKind::Linux2m.config(256),
        Box::new(LinuxThp::default()),
        vcfg,
    );
    let mut pids = Vec::new();
    let specs: Vec<Box<dyn Workload>> = vec![
        kv(61),
        kv(62), // the "MongoDB" stand-in
        Box::new(HotspotWorkload::pagerank(36, 1500)),
        Box::new(NpbKernel::cg(36, 1500)),
    ];
    for w in specs {
        let vm = sys.add_vm(VmSpec { frames: 24 * 1024 }, guest_policy(c.guests_hawkeye));
        let pid = sys.spawn_in_vm(vm, w);
        pids.push((vm, pid));
    }
    sys.run();
    let times: Vec<f64> = pids
        .iter()
        .map(|(vm, pid)| {
            sys.guest(*vm)
                .process(*pid)
                .and_then(|p| p.finish_time())
                .unwrap_or_else(|| sys.guest(*vm).now())
                .as_secs()
        })
        .collect();
    let st = sys.virt_stats();
    (times, st.swap_outs, st.ksm_merged + st.ballooned)
}

/// Builds the `fig11` report: overcommitted VMs under pre-zeroing + host KSM.
pub fn report(threads: usize) -> Report {
    let configs = [
        Config {
            label: "no balloon, Linux guests",
            guests_hawkeye: false,
            ksm: false,
            balloon: false,
        },
        Config {
            label: "balloon, Linux guests",
            guests_hawkeye: false,
            ksm: false,
            balloon: true,
        },
        Config {
            label: "HawkEye guests + host KSM",
            guests_hawkeye: true,
            ksm: true,
            balloon: false,
        },
    ];
    let names = ["Redis", "MongoDB", "PageRank", "cg"];
    // Each configuration is one heavyweight four-VM system — three
    // scenarios fan out; the no-balloon result is the speedup base.
    let scenarios: Vec<Scenario<(Vec<f64>, u64, u64)>> = configs
        .iter()
        .map(|c| {
            Scenario::new(c.label, {
                let c = *c;
                move || run(c)
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);
    let base = &results[0];

    let mut report = Report::new(
        "fig11_overcommit",
        "Fig. 11: overcommitted VMs (4 x 96 MiB on a 256 MiB host), perf vs no-balloon",
        vec![
            "Configuration",
            "Redis",
            "MongoDB",
            "PageRank",
            "cg",
            "swap-outs",
            "pages recovered",
        ],
    );
    for (c, (times, swaps, recovered)) in configs.iter().zip(&results) {
        let mut row = vec![c.label.to_string()];
        let mut speedups = Vec::new();
        for (i, time) in times.iter().enumerate().take(names.len()) {
            row.push(format!("{:.2}x", base.0[i] / time));
            speedups.push((names[i], Json::num(base.0[i] / time)));
        }
        row.push(swaps.to_string());
        row.push(recovered.to_string());
        let mut json = vec![("configuration", Json::str(c.label))];
        json.extend(speedups);
        json.push(("swap_outs", Json::int(*swaps)));
        json.push(("pages_recovered", Json::int(*recovered)));
        report.add(Row::new(row).with_json(Json::obj(json)));
    }
    report.footer(
        "(paper, Fig. 11: HawkEye+KSM gives Redis 2.3x and MongoDB 1.42x over\n\
         no-balloon, close to the balloon-driver configuration; PageRank dips\n\
         slightly from extra COW faults)",
    );
    report
}
