//! HPC stencil: A64FX/FLASH-style multi-grid sweeps (arXiv 2309.04652).
//!
//! The published study runs FLASH's Sedov explosion on A64FX with and
//! without huge pages and finds the *opposite* of the pointer-chasing
//! story: dTLB misses collapse by orders of magnitude, yet runtime
//! improves by only single-digit percent, because sequential unit-stride
//! sweeps amortize one walk across a whole page and the prefetcher hides
//! most of what is left. This target pins that decoupling — a large
//! MMU-overhead ratio next to a small speedup — on an unfragmented
//! machine (a freshly-booted HPC node), which is where the paper's
//! fault-time huge pages and HawkEye's promotion should converge.

use crate::{pct, run_one, run_scenarios_with, secs, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_workloads::StencilSweep;

/// Finest-grid span (2 MB regions) and V-cycle count for the suite run.
const REGIONS: u64 = 16;
const CYCLES: u64 = 96;

const KINDS: [PolicyKind; 4] = [
    PolicyKind::Linux4k, // baseline first: speedups divide by this row
    PolicyKind::Linux2m,
    PolicyKind::HawkEyeG,
    PolicyKind::HawkEyePmu,
];

/// Builds the `hpc_stencil` report: one clean-machine run per policy,
/// pairing the walk-cycle collapse with the (much smaller) speedup.
pub fn report(threads: usize) -> Report {
    report_with(REGIONS, CYCLES, threads)
}

/// [`report`] at an explicit scale — the byte-determinism test runs a
/// smaller grid so the sweep stays affordable under the dev profile.
pub fn report_with(regions: u64, cycles: u64, threads: usize) -> Report {
    let scenarios: Vec<Scenario<(f64, f64, u64, f64)>> = KINDS
        .iter()
        .map(|kind| {
            let kind = *kind;
            Scenario::new(format!("flash-mg {}", kind.label()), move || {
                let out = run_one(
                    kind,
                    256,
                    None,
                    300.0,
                    Box::new(StencilSweep::flash(regions, cycles)),
                );
                (
                    out.exec_secs(),
                    out.mmu_overhead(),
                    out.faults(),
                    out.avg_fault_us(),
                )
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "hpc_stencil",
        "HPC stencil: FLASH-like multi-grid V-cycles, clean machine",
        vec![
            "Policy",
            "exec (s)",
            "speedup vs 4KB",
            "MMU ovh",
            "walk reduction vs 4KB",
            "faults",
            "avg fault (us)",
        ],
    );
    let (t4k, mmu4k) = (results[0].0, results[0].1);
    for (ki, kind) in KINDS.iter().enumerate() {
        let (exec, mmu, faults, fault_us) = results[ki];
        let walk_red = if mmu > 0.0 { mmu4k / mmu } else { 0.0 };
        report.add(
            Row::new(vec![
                kind.label().to_string(),
                secs(exec),
                spd(t4k / exec),
                pct(mmu),
                format!("{walk_red:.1}x"),
                faults.to_string(),
                format!("{fault_us:.2}"),
            ])
            .with_json(Json::obj(vec![
                ("policy", Json::str(kind.label())),
                ("exec_secs", Json::num(exec)),
                ("speedup_vs_4k", Json::num(t4k / exec)),
                ("mmu_overhead", Json::num(mmu)),
                ("walk_reduction_vs_4k", Json::num(walk_red)),
                ("faults", Json::int(faults)),
                ("avg_fault_us", Json::num(fault_us)),
            ])),
        );
    }
    report.footer(
        "(arXiv 2309.04652: hugepages cut FLASH's dTLB misses by orders of\n\
         magnitude but buy only single-digit-% runtime on A64FX — sequential\n\
         sweeps amortize the walks huge pages remove; the report checks pin\n\
         that big-ratio/small-speedup decoupling, DESIGN.md §17)",
    );
    report
}
