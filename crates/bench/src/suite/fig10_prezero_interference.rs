//! Fig. 10: worst-case interference of the async pre-zeroing thread, with
//! and without non-temporal (caching-bypass) stores.
//!
//! The paper co-runs workloads with a thread zeroing 0.25M pages/s
//! (1 GB/s) on a sibling core and measures e.g. omnetpp slowing 27 % with
//! caching stores but only 6 % with non-temporal hints; the production
//! daemon is rate-limited ~25× lower, shrinking both numbers further.

use crate::{run_scenarios_with, Json, Report, Row, Scenario};
use hawkeye_tlb::{InterferenceModel, StoreMode};

/// Builds the `fig10` report: worst-case interference of the async pre-zeroing thread.
pub fn report(threads: usize) -> Report {
    // (workload, LLC sensitivity, bandwidth sensitivity) — profiles chosen
    // to match the paper's measured slowdowns at 1 GB/s.
    let profiles: Vec<(&'static str, f64, f64)> = vec![
        ("NPB (avg)", 0.05, 1.5),
        ("PARSEC (avg)", 0.04, 1.2),
        ("omnetpp", 0.21, 3.0),
        ("xalancbmk", 0.15, 2.5),
        ("mcf", 0.12, 2.8),
        ("cactusADM", 0.08, 2.0),
        ("Redis", 0.06, 1.0),
        ("XSBench", 0.05, 1.8),
    ];
    let scenarios: Vec<Scenario<Row>> = profiles
        .into_iter()
        .map(|(name, llc, bw)| {
            Scenario::new(name, move || {
                let m = InterferenceModel::haswell();
                let full_rate = 0.25e6 * 4096.0; // 1 GB/s, the paper's stress test
                let limited = 10_000.0 * 4096.0; // production rate limit (~41 MB/s)
                let temporal = m.slowdown(llc, bw, StoreMode::Temporal, full_rate) - 1.0;
                let nt = m.slowdown(llc, bw, StoreMode::NonTemporal, full_rate) - 1.0;
                let ntlim = m.slowdown(llc, bw, StoreMode::NonTemporal, limited) - 1.0;
                Row::new(vec![
                    name.to_string(),
                    format!("{:.1}%", temporal * 100.0),
                    format!("{:.1}%", nt * 100.0),
                    format!("{:.2}%", ntlim * 100.0),
                ])
                .with_json(Json::obj(vec![
                    ("workload", Json::str(name)),
                    ("slowdown_temporal", Json::num(temporal)),
                    ("slowdown_non_temporal", Json::num(nt)),
                    ("slowdown_non_temporal_rate_limited", Json::num(ntlim)),
                ]))
            })
        })
        .collect();
    let mut report = Report::new(
        "fig10_prezero_interference",
        "Fig. 10: co-runner slowdown from async pre-zeroing at 1 GB/s",
        vec![
            "Workload",
            "caching stores",
            "non-temporal",
            "non-temporal @10k pages/s",
        ],
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer(
        "(paper, Fig. 10: omnetpp 27% with caching stores vs 6% non-temporal;\n rate-limited production daemon: proportionally smaller)",
    );
    report
}
