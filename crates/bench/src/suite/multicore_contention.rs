//! Multi-core scaling: one machine, many simulated cores, contending
//! daemons (§4 "true multi-core machines").
//!
//! The paper's HawkEye daemons (khugepaged, the pre-zeroing thread) run
//! on their own cores and contend with application cores for page-state
//! locks and buddy arenas. This target runs the same contending workload
//! at 1, 2, 4 and 8 simulated cores under HawkEye-G and Linux-2MB and
//! tabulates what scaling the cores *adds* — lock acquisitions, modeled
//! CAS retries, stall cycles, and the daemons' share of the stalls — next
//! to the aggregate work, which stays pinned exactly across core counts
//! (exec time, faults and promotions are identical in every row of a
//! policy; the differential test enforces it bit-for-bit).

use crate::{run_scenarios_with, secs, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::multicore::CoreRole;
use hawkeye_kernel::workload::script;
use hawkeye_kernel::{MemOp, Simulator};
use hawkeye_metrics::Cycles;
use hawkeye_vm::{VmaKind, Vpn};

/// App faults, daemon promotion/scan passes and madvise churn over the
/// same eight regions — the shape that makes cores collide.
fn contending_workload(tag: String) -> Box<dyn hawkeye_kernel::Workload> {
    let pages: u64 = 8 * 512;
    script(
        tag,
        vec![
            MemOp::Mmap {
                start: Vpn(0),
                pages,
                kind: VmaKind::Anon,
            },
            MemOp::TouchRange {
                start: Vpn(0),
                pages,
                write: true,
                think: 50,
                stride: 1,
                repeats: 1,
            },
            // Idle across many policy ticks: khugepaged chews on the
            // regions the faults above touched.
            MemOp::Compute {
                cycles: 120_000_000,
            },
            MemOp::Madvise {
                start: Vpn(0),
                pages: 1024,
            },
            MemOp::TouchRange {
                start: Vpn(0),
                pages,
                write: false,
                think: 0,
                stride: 1,
                repeats: 2,
            },
            MemOp::Compute { cycles: 60_000_000 },
        ],
    )
}

/// Builds the `multicore_contention` report: lock contention as simulated cores scale.
pub fn report(threads: usize) -> Report {
    let mut scenarios: Vec<Scenario<Row>> = Vec::new();
    for kind in [PolicyKind::HawkEyeG, PolicyKind::Linux2m] {
        for cores in [1u32, 2, 4, 8] {
            let label = kind.label();
            scenarios.push(Scenario::sim(
                format!("{label}@{cores}c"),
                move || {
                    let mut cfg = kind.config(256);
                    cfg.max_time = Cycles::from_secs(30.0);
                    cfg.cores = cores;
                    let mut sim = Simulator::new(cfg, kind.build());
                    // Pre-fragment so regions fault in as base pages:
                    // khugepaged has real promotion work to contend with.
                    sim.machine_mut().fragment(1.0, 0.55, 7);
                    let pid = sim.spawn(contending_workload(format!("mc-{label}-{cores}")));
                    (sim, pid)
                },
                move |out| {
                    let label = kind.label();
                    let stats = out.sim.machine().stats();
                    let (mut acq, mut retries, mut stall, mut daemon_stall) = (0u64, 0, 0, 0);
                    if let Some(rec) = out.sim.machine().concurrency() {
                        for (core, c) in rec.totals().iter().enumerate() {
                            acq += c.acquisitions;
                            retries += c.cas_retries;
                            stall += c.stall_cycles;
                            if rec.layout().role(core) != CoreRole::App {
                                daemon_stall += c.stall_cycles;
                            }
                        }
                    }
                    Row::new(vec![
                        label.to_string(),
                        cores.to_string(),
                        secs(out.exec_secs()),
                        out.faults().to_string(),
                        stats.promotions.to_string(),
                        acq.to_string(),
                        retries.to_string(),
                        format!("{:.2}", stall as f64 / 1e6),
                        if stall == 0 {
                            "-".to_string()
                        } else {
                            format!("{:.0}%", 100.0 * daemon_stall as f64 / stall as f64)
                        },
                    ])
                    .with_json(Json::obj(vec![
                        ("policy", Json::str(label)),
                        ("cores", Json::int(cores as u64)),
                        ("exec_secs", Json::num(out.exec_secs())),
                        ("faults", Json::int(out.faults())),
                        ("promotions", Json::int(stats.promotions)),
                        ("lock_acquisitions", Json::int(acq)),
                        ("cas_retries", Json::int(retries)),
                        ("stall_cycles", Json::int(stall)),
                        ("daemon_stall_cycles", Json::int(daemon_stall)),
                    ]))
                },
            ));
        }
    }
    let mut report = Report::new(
        "multicore_contention",
        "Multi-core scaling: lock/arena contention between app cores and daemons",
        vec![
            "Policy",
            "cores",
            "exec(s)",
            "faults",
            "promos",
            "lock acq",
            "CAS retries",
            "stall(Mcyc)",
            "daemon share",
        ],
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer(
        "(aggregate work — exec, faults, promos — is pinned exactly across core counts;\n contention columns come from the deterministic replay and are 0 at 1 core)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_scenarios_capturing;

    #[test]
    fn aggregates_pinned_and_contention_appears() {
        let report = report(2);
        let rows = report.rows();
        assert_eq!(rows.len(), 8, "2 policies x 4 core counts");
        // Within each policy, exec/faults/promos identical across cores.
        for policy in 0..2 {
            let base = &rows[policy * 4];
            for r in &rows[policy * 4..policy * 4 + 4] {
                assert_eq!(r.cells[2], base.cells[2], "exec pinned");
                assert_eq!(r.cells[3], base.cells[3], "faults pinned");
                assert_eq!(r.cells[4], base.cells[4], "promotions pinned");
            }
            // 1-core rows have no contention; HawkEye multi-core rows do.
            assert_eq!(base.cells[5], "0", "no lock traffic at 1 core");
        }
        let hawkeye_4c = &rows[2];
        assert_ne!(hawkeye_4c.cells[5], "0", "multi-core records lock traffic");
    }

    #[test]
    fn lock_counters_reach_the_registry() {
        // The registry snapshot a bench run captures must carry the
        // lock.* counters (cycles_json forwards them to the summary).
        let scenarios = vec![Scenario::sim(
            "reg",
            || {
                let mut cfg = PolicyKind::HawkEyeG.config(256);
                cfg.cores = 4;
                let mut sim = Simulator::new(cfg, PolicyKind::HawkEyeG.build());
                let pid = sim.spawn(contending_workload("reg".into()));
                (sim, pid)
            },
            |out| out.faults(),
        )];
        let (results, _journals, registries) = run_scenarios_capturing(scenarios, 1);
        assert!(results[0] > 0);
        let (_, reg) = &registries[0];
        let m = reg.machine(0).expect("machine attached");
        assert!(
            m.counter("lock.acquisitions") > 0,
            "lock.* missing from registry"
        );
        assert!(m.counter("lock.cas_retries") > 0, "no modeled contention");
    }
}
