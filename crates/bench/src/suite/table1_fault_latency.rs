//! Table 1: page faults, allocation latency and performance for the
//! alloc-touch microbenchmark (paper: 10 GB buffer × 10 runs ≈ 100 GB;
//! here scaled 64× to 160 MB × 10 runs ≈ 1.6 GB of allocation).
//!
//! Paper's headline: Linux-2MB cuts faults >500× and total time >4× over
//! Linux-4KB despite 133× worse per-fault latency; Ingens keeps latency
//! low but *not* the fault count, so it loses overall; removing zeroing
//! from the fault path (HawkEye's async pre-zeroing) wins on both axes.

use crate::{
    dirty_free_memory, run_scenarios_with, secs, Json, PolicyKind, Report, Row, RunOutcome,
    Scenario,
};
use hawkeye_kernel::{workload::script, MemOp, Simulator};
use hawkeye_metrics::Cycles;
use hawkeye_workloads::AllocTouch;

fn run_dirty(kind: PolicyKind, pages: u64, runs: u32) -> RunOutcome {
    let mut cfg = kind.config(256);
    cfg.max_time = Cycles::from_secs(600.0);
    let mut sim = Simulator::new(cfg, kind.build());
    // Steady-state machine: all free memory is dirty, so synchronous
    // zeroing is genuinely on the fault path for baselines.
    dirty_free_memory(sim.machine_mut());
    if kind.wants_zero_pool() {
        // The async pre-zeroing daemon gets its steady-state head start.
        sim.spawn(script(
            "warmup",
            vec![MemOp::Compute {
                cycles: 3_000_000_000,
            }],
        ));
        sim.run();
    }
    let pid = sim.spawn(Box::new(AllocTouch::new(pages, runs, 1150)));
    sim.run();
    RunOutcome { sim, pid }
}

/// Builds the `table1` report: page faults and allocation latency at 4 KB vs 2 MB.
pub fn report(threads: usize) -> Report {
    let pages_per_run = 40 * 1024; // 160 MiB
    let runs = 10;
    let scenarios: Vec<Scenario<Row>> = [
        PolicyKind::Linux4k,
        PolicyKind::Linux2m,
        PolicyKind::Ingens90,
        PolicyKind::HawkEye4k,
        PolicyKind::HawkEyeG,
    ]
    .into_iter()
    .map(|kind| {
        Scenario::new(kind.label(), move || {
            let out = run_dirty(kind, pages_per_run, runs);
            Row::new(vec![
                kind.label().to_string(),
                format!("{:.1}K", out.faults() as f64 / 1e3),
                secs(out.fault_secs()),
                format!("{:.2}", out.avg_fault_us()),
                secs(out.cpu_secs()),
            ])
            .with_json(Json::obj(vec![
                ("config", Json::str(kind.label())),
                ("faults", Json::int(out.faults())),
                ("fault_secs", Json::num(out.fault_secs())),
                ("avg_fault_us", Json::num(out.avg_fault_us())),
                ("total_secs", Json::num(out.cpu_secs())),
            ]))
        })
    })
    .collect();
    let mut report = Report::new(
        "table1_fault_latency",
        "Table 1: alloc-touch microbenchmark (scaled: 10 x 160 MiB)",
        vec![
            "Config",
            "#Page faults",
            "Fault time (s)",
            "Avg fault (us)",
            "Total time (s)",
        ],
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer(
        "(paper, Table 1: Linux-4KB 26.2M faults / 92.6s fault / 3.5us / 106s total;\n\
         Linux-2MB 51.5K / 23.9s / 465us / 24.9s; Ingens-90% 26.2M / 92.8s / 3.5us / 116s;\n\
         no-zeroing 4KB: 69.5s fault, 83s total; no-zeroing 2MB: 0.7s fault / 13us / 4.4s)",
    );
    report
}
