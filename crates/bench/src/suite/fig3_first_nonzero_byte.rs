//! Fig. 3: average distance to the first non-zero byte in 4 KB pages.
//!
//! The paper measures 9.11 bytes on average across 56 workloads, making
//! the zero-scan of in-use pages ~400× cheaper than scanning bloat pages.
//! Here we sample each workload family's content model and print the
//! empirical means alongside the paper's suite averages.

use crate::{run_scenarios_with, Json, Report, Row, Scenario};
use hawkeye_workloads::DirtModel;

/// Builds the `fig3` report: average distance to the first non-zero byte in 4 KB pages.
pub fn report(threads: usize) -> Report {
    // (family, configured mean, paper context)
    let families: Vec<(&'static str, f64)> = vec![
        ("spec-cpu2006", 11.0),
        ("parsec", 7.5),
        ("biobench", 8.0),
        ("cloudsuite", 12.0),
        ("redis", 4.0),
        ("sparsehash", 6.0),
        ("hacc-io", 3.0),
        ("graph500", 9.11),
        ("xsbench", 9.11),
        ("npb", 9.11),
    ];
    let count = families.len();
    let scenarios: Vec<Scenario<(Row, f64)>> = families
        .into_iter()
        .enumerate()
        .map(|(i, (name, mean))| {
            Scenario::new(name, move || {
                let mut d = DirtModel::new(mean, i as u64 + 1);
                let n = 100_000;
                let s: u64 = (0..n).map(|_| d.sample() as u64).sum();
                let emp = s as f64 / n as f64;
                let row = Row::new(vec![name.to_string(), format!("{emp:.2} B")]).with_json(
                    Json::obj(vec![
                        ("family", Json::str(name)),
                        ("mean_first_nonzero_byte", Json::num(emp)),
                    ]),
                );
                (row, emp)
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);
    let grand: f64 = results.iter().map(|(_, emp)| emp).sum();
    let avg = grand / count as f64;

    let mut report = Report::new(
        "fig3_first_nonzero_byte",
        "Fig. 3: distance to first non-zero byte per 4 KB in-use page",
        vec!["Workload family", "Mean first-non-zero byte (sampled)"],
    );
    report.extend(results.into_iter().map(|(row, _)| row));
    report.add(
        Row::new(vec!["AVERAGE".into(), format!("{avg:.2} B")]).with_json(Json::obj(vec![
            ("family", Json::str("AVERAGE")),
            ("mean_first_nonzero_byte", Json::num(avg)),
        ])),
    );
    report.footer("(paper, Fig. 3: average over 56 workloads = 9.11 bytes)");
    report.footer(format!(
        "scan-cost asymmetry: in-use page ~{} bytes vs bloat page 4096 bytes",
        avg.round()
    ));
    report
}
