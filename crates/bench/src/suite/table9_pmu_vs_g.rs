//! Table 9: HawkEye-PMU vs HawkEye-G on co-running workload pairs.
//!
//! Each set pairs one TLB-sensitive and one TLB-insensitive workload,
//! both with *high access-coverage* — so HawkEye-G's estimate cannot tell
//! them apart, while HawkEye-PMU's measured overheads can. The paper
//! reports random(4GB) 1.77× under PMU vs 1.41× under G, and cg.D 1.62×
//! vs 1.35× (PMU up to 36 % better).

use crate::{run_scenarios_with, secs, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::{Simulator, Workload};
use hawkeye_metrics::Cycles;
use hawkeye_workloads::{NpbKernel, PatternScan};

fn set(name: &str) -> Vec<(&'static str, Box<dyn Workload>)> {
    match name {
        "set1" => vec![
            (
                "random(192MB)",
                Box::new(PatternScan::random(48 * 1024, 6_000_000, 60)) as Box<dyn Workload>,
            ),
            (
                "sequential(192MB)",
                Box::new(PatternScan::sequential(48 * 1024, 6_000_000, 60)),
            ),
        ],
        _ => vec![
            (
                "cg.D(128MB)",
                Box::new(NpbKernel::cg(64, 5000)) as Box<dyn Workload>,
            ),
            ("mg.D(192MB)", Box::new(NpbKernel::mg(96, 5000))),
        ],
    }
}

fn run_set(kind: PolicyKind, which: &str) -> Vec<(String, f64, f64)> {
    let mut cfg = kind.config(640);
    cfg.max_time = Cycles::from_secs(600.0);
    let mut sim = Simulator::new(cfg, kind.build());
    sim.machine_mut().fragment(1.0, 0.5, 7);
    let mut pids = Vec::new();
    for (name, w) in set(which) {
        pids.push((name, sim.spawn(w)));
    }
    sim.run();
    pids.iter()
        .map(|(name, pid)| {
            let p = sim.machine().process(*pid).expect("pid");
            let t = p.finish_time().unwrap_or(sim.machine().now()).as_secs();
            let ov = sim.machine().mmu().lifetime(*pid).mmu_overhead();
            (name.to_string(), t, ov)
        })
        .collect()
}

/// Builds the `table9` report: HawkEye-PMU vs HawkEye-G on co-running pairs.
pub fn report(threads: usize) -> Report {
    // One scenario per (set, policy): each runs the co-scheduled pair.
    let matrix = [
        ("set1", PolicyKind::Linux4k),
        ("set1", PolicyKind::HawkEyePmu),
        ("set1", PolicyKind::HawkEyeG),
        ("set2", PolicyKind::Linux4k),
        ("set2", PolicyKind::HawkEyePmu),
        ("set2", PolicyKind::HawkEyeG),
    ];
    let scenarios: Vec<Scenario<Vec<(String, f64, f64)>>> = matrix
        .into_iter()
        .map(|(which, kind)| {
            Scenario::new(format!("{which} {}", kind.label()), move || {
                run_set(kind, which)
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "table9_pmu_vs_g",
        "Table 9: HawkEye-PMU vs HawkEye-G (one sensitive + one insensitive per set)",
        vec![
            "Workload",
            "MMU overhead (4KB)",
            "4KB (s)",
            "HawkEye-PMU (s)",
            "HawkEye-G (s)",
            "PMU speedup",
            "G speedup",
        ],
    );
    for (si, which) in ["set1", "set2"].into_iter().enumerate() {
        let base = &results[si * 3];
        let pmu = &results[si * 3 + 1];
        let g = &results[si * 3 + 2];
        let mut totals = (0.0, 0.0, 0.0);
        for i in 0..base.len() {
            let (name, tb, ov) = &base[i];
            let tp = pmu[i].1;
            let tg = g[i].1;
            totals.0 += tb;
            totals.1 += tp;
            totals.2 += tg;
            report.add(
                Row::new(vec![
                    name.clone(),
                    format!("{:.0}%", ov * 100.0),
                    secs(*tb),
                    secs(tp),
                    secs(tg),
                    spd(tb / tp),
                    spd(tb / tg),
                ])
                .with_json(Json::obj(vec![
                    ("workload", Json::str(name.clone())),
                    ("mmu_overhead_4k", Json::num(*ov)),
                    ("secs_4k", Json::num(*tb)),
                    ("secs_pmu", Json::num(tp)),
                    ("secs_g", Json::num(tg)),
                    ("pmu_speedup", Json::num(tb / tp)),
                    ("g_speedup", Json::num(tb / tg)),
                ])),
            );
        }
        report.add(
            Row::new(vec![
                format!("{which} TOTAL"),
                "-".into(),
                secs(totals.0),
                secs(totals.1),
                secs(totals.2),
                spd(totals.0 / totals.1),
                spd(totals.0 / totals.2),
            ])
            .with_json(Json::obj(vec![
                ("workload", Json::str(format!("{which} TOTAL"))),
                ("secs_4k", Json::num(totals.0)),
                ("secs_pmu", Json::num(totals.1)),
                ("secs_g", Json::num(totals.2)),
                ("pmu_speedup", Json::num(totals.0 / totals.1)),
                ("g_speedup", Json::num(totals.0 / totals.2)),
            ])),
        );
    }
    report.footer(
        "(paper, Table 9: random 1.77x PMU vs 1.41x G; cg.D 1.62x vs 1.35x;\n\
         sequential/mg unchanged — PMU correctly skips the insensitive process)",
    );
    report
}
