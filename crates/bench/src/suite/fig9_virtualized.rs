//! Fig. 9 / Table 6: virtualized speedups with HawkEye at the host, the
//! guest, and both layers.
//!
//! Two-dimensional page walks amplify MMU overheads, so huge pages help
//! virtual machines even more than bare metal — but only the layers that
//! actually map huge contribute. The paper measures 18–90 % speedups over
//! all-Linux; the `both` configuration wins.

use crate::{run_scenarios_with, secs, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_core::{HawkEye, HawkEyeConfig};
use hawkeye_kernel::{HugePagePolicy, Workload};
use hawkeye_policies::LinuxThp;
use hawkeye_virt::{VirtSystem, VmSpec};
use hawkeye_workloads::{HotspotWorkload, NpbKernel};

fn guest_workload(name: &str) -> Box<dyn Workload> {
    match name {
        "cg.D" => Box::new(NpbKernel::cg(56, 1200)),
        _ => Box::new(HotspotWorkload::graph500(64, 1200)),
    }
}

fn policy(hawkeye: bool) -> Box<dyn HugePagePolicy> {
    if hawkeye {
        Box::new(HawkEye::new(HawkEyeConfig::default()))
    } else {
        Box::new(LinuxThp::default())
    }
}

/// Table 6-style setup: one VM with the measured workload (fragmented
/// host and guest), HawkEye optionally at either layer.
fn run(name: &str, host_hawkeye: bool, guest_hawkeye: bool) -> f64 {
    let mut cfg = PolicyKind::Linux2m.config(1024);
    cfg.cross_merge = !host_hawkeye;
    let mut sys = VirtSystem::new(cfg, policy(host_hawkeye));
    sys.with_host_mut(|h| h.fragment(1.0, 0.55, 7));
    let vm = sys.add_vm(VmSpec { frames: 160 * 1024 }, policy(guest_hawkeye));
    sys.guest_mut(vm).fragment(1.0, 0.55, 9);
    let pid = sys.spawn_in_vm(vm, guest_workload(name));
    sys.run();
    sys.guest(vm)
        .process(pid)
        .and_then(|p| p.finish_time())
        .unwrap_or_else(|| sys.guest(vm).now())
        .as_secs()
}

const CONFIGS: [(&str, bool, bool); 4] = [
    ("all-linux", false, false),
    ("host", true, false),
    ("guest", false, true),
    ("both", true, true),
];

/// Builds the `fig9_table6` report: virtualized speedups, host and guest policies crossed.
pub fn report(threads: usize) -> Report {
    // One scenario per (workload, layer config): 8 independent two-level
    // systems. Speedups are assembled from the ordered results.
    let names = ["cg.D", "graph500"];
    let scenarios: Vec<Scenario<f64>> = names
        .iter()
        .flat_map(|name| {
            CONFIGS.iter().map(move |(cname, host, guest)| {
                let (name, host, guest) = (*name, *host, *guest);
                Scenario::new(format!("{name} {cname}"), move || run(name, host, guest))
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "fig9_virtualized",
        "Fig. 9: virtualized speedup over all-Linux (Table 6 configurations)",
        vec![
            "Workload",
            "Linux host+guest (s)",
            "HawkEye@host",
            "HawkEye@guest",
            "HawkEye@both",
        ],
    );
    for (wi, name) in names.iter().enumerate() {
        let cells = &results[wi * CONFIGS.len()..(wi + 1) * CONFIGS.len()];
        let (base, host, guest, both) = (cells[0], cells[1], cells[2], cells[3]);
        report.add(
            Row::new(vec![
                name.to_string(),
                secs(base),
                spd(base / host),
                spd(base / guest),
                spd(base / both),
            ])
            .with_json(Json::obj(vec![
                ("workload", Json::str(*name)),
                ("secs_all_linux", Json::num(base)),
                ("speedup_host", Json::num(base / host)),
                ("speedup_guest", Json::num(base / guest)),
                ("speedup_both", Json::num(base / both)),
            ])),
        );
    }
    report.footer("(paper, Fig. 9: 18-90% speedups; cg.D gains more virtualized than bare-metal)");
    report
}
