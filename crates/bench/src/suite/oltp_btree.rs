//! OLTP B-tree: a TPC-C-like buffer manager under every policy.
//!
//! Pointer-chasing root→leaf lookups are the TLB's worst case — every
//! level of the chase lands in an unrelated 2 MB region, so base pages
//! pay a four-level walk per tree level (btree-techniques' TPC-C
//! measurements put paged B-trees among the most TLB-bound OLTP
//! shapes). The tree is bulk-loaded into a fragmented machine, so
//! fault-time huge pages are off the table and only *promotion* can
//! recover the walk overhead; the skewed leaf accesses then separate
//! access-coverage ranking (HawkEye-G promotes the hot inner/leaf
//! regions first) from sequential-VA scanning. Not a figure of the
//! paper: this is DESIGN.md §17's first generalization family.

use crate::{pct, run_one, run_scenarios_with, secs, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_workloads::BtreeOltp;

/// Leaf span (2 MB regions) and transaction count for the suite run.
const LEAF_REGIONS: u64 = 40;
const TXNS: u64 = 250_000;

const KINDS: [PolicyKind; 9] = [
    PolicyKind::Linux4k, // baseline first: speedups divide by this row
    PolicyKind::Linux2m,
    PolicyKind::FreeBsd,
    PolicyKind::Ingens,
    PolicyKind::Ingens90,
    PolicyKind::Ingens50,
    PolicyKind::HawkEyeG,
    PolicyKind::HawkEyePmu,
    PolicyKind::HawkEye4k,
];

/// Builds the `oltp_btree` report: one fragmented-machine run per
/// policy, with MMU-overhead and fault-latency columns.
pub fn report(threads: usize) -> Report {
    report_with(LEAF_REGIONS, TXNS, threads)
}

/// [`report`] at an explicit scale — the byte-determinism test runs a
/// reduced tree so the sweep stays affordable under the dev profile.
pub fn report_with(leaf_regions: u64, txns: u64, threads: usize) -> Report {
    // exec secs, MMU overhead, faults, avg fault µs, promotions
    type PolicyRow = (f64, f64, u64, f64, u64);
    let scenarios: Vec<Scenario<PolicyRow>> = KINDS
        .iter()
        .map(|kind| {
            let kind = *kind;
            Scenario::new(format!("tpcc-btree {}", kind.label()), move || {
                let out = run_one(
                    kind,
                    256,
                    Some((1.0, 0.55)),
                    300.0,
                    Box::new(BtreeOltp::tpcc(leaf_regions, txns)),
                );
                (
                    out.exec_secs(),
                    out.mmu_overhead(),
                    out.faults(),
                    out.avg_fault_us(),
                    out.sim.machine().stats().promotions,
                )
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "oltp_btree",
        "OLTP B-tree: TPC-C-like pointer chasing across the nine policies",
        vec![
            "Policy",
            "exec (s)",
            "speedup vs 4KB",
            "MMU ovh",
            "faults",
            "avg fault (us)",
            "promotions",
        ],
    );
    let t4k = results[0].0;
    for (ki, kind) in KINDS.iter().enumerate() {
        let (exec, mmu, faults, fault_us, promos) = results[ki];
        report.add(
            Row::new(vec![
                kind.label().to_string(),
                secs(exec),
                spd(t4k / exec),
                pct(mmu),
                faults.to_string(),
                format!("{fault_us:.2}"),
                promos.to_string(),
            ])
            .with_json(Json::obj(vec![
                ("policy", Json::str(kind.label())),
                ("exec_secs", Json::num(exec)),
                ("speedup_vs_4k", Json::num(t4k / exec)),
                ("mmu_overhead", Json::num(mmu)),
                ("faults", Json::int(faults)),
                ("avg_fault_us", Json::num(fault_us)),
                ("promotions", Json::int(promos)),
            ])),
        );
    }
    report.footer(
        "(DESIGN.md §17: root->leaf chases give consecutive accesses no\n\
         spatial locality, so walk cycles dominate at 4KB; the machine is\n\
         pre-fragmented, so only promotion — not fault-time allocation —\n\
         can recover them)",
    );
    report
}
