//! Table 2: number of TLB-sensitive applications per benchmark suite.
//!
//! Each of the 79 census profiles runs once with base pages only and once
//! with Linux THP on pristine memory; an application is TLB-sensitive if
//! huge pages speed it up by more than 3 %. The paper counts 15/79.

use crate::{run_one, run_scenarios_with, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_workloads::census;
use std::collections::BTreeMap;

/// Per-application classification, one scenario each (two runs inside).
struct AppResult {
    suite: &'static str,
    name: &'static str,
    speedup: f64,
    sensitive: bool,
    expected: bool,
}

/// Builds the `table2` report: TLB-sensitive application counts per benchmark suite.
pub fn report(threads: usize) -> Report {
    let iters = 120;
    let scenarios: Vec<Scenario<AppResult>> = census()
        .into_iter()
        .map(|app| {
            Scenario::new(app.name, move || {
                let base = run_one(
                    PolicyKind::Linux4k,
                    512,
                    None,
                    120.0,
                    Box::new(app.workload(iters)),
                );
                let huge = run_one(
                    PolicyKind::Linux2m,
                    512,
                    None,
                    120.0,
                    Box::new(app.workload(iters)),
                );
                // Steady-state comparison: the paper's applications run for
                // minutes, so demand-paging warmup is negligible there;
                // exclude fault-handler time to match.
                let steady = |o: &crate::RunOutcome| (o.cpu_secs() - o.fault_secs()).max(1e-9);
                let speedup = steady(&base) / steady(&huge);
                AppResult {
                    suite: app.suite,
                    name: app.name,
                    speedup,
                    sensitive: speedup > 1.03,
                    expected: app.expected_sensitive,
                }
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut per_suite: BTreeMap<&str, (u32, u32, u32)> = BTreeMap::new(); // total, sensitive, expected
    let mut mismatches = Vec::new();
    for r in &results {
        let e = per_suite.entry(r.suite).or_default();
        e.0 += 1;
        e.1 += r.sensitive as u32;
        e.2 += r.expected as u32;
        if r.sensitive != r.expected {
            mismatches.push(format!("{} ({:.2}x)", r.name, r.speedup));
        }
    }
    let mut report = Report::new(
        "table2_tlb_sensitivity",
        "Table 2: TLB-sensitive applications per suite (>3% huge-page speedup)",
        vec!["Suite", "Total", "TLB-sensitive (measured)", "Paper"],
    );
    let mut total = (0, 0, 0);
    for (suite, (n, s, e)) in &per_suite {
        report.add(
            Row::new(vec![
                suite.to_string(),
                n.to_string(),
                s.to_string(),
                e.to_string(),
            ])
            .with_json(Json::obj(vec![
                ("suite", Json::str(*suite)),
                ("total", Json::int(*n as u64)),
                ("sensitive", Json::int(*s as u64)),
                ("paper", Json::int(*e as u64)),
            ])),
        );
        total.0 += n;
        total.1 += s;
        total.2 += e;
    }
    report.add(
        Row::new(vec![
            "TOTAL".into(),
            total.0.to_string(),
            total.1.to_string(),
            total.2.to_string(),
        ])
        .with_json(Json::obj(vec![
            ("suite", Json::str("TOTAL")),
            ("total", Json::int(total.0 as u64)),
            ("sensitive", Json::int(total.1 as u64)),
            ("paper", Json::int(total.2 as u64)),
        ])),
    );
    if mismatches.is_empty() {
        report.footer("classification matches the paper for all 79 applications");
    } else {
        report.footer(format!(
            "classification differs from the paper for: {}",
            mismatches.join(", ")
        ));
    }
    report
}
