//! Fig. 5: performance speedup from huge-page promotion after
//! fragmentation, and execution time saved per promotion.
//!
//! Workloads allocate everything in a fragmented system; policies then
//! recover from high MMU overheads by promoting. HawkEye's
//! access-coverage order reaches the hot (high-VA) regions immediately;
//! Linux and Ingens scan sequentially from low VAs. Paper: HawkEye up to
//! 22 % over never-promoting, 6.7× (G) / 44× (PMU) better time saved per
//! promotion than Linux on XSBench.

use crate::{run_one, run_scenarios_with, secs, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::Workload;
use hawkeye_workloads::{HotspotWorkload, NpbKernel};

fn workload(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(96, 6000)),
        "xsbench" => Box::new(HotspotWorkload::xsbench(120, 6000)),
        "cg.D" => Box::new(NpbKernel::cg(64, 6000)),
        _ => unreachable!(),
    }
}

const NAMES: [&str; 3] = ["graph500", "xsbench", "cg.D"];
const KINDS: [PolicyKind; 5] = [
    PolicyKind::Linux4k, // base first, used by the other rows of its workload
    PolicyKind::Linux2m,
    PolicyKind::Ingens,
    PolicyKind::HawkEyePmu,
    PolicyKind::HawkEyeG,
];

/// Builds the `fig5` report: speedup from huge-page promotion after fragmentation.
pub fn report(threads: usize) -> Report {
    // Every (workload, policy) cell is an independent simulation; the
    // speedup column is assembled afterwards from the ordered results.
    let scenarios: Vec<Scenario<(f64, u64)>> = NAMES
        .iter()
        .flat_map(|name| {
            KINDS.iter().map(move |kind| {
                let (name, kind) = (*name, *kind);
                Scenario::new(format!("{name} {}", kind.label()), move || {
                    let out = run_one(kind, 768, Some((1.0, 0.55)), 300.0, workload(name));
                    (out.cpu_secs(), out.sim.machine().stats().promotions)
                })
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "fig5_promotion_efficiency",
        "Fig. 5: promotion efficiency in a fragmented system",
        vec![
            "Workload",
            "Policy",
            "exec (s)",
            "speedup vs 4KB",
            "promotions",
            "time saved/promotion (ms)",
        ],
    );
    for (wi, name) in NAMES.iter().enumerate() {
        let cells = &results[wi * KINDS.len()..(wi + 1) * KINDS.len()];
        let t4k = cells[0].0;
        for (ki, kind) in KINDS.iter().enumerate().skip(1) {
            let (exec, promos) = cells[ki];
            let promos = promos.max(1);
            let saved_ms = (t4k - exec).max(0.0) * 1e3 / promos as f64;
            report.add(
                Row::new(vec![
                    name.to_string(),
                    kind.label().to_string(),
                    secs(exec),
                    spd(t4k / exec),
                    promos.to_string(),
                    format!("{saved_ms:.2}"),
                ])
                .with_json(Json::obj(vec![
                    ("workload", Json::str(*name)),
                    ("policy", Json::str(kind.label())),
                    ("exec_secs", Json::num(exec)),
                    ("speedup_vs_4k", Json::num(t4k / exec)),
                    ("promotions", Json::int(promos)),
                    ("saved_ms_per_promotion", Json::num(saved_ms)),
                ])),
            );
        }
        report.add(
            Row::new(vec![
                name.to_string(),
                "Linux-4KB".into(),
                secs(t4k),
                "1.00x".into(),
                "0".into(),
                "-".into(),
            ])
            .with_json(Json::obj(vec![
                ("workload", Json::str(*name)),
                ("policy", Json::str("Linux-4KB")),
                ("exec_secs", Json::num(t4k)),
                ("speedup_vs_4k", Json::num(1.0)),
                ("promotions", Json::int(0)),
            ])),
        );
    }
    report.footer(
        "(paper, Fig. 5: HawkEye up to 22% over no-promotion; 13%/12%/6% over\n\
         Linux & Ingens on Graph500/XSBench/cg.D; HawkEye-PMU saves the most\n\
         time per promotion because it stops below 2% overhead)",
    );
    report
}
