//! The paper-experiment suite as a library.
//!
//! Every bench target that reproduces a table or figure from the paper
//! (the rows of DESIGN.md §4's experiment index) lives here as a module
//! with a single `pub fn report(threads: usize) -> Report` entry point.
//! The `benches/*.rs` files are thin wrappers over [`run_main`], and
//! `hawkeye-report` runs the same code in-process via [`TARGETS`] so the
//! one-command reproduction pipeline and the individual binaries can
//! never drift apart (DESIGN.md §12).
//!
//! `ablations` and `touch_throughput` stay standalone benches: they are
//! exploratory tools, not rows of the experiment index.

pub mod adversarial;
pub mod fig10_prezero_interference;
pub mod fig11_overcommit;
pub mod fig1_redis_bloat;
pub mod fig3_first_nonzero_byte;
pub mod fig4_access_map;
pub mod fig5_promotion_efficiency;
pub mod fig6_promotion_timeline;
pub mod fig7_table5_identical_workloads;
pub mod fig8_heterogeneous;
pub mod fig9_virtualized;
pub mod fleet_slo;
pub mod hpc_stencil;
pub mod multicore_contention;
pub mod oltp_btree;
pub mod table1_fault_latency;
pub mod table2_tlb_sensitivity;
pub mod table3_npb_characteristics;
pub mod table4_pmu_methodology;
pub mod table7_bloat_recovery;
pub mod table8_fast_faults;
pub mod table9_pmu_vs_g;

use crate::Report;

/// One runnable paper experiment: a row of DESIGN.md §4's index.
pub struct Target {
    /// Bench-target name; also the stem of the summary JSON and trace
    /// journal written under `target/bench-results/`.
    pub name: &'static str,
    /// The paper artifact this target reproduces ("Table 1", "Fig 5", …).
    pub paper: &'static str,
    /// Builds and runs the experiment on `threads` pool workers and
    /// returns its [`Report`] (not yet printed or persisted).
    pub build: fn(usize) -> Report,
}

/// All paper experiments, in DESIGN.md §4 order (tables, then figures).
pub const TARGETS: &[Target] = &[
    Target {
        name: "table1_fault_latency",
        paper: "Table 1",
        build: table1_fault_latency::report,
    },
    Target {
        name: "table2_tlb_sensitivity",
        paper: "Table 2",
        build: table2_tlb_sensitivity::report,
    },
    Target {
        name: "table3_npb_characteristics",
        paper: "Table 3",
        build: table3_npb_characteristics::report,
    },
    Target {
        name: "table4_pmu_methodology",
        paper: "Table 4",
        build: table4_pmu_methodology::report,
    },
    Target {
        name: "table7_bloat_recovery",
        paper: "Table 7",
        build: table7_bloat_recovery::report,
    },
    Target {
        name: "table8_fast_faults",
        paper: "Table 8",
        build: table8_fast_faults::report,
    },
    Target {
        name: "table9_pmu_vs_g",
        paper: "Table 9",
        build: table9_pmu_vs_g::report,
    },
    Target {
        name: "fig1_redis_bloat",
        paper: "Fig 1",
        build: fig1_redis_bloat::report,
    },
    Target {
        name: "fig3_first_nonzero_byte",
        paper: "Fig 3",
        build: fig3_first_nonzero_byte::report,
    },
    Target {
        name: "fig4_access_map",
        paper: "Fig 4",
        build: fig4_access_map::report,
    },
    Target {
        name: "fig5_promotion_efficiency",
        paper: "Fig 5",
        build: fig5_promotion_efficiency::report,
    },
    Target {
        name: "fig6_promotion_timeline",
        paper: "Fig 6",
        build: fig6_promotion_timeline::report,
    },
    Target {
        name: "fig7_table5_identical_workloads",
        paper: "Fig 7 / Table 5",
        build: fig7_table5_identical_workloads::report,
    },
    Target {
        name: "fig8_heterogeneous",
        paper: "Fig 8 / Table 6",
        build: fig8_heterogeneous::report,
    },
    Target {
        name: "fig9_virtualized",
        paper: "Fig 9",
        build: fig9_virtualized::report,
    },
    Target {
        name: "fig10_prezero_interference",
        paper: "Fig 10",
        build: fig10_prezero_interference::report,
    },
    Target {
        name: "fig11_overcommit",
        paper: "Fig 11",
        build: fig11_overcommit::report,
    },
    Target {
        name: "multicore_contention",
        paper: "§4 multi-core",
        build: multicore_contention::report,
    },
    Target {
        name: "fleet_slo",
        paper: "§Fleet SLOs",
        build: fleet_slo::report,
    },
    Target {
        name: "oltp_btree",
        paper: "§17 OLTP B-tree",
        build: oltp_btree::report,
    },
    Target {
        name: "hpc_stencil",
        paper: "§17 HPC stencil",
        build: hpc_stencil::report,
    },
    Target {
        name: "adversarial",
        paper: "§17 adversarial",
        build: adversarial::report,
    },
];

/// Looks up a suite target by bench-target name.
pub fn find(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

/// Entry point for the thin `benches/*.rs` wrappers: runs `name` on the
/// configured worker count ([`crate::pool::worker_threads`]) and prints
/// and persists the report exactly as the pre-suite binaries did.
pub fn run_main(name: &str) {
    let target = find(name).unwrap_or_else(|| panic!("unknown suite target `{name}`"));
    (target.build)(crate::pool::worker_threads()).finish();
}
