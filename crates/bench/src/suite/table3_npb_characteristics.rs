//! Table 3: NPB memory characteristics, address-translation overheads and
//! huge-page speedups, native and virtualized.
//!
//! The paper's point: working-set size does not predict MMU overhead —
//! mg.D (24 GB) pays ~1 % while cg.D (16 GB, random) pays 39 % and gains
//! 1.62× native / 2.7× virtualized from huge pages. Footprints scaled
//! ~128×.

use crate::{pct, run_one, run_scenarios_with, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::{BasePagesOnly, Workload};
use hawkeye_policies::LinuxThp;
use hawkeye_virt::{VirtSystem, VmSpec};
use hawkeye_workloads::NpbKernel;

fn kernel(name: &str, iters: u64) -> Box<dyn Workload> {
    // Class-D footprints / 128 (2 MB regions).
    match name {
        "bt.D" => Box::new(NpbKernel::bt(40, iters)),
        "sp.D" => Box::new(NpbKernel::sp(48, iters)),
        "lu.D" => Box::new(NpbKernel::lu(32, iters)),
        "mg.D" => Box::new(NpbKernel::mg(104, iters)),
        "cg.D" => Box::new(NpbKernel::cg(64, iters)),
        "ft.D" => Box::new(NpbKernel::ft(120, iters)),
        _ => Box::new(NpbKernel::ua(38, iters)),
    }
}

fn virt_time(name: &str, host_huge: bool) -> f64 {
    let host: Box<dyn hawkeye_kernel::HugePagePolicy> = if host_huge {
        Box::new(LinuxThp::default())
    } else {
        Box::new(BasePagesOnly)
    };
    let mut sys = VirtSystem::new(PolicyKind::Linux2m.config(1024), host);
    let vm = sys.add_vm(
        VmSpec { frames: 192 * 1024 },
        if host_huge {
            Box::new(LinuxThp::default())
        } else {
            Box::new(BasePagesOnly)
        },
    );
    let pid = sys.spawn_in_vm(vm, kernel(name, 1200));
    sys.run();
    sys.guest(vm)
        .process(pid)
        .expect("pid")
        .cpu_time()
        .as_secs()
}

/// One scenario per workload: native base + huge runs, then both
/// virtualized configurations — four simulations per row.
fn scenario(name: &'static str) -> Scenario<Row> {
    Scenario::new(name, move || {
        let base = run_one(PolicyKind::Linux4k, 1024, None, 400.0, kernel(name, 3200));
        let huge = run_one(PolicyKind::Linux2m, 1024, None, 400.0, kernel(name, 3200));
        let rss_mib = {
            // Peak RSS from the recorder.
            let key = format!("p{}.rss_pages", base.pid);
            base.sim
                .machine()
                .recorder()
                .series(&key)
                .and_then(|s| s.max_value())
                .unwrap_or(0.0)
                * 4096.0
                / (1024.0 * 1024.0)
        };
        let stats = base.sim.machine().process(base.pid).expect("pid").stats();
        let miss_rate =
            base.sim.machine().mmu().lifetime(base.pid).walks as f64 / stats.accesses.max(1) as f64;
        let vb = virt_time(name, false);
        let vh = virt_time(name, true);
        Row::new(vec![
            name.to_string(),
            format!("{rss_mib:.0}"),
            format!("{:.2}%", miss_rate * 100.0),
            pct(base.mmu_overhead()),
            pct(huge.mmu_overhead()),
            spd(base.cpu_secs() / huge.cpu_secs()),
            spd(vb / vh),
        ])
        .with_json(Json::obj(vec![
            ("workload", Json::str(name)),
            ("rss_mib", Json::num(rss_mib)),
            ("tlb_miss_per_access", Json::num(miss_rate)),
            ("mmu_overhead_4k", Json::num(base.mmu_overhead())),
            ("mmu_overhead_2m", Json::num(huge.mmu_overhead())),
            (
                "native_speedup",
                Json::num(base.cpu_secs() / huge.cpu_secs()),
            ),
            ("virtual_speedup", Json::num(vb / vh)),
        ]))
    })
}

/// Builds the `table3` report: NPB memory characteristics and translation overheads.
pub fn report(threads: usize) -> Report {
    let scenarios: Vec<Scenario<Row>> = ["bt.D", "sp.D", "lu.D", "mg.D", "cg.D", "ft.D", "ua.D"]
        .map(scenario)
        .into();
    let mut report = Report::new(
        "table3_npb_characteristics",
        "Table 3: NPB characteristics (class-D footprints scaled /128)",
        vec![
            "Workload",
            "RSS (MiB)",
            "TLB-miss/access (4KB)",
            "walk cycles 4KB",
            "walk cycles 2MB",
            "native speedup",
            "virtual speedup",
        ],
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer(
        "(paper, Table 3: cg.D 39% walk cycles at 4KB -> 0.02% at 2MB,\n\
         1.62x native / 2.7x virtual; mg.D ~1% despite the largest WSS)",
    );
    report
}
