//! Table 7: Redis memory consumption vs throughput under bloat.
//!
//! Paper: populate 8 M (10 B, 4 KB) pairs, delete 60 % of keys. Linux-4KB
//! is memory-efficient but slower; Linux-2MB fast but bloated (33 GB vs
//! 16 GB); Ingens picks one side per its threshold; HawkEye self-tunes —
//! fast when memory is plentiful, memory-efficient under pressure.
//! Scaled 256×: 24 K keys (96 MiB), delete 60 %.

use crate::{run_scenarios_with, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::Simulator;
use hawkeye_metrics::Cycles;
use hawkeye_workloads::{RedisKv, RedisOp};

fn script() -> Vec<RedisOp> {
    vec![
        RedisOp::Insert {
            keys: 24 * 1024,
            value_pages: 1,
            think: 300,
        },
        RedisOp::DeleteFrac { fraction: 0.6 },
        // Gap for khugepaged to act (bloat window).
        RedisOp::Serve {
            requests: 20_000,
            think: 120_000,
        },
        // Measured serving phase.
        RedisOp::Serve {
            requests: 200_000,
            think: 2_000,
        },
    ]
}

fn run(kind: PolicyKind, mib: u64, hog_pages: u64) -> (f64, f64) {
    let mut cfg = kind.config(mib);
    cfg.max_time = Cycles::from_secs(120.0);
    let mut sim = Simulator::new(cfg, kind.build());
    if hog_pages > 0 {
        // The paper's "memory pressure" row: a co-resident consumer pushes
        // the system over the high watermark.
        use hawkeye_kernel::{workload::script as kscript, MemOp};
        use hawkeye_vm::{VmaKind, Vpn};
        sim.spawn(kscript(
            "hog",
            vec![
                MemOp::Mmap {
                    start: Vpn(0),
                    pages: hog_pages,
                    kind: VmaKind::Anon,
                },
                MemOp::TouchRange {
                    start: Vpn(0),
                    pages: hog_pages,
                    write: true,
                    think: 0,
                    stride: 1,
                    repeats: 1,
                },
                MemOp::Compute {
                    cycles: 40_000_000_000,
                },
            ],
        ));
    }
    let pid = sim.spawn(Box::new(RedisKv::new(64 * 1024, script(), 31)));
    // Run the loaded phases; measure the final serve phase throughput by
    // time difference around the last 200k requests.
    sim.run_while(|m| {
        m.process(pid)
            .map(|p| p.stats().touches < (24 * 1024 + 20_000) as u64)
            .unwrap_or(false)
    });
    let t0 = sim.machine().now();
    let touches0 = sim
        .machine()
        .process(pid)
        .expect("redis process exists")
        .stats()
        .touches;
    // Finish all but the last 2k requests, then read memory while the
    // server is still live (RSS is meaningless after exit).
    sim.run_while(|m| {
        m.process(pid)
            .map(|p| p.stats().touches < (24 * 1024 + 20_000 + 198_000) as u64)
            .unwrap_or(false)
    });
    let hog_rss: u64 = sim
        .machine()
        .pids()
        .iter()
        .filter_map(|p| sim.machine().process(*p))
        .filter(|p| p.name() == "hog")
        .map(|p| p.space().rss_pages())
        .sum();
    let mem_mib =
        (sim.machine().pm().allocated_pages() - hog_rss) as f64 * 4096.0 / (1024.0 * 1024.0);
    // Capture throughput *now*, before draining unrelated processes.
    let dt = (sim.machine().now() - t0).as_secs();
    let reqs = sim
        .machine()
        .process(pid)
        .expect("redis process exists")
        .stats()
        .touches
        - touches0;
    let kops = reqs as f64 / dt.max(1e-9) / 1e3;
    sim.run();
    (mem_mib, kops)
}

/// Builds the `table7` report: Redis memory vs throughput under bloat recovery.
pub fn report(threads: usize) -> Report {
    let scenarios: Vec<Scenario<Row>> = [
        (PolicyKind::Linux4k, "No", 0u64),
        (PolicyKind::Linux2m, "No", 0),
        (PolicyKind::Ingens90, "No", 0),
        (PolicyKind::Ingens50, "No", 0),
        (PolicyKind::HawkEyeG, "Yes (no pressure)", 0),
        (PolicyKind::HawkEyeG, "Yes (pressure)", 60 * 1024),
    ]
    .into_iter()
    .map(|(kind, tuning, hog)| {
        Scenario::new(format!("{} {tuning}", kind.label()), move || {
            let (mem, kops) = run(kind, 384, hog);
            Row::new(vec![
                kind.label().to_string(),
                tuning.to_string(),
                format!("{mem:.0}"),
                format!("{kops:.1}"),
            ])
            .with_json(Json::obj(vec![
                ("kernel", Json::str(kind.label())),
                ("self_tuning", Json::str(tuning)),
                ("memory_mib", Json::num(mem)),
                ("throughput_kops", Json::num(kops)),
            ]))
        })
    })
    .collect();
    let mut report = Report::new(
        "table7_bloat_recovery",
        "Table 7: Redis memory vs throughput (96 MiB dataset, 60% deleted)",
        vec![
            "Kernel",
            "Self-tuning",
            "Memory (MiB)",
            "Throughput (Kops/s)",
        ],
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer(
        "(paper, Table 7: Linux-4KB 16.2GB/106K; Linux-2MB 33.2GB/113.8K;\n\
         Ingens-90% 16.3GB/106.8K; Ingens-50% 33.1GB/113.4K;\n\
         HawkEye no-pressure 33.2GB/113.6K; HawkEye pressure 16.2GB/105.8K)",
    );
    report
}
