//! Table 8: fault-bound workloads under async pre-zeroing.
//!
//! All five workloads are dominated by page-fault handling; all free
//! memory starts *dirty* (steady state), so synchronous zeroing is on the
//! fault path unless a pre-zeroing daemon removed it. Paper: HawkEye-2MB
//! boots a KVM guest 13.8× faster than Linux-2MB's sync-zeroing path and
//! improves Redis 2 MB-value throughput 1.26×; Ingens' utilization
//! threshold *hurts* these workloads by multiplying faults.

use crate::{
    dirty_free_memory, run_scenarios_with, secs, Json, PolicyKind, Report, Row, RunOutcome,
    Scenario,
};
use hawkeye_kernel::{workload::script, MemOp, Simulator, Workload};
use hawkeye_metrics::Cycles;
use hawkeye_workloads::{HaccIo, RedisKv, RedisOp, SparseHash, Spinup};

fn run_steady(kind: PolicyKind, mib: u64, w: Box<dyn Workload>) -> RunOutcome {
    let mut cfg = kind.config(mib);
    cfg.max_time = Cycles::from_secs(600.0);
    let mut sim = Simulator::new(cfg, kind.build());
    dirty_free_memory(sim.machine_mut());
    if kind.wants_zero_pool() {
        sim.spawn(script(
            "warmup",
            vec![MemOp::Compute {
                cycles: 3_000_000_000,
            }],
        ));
        sim.run();
    }
    let pid = sim.spawn(w);
    sim.run();
    RunOutcome { sim, pid }
}

type WorkloadCtor = fn() -> Box<dyn Workload>;

fn workloads() -> Vec<(&'static str, WorkloadCtor)> {
    vec![
        ("Redis 2MB-values (Kops/s)", || {
            Box::new(RedisKv::new(
                80 * 1024,
                vec![RedisOp::Insert {
                    keys: 120,
                    value_pages: 512,
                    think: 500,
                }],
                41,
            ))
        }),
        ("SparseHash (s)", || Box::new(SparseHash::new(2048, 5, 60))),
        ("HACC-IO (s)", || Box::new(HaccIo::new(24 * 1024, 3))),
        ("JVM spin-up (s)", || {
            Box::new(Spinup::new("jvm", 24 * 1024))
        }),
        ("KVM spin-up (s)", || {
            Box::new(Spinup::new("kvm", 24 * 1024))
        }),
    ]
}

/// Builds the `table8` report: fault-bound workloads under async pre-zeroing.
pub fn report(threads: usize) -> Report {
    let kinds = [
        PolicyKind::Linux4k,
        PolicyKind::Linux2m,
        PolicyKind::Ingens90,
        PolicyKind::HawkEye4k,
        PolicyKind::HawkEyeG,
    ];
    // One scenario per (workload, policy) cell: the whole 5 × 5 matrix
    // runs in parallel; rows reassemble from the ordered results.
    let scenarios: Vec<Scenario<(String, f64)>> = workloads()
        .into_iter()
        .flat_map(|(name, mk)| {
            kinds.into_iter().map(move |kind| {
                Scenario::new(format!("{name} / {}", kind.label()), move || {
                    let out = run_steady(kind, 512, mk());
                    if name.starts_with("Redis") {
                        // Throughput: inserted keys per second of CPU time.
                        let kops = 120.0 / out.cpu_secs().max(1e-9) / 1e3;
                        (format!("{:.2}K", kops * 1e3 / 1e3), kops)
                    } else {
                        (secs(out.cpu_secs()), out.cpu_secs())
                    }
                })
            })
        })
        .collect();
    let cells = run_scenarios_with(scenarios, threads);

    let mut header: Vec<&'static str> = vec!["Workload"];
    header.extend(kinds.iter().map(|k| k.label()));
    let mut report = Report::new(
        "table8_fast_faults",
        "Table 8: fault-dominated workloads, steady-state (dirty) free memory",
        header,
    );
    for (w, chunk) in workloads().iter().zip(cells.chunks(kinds.len())) {
        let mut row = vec![w.0.to_string()];
        row.extend(chunk.iter().map(|(cell, _)| cell.clone()));
        let mut json = Json::obj(vec![("workload", Json::str(w.0))]);
        for (kind, (_, value)) in kinds.iter().zip(chunk) {
            json.push(kind.label(), Json::num(*value));
        }
        report.add(Row::new(row).with_json(json));
    }
    report.footer(
        "(paper, Table 8 [45GB/36GB/6GB/36GB/36GB footprints]:\n\
         Redis 233/437/192/236/551 Kops; SparseHash 50.1/17.2/51.5/46.6/10.6 s;\n\
         HACC-IO 6.5/4.5/6.6/6.5/4.2 s; JVM 37.7/18.6/52.7/29.8/1.37 s;\n\
         KVM 40.6/9.7/41.8/30.2/0.70 s)",
    );
    report
}
