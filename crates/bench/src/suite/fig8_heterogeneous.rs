//! Fig. 8: a TLB-sensitive application co-running with a lightly-loaded
//! Redis server, launched in both orders.
//!
//! Linux promotes in process-launch order, so the sensitive app only wins
//! when launched first; Ingens' footprint-proportional shares favor the
//! (large, uniformly-accessed) Redis; HawkEye allocates by MMU overhead
//! and is order-independent — the paper measures 15–60 % speedups for the
//! sensitive apps under HawkEye in both orders.

use crate::{run_scenarios_with, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::{Simulator, Workload};
use hawkeye_metrics::Cycles;
use hawkeye_workloads::{HotspotWorkload, NpbKernel, RedisKv};

fn sensitive(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(56, 4500)),
        "xsbench" => Box::new(HotspotWorkload::xsbench(64, 4500)),
        _ => Box::new(NpbKernel::cg(48, 4500)),
    }
}

fn redis() -> Box<dyn Workload> {
    // Lightly loaded: 96 MiB of keys, random GETs paced at a low rate.
    Box::new(RedisKv::lightly_loaded(24 * 1024, 100_000_000, 23))
}

/// Runs the pair; `sensitive_first` controls launch order. Returns the
/// sensitive app's completion time.
fn run_pair(kind: PolicyKind, name: &str, sensitive_first: bool) -> f64 {
    let mut cfg = kind.config(768);
    cfg.max_time = Cycles::from_secs(400.0);
    let mut sim = Simulator::new(cfg, kind.build());
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let sens_pid = if sensitive_first {
        let p = sim.spawn(sensitive(name));
        sim.spawn(redis());
        p
    } else {
        sim.spawn(redis());
        sim.spawn(sensitive(name))
    };
    sim.run_while(|m| {
        m.process(sens_pid)
            .map(|p| !p.is_finished())
            .unwrap_or(false)
    });
    sim.machine()
        .process(sens_pid)
        .and_then(|p| p.finish_time())
        .unwrap_or(sim.machine().now())
        .as_secs()
}

const NAMES: [&str; 3] = ["graph500", "xsbench", "cg"];
const KINDS: [PolicyKind; 5] = [
    PolicyKind::Linux4k,
    PolicyKind::Linux2m,
    PolicyKind::Ingens,
    PolicyKind::HawkEyePmu,
    PolicyKind::HawkEyeG,
];

/// Builds the `fig8` report: a TLB-sensitive tenant next to a lightly-loaded one.
pub fn report(threads: usize) -> Report {
    // One scenario per (workload, policy, launch order) — 30 independent
    // pair simulations, fanned across cores.
    let scenarios: Vec<Scenario<f64>> = NAMES
        .iter()
        .flat_map(|name| {
            KINDS.iter().flat_map(move |kind| {
                [true, false].into_iter().map(move |first| {
                    let (name, kind) = (*name, *kind);
                    Scenario::new(
                        format!(
                            "{name} {} {}",
                            kind.label(),
                            if first { "before" } else { "after" }
                        ),
                        move || run_pair(kind, name, first),
                    )
                })
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "fig8_heterogeneous",
        "Fig. 8: TLB-sensitive app +/- lightly-loaded Redis, both launch orders",
        vec![
            "Sensitive app",
            "Policy",
            "speedup (launched Before)",
            "speedup (launched After)",
        ],
    );
    let per_name = KINDS.len() * 2;
    for (wi, name) in NAMES.iter().enumerate() {
        let cells = &results[wi * per_name..(wi + 1) * per_name];
        let (base_before, base_after) = (cells[0], cells[1]);
        for (ki, kind) in KINDS.iter().enumerate().skip(1) {
            let (before, after) = (cells[ki * 2], cells[ki * 2 + 1]);
            report.add(
                Row::new(vec![
                    name.to_string(),
                    kind.label().to_string(),
                    spd(base_before / before),
                    spd(base_after / after),
                ])
                .with_json(Json::obj(vec![
                    ("workload", Json::str(*name)),
                    ("policy", Json::str(kind.label())),
                    ("speedup_before", Json::num(base_before / before)),
                    ("speedup_after", Json::num(base_after / after)),
                ])),
            );
        }
    }
    report.footer(
        "(paper, Fig. 8: Linux helps only in the Before order; Ingens favors\n\
         Redis in both; HawkEye gives the sensitive app 15-60% in both orders)",
    );
    report
}
