//! Fig. 1: Redis resident memory across insert / delete / insert phases.
//!
//! Paper (48 GB machine): P1 inserts 45 GB of 4 KB values, P2 deletes 80 %
//! of keys (madvise breaks huge pages, RSS drops to 11 GB), khugepaged
//! re-promotes the sparse regions (bloat), and P3's 2 MB-value inserts
//! drive Linux and Ingens out of memory while HawkEye recovers bloat and
//! survives. Scaled here 256×: 176 MiB machine, 160 MiB dataset.

use crate::{format_series, run_scenarios_with, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::Simulator;
use hawkeye_metrics::Cycles;
use hawkeye_workloads::{RedisKv, RedisOp};

fn redis_script() -> Vec<RedisOp> {
    vec![
        // P1: 160 MiB of 4 KB values.
        RedisOp::Insert {
            keys: 40 * 1024,
            value_pages: 1,
            think: 300,
        },
        RedisOp::Serve {
            requests: 20_000,
            think: 2_000,
        },
        // P2: delete 80%.
        RedisOp::DeleteFrac { fraction: 0.8 },
        // Gap: khugepaged gets time to "help" (re-promote sparse regions).
        RedisOp::Serve {
            requests: 40_000,
            think: 150_000,
        },
        // P3: 2 MB values until the dataset is back at ~160 MiB.
        RedisOp::Insert {
            keys: 64,
            value_pages: 512,
            think: 20_000,
        },
        RedisOp::Serve {
            requests: 20_000,
            think: 2_000,
        },
    ]
}

/// Builds the `fig1` report: Redis resident memory across insert/delete/insert phases.
pub fn report(threads: usize) -> Report {
    let scenarios: Vec<Scenario<Row>> = [
        PolicyKind::Linux2m,
        PolicyKind::Ingens,
        PolicyKind::HawkEyeG,
    ]
    .into_iter()
    .map(|kind| {
        Scenario::new(kind.label(), move || {
            let mut cfg = kind.config(176);
            cfg.max_time = Cycles::from_secs(120.0);
            let mut sim = Simulator::new(cfg, kind.build());
            let pid = sim.spawn(Box::new(RedisKv::new(120 * 1024, redis_script(), 17)));
            sim.run();
            let m = sim.machine();
            let series = m.recorder().series("mem.allocated_pages").expect("sampled");
            let peak = series.max_value().unwrap_or(0.0) * 4096.0 / (1024.0 * 1024.0);
            let fin = series.last().map(|s| s.value).unwrap_or(0.0) * 4096.0 / (1024.0 * 1024.0);
            let recovered = m.stats().deduped_zero_pages as f64 * 4096.0 / (1024.0 * 1024.0);
            let oom = m.process(pid).map(|p| p.is_oom()).unwrap_or(false);
            Row::new(vec![
                kind.label().to_string(),
                format!("{peak:.0}"),
                format!("{fin:.0}"),
                format!("{recovered:.0}"),
                if oom {
                    "OOM".into()
                } else {
                    "completed".into()
                },
            ])
            .with_json(Json::obj(vec![
                ("kernel", Json::str(kind.label())),
                ("peak_rss_mib", Json::num(peak)),
                ("final_rss_mib", Json::num(fin)),
                ("bloat_recovered_mib", Json::num(recovered)),
                ("oom", Json::Bool(oom)),
            ]))
            .line(format_series(
                &format!("{} RSS (pages) over time", kind.label()),
                series,
                14,
            ))
        })
    })
    .collect();
    let mut report = Report::new(
        "fig1_redis_bloat",
        "Fig. 1: Redis bloat across phases (176 MiB machine, 160 MiB dataset)",
        vec![
            "Kernel",
            "peak RSS (MiB)",
            "final RSS (MiB)",
            "bloat recovered (MiB)",
            "OOM?",
        ],
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer(
        "(paper, Fig. 1: Linux and Ingens hit OOM at 28 GB / 20 GB bloat;\n\
         HawkEye recovers bloat under pressure and completes)",
    );
    report
}
