//! Adversarial attackers swept over intensity: where does each policy
//! break?
//!
//! Two attacker families from `hawkeye-workloads` co-run with a
//! TLB-sensitive B-tree victim while the attack knob sweeps `[0, 1]`:
//!
//! * **frag** — the FMFI pessimizer pins one page per attacked 2 MB
//!   region and frees the rest, so free memory is plentiful but
//!   non-contiguous in proportion to intensity.
//! * **bloat** — the recovery weaponizer grows a dense, fully-written
//!   arena until utilization crosses the bloat-recovery watermark; the
//!   only zero pages left on the machine are the free tails inside the
//!   victim's fault-time huge pages, so HawkEye's recovery demotes the
//!   *victim* to feed the attacker, while Linux-2MB OOM-kills the
//!   attacker and the victim keeps its huge pages.
//!
//! For every (attack, intensity, policy) cell the table reports the
//! *victim's* completion time and its ratio to Linux-2MB under the same
//! attack — ratios above 1.0 mean the policy lost to Linux-2MB, and the
//! first intensity where that happens is the policy's failure knee,
//! tabulated in the generated ENVELOPES.md (DESIGN.md §17).

use crate::{pct, run_scenarios_with, secs, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::{Simulator, Workload};
use hawkeye_metrics::Cycles;
use hawkeye_workloads::{BloatAttacker, BtreeOltp, FragAttacker};

/// The attack-knob sweep; 0.0 is the unattacked control point.
pub const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Attack families, in report order.
pub const ATTACKS: [&str; 2] = ["frag", "bloat"];

/// Linux-2MB leads so every other row can divide by its cell.
const KINDS: [PolicyKind; 4] = [
    PolicyKind::Linux2m,
    PolicyKind::Linux4k,
    PolicyKind::HawkEyeG,
    PolicyKind::HawkEyePmu,
];

/// The measured tenant: a pointer-chasing B-tree (DESIGN.md §17's OLTP
/// family at reduced scale). Fill factor 0.65 is the textbook post-split
/// steady state — and the free tail it leaves inside each fault-time
/// huge page is exactly what the bloat attacker aims recovery at.
fn victim(txns: u64) -> Box<dyn Workload> {
    Box::new(BtreeOltp::new("victim-btree", 8, 0.7, 0.3, 8, 0.1, txns, 90, 11).with_fill(0.65))
}

/// Victim transaction count for the suite run: long enough that the
/// bloat attacker's growth lands on a still-running victim.
const VICTIM_TXNS: u64 = 2_500_000;

/// Simulated settle time before the victim arrives under the frag
/// attack: long enough for the attacker to shatter its arena before the
/// victim's faults start asking for contiguity.
const FRAG_SETTLE: f64 = 0.1;

/// Simulated settle time before the *attacker* arrives under the bloat
/// attack: long enough for the victim's bulk load to claim its
/// fault-time huge pages (and their zero tails) first.
const BLOAT_SETTLE: f64 = 0.06;

/// One sweep cell: victim completion seconds, MMU overhead, machine
/// promotions, whether the victim was OOM-killed, and whether the
/// *attacker* was (overshooting attacks self-destruct — see DESIGN.md
/// §17 on why the bloat attack is non-monotone in intensity).
type Cell = (f64, f64, u64, bool, bool);

fn run_cell(attack: &'static str, kind: PolicyKind, intensity: f64, victim_txns: u64) -> Cell {
    let mut cfg = kind.config(64);
    cfg.max_time = Cycles::from_secs(300.0);
    let mut sim = Simulator::new(cfg, kind.build());
    let (pid, atk, spawned_at) = if attack == "frag" {
        // Frag: the attacker goes first so its pins shatter everything
        // the victim's faults could be given; the victim then arrives on
        // a machine with plenty of free — but non-contiguous — memory.
        let atk = sim.spawn(Box::new(FragAttacker::new(22, intensity, 500_000, 7)));
        sim.run_for(Cycles::from_secs(FRAG_SETTLE));
        let spawned_at = sim.machine().now();
        (sim.spawn(victim(victim_txns)), atk, spawned_at)
    } else {
        // Bloat: the victim goes first so its fault-time huge pages (and
        // the zero tails its 0.65 fill factor leaves in them) exist
        // before the attacker's dense growth pushes utilization over the
        // recovery watermark — at which point the victim's tails are the
        // only reclaimable memory on the machine.
        let spawned_at = sim.machine().now();
        let pid = sim.spawn(victim(victim_txns));
        sim.run_for(Cycles::from_secs(BLOAT_SETTLE));
        let atk = sim.spawn(Box::new(BloatAttacker::new(26, intensity, 500_000, 9)));
        (pid, atk, spawned_at)
    };
    sim.run_while(|m| m.process(pid).map(|p| !p.is_finished()).unwrap_or(false));
    let p = sim.machine().process(pid).expect("victim pid");
    let end = p.finish_time().unwrap_or(sim.machine().now());
    let exec = end.saturating_sub(spawned_at).as_secs();
    let mmu = sim.machine().mmu().lifetime(pid).mmu_overhead();
    let atk_oom = sim.machine().process(atk).is_some_and(|a| a.is_oom());
    (
        exec,
        mmu,
        sim.machine().stats().promotions,
        p.is_oom(),
        atk_oom,
    )
}

/// Builds the `adversarial` report: the full attack × intensity × policy
/// sweep, with per-cell ratios against Linux-2MB under the same attack.
pub fn report(threads: usize) -> Report {
    report_with(VICTIM_TXNS, &INTENSITIES, threads)
}

/// [`report`] with an explicit victim length and intensity sweep — the
/// byte-determinism test runs a short victim over two intensities so
/// the sweep stays affordable under the dev profile.
pub fn report_with(victim_txns: u64, intensities: &[f64], threads: usize) -> Report {
    let scenarios: Vec<Scenario<Cell>> = ATTACKS
        .iter()
        .flat_map(|attack| {
            intensities.iter().flat_map(move |intensity| {
                KINDS.iter().map(move |kind| {
                    let (attack, intensity, kind) = (*attack, *intensity, *kind);
                    Scenario::new(
                        format!("{attack} i={intensity:.2} {}", kind.label()),
                        move || run_cell(attack, kind, intensity, victim_txns),
                    )
                })
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "adversarial",
        "Adversarial attackers: victim slowdown vs attack intensity",
        vec![
            "Attack",
            "intensity",
            "Policy",
            "victim exec (s)",
            "vs Linux-2MB",
            "MMU ovh",
            "promotions",
            "OOM",
            "atk OOM",
        ],
    );
    for (ai, attack) in ATTACKS.iter().enumerate() {
        for (ii, intensity) in intensities.iter().enumerate() {
            let base = ai * intensities.len() * KINDS.len() + ii * KINDS.len();
            let t2m = results[base].0;
            for (ki, kind) in KINDS.iter().enumerate() {
                let (exec, mmu, promos, oom, atk_oom) = results[base + ki];
                let ratio = exec / t2m;
                report.add(
                    Row::new(vec![
                        attack.to_string(),
                        format!("{intensity:.2}"),
                        kind.label().to_string(),
                        secs(exec),
                        format!("{ratio:.3}"),
                        pct(mmu),
                        promos.to_string(),
                        if oom { "yes".into() } else { "-".into() },
                        if atk_oom { "yes".into() } else { "-".into() },
                    ])
                    .with_json(Json::obj(vec![
                        ("attack", Json::str(*attack)),
                        ("intensity", Json::num(*intensity)),
                        ("policy", Json::str(kind.label())),
                        ("victim_exec_secs", Json::num(exec)),
                        ("vs_linux2m", Json::num(ratio)),
                        ("mmu_overhead", Json::num(mmu)),
                        ("promotions", Json::int(promos)),
                        ("victim_oom", Json::int(oom as u64)),
                        ("attacker_oom", Json::int(atk_oom as u64)),
                    ])),
                );
            }
        }
    }
    report.footer(
        "(DESIGN.md §17: ratios above 1.000 mean the policy lost to Linux-2MB\n\
         under the same attack; the first such intensity per policy is its\n\
         failure knee — see the generated ENVELOPES.md for the knee table)",
    );
    report
}
