//! Fig. 4: the `access_map` bucket structure and HawkEye-G's global
//! promotion order.
//!
//! Reconstructs the paper's example: three processes A, B, C with regions
//! filed into coverage buckets; HawkEye-G promotes from the globally
//! highest non-empty bucket with round-robin among tied processes,
//! producing the order `A1,B1,C1,C2,B2,C3,C4,B3,B4,A2,C5,A3`.

use crate::{run_scenarios_with, Json, Report, Row, Scenario};
use hawkeye_core::AccessMap;
use hawkeye_vm::Hvpn;
use std::collections::BTreeMap;

const PAPER_ORDER: &str = "A1,B1,C1,C2,B2,C3,C4,B3,B4,A2,C5,A3";

fn build_example() -> (BTreeMap<char, AccessMap>, BTreeMap<(char, u64), String>) {
    // Region ids encode (process, label): A1 = region 1 of A, etc.
    // Coverage values place them in the paper's buckets.
    let mut maps: BTreeMap<char, AccessMap> = BTreeMap::new();
    let mut label: BTreeMap<(char, u64), String> = BTreeMap::new();
    let add = |maps: &mut BTreeMap<char, AccessMap>,
               label: &mut BTreeMap<(char, u64), String>,
               p: char,
               idx: u64,
               cov: u32| {
        let map = maps.entry(p).or_insert_with(|| AccessMap::new(1.0));
        map.update(Hvpn(idx), cov);
        label.insert((p, idx), format!("{p}{idx}"));
    };
    // Insertion order = recency; within a bucket the head is most recent.
    // Bucket 9 (450+): A1, B1, C2 then C1 (C1 most recent -> head).
    add(&mut maps, &mut label, 'A', 1, 480);
    add(&mut maps, &mut label, 'B', 1, 470);
    add(&mut maps, &mut label, 'C', 2, 460);
    add(&mut maps, &mut label, 'C', 1, 490);
    // Bucket 7: B2, C4 then C3 at head.
    add(&mut maps, &mut label, 'B', 2, 380);
    add(&mut maps, &mut label, 'C', 4, 360);
    add(&mut maps, &mut label, 'C', 3, 390);
    // Bucket 5: B4 then B3 at head.
    add(&mut maps, &mut label, 'B', 4, 260);
    add(&mut maps, &mut label, 'B', 3, 280);
    // Bucket 3: A2, C5.
    add(&mut maps, &mut label, 'A', 2, 180);
    add(&mut maps, &mut label, 'C', 5, 160);
    // Bucket 1: A3.
    add(&mut maps, &mut label, 'A', 3, 60);
    (maps, label)
}

fn scenario() -> Scenario<Row> {
    Scenario::new("access-map example", || {
        let (mut maps, label) = build_example();
        let mut text =
            String::from("== Fig. 4: access_map state (bucket -> regions, head first) ==\n");
        for (p, map) in &maps {
            let mut per_bucket: BTreeMap<usize, Vec<String>> = BTreeMap::new();
            for (h, ema) in map.iter() {
                let bucket = ((ema / 50.0) as usize).min(9);
                per_bucket
                    .entry(bucket)
                    .or_default()
                    .push(label[&(*p, h.0)].clone());
            }
            let desc: Vec<String> = per_bucket
                .iter()
                .rev()
                .map(|(b, rs)| format!("b{b}:[{}]", rs.join(",")))
                .collect();
            text.push_str(&format!("process {p}: {}\n", desc.join(" ")));
        }

        // HawkEye-G global order: highest non-empty bucket across
        // processes, round-robin among ties, head-first within a process.
        let mut order = Vec::new();
        let mut last: char = '\0';
        let mut last_bucket = usize::MAX;
        loop {
            let mut best: Option<usize> = None;
            let mut holders: Vec<char> = Vec::new();
            for (p, map) in &maps {
                let Some(idx) = map.highest_index() else {
                    continue;
                };
                match best {
                    Some(b) if idx < b => {}
                    Some(b) if idx == b => holders.push(*p),
                    _ => {
                        best = Some(idx);
                        holders = vec![*p];
                    }
                }
            }
            if holders.is_empty() {
                break;
            }
            // The rotation restarts whenever the global bucket level drops.
            if best != Some(last_bucket) {
                last = '\0';
                last_bucket = best.expect("non-empty holders imply a bucket");
            }
            let p = holders
                .iter()
                .copied()
                .find(|p| *p > last)
                .unwrap_or(holders[0]);
            last = p;
            let map = maps.get_mut(&p).expect("holder");
            let h = map.pop_best(0.0).expect("non-empty");
            order.push(label[&(p, h.0)].clone());
        }
        let joined = order.join(",");
        text.push_str(&format!("\nHawkEye-G promotion order: {joined}\n"));
        text.push_str(&format!("(paper example:            {PAPER_ORDER})\n"));
        Row::new(vec![])
            .with_json(Json::obj(vec![
                ("promotion_order", Json::str(joined.clone())),
                ("paper_order", Json::str(PAPER_ORDER)),
                ("matches_paper", Json::Bool(joined == PAPER_ORDER)),
            ]))
            .line(text)
    })
}

/// Builds the `fig4` report: the `access_map` bucket structure and promotion ordering.
pub fn report(threads: usize) -> Report {
    let mut report = Report::new(
        "fig4_access_map",
        "Fig. 4: access_map promotion order",
        vec![], // free-text figure, no table
    );
    report.extend(run_scenarios_with(vec![scenario()], threads));
    report
}
