//! Fig. 7 / Table 5: three identical instances of Graph500 and XSBench
//! running simultaneously in a fragmented system.
//!
//! Linux's FCFS khugepaged promotes one process at a time (fast for the
//! first, unfair to the rest); Ingens promotes proportionally but wastes
//! promotions on cold low-VA regions; HawkEye promotes hot regions of all
//! instances round-robin — the paper measures 1.13–1.15× average speedup
//! for HawkEye vs ~1.0–1.06× for Linux/Ingens.

use crate::{run_scenarios_with, secs, spd, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::{Simulator, Workload};
use hawkeye_metrics::Cycles;
use hawkeye_workloads::HotspotWorkload;

fn instance(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(56, 5000)),
        _ => Box::new(HotspotWorkload::xsbench(64, 5000)),
    }
}

fn run_three(kind: PolicyKind, name: &str) -> (Vec<f64>, u64) {
    let mut cfg = kind.config(768);
    cfg.max_time = Cycles::from_secs(400.0);
    let mut sim = Simulator::new(cfg, kind.build());
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let pids: Vec<u32> = (0..3).map(|_| sim.spawn(instance(name))).collect();
    sim.run();
    let times = pids
        .iter()
        .map(|pid| {
            sim.machine()
                .process(*pid)
                .and_then(|p| p.finish_time())
                .unwrap_or(sim.machine().now())
                .as_secs()
        })
        .collect();
    (times, sim.machine().stats().promotions)
}

const NAMES: [&str; 2] = ["graph500", "xsbench"];
const KINDS: [PolicyKind; 5] = [
    PolicyKind::Linux4k,
    PolicyKind::Linux2m,
    PolicyKind::Ingens,
    PolicyKind::HawkEyePmu,
    PolicyKind::HawkEyeG,
];

/// Builds the `fig7_table5` report: fairness across identical co-running instances.
pub fn report(threads: usize) -> Report {
    // One scenario per (workload, policy); the 4KB cell doubles as the
    // speedup base for its workload (assembled after the ordered run).
    let scenarios: Vec<Scenario<(Vec<f64>, u64)>> = NAMES
        .iter()
        .flat_map(|name| {
            KINDS.iter().map(move |kind| {
                let (name, kind) = (*name, *kind);
                Scenario::new(format!("{name} {}", kind.label()), move || {
                    run_three(kind, name)
                })
            })
        })
        .collect();
    let results = run_scenarios_with(scenarios, threads);

    let mut report = Report::new(
        "fig7_table5_identical_workloads",
        "Table 5 / Fig. 7: three identical instances, fragmented system",
        vec![
            "Workload",
            "Policy",
            "inst-1 (s)",
            "inst-2 (s)",
            "inst-3 (s)",
            "avg (s)",
            "avg speedup",
            "promotions",
        ],
    );
    for (wi, name) in NAMES.iter().enumerate() {
        let cells = &results[wi * KINDS.len()..(wi + 1) * KINDS.len()];
        let avg4k = cells[0].0.iter().sum::<f64>() / 3.0;
        for (ki, kind) in KINDS.iter().enumerate() {
            let (times, promos) = &cells[ki];
            let promos = if *kind == PolicyKind::Linux4k {
                0
            } else {
                *promos
            };
            let avg = times.iter().sum::<f64>() / 3.0;
            report.add(
                Row::new(vec![
                    name.to_string(),
                    kind.label().to_string(),
                    secs(times[0]),
                    secs(times[1]),
                    secs(times[2]),
                    secs(avg),
                    spd(avg4k / avg),
                    promos.to_string(),
                ])
                .with_json(Json::obj(vec![
                    ("workload", Json::str(*name)),
                    ("policy", Json::str(kind.label())),
                    (
                        "instance_secs",
                        Json::Arr(times.iter().map(|t| Json::num(*t)).collect()),
                    ),
                    ("avg_secs", Json::num(avg)),
                    ("avg_speedup", Json::num(avg4k / avg)),
                    ("promotions", Json::int(promos)),
                ])),
            );
        }
    }
    report.footer(
        "(paper, Table 5: Graph500 avg speedups 1.02x Linux / 1.01x Ingens /\n\
         1.14x HawkEye-PMU / 1.13x HawkEye-G; XSBench 1.00/1.00/1.15/1.15)",
    );
    report
}
