//! Fig. 6: MMU overhead and huge-page count over time for Graph500 and
//! XSBench in a fragmented system.
//!
//! The hot regions of both applications live in high virtual addresses,
//! so Linux's and Ingens' sequential low-to-high scans promote cold
//! regions for a long time before reaching what matters, while HawkEye's
//! access-coverage buckets pick the hot regions first — the paper shows
//! HawkEye eliminating XSBench's overheads in ~300 s while Linux/Ingens
//! are still above them after 1000 s.

use crate::{format_series, run_one, run_scenarios_with, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::Workload;
use hawkeye_workloads::HotspotWorkload;

fn workload(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(96, 6000)),
        _ => Box::new(HotspotWorkload::xsbench(120, 6000)),
    }
}

/// Builds the `fig6` report: MMU overhead and huge-page count over time.
pub fn report(threads: usize) -> Report {
    let mut scenarios: Vec<Scenario<Row>> = Vec::new();
    for name in ["graph500", "xsbench"] {
        for (ki, kind) in [
            PolicyKind::Linux2m,
            PolicyKind::Ingens,
            PolicyKind::HawkEyeG,
        ]
        .into_iter()
        .enumerate()
        {
            scenarios.push(Scenario::new(
                format!("{name} {}", kind.label()),
                move || {
                    let out = run_one(kind, 768, Some((1.0, 0.55)), 300.0, workload(name));
                    let m = out.sim.machine();
                    let mut text = String::new();
                    if ki == 0 {
                        text.push_str(&format!("===== Fig. 6: {name} =====\n"));
                    }
                    let key_mmu = format!("p{}.mmu_overhead", out.pid);
                    let key_huge = format!("p{}.huge_pages", out.pid);
                    if let Some(s) = m.recorder().series(&key_mmu) {
                        text.push_str(&format_series(
                            &format!("{} {name}: MMU overhead (fraction)", kind.label()),
                            s,
                            12,
                        ));
                    }
                    if let Some(s) = m.recorder().series(&key_huge) {
                        text.push_str(&format_series(
                            &format!("{} {name}: huge pages mapped", kind.label()),
                            s,
                            12,
                        ));
                    }
                    let overhead = out.mmu_overhead();
                    let promos = m.stats().promotions;
                    text.push_str(&format!(
                        "{} {name}: final overhead {:.1}%, promotions {}\n",
                        kind.label(),
                        overhead * 100.0,
                        promos
                    ));
                    Row::new(vec![])
                        .with_json(Json::obj(vec![
                            ("workload", Json::str(name)),
                            ("policy", Json::str(kind.label())),
                            ("final_mmu_overhead", Json::num(overhead)),
                            ("promotions", Json::int(promos)),
                        ]))
                        .line(text)
                },
            ));
        }
    }
    let mut report = Report::new(
        "fig6_promotion_timeline",
        "Fig. 6: promotion timelines in a fragmented system",
        vec![], // series blocks only, no table
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer(
        "(paper, Fig. 6: HawkEye promotes the hot high-VA regions first and\n\
         eliminates MMU overheads several times faster than Linux/Ingens)",
    );
    report
}
