//! Table 4: the MMU-overhead measurement methodology.
//!
//! `MMU overhead = (DTLB_LOAD_MISSES_WALK_DURATION +
//! DTLB_STORE_MISSES_WALK_DURATION) * 100 / CPU_CLK_UNHALTED`.
//!
//! This target runs one TLB-hostile and one TLB-friendly workload and
//! prints the raw counters alongside the derived overhead, verifying the
//! formula end to end.

use crate::{pct, run_one, run_scenarios_with, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_workloads::PatternScan;

/// Builds the `table4` report: the MMU-overhead measurement methodology comparison.
pub fn report(threads: usize) -> Report {
    let scenarios: Vec<Scenario<Row>> = [("random-192MB", true), ("sequential-192MB", false)]
        .into_iter()
        .map(|(name, random)| {
            Scenario::new(name, move || {
                let w = if random {
                    PatternScan::random(48 * 1024, 400_000, 60)
                } else {
                    PatternScan::sequential(48 * 1024, 400_000, 60)
                };
                let out = run_one(PolicyKind::Linux4k, 512, None, 300.0, Box::new(w));
                let life = out.sim.machine().mmu().lifetime(out.pid);
                let derived =
                    (life.load_walk + life.store_walk).get() as f64 / life.unhalted.get() as f64;
                assert!(
                    (derived - life.mmu_overhead()).abs() < 1e-12,
                    "formula mismatch"
                );
                Row::new(vec![
                    name.to_string(),
                    format!("{:.1}", life.load_walk.get() as f64 / 1e6),
                    format!("{:.1}", life.store_walk.get() as f64 / 1e6),
                    format!("{:.1}", life.unhalted.get() as f64 / 1e6),
                    pct(derived),
                ])
                .with_json(Json::obj(vec![
                    ("workload", Json::str(name)),
                    ("load_walk_cycles", Json::int(life.load_walk.get())),
                    ("store_walk_cycles", Json::int(life.store_walk.get())),
                    ("unhalted_cycles", Json::int(life.unhalted.get())),
                    ("mmu_overhead", Json::num(derived)),
                ]))
            })
        })
        .collect();
    let mut report = Report::new(
        "table4_pmu_methodology",
        "Table 4: PMU counters and the derived MMU overhead",
        vec![
            "Workload",
            "C1 load-walk (Mcyc)",
            "C2 store-walk (Mcyc)",
            "C3 unhalted (Mcyc)",
            "(C1+C2)/C3",
        ],
    );
    report.extend(run_scenarios_with(scenarios, threads));
    report.footer("formula verified: overhead == (C1 + C2) / C3 exactly");
    report
}
