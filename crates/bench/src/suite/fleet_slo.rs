//! Fleet SLOs: thousands of hosts behind the `hawkeye-fleet`
//! orchestrator, A/B-testing kernel policies under userspace hooks.
//!
//! Two cohorts run the same diurnal traffic curve, tenant churn, and
//! overcommit storms (DESIGN.md §15): HawkEye-G steered by the
//! `throttle-under-pressure` hook, and Linux-2MB under the hands-off
//! hook as control. The table reports fleet SLOs per cohort — p99 fault
//! latency, aggregate MMU overhead, RSS headroom — plus the tenancy and
//! steering counters that prove the storms and the hook actually fired.
//! Sampled host journals ride into `fleet_slo.trace.json` through the
//! scenario engine's artifact queue.

use crate::{pct, Json, PolicyKind, Report, Row};
use hawkeye_fleet::{run, CohortSpec, FleetConfig, NoopHook, ThrottleUnderPressure};
use hawkeye_kernel::{HugePagePolicy, KernelConfig};
use std::time::Instant;

fn hawkeye_policy() -> Box<dyn HugePagePolicy> {
    PolicyKind::HawkEyeG.build()
}

fn hawkeye_config(mib: u64) -> KernelConfig {
    PolicyKind::HawkEyeG.config(mib)
}

fn linux2m_policy() -> Box<dyn HugePagePolicy> {
    PolicyKind::Linux2m.build()
}

fn linux2m_config(mib: u64) -> KernelConfig {
    PolicyKind::Linux2m.config(mib)
}

fn throttle_hook() -> Box<dyn hawkeye_fleet::FleetHook> {
    // Engage just below the orchestrator's cascade threshold so the hook
    // sees pressure building before storms resolve it.
    Box::new(ThrottleUnderPressure::new(0.60, 0.85))
}

fn noop_hook() -> Box<dyn hawkeye_fleet::FleetHook> {
    Box::new(NoopHook)
}

/// The A/B cohorts: HawkEye-G steered by the pressure hook vs Linux-2MB
/// under the hands-off control hook.
pub fn cohorts() -> Vec<CohortSpec> {
    vec![
        CohortSpec {
            name: "HawkEye-G+throttle",
            policy: hawkeye_policy,
            config: hawkeye_config,
            hook: throttle_hook,
        },
        CohortSpec {
            name: "Linux-2MB+noop",
            policy: linux2m_policy,
            config: linux2m_config,
            hook: noop_hook,
        },
    ]
}

/// Runs the fleet at an explicit shape — the determinism test and the CI
/// smoke gate use small fleets; [`report`] uses [`FleetConfig::slo`].
pub fn report_with(cfg: &FleetConfig, threads: usize) -> Report {
    let t0 = Instant::now();
    let result = run(cfg, &cohorts(), threads);
    crate::wallclock::record("engine", t0.elapsed().as_secs_f64());
    crate::scenario::queue_trace_journals(result.journals);

    let mut report = Report::new(
        "fleet_slo",
        format!(
            "Fleet SLOs: {} hosts/cohort, {} epochs, userspace hooks steering kernel policy",
            cfg.hosts, cfg.epochs
        ),
        vec![
            "Cohort", "hook", "faults", "p50 us", "p99 us", "MMU ovh", "headroom",
            "migrations", "balloons", "steers",
        ],
    );
    for slo in &result.cohorts {
        let t = &slo.tenancy;
        report.add(
            Row::new(vec![
                slo.cohort.clone(),
                slo.hook.clone(),
                slo.faults.to_string(),
                format!("{:.2}", slo.p50_fault_us),
                format!("{:.2}", slo.p99_fault_us),
                pct(slo.mmu_overhead),
                pct(slo.rss_headroom),
                t.migrations_out.to_string(),
                (t.balloons + t.cascade_balloons).to_string(),
                slo.steer_decisions.to_string(),
            ])
            .with_json(Json::obj(vec![
                ("cohort", Json::str(slo.cohort.clone())),
                ("hook", Json::str(slo.hook.clone())),
                ("hosts", Json::int(slo.hosts as u64)),
                ("faults", Json::int(slo.faults)),
                ("p50_fault_us", Json::num(slo.p50_fault_us)),
                ("p99_fault_us", Json::num(slo.p99_fault_us)),
                ("mmu_overhead", Json::num(slo.mmu_overhead)),
                ("rss_headroom", Json::num(slo.rss_headroom)),
                ("promotions", Json::int(slo.promotions)),
                ("demotions", Json::int(slo.demotions)),
                ("deduped_pages", Json::int(slo.deduped_pages)),
                ("ooms", Json::int(slo.ooms)),
                ("spawned", Json::int(t.spawned)),
                ("finished", Json::int(t.finished)),
                ("balloons", Json::int(t.balloons)),
                ("cascade_balloons", Json::int(t.cascade_balloons)),
                ("migrations_out", Json::int(t.migrations_out)),
                ("migrations_in", Json::int(t.migrations_in)),
                ("steer_decisions", Json::int(slo.steer_decisions)),
            ])),
        );
    }
    report.footer(
        "(fleet serving model, DESIGN.md §15: diurnal churn + overcommit storms;\n\
         the throttle hook pauses khugepaged and presses bloat recovery under\n\
         pressure, the noop cohort is the unsteered control)",
    );
    report
}

/// The standard `fleet_slo` target: 1024 hosts per cohort.
pub fn report(threads: usize) -> Report {
    report_with(&FleetConfig::slo(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_report_has_both_cohorts_and_steering() {
        let mut cfg = FleetConfig::sized(8);
        cfg.epochs = 4;
        let r = report_with(&cfg, 2);
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0].cells[0], "HawkEye-G+throttle");
        assert_eq!(r.rows()[1].cells[1], "noop");
        // The journals queued for the artifact dump; drain so this test
        // leaves the process-global queue clean for other tests.
        let json = r.json().to_string();
        assert!(json.contains("\"p99_fault_us\""));
        assert!(json.contains("\"steer_decisions\""));
        let drained = crate::scenario::take_queued_trace_journals();
        assert_eq!(drained.len(), 2 * cfg.journal_hosts);
    }
}
