//! Fleet SLOs: thousands of hosts behind the `hawkeye-fleet`
//! orchestrator, A/B-testing kernel policies under userspace hooks.
//!
//! Two cohorts run the same diurnal traffic curve, tenant churn, and
//! overcommit storms (DESIGN.md §15): HawkEye-G steered by the
//! `throttle-under-pressure` hook, and Linux-2MB under the hands-off
//! hook as control. The table reports fleet SLOs per cohort — p99 fault
//! latency, aggregate MMU overhead, RSS headroom — plus the tenancy and
//! steering counters that prove the storms and the hook actually fired.
//! Sampled host journals ride into `fleet_slo.trace.json` through the
//! scenario engine's artifact queue.

use crate::{pct, Json, PolicyKind, Report, Row};
use hawkeye_fleet::{run_observed, CohortSpec, FleetConfig, NoopHook, ThrottleUnderPressure};
use hawkeye_kernel::{HugePagePolicy, KernelConfig};
use hawkeye_obs::ObsDoc;
use hawkeye_trace::Journal;
use std::time::Instant;

fn hawkeye_policy() -> Box<dyn HugePagePolicy> {
    PolicyKind::HawkEyeG.build()
}

fn hawkeye_config(mib: u64) -> KernelConfig {
    PolicyKind::HawkEyeG.config(mib)
}

fn linux2m_policy() -> Box<dyn HugePagePolicy> {
    PolicyKind::Linux2m.build()
}

fn linux2m_config(mib: u64) -> KernelConfig {
    PolicyKind::Linux2m.config(mib)
}

fn throttle_hook() -> Box<dyn hawkeye_fleet::FleetHook> {
    // Engage just below the orchestrator's cascade threshold so the hook
    // sees pressure building before storms resolve it.
    Box::new(ThrottleUnderPressure::new(0.60, 0.85))
}

fn noop_hook() -> Box<dyn hawkeye_fleet::FleetHook> {
    Box::new(NoopHook)
}

/// The A/B cohorts: HawkEye-G steered by the pressure hook vs Linux-2MB
/// under the hands-off control hook.
pub fn cohorts() -> Vec<CohortSpec> {
    vec![
        CohortSpec {
            name: "HawkEye-G+throttle",
            policy: hawkeye_policy,
            config: hawkeye_config,
            hook: throttle_hook,
        },
        CohortSpec {
            name: "Linux-2MB+noop",
            policy: linux2m_policy,
            config: linux2m_config,
            hook: noop_hook,
        },
    ]
}

/// Runs the fleet at an explicit shape — the determinism test and the CI
/// smoke gate use small fleets; [`report`] uses [`FleetConfig::slo`].
/// Telemetry collection follows the process-global [`hawkeye_obs::enabled`]
/// gate; tests pin it through [`report_with_obs`].
pub fn report_with(cfg: &FleetConfig, threads: usize) -> Report {
    report_with_obs(cfg, threads, hawkeye_obs::enabled())
}

/// [`report_with`] with telemetry pinned by `observe`. When on, the
/// fleet's per-cohort accumulators are finalized into time series,
/// evaluated against the default burn-rate rules, queued as the
/// `fleet_slo.obs.json` document, and the SLO transitions ride into the
/// trace doc as a synthetic `obs/slo` journal of typed
/// `slo_breach`/`slo_recover` events. When off, nothing here runs and
/// every artifact is bit-identical to the pre-telemetry pipeline.
pub fn report_with_obs(cfg: &FleetConfig, threads: usize, observe: bool) -> Report {
    let t0 = Instant::now();
    let mut result = run_observed(cfg, &cohorts(), threads, observe);
    crate::wallclock::record("engine", t0.elapsed().as_secs_f64());
    if let Some(obs) = &result.obs {
        let series = result
            .cohorts
            .iter()
            .zip(obs.iter())
            .map(|(slo, acc)| hawkeye_obs::finalize(&slo.cohort, acc))
            .collect();
        let doc = hawkeye_obs::evaluate("fleet_slo", series, &hawkeye_obs::default_rules());
        let records = hawkeye_obs::slo_trace_records(&doc, cfg.epoch_ms);
        if !records.is_empty() {
            result.journals.push(("obs/slo".to_string(), Journal { records, dropped: 0 }));
        }
        crate::scenario::queue_obs_doc(obs_doc_json(&doc).to_string());
    }
    crate::scenario::queue_trace_journals(std::mem::take(&mut result.journals));

    let mut report = Report::new(
        "fleet_slo",
        format!(
            "Fleet SLOs: {} hosts/cohort, {} epochs, userspace hooks steering kernel policy",
            cfg.hosts, cfg.epochs
        ),
        vec![
            "Cohort", "hook", "faults", "p50 us", "p99 us", "MMU ovh", "headroom",
            "migrations", "balloons", "steers",
        ],
    );
    for slo in &result.cohorts {
        let t = &slo.tenancy;
        report.add(
            Row::new(vec![
                slo.cohort.clone(),
                slo.hook.clone(),
                slo.faults.to_string(),
                format!("{:.2}", slo.p50_fault_us),
                format!("{:.2}", slo.p99_fault_us),
                pct(slo.mmu_overhead),
                pct(slo.rss_headroom),
                t.migrations_out.to_string(),
                (t.balloons + t.cascade_balloons).to_string(),
                slo.steer_decisions.to_string(),
            ])
            .with_json(Json::obj(vec![
                ("cohort", Json::str(slo.cohort.clone())),
                ("hook", Json::str(slo.hook.clone())),
                ("hosts", Json::int(slo.hosts as u64)),
                ("faults", Json::int(slo.faults)),
                ("p50_fault_us", Json::num(slo.p50_fault_us)),
                ("p99_fault_us", Json::num(slo.p99_fault_us)),
                ("mmu_overhead", Json::num(slo.mmu_overhead)),
                ("rss_headroom", Json::num(slo.rss_headroom)),
                ("promotions", Json::int(slo.promotions)),
                ("demotions", Json::int(slo.demotions)),
                ("deduped_pages", Json::int(slo.deduped_pages)),
                ("ooms", Json::int(slo.ooms)),
                ("spawned", Json::int(t.spawned)),
                ("finished", Json::int(t.finished)),
                ("balloons", Json::int(t.balloons)),
                ("cascade_balloons", Json::int(t.cascade_balloons)),
                ("migrations_out", Json::int(t.migrations_out)),
                ("migrations_in", Json::int(t.migrations_in)),
                ("steer_decisions", Json::int(slo.steer_decisions)),
            ])),
        );
    }
    report.footer(
        "(fleet serving model, DESIGN.md §15: diurnal churn + overcommit storms;\n\
         the throttle hook pauses khugepaged and presses bloat recovery under\n\
         pressure, the noop cohort is the unsteered control)",
    );
    report
}

/// The standard `fleet_slo` target: 1024 hosts per cohort.
pub fn report(threads: usize) -> Report {
    report_with(&FleetConfig::slo(), threads)
}

/// Serializes an [`ObsDoc`] with the key order `hawkeye-analyze`'s
/// `parse_obs` mirrors: target, schema_version, rules, cohorts (each
/// cohort: cohort, points, alerts, anomalies).
fn obs_doc_json(doc: &ObsDoc) -> Json {
    let rules = doc
        .rules
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::str(r.name.clone())),
                ("series", Json::str(r.series.clone())),
                ("threshold", Json::num(r.threshold)),
                ("fast_window", Json::int(r.fast_window)),
                ("slow_window", Json::int(r.slow_window)),
                ("fast_burn", Json::num(r.fast_burn)),
                ("slow_burn", Json::num(r.slow_burn)),
                ("direction", Json::str(r.direction.clone())),
            ])
        })
        .collect();
    let cohorts = doc
        .cohorts
        .iter()
        .map(|c| {
            let points = c
                .series
                .points
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("epoch", Json::int(p.epoch as u64)),
                        ("faults", Json::int(p.faults)),
                        ("p50_us", Json::num(p.p50_us)),
                        ("p90_us", Json::num(p.p90_us)),
                        ("p99_us", Json::num(p.p99_us)),
                        ("p999_us", Json::num(p.p999_us)),
                        ("mmu_overhead", Json::num(p.mmu_overhead)),
                        ("rss_headroom", Json::num(p.rss_headroom)),
                        ("fmfi", Json::num(p.fmfi)),
                    ])
                })
                .collect();
            let alerts = c
                .alerts
                .iter()
                .map(|a| {
                    Json::obj(vec![
                        ("rule", Json::int(a.rule)),
                        ("name", Json::str(a.name.clone())),
                        ("epoch", Json::int(a.epoch as u64)),
                        ("kind", Json::str(a.kind.name())),
                        ("fast", Json::num(a.fast)),
                        ("slow", Json::num(a.slow)),
                    ])
                })
                .collect();
            let anomalies = c
                .anomalies
                .iter()
                .map(|a| {
                    Json::obj(vec![
                        ("series", Json::str(a.series.clone())),
                        ("epoch", Json::int(a.epoch as u64)),
                        ("value", Json::num(a.value)),
                        ("z", Json::num(a.z)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("cohort", Json::str(c.series.cohort.clone())),
                ("points", Json::Arr(points)),
                ("alerts", Json::Arr(alerts)),
                ("anomalies", Json::Arr(anomalies)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("target", Json::str(doc.target.clone())),
        ("schema_version", Json::int(doc.schema_version)),
        ("rules", Json::Arr(rules)),
        ("cohorts", Json::Arr(cohorts)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests drain the process-global artifact queues; serialize
    /// them so parallel test runs don't steal each other's journals.
    static QUEUES: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn observed_report_queues_doc_and_matches_unobserved_rows() {
        let _q = QUEUES.lock().unwrap_or_else(|e| e.into_inner());
        let mut cfg = FleetConfig::sized(8);
        cfg.epochs = 4;
        let plain = report_with_obs(&cfg, 2, false);
        let plain_journals = crate::scenario::take_queued_trace_journals();
        assert!(crate::scenario::take_queued_obs_docs().is_empty());

        let observed = report_with_obs(&cfg, 2, true);
        let observed_journals = crate::scenario::take_queued_trace_journals();
        let docs = crate::scenario::take_queued_obs_docs();

        // Zero drift: the report table is bit-identical with obs on.
        assert_eq!(plain.json().to_string(), observed.json().to_string());
        // Host journals are untouched; obs may append one synthetic
        // `obs/slo` journal at the end.
        assert_eq!(&observed_journals[..plain_journals.len()], &plain_journals[..]);
        for (name, _) in &observed_journals[plain_journals.len()..] {
            assert_eq!(name, "obs/slo");
        }

        // The queued doc has both cohorts with one point per epoch.
        assert_eq!(docs.len(), 1);
        let doc = &docs[0];
        assert!(doc.starts_with(r#"{"target":"fleet_slo","schema_version":"#));
        assert!(doc.contains(r#""cohort":"HawkEye-G+throttle""#));
        assert!(doc.contains(r#""cohort":"Linux-2MB+noop""#));
        assert_eq!(doc.matches(r#"{"epoch":"#).count(), 2 * cfg.epochs as usize);

        // Determinism: 8 workers and a rerun produce the same bytes.
        let _ = report_with_obs(&cfg, 8, true);
        let _ = crate::scenario::take_queued_trace_journals();
        let redocs = crate::scenario::take_queued_obs_docs();
        assert_eq!(redocs, docs);
    }

    #[test]
    fn small_fleet_report_has_both_cohorts_and_steering() {
        let _q = QUEUES.lock().unwrap_or_else(|e| e.into_inner());
        let mut cfg = FleetConfig::sized(8);
        cfg.epochs = 4;
        let r = report_with(&cfg, 2);
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0].cells[0], "HawkEye-G+throttle");
        assert_eq!(r.rows()[1].cells[1], "noop");
        // The journals queued for the artifact dump; drain so this test
        // leaves the process-global queue clean for other tests.
        let json = r.json().to_string();
        assert!(json.contains("\"p99_fault_us\""));
        assert!(json.contains("\"steer_decisions\""));
        let drained = crate::scenario::take_queued_trace_journals();
        assert_eq!(drained.len(), 2 * cfg.journal_hosts);
    }
}
