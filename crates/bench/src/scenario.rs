//! The scenario engine: every bench target is a list of independent
//! [`Scenario`]s fanned out across cores and reassembled in submission
//! order.
//!
//! A scenario is a name plus a `Send` closure that builds and runs one
//! simulation (or any other self-contained computation) and returns its
//! result — usually a [`Row`]. [`run_scenarios`] executes the whole list
//! on the in-tree worker pool ([`crate::pool`]) and returns results in
//! submission order, so table output is byte-identical at any worker
//! count. [`Report`] is the shared formatting tail: it prints the text
//! table every target used to hand-roll and writes the machine-readable
//! JSON summary to `target/bench-results/<target>.json`.

use crate::json::{self, Json};
use crate::pool::{self, Job};
use crate::RunOutcome;
use hawkeye_kernel::Simulator;
use hawkeye_metrics::{registry, Registry, Subsystem};
use hawkeye_trace::{scope, Journal};
use std::sync::Mutex;
use std::time::Instant;

/// Per-scenario journals collected by [`run_scenarios_with`] when
/// `HAWKEYE_TRACE` is set (and by [`queue_trace_journals`] for targets
/// that collect journals themselves, like `fleet_slo`), drained by
/// [`write_json`] into `target/bench-results/<target>.trace.json`.
/// Appended on the main thread in submission order, so trace output is
/// deterministic at any worker count (same rule as table rows).
static TRACE_JOURNALS: Mutex<Vec<(String, Journal)>> = Mutex::new(Vec::new());

/// Per-scenario cycle-attribution registries, collected unconditionally
/// (the registry's disabled-path guarantee means it cannot perturb the
/// simulation) and drained by [`write_json`] into the summary's `cycles`
/// section. Same submission-order rule as [`TRACE_JOURNALS`].
static METRIC_SNAPSHOTS: Mutex<Vec<(String, Registry)>> = Mutex::new(Vec::new());

/// Serialized telemetry documents queued by obs-enabled targets
/// (`fleet_slo` evaluates its SLO rules and queues the result here),
/// drained by [`write_json`] into `<dir>/<target>.obs.json`. At most one
/// document is expected per target; the last queued wins.
static OBS_DOCS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// One independent unit of a bench target: a named closure producing a
/// result on a worker thread.
///
/// # Examples
///
/// Results come back in submission order regardless of worker count,
/// which is the whole byte-determinism story:
///
/// ```
/// use hawkeye_bench::{run_scenarios_with, Scenario};
///
/// let scenarios: Vec<Scenario<u64>> =
///     (0..4u64).map(|i| Scenario::new(format!("square {i}"), move || i * i)).collect();
/// assert_eq!(run_scenarios_with(scenarios, 2), vec![0, 1, 4, 9]);
/// ```
pub struct Scenario<T> {
    name: String,
    job: Job<T>,
}

impl<T: Send> Scenario<T> {
    /// A scenario from any `Send` closure.
    pub fn new(name: impl Into<String>, job: impl FnOnce() -> T + Send + 'static) -> Self {
        Scenario {
            name: name.into(),
            job: Box::new(job),
        }
    }

    /// The standard single-simulation shape: `build` returns a fully-built
    /// [`Simulator`] with the measured workload spawned (its pid); the
    /// engine runs it to completion and hands the [`RunOutcome`] to
    /// `format`.
    pub fn sim(
        name: impl Into<String>,
        build: impl FnOnce() -> (Simulator, u32) + Send + 'static,
        format: impl FnOnce(RunOutcome) -> T + Send + 'static,
    ) -> Self {
        Scenario::new(name, move || {
            let (mut sim, pid) = build();
            sim.run();
            format(RunOutcome { sim, pid })
        })
    }

    /// The scenario's name (diagnostics; results are matched by order,
    /// not name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the scenario inline on the current thread.
    pub fn run(self) -> T {
        (self.job)()
    }
}

/// Runs scenarios on [`pool::worker_threads`] workers; results come back
/// in submission order.
pub fn run_scenarios<T: Send + 'static>(scenarios: Vec<Scenario<T>>) -> Vec<T> {
    run_scenarios_with(scenarios, pool::worker_threads())
}

/// Runs scenarios on an explicit worker count (the determinism test pins
/// 1 and 8 without touching the process environment). Wall-clock goes to
/// stderr so stdout stays byte-identical across worker counts.
///
/// When `HAWKEYE_TRACE` is set, each scenario additionally records an
/// event journal, queued for [`write_json`] to dump alongside the summary.
pub fn run_scenarios_with<T: Send + 'static>(
    scenarios: Vec<Scenario<T>>,
    threads: usize,
) -> Vec<T> {
    let (results, journals, registries) =
        run_scenarios_inner(scenarios, threads, hawkeye_trace::env_enabled());
    if !journals.is_empty() {
        if let Ok(mut q) = TRACE_JOURNALS.lock() {
            q.extend(journals);
        }
    }
    if !registries.is_empty() {
        if let Ok(mut q) = METRIC_SNAPSHOTS.lock() {
            q.extend(registries);
        }
    }
    results
}

/// Results plus the per-scenario artifacts captured alongside them: the
/// event journals (named, in submission order, when tracing) and the
/// cycle-attribution registries.
pub type Captured<T> = (Vec<T>, Vec<(String, Journal)>, Vec<(String, Registry)>);

/// Runs scenarios with tracing forced on (regardless of `HAWKEYE_TRACE`)
/// and returns the per-scenario journals and cycle-attribution registries
/// directly instead of queueing them for the JSON dump. Used by tests that
/// assert on trace or registry contents.
pub fn run_scenarios_capturing<T: Send + 'static>(
    scenarios: Vec<Scenario<T>>,
    threads: usize,
) -> Captured<T> {
    run_scenarios_inner(scenarios, threads, true)
}

/// Queues named journals for the next [`write_json`] to dump into the
/// target's `.trace.json` — the path the fleet orchestrator uses: its
/// hosts trace into their own detached buffers (not the engine's
/// thread-local scope), so the `fleet_slo` target hands the sampled host
/// journals over explicitly. Order is preserved; callers pass journals
/// in a deterministic order to keep the artifact byte-stable.
pub fn queue_trace_journals(journals: Vec<(String, Journal)>) {
    if journals.is_empty() {
        return;
    }
    if let Ok(mut q) = TRACE_JOURNALS.lock() {
        q.extend(journals);
    }
}

/// Queues a serialized telemetry document (the `<target>.obs.json`
/// contents) for the next [`write_json`] to dump. Obs-enabled targets
/// call this after evaluating their SLO rules.
pub fn queue_obs_doc(doc: String) {
    if let Ok(mut q) = OBS_DOCS.lock() {
        q.push(doc);
    }
}

/// Drains the telemetry documents queued by [`queue_obs_doc`] since the
/// last drain ([`write_json`] calls this; tests may too).
pub fn take_queued_obs_docs() -> Vec<String> {
    match OBS_DOCS.lock() {
        Ok(mut q) => std::mem::take(&mut *q),
        Err(_) => Vec::new(),
    }
}

/// Drains the cycle-attribution registries queued by [`run_scenarios_with`]
/// since the last drain ([`write_json`] calls this; tests may too).
pub fn take_metric_snapshots() -> Vec<(String, Registry)> {
    match METRIC_SNAPSHOTS.lock() {
        Ok(mut q) => std::mem::take(&mut *q),
        Err(_) => Vec::new(),
    }
}

/// Drains the journals queued by traced runs or
/// [`queue_trace_journals`] since the last drain ([`write_json`] calls
/// this; tests may too).
pub fn take_queued_trace_journals() -> Vec<(String, Journal)> {
    match TRACE_JOURNALS.lock() {
        Ok(mut q) => std::mem::take(&mut *q),
        Err(_) => Vec::new(),
    }
}

fn run_scenarios_inner<T: Send + 'static>(
    scenarios: Vec<Scenario<T>>,
    threads: usize,
    tracing: bool,
) -> Captured<T> {
    let n = scenarios.len();
    let t0 = Instant::now();
    // Each job runs start-to-finish on one worker thread, so thread-local
    // scopes around it capture exactly that scenario's events and charges;
    // `run_ordered` brings everything back in submission order with the
    // results. The registry scope is always on — it never perturbs the
    // simulation (the drift test pins this) and feeds the summary's
    // `cycles` section; the trace scope costs a journal allocation per
    // scenario and stays opt-in.
    type Instrumented<T> = (T, Option<Journal>, Option<Registry>);
    let names: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
    let jobs: Vec<Job<Instrumented<T>>> = scenarios
        .into_iter()
        .map(|s| {
            let job = s.job;
            Box::new(move || {
                registry::scope::begin();
                if tracing {
                    scope::begin(hawkeye_trace::DEFAULT_CAPACITY);
                }
                let result = job();
                let journal = if tracing { scope::end() } else { None };
                let mut reg = registry::scope::end();
                // Ring-buffer overflow must not stay silent: surface the
                // drop count as a registry counter (machine 0 = the
                // scenario's first machine) so it reaches the summary's
                // `cycles` section and REPORT.md can warn loudly.
                if let (Some(j), Some(r)) = (journal.as_ref(), reg.as_mut()) {
                    if j.dropped > 0 {
                        r.machine_entry(0).add("trace.dropped_events", j.dropped);
                    }
                }
                (result, journal, reg)
            }) as Job<Instrumented<T>>
        })
        .collect();
    let mut results = Vec::with_capacity(n);
    let mut journals = Vec::new();
    let mut registries = Vec::new();
    for (name, (result, journal, reg)) in names.into_iter().zip(pool::run_ordered(jobs, threads)) {
        results.push(result);
        if let Some(j) = journal {
            journals.push((name.clone(), j));
        }
        if let Some(r) = reg {
            registries.push((name, r));
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    crate::wallclock::record("engine", elapsed);
    eprintln!(
        "[scenario-engine] {n} scenario(s) on {} worker(s) in {elapsed:.2}s",
        threads.min(n.max(1)),
    );
    (results, journals, registries)
}

/// Serializes the `.trace.json` document for one target straight into a
/// `String` — byte-for-byte what [`trace_json`] + [`Json::write_into`]
/// produce, without materializing a [`Json`] tree first. Journals run to
/// millions of events; the intermediate tree costs ~10 heap allocations
/// per event (a `Vec` of pairs plus owned key strings), which dominates
/// the artifact dump on fault-heavy targets. A test pins the two paths
/// byte-identical across every event kind.
pub fn trace_doc_string(target: &str, journals: &[(String, Journal)]) -> String {
    // ~95 bytes/event across the suite's journals; oversizing slightly
    // avoids a late doubling of a hundred-megabyte buffer.
    let events: usize = journals.iter().map(|(_, j)| j.records.len()).sum();
    let mut out = String::with_capacity(128 * events + 1024);
    out.push_str("{\"target\":");
    json::escape_into(target, &mut out);
    out.push_str(",\"scenarios\":[");
    for (i, (name, journal)) in journals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::escape_into(name, &mut out);
        out.push_str(",\"dropped\":");
        json::num_into(journal.dropped as f64, &mut out);
        out.push_str(",\"events\":[");
        for (j, r) in journal.records.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"t\":");
            json::num_into(r.at.get() as f64, &mut out);
            out.push_str(",\"pid\":");
            json::num_into(r.pid as f64, &mut out);
            out.push_str(",\"machine\":");
            json::num_into(r.machine as f64, &mut out);
            out.push_str(",\"kind\":");
            json::escape_into(r.event.kind(), &mut out);
            for (k, v) in r.event.fields() {
                out.push(',');
                json::escape_into(k, &mut out);
                out.push(':');
                json::num_into(v as f64, &mut out);
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// The `.trace.json` document for one target: every scenario's journal in
/// submission order, each event flattened to `{t, pid, machine, kind,
/// <payload fields>}`.
pub fn trace_json(target: &str, journals: &[(String, Journal)]) -> Json {
    let scenarios = journals
        .iter()
        .map(|(name, journal)| {
            let events = journal
                .records
                .iter()
                .map(|r| {
                    let mut fields = vec![
                        ("t", Json::int(r.at.get())),
                        ("pid", Json::int(r.pid as u64)),
                        ("machine", Json::int(r.machine as u64)),
                        ("kind", Json::str(r.event.kind())),
                    ];
                    for (k, v) in r.event.fields() {
                        fields.push((k, Json::int(v)));
                    }
                    Json::obj(fields)
                })
                .collect();
            Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("dropped", Json::int(journal.dropped)),
                ("events", Json::Arr(events)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("target", Json::str(target)),
        ("scenarios", Json::Arr(scenarios)),
    ])
}

/// The `cycles` section of a JSON summary: for every scenario, each
/// machine's exact cycle attribution — `CPU_CLK_UNHALTED`, the residue it
/// leaves after subtracting the CPU ledger (`null` when the machine never
/// recorded unhalted cycles, e.g. the virtualization host), both ledgers
/// by subsystem, plus non-cycle counters, gauges, and histogram
/// percentiles. Deterministic: registries arrive in submission order and
/// every map inside them iterates in key order.
pub fn cycles_json(snapshots: &[(String, Registry)]) -> Json {
    let scenarios = snapshots
        .iter()
        .map(|(name, reg)| {
            let machines = reg
                .machines()
                .map(|(id, m)| {
                    let ledger = |keyed: &dyn Fn(Subsystem) -> u64| {
                        Json::obj(
                            Subsystem::ALL
                                .iter()
                                .map(|s| (s.name(), Json::int(keyed(*s))))
                                .collect(),
                        )
                    };
                    let counters: Vec<(&str, Json)> = m
                        .counters()
                        .filter(|(k, _)| !k.starts_with("cycles."))
                        .map(|(k, v)| (k, Json::int(v)))
                        .collect();
                    let gauges: Vec<(&str, Json)> =
                        m.gauges().map(|(k, v)| (k, Json::num(v))).collect();
                    let hists: Vec<(&str, Json)> = m
                        .hists()
                        .map(|(k, h)| {
                            (
                                k,
                                Json::obj(vec![
                                    ("count", Json::int(h.count())),
                                    ("mean", Json::int(h.mean())),
                                    ("p50", Json::int(h.percentile(50.0))),
                                    ("p90", Json::int(h.percentile(90.0))),
                                    ("p99", Json::int(h.percentile(99.0))),
                                    ("max", Json::int(h.max())),
                                ]),
                            )
                        })
                        .collect();
                    let residue = if m.unhalted() == 0 {
                        Json::Null
                    } else {
                        Json::num(m.residue() as f64)
                    };
                    Json::obj(vec![
                        ("machine", Json::int(id as u64)),
                        ("unhalted", Json::int(m.unhalted())),
                        ("residue", residue),
                        ("cpu", ledger(&|s| m.cpu_cycles(s))),
                        ("daemon", ledger(&|s| m.daemon_cycles(s))),
                        (
                            "counters",
                            Json::Obj(
                                counters
                                    .into_iter()
                                    .map(|(k, v)| (k.to_string(), v))
                                    .collect(),
                            ),
                        ),
                        (
                            "gauges",
                            Json::Obj(
                                gauges
                                    .into_iter()
                                    .map(|(k, v)| (k.to_string(), v))
                                    .collect(),
                            ),
                        ),
                        (
                            "hist",
                            Json::Obj(hists.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
                        ),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("scenario", Json::str(name.clone())),
                ("machines", Json::Arr(machines)),
            ])
        })
        .collect();
    Json::Arr(scenarios)
}

/// One table row produced by a scenario: formatted cells, headline
/// numbers for the JSON summary, and optional free-text blocks (time
/// series printouts) emitted before the table.
pub struct Row {
    /// Table cells, in column order.
    pub cells: Vec<String>,
    /// Headline numbers for `target/bench-results/<target>.json`.
    pub json: Json,
    /// Extra text printed (in row order) above the table.
    pub lines: Vec<String>,
}

impl Row {
    /// A row with cells only.
    pub fn new(cells: Vec<String>) -> Self {
        Row {
            cells,
            json: Json::obj(vec![]),
            lines: Vec::new(),
        }
    }

    /// Attaches the JSON summary object.
    pub fn with_json(mut self, json: Json) -> Self {
        self.json = json;
        self
    }

    /// Appends a free-text block.
    pub fn line(mut self, line: impl Into<String>) -> Self {
        self.lines.push(line.into());
        self
    }
}

/// The shared formatting tail of a bench target: collects [`Row`]s,
/// prints free-text blocks + the aligned table + footnotes, and writes
/// the JSON summary.
pub struct Report {
    target: &'static str,
    title: String,
    columns: Vec<&'static str>,
    rows: Vec<Row>,
    footers: Vec<String>,
}

impl Report {
    /// A report for bench target `target` (the JSON file stem). Empty
    /// `columns` suppresses the table (series-only figures).
    pub fn new(target: &'static str, title: impl Into<String>, columns: Vec<&'static str>) -> Self {
        Report {
            target,
            title: title.into(),
            columns,
            rows: Vec::new(),
            footers: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn add(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Appends rows in order.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        self.rows.extend(rows);
    }

    /// Appends a footnote line printed after the table (paper context).
    pub fn footer(&mut self, line: impl Into<String>) {
        self.footers.push(line.into());
    }

    /// The collected rows, in insertion order (tests assert on cells).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Renders the full stdout text: free-text blocks, table, footers.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            for block in &row.lines {
                out.push_str(block);
                if !block.ends_with('\n') {
                    out.push('\n');
                }
            }
        }
        if !self.columns.is_empty() {
            let mut t = hawkeye_metrics::TextTable::new(self.columns.clone())
                .with_title(self.title.clone());
            for row in &self.rows {
                t.row(row.cells.clone());
            }
            out.push_str(&t.to_string());
        }
        for f in &self.footers {
            out.push_str(f);
            out.push('\n');
        }
        out
    }

    /// The machine-readable summary: target, title, and each row's
    /// headline numbers in row order.
    pub fn json(&self) -> Json {
        Json::obj(vec![
            ("target", Json::str(self.target)),
            ("title", Json::str(self.title.clone())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| r.json.clone()).collect()),
            ),
        ])
    }

    /// Prints the text to stdout and writes the JSON summary. The write
    /// path (or failure) is reported on stderr only, keeping stdout
    /// deterministic.
    pub fn finish(self) {
        print!("{}", self.text());
        write_json(self.target, &self.json());
    }
}

/// Writes one JSON summary file, reporting the outcome on stderr.
/// Multi-section targets (ablations) assemble their own [`Json`] and call
/// this once.
pub fn write_json(target: &str, json: &Json) {
    write_json_in(&json::results_dir(), target, json);
}

/// The explicit-dir variant of [`write_json`]: drains the metric and
/// trace queues into `<dir>/<target>.json` / `<dir>/<target>.trace.json`.
/// `hawkeye-report` uses this to collect the whole suite's artifacts in
/// one place without mutating process environment.
pub fn write_json_in(dir: &std::path::Path, target: &str, json: &Json) {
    let t0 = Instant::now();
    let snapshots = take_metric_snapshots();
    let json = if snapshots.is_empty() {
        json.clone()
    } else {
        let mut j = json.clone();
        j.push("cycles", cycles_json(&snapshots));
        j
    };
    match json::write_results_in(dir, target, &json) {
        Ok(path) => eprintln!("[scenario-engine] wrote {}", path.display()),
        Err(e) => eprintln!("[scenario-engine] could not write {target}.json: {e}"),
    }
    crate::wallclock::record("summary_write", t0.elapsed().as_secs_f64());
    write_trace_results(dir, target);
    write_obs_results(dir, target);
    // Dump the host-side timing sidecar last: it collects the phases the
    // lines above just recorded (plus the engine phase) without ever
    // touching the deterministic artifacts.
    crate::wallclock::write_in(dir, target);
}

/// Dumps the journals queued by traced runs (if any) to
/// `<dir>/<target>.trace.json`. A no-op when tracing was off; stdout is
/// untouched either way.
fn write_trace_results(dir: &std::path::Path, target: &str) {
    let journals = take_queued_trace_journals();
    if journals.is_empty() {
        return;
    }
    let t0 = Instant::now();
    let stem = format!("{target}.trace");
    let mut doc = trace_doc_string(target, &journals);
    doc.push('\n');
    let write = || -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.json"));
        std::fs::write(&path, doc)?;
        Ok(path)
    };
    match write() {
        Ok(path) => eprintln!("[scenario-engine] wrote {}", path.display()),
        Err(e) => eprintln!("[scenario-engine] could not write {stem}.json: {e}"),
    }
    crate::wallclock::record("trace_write", t0.elapsed().as_secs_f64());
}

/// Dumps the telemetry document queued by [`queue_obs_doc`] (if any) to
/// `<dir>/<target>.obs.json`. A no-op when telemetry was off.
fn write_obs_results(dir: &std::path::Path, target: &str) {
    let Some(mut doc) = take_queued_obs_docs().pop() else {
        return;
    };
    if !doc.ends_with('\n') {
        doc.push('\n');
    }
    let stem = format!("{target}.obs");
    let write = || -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.json"));
        std::fs::write(&path, doc)?;
        Ok(path)
    };
    match write() {
        Ok(path) => eprintln!("[scenario-engine] wrote {}", path.display()),
        Err(e) => eprintln!("[scenario-engine] could not write {stem}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use hawkeye_workloads::Spinup;

    /// Compile-time check: scenarios must be movable to workers.
    #[allow(dead_code)]
    fn assert_send<T: Send>() {}

    #[test]
    fn scenario_types_are_send() {
        assert_send::<Scenario<Row>>();
        assert_send::<Simulator>();
    }

    #[test]
    fn streamed_trace_doc_matches_tree_serialization() {
        use hawkeye_metrics::Cycles;
        use hawkeye_trace::{Journal, TraceEvent, TraceRecord};
        // One record per event kind, plus name characters that need
        // escaping — the streaming writer must reproduce the tree
        // serialization byte for byte.
        let events = vec![
            TraceEvent::Fault {
                vpn: 7,
                huge: true,
                cow: false,
                cycles: 6095,
            },
            TraceEvent::Promote {
                hvpn: 3,
                copied: 512,
                filled: 0,
                cycles: 1,
            },
            TraceEvent::Demote { hvpn: 3, cycles: 2 },
            TraceEvent::Compact {
                migrated: 10,
                huge_blocks: 2,
            },
            TraceEvent::PreZero { pages: 512 },
            TraceEvent::Dedup {
                hvpn: 4,
                zero_pages: 100,
                demoted: true,
                cycles: 9,
            },
            TraceEvent::Oom,
            TraceEvent::QuantumEnd {
                load_walk: 1,
                store_walk: 2,
                unhalted: 3,
                walks: 4,
            },
            TraceEvent::CycleSample {
                walk: 1,
                fault: 2,
                zero: 3,
                copy: 4,
                scan: 5,
                compact: 6,
                dedup: 7,
                idle: 8,
                unhalted: 36,
                daemon: 9,
            },
            TraceEvent::Contention {
                core: 3,
                role: 1,
                acquisitions: 250,
                cas_retries: 17,
                stall_cycles: 42_000,
            },
            TraceEvent::SloBreach {
                rule: 0,
                epoch: 3,
                cohort: 1,
            },
            TraceEvent::SloRecover {
                rule: 0,
                epoch: 6,
                cohort: 1,
            },
        ];
        let records = events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                at: Cycles::new(i as u64 * 1_000_000_007),
                pid: i as u32,
                machine: (i % 2) as u32,
                event,
            })
            .collect();
        let journals = vec![
            (
                "quoted \"name\"\n".to_string(),
                Journal {
                    records,
                    dropped: 3,
                },
            ),
            (
                "empty".to_string(),
                Journal {
                    records: Vec::new(),
                    dropped: 0,
                },
            ),
        ];
        let streamed = trace_doc_string("demo \\target", &journals);
        assert_eq!(streamed, trace_json("demo \\target", &journals).to_string());
    }

    #[test]
    fn sim_scenarios_run_and_format() {
        let s = Scenario::sim(
            "spinup",
            || {
                let mut sim =
                    Simulator::new(PolicyKind::Linux4k.config(64), PolicyKind::Linux4k.build());
                let pid = sim.spawn(Box::new(Spinup::new("s", 512)));
                (sim, pid)
            },
            |out| out.faults(),
        );
        assert_eq!(s.name(), "spinup");
        assert_eq!(s.run(), 512);
    }

    #[test]
    fn ordered_results_match_serial_at_any_worker_count() {
        let build = || -> Vec<Scenario<u64>> {
            (0..6)
                .map(|i| {
                    Scenario::sim(
                        format!("s{i}"),
                        move || {
                            let mut sim = Simulator::new(
                                PolicyKind::Linux4k.config(64),
                                PolicyKind::Linux4k.build(),
                            );
                            let pid = sim.spawn(Box::new(Spinup::new("s", 128 * (i + 1))));
                            (sim, pid)
                        },
                        |out| out.faults(),
                    )
                })
                .collect()
        };
        let serial = run_scenarios_with(build(), 1);
        let parallel = run_scenarios_with(build(), 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial, vec![128, 256, 384, 512, 640, 768]);
    }

    #[test]
    fn report_renders_blocks_table_and_json() {
        let mut r = Report::new("demo", "Demo", vec!["a", "b"]);
        r.add(
            Row::new(vec!["1".into(), "2".into()])
                .with_json(Json::obj(vec![("a", Json::int(1))]))
                .line("series block"),
        );
        r.footer("(note)");
        let text = r.text();
        let series = text.find("series block").unwrap();
        let table = text.find("== Demo ==").unwrap();
        let note = text.find("(note)").unwrap();
        assert!(series < table && table < note);
        assert_eq!(
            r.json().to_string(),
            r#"{"target":"demo","title":"Demo","rows":[{"a":1}]}"#
        );
    }

    #[test]
    fn empty_columns_suppress_table() {
        let mut r = Report::new("demo", "Demo", vec![]);
        r.add(Row::new(vec![]).line("only text"));
        assert_eq!(r.text(), "only text\n");
    }
}
