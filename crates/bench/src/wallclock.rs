//! Host wall-clock bookkeeping for the bench artifact pipeline.
//!
//! Perf regressions are invisible in a deterministic simulator — every
//! simulated observable is byte-identical no matter how slow the host
//! path was. This module gives the suite a host-side record instead:
//! engine and artifact-dump phases stamp their elapsed wall time here
//! (from [`std::time::Instant`], a monotonic clock), and
//! [`write_in`] dumps the per-target breakdown to
//! `<dir>/<target>.wallclock.json` next to the deterministic summary.
//!
//! Wall-clock never enters deterministic output: not the summary JSON,
//! not the trace journal, not stdout tables, not REPORT.md. The
//! `.wallclock.json` sidecar is the only place host time appears, so
//! determinism gates (`cmp` on artifacts, the worker-count test) stay
//! byte-exact while `hawkeye-report` can still render a suite
//! wall-clock table (see EXPERIMENTS.md "Suite wall-clock").
//!
//! The sidecar also carries the event-skip scheduler's quanta counters
//! ([`hawkeye_kernel::sched_stats`]) for the window since the previous
//! target's dump, so skip efficiency rides along with the timing it
//! explains.

use std::sync::Mutex;

use crate::json::Json;

/// Phases recorded since the last [`take`], in first-recorded order.
static PHASES: Mutex<Vec<(&'static str, f64)>> = Mutex::new(Vec::new());

/// Charges `secs` of host wall-clock to `phase` for the target whose
/// artifacts are currently being produced. Repeated charges to the same
/// phase accumulate (multi-section targets run the engine several
/// times).
pub fn record(phase: &'static str, secs: f64) {
    if let Ok(mut q) = PHASES.lock() {
        match q.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, total)) => *total += secs,
            None => q.push((phase, secs)),
        }
    }
}

/// Drains every phase recorded since the last drain.
pub fn take() -> Vec<(&'static str, f64)> {
    match PHASES.lock() {
        Ok(mut q) => std::mem::take(&mut *q),
        Err(_) => Vec::new(),
    }
}

/// The `<target>.wallclock.json` document: phase breakdown, the
/// event-skip scheduler's quanta window, and — when any machine in the
/// window ran multi-core — the per-core busy/stall breakdown from the
/// real-thread contention replay ([`hawkeye_kernel::core_stats`]).
pub fn doc(
    target: &str,
    phases: &[(&'static str, f64)],
    quanta_total: u64,
    quanta_skipped: u64,
    cores: u32,
    per_core: &[hawkeye_kernel::core_stats::CoreBusy],
) -> Json {
    let total: f64 = phases.iter().map(|(_, s)| *s).sum();
    let mut fields = vec![
        ("target", Json::str(target)),
        (
            "phases",
            Json::Arr(
                phases
                    .iter()
                    .map(|(p, s)| {
                        Json::obj(vec![("phase", Json::str(*p)), ("secs", Json::num(*s))])
                    })
                    .collect(),
            ),
        ),
        ("total_secs", Json::num(total)),
        ("quanta_total", Json::int(quanta_total)),
        ("quanta_skipped", Json::int(quanta_skipped)),
    ];
    if cores > 1 {
        fields.push(("cores", Json::int(cores as u64)));
        fields.push((
            "core_busy",
            Json::Arr(
                per_core
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        Json::obj(vec![
                            ("core", Json::int(i as u64)),
                            ("busy_ns", Json::int(c.busy_ns)),
                            ("stall_ns", Json::int(c.stall_ns)),
                            ("cas_retries", Json::int(c.retries)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

/// Drains the recorded phases and the process-wide quanta counters and
/// writes `<dir>/<target>.wallclock.json`. Resets the quanta counters so
/// the next target gets its own window. Failures are reported on stderr
/// only — host timing must never fail a bench run.
pub fn write_in(dir: &std::path::Path, target: &str) {
    let phases = take();
    let (quanta_total, quanta_skipped) = hawkeye_kernel::sched_stats::snapshot();
    hawkeye_kernel::sched_stats::reset();
    let (cores, per_core) = hawkeye_kernel::core_stats::snapshot();
    hawkeye_kernel::core_stats::reset();
    if phases.is_empty() && quanta_total == 0 {
        return;
    }
    let json = doc(target, &phases, quanta_total, quanta_skipped, cores, &per_core);
    let path = dir.join(format!("{target}.wallclock.json"));
    let mut out = String::new();
    json.write_into(&mut out);
    out.push('\n');
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, out)) {
        eprintln!("[scenario-engine] could not write {target}.wallclock.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_phase_and_take_drains() {
        // The queue is process-global; drain whatever other tests left.
        let _ = take();
        record("engine", 1.5);
        record("trace_write", 0.25);
        record("engine", 0.5);
        let phases = take();
        assert_eq!(phases, vec![("engine", 2.0), ("trace_write", 0.25)]);
        assert!(take().is_empty(), "take drains");
    }

    #[test]
    fn doc_carries_phases_totals_and_quanta() {
        let phases = vec![("engine", 12.5), ("summary_write", 0.75)];
        let text = doc("fig7", &phases, 1000, 400, 0, &[]).to_string();
        assert!(text.contains("\"target\":\"fig7\""));
        assert!(text.contains("\"phase\":\"engine\""));
        assert!(text.contains("\"secs\":12.5"));
        assert!(text.contains("\"total_secs\":13.25"));
        assert!(text.contains("\"quanta_total\":1000"));
        assert!(text.contains("\"quanta_skipped\":400"));
        // Serial windows carry no core table at all.
        assert!(!text.contains("core_busy"));
    }

    #[test]
    fn doc_carries_core_breakdown_for_multicore_windows() {
        use hawkeye_kernel::core_stats::CoreBusy;
        let per_core = vec![
            CoreBusy { busy_ns: 5_000, stall_ns: 1_200, retries: 17 },
            CoreBusy { busy_ns: 4_000, stall_ns: 300, retries: 2 },
        ];
        let text = doc("mc", &[("engine", 1.0)], 10, 0, 2, &per_core).to_string();
        assert!(text.contains("\"cores\":2"));
        assert!(text.contains("\"core\":0"));
        assert!(text.contains("\"busy_ns\":5000"));
        assert!(text.contains("\"stall_ns\":1200"));
        assert!(text.contains("\"cas_retries\":17"));
        assert!(text.contains("\"core\":1"));
    }
}
