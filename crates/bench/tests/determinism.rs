//! The engine's core guarantee: a bench target's stdout text and JSON
//! summary are byte-identical at any worker count.
//!
//! Runs a representative policy × workload matrix (the Table-1 shape:
//! fault-measured simulations with per-row JSON) once on 1 worker and
//! once on 8, and compares the fully-formatted [`Report`] output.
//! Worker counts are pinned through [`run_scenarios_with`], not the
//! `HAWKEYE_BENCH_THREADS` environment variable, so this test stays
//! race-free when cargo runs tests in parallel.

use hawkeye_bench::{
    run_one, run_scenarios_capturing, run_scenarios_with, trace_json, Json, PolicyKind, Report,
    Row, Scenario,
};
use hawkeye_workloads::Spinup;

const KINDS: [PolicyKind; 5] = [
    PolicyKind::Linux4k,
    PolicyKind::Linux2m,
    PolicyKind::Ingens,
    PolicyKind::HawkEyePmu,
    PolicyKind::HawkEyeG,
];

/// A small but real matrix: each cell allocates and touches memory
/// through the whole policy/fault stack.
fn matrix() -> Vec<Scenario<Row>> {
    KINDS
        .iter()
        .map(|kind| {
            let kind = *kind;
            Scenario::new(kind.label(), move || {
                let out =
                    run_one(kind, 128, None, 30.0, Box::new(Spinup::new("spin", 8 * 1024)));
                Row::new(vec![
                    kind.label().to_string(),
                    out.faults().to_string(),
                    format!("{:.3}", out.avg_fault_us()),
                    format!("{:.4}", out.exec_secs()),
                ])
                .with_json(Json::obj(vec![
                    ("policy", Json::str(kind.label())),
                    ("faults", Json::int(out.faults())),
                    ("avg_fault_us", Json::num(out.avg_fault_us())),
                    ("exec_secs", Json::num(out.exec_secs())),
                ]))
            })
        })
        .collect()
}

fn render(threads: usize) -> (String, String) {
    let mut report = Report::new(
        "determinism_matrix",
        "Determinism check: Spinup faults across policies",
        vec!["Policy", "faults", "avg fault (us)", "exec (s)"],
    );
    report.extend(run_scenarios_with(matrix(), threads));
    (report.text(), report.json().to_string())
}

#[test]
fn one_worker_equals_eight_workers() {
    let (text1, json1) = render(1);
    let (text8, json8) = render(8);
    assert_eq!(text1, text8, "formatted table must not depend on worker count");
    assert_eq!(json1, json8, "JSON summary must not depend on worker count");
    // Sanity: the matrix actually produced per-policy rows.
    for kind in KINDS {
        assert!(text1.contains(kind.label()), "missing row for {}", kind.label());
        assert!(json1.contains(kind.label()));
    }
}

#[test]
fn trace_journals_match_at_one_and_eight_workers() {
    // The determinism rule extends to traces: per-scenario journals come
    // back in submission order with machine ids assigned per scenario, so
    // the serialized `.trace.json` document is byte-identical at any
    // worker count. Tracing is forced through the capturing API, not the
    // `HAWKEYE_TRACE` environment variable, keeping the test race-free.
    let (_, journals1, _) = run_scenarios_capturing(matrix(), 1);
    let (_, journals8, _) = run_scenarios_capturing(matrix(), 8);
    let doc1 = trace_json("determinism_matrix", &journals1).to_string();
    let doc8 = trace_json("determinism_matrix", &journals8).to_string();
    assert_eq!(doc1, doc8, "trace document must not depend on worker count");
    // Sanity: the journals hold real fault events for every scenario.
    assert_eq!(journals1.len(), KINDS.len());
    for (name, journal) in &journals1 {
        assert!(!journal.records.is_empty(), "{name}: empty journal");
    }
    assert!(doc1.contains(r#""kind":"fault""#));
}

#[test]
fn oversubscribed_pool_matches_serial() {
    // More workers than scenarios: the cursor hands each worker at most
    // one job; order must still be submission order.
    let (text1, json1) = render(1);
    let (text32, json32) = render(32);
    assert_eq!(text1, text32);
    assert_eq!(json1, json32);
}
