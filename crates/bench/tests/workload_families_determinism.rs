//! PR 10's three workload families extend the artifact determinism
//! gate: `oltp_btree`, `hpc_stencil`, and `adversarial` must produce
//! byte-identical JSON summaries and trace journals at any worker count
//! and across repeated runs — and for `adversarial`, the generated
//! ENVELOPES.md atlas must be byte-stable too, since the knee table is
//! a published claim about where policies break.
//!
//! Worker counts are pinned through each target's `report_with`
//! arguments, not `HAWKEYE_BENCH_THREADS`, so the test stays race-free
//! under parallel test execution. Everything lives in one `#[test]`
//! because traced runs hand journals to the process-global
//! trace-journal queue — concurrent tests draining that queue would
//! race. The targets run at reduced scale (shorter victim, smaller
//! tree/grid, two-point intensity sweep): determinism is a property of
//! the engine and the generators, not of the workload length, and the
//! full-scale sweep is unaffordable under the dev profile.

use hawkeye_analyze::envelope::envelopes_md;
use hawkeye_analyze::parse_trace;
use hawkeye_analyze::summary::parse_summary;
use hawkeye_bench::scenario::trace_doc_string;
use hawkeye_bench::suite::{adversarial, hpc_stencil, oltp_btree};
use hawkeye_bench::take_queued_trace_journals;

/// One reduced-scale run of a family at `threads` workers, reduced to
/// the summary JSON and trace-document byte streams.
fn family(target: &str, threads: usize) -> (String, String) {
    let report = match target {
        "oltp_btree" => oltp_btree::report_with(8, 20_000, threads),
        "hpc_stencil" => hpc_stencil::report_with(4, 8, threads),
        "adversarial" => adversarial::report_with(50_000, &[0.0, 0.75], threads),
        other => panic!("unknown family {other}"),
    };
    let summary = report.json().to_string();
    let journals = take_queued_trace_journals();
    assert!(
        !journals.is_empty(),
        "{target}: traced run must queue journals"
    );
    let trace = trace_doc_string(target, &journals);
    (summary, trace)
}

/// The adversarial family additionally renders the failure-envelope
/// atlas; its bytes ride the same gate.
fn envelopes(summary: &str, trace: &str) -> String {
    let doc = parse_summary(summary).expect("adversarial summary parses");
    let td = parse_trace(trace).expect("adversarial trace parses");
    envelopes_md(&doc, Some(&td)).expect("adversarial renders ENVELOPES.md")
}

#[test]
fn family_artifacts_are_byte_identical_across_worker_counts_and_runs() {
    hawkeye_trace::set_forced(true);

    for target in ["oltp_btree", "hpc_stencil", "adversarial"] {
        let (sum1, trace1) = family(target, 1);
        let (sum8, trace8) = family(target, 8);
        assert_eq!(
            sum1, sum8,
            "{target}: JSON summary must not depend on worker count"
        );
        assert_eq!(
            trace1, trace8,
            "{target}: trace document must not depend on worker count"
        );

        if target == "adversarial" {
            let env1 = envelopes(&sum1, &trace1);
            let env8 = envelopes(&sum8, &trace8);
            assert_eq!(env1, env8, "ENVELOPES.md must not depend on worker count");
            assert!(
                env1.contains("## Failure knees"),
                "atlas must tabulate knees"
            );

            // Same thread count, fresh run: every cell re-simulates from
            // its own seeds, so repeat runs must reproduce the atlas.
            let (sum8b, trace8b) = family(target, 8);
            assert_eq!(sum8, sum8b, "adversarial: repeat run drifted the summary");
            assert_eq!(trace8, trace8b, "adversarial: repeat run drifted the trace");
            assert_eq!(
                env8,
                envelopes(&sum8b, &trace8b),
                "repeat run drifted ENVELOPES.md"
            );
        }
    }

    hawkeye_trace::set_forced(false);
}
