//! The telemetry pipeline extends the artifact determinism gate twice
//! over (DESIGN.md §16):
//!
//! 1. **Zero drift** — with telemetry off, every artifact is
//!    byte-identical to the pre-telemetry pipeline, and turning it on
//!    changes *nothing* about the simulation: summary, FLEET.md, and the
//!    per-host journals match the telemetry-off run bit for bit.
//! 2. **Determinism** — the obs document itself (series, alerts,
//!    anomalies) and the ALERTS.md rendered from it are byte-identical
//!    at 1 vs 8 workers and across repeated runs.
//!
//! Telemetry is pinned through `report_with_obs`'s explicit flag, not
//! `HAWKEYE_OBS`, so the test stays race-free under parallel test
//! execution; everything lives in one `#[test]` because the obs-doc and
//! trace-journal queues are process-global.

use hawkeye_analyze::fleet::fleet_md;
use hawkeye_analyze::obs::parse_obs;
use hawkeye_analyze::summary::parse_summary;
use hawkeye_bench::scenario::trace_doc_string;
use hawkeye_bench::suite::fleet_slo::report_with_obs;
use hawkeye_bench::{take_queued_obs_docs, take_queued_trace_journals};
use hawkeye_fleet::FleetConfig;
use hawkeye_obs::alerts_md;

/// One full 256-host fleet run at `threads` workers with telemetry
/// pinned to `observe`: `(summary, trace_doc, fleet_md, obs_doc)`.
/// `obs_doc` is empty when telemetry is off.
fn artifacts(threads: usize, observe: bool) -> (String, String, String, String) {
    let cfg = FleetConfig::sized(256);
    let report = report_with_obs(&cfg, threads, observe);
    let summary = report.json().to_string();
    let journals = take_queued_trace_journals();
    assert!(!journals.is_empty(), "fleet must persist journaled hosts");
    let trace = trace_doc_string("fleet_slo", &journals);
    let docs = take_queued_obs_docs();
    assert_eq!(docs.len(), usize::from(observe), "obs doc queued iff observing");
    let doc = parse_summary(&summary).expect("fleet summary parses");
    let fleet = fleet_md(&doc).expect("fleet_slo renders FLEET.md");
    (summary, trace, fleet, docs.into_iter().next().unwrap_or_default())
}

#[test]
fn obs_artifacts_are_deterministic_and_observation_is_zero_drift() {
    // Telemetry off: the pre-PR determinism gate still holds.
    let (sum_off, trace_off, fleet_off, _) = artifacts(1, false);
    let (sum_off8, trace_off8, fleet_off8, _) = artifacts(8, false);
    assert_eq!(sum_off, sum_off8, "summary must not depend on worker count");
    assert_eq!(trace_off, trace_off8, "trace doc must not depend on worker count");
    assert_eq!(fleet_off, fleet_off8, "FLEET.md must not depend on worker count");

    // Telemetry on: zero drift. The simulation's own artifacts are
    // bit-identical to the telemetry-off run — collection is pure reads.
    // The trace doc gains exactly one synthetic `obs/slo` journal, so
    // compare it by prefix: the off-run host journals must reappear
    // unchanged at the front of the on-run document.
    let (sum_on, trace_on, fleet_on, obs1) = artifacts(1, true);
    assert_eq!(sum_off, sum_on, "observation must not drift the summary");
    assert_eq!(fleet_off, fleet_on, "observation must not drift FLEET.md");
    let host_part = trace_off.strip_suffix("]}").expect("trace doc shape");
    assert!(
        trace_on.starts_with(host_part),
        "host journals must be byte-identical with telemetry on"
    );
    assert!(!obs1.is_empty(), "telemetry run queues the obs document");

    // Telemetry on: the obs document is worker-count- and run-stable.
    let (_, trace_on8, _, obs8) = artifacts(8, true);
    let (_, _, _, obs8b) = artifacts(8, true);
    assert_eq!(obs1, obs8, "obs doc must not depend on worker count");
    assert_eq!(obs8, obs8b, "obs doc must be stable across runs");
    assert_eq!(trace_on, trace_on8, "obs-extended trace doc is deterministic too");

    // ALERTS.md re-rendered from the parsed artifact is deterministic
    // and structurally complete.
    let doc = parse_obs(&obs1).expect("obs doc parses back");
    assert_eq!(doc.target, "fleet_slo");
    assert_eq!(doc.cohorts.len(), 2, "both cohorts observed");
    for c in &doc.cohorts {
        assert!(!c.series.points.is_empty(), "per-epoch series populated");
    }
    let alerts1 = alerts_md(&doc);
    let alerts8 = alerts_md(&parse_obs(&obs8).expect("parses"));
    assert_eq!(alerts1, alerts8, "ALERTS.md must be byte-identical across worker counts");
    for needle in
        ["# Fleet SLO alerts", "HawkEye-G+throttle", "Linux-2MB+noop", "Per-epoch series"]
    {
        assert!(alerts1.contains(needle), "missing {needle:?} in ALERTS.md:\n{alerts1}");
    }
}
