//! Zero-counter-drift guarantee of the trace layer (PR 1-style
//! differential tests): the same simulation must produce bit-identical
//! results with tracing off and with a live trace scope — instrumentation
//! may observe, never perturb. The cycle-attribution registry makes the
//! same promise, checked the same way.

use hawkeye_bench::{run_one, PolicyKind};
use hawkeye_kernel::KernelStats;
use hawkeye_metrics::{registry, Registry};
use hawkeye_trace::{scope, Journal, TraceEvent};
use hawkeye_workloads::Spinup;

struct Observed {
    faults: u64,
    exec_secs_bits: u64,
    cpu_secs_bits: u64,
    mmu_overhead_bits: u64,
    kernel_stats: KernelStats,
}

fn run(kind: PolicyKind) -> Observed {
    let out = run_one(kind, 128, Some((1.0, 0.55)), 30.0, Box::new(Spinup::new("spin", 8 * 1024)));
    Observed {
        faults: out.faults(),
        exec_secs_bits: out.exec_secs().to_bits(),
        cpu_secs_bits: out.cpu_secs().to_bits(),
        mmu_overhead_bits: out.mmu_overhead().to_bits(),
        kernel_stats: out.sim.machine().stats(),
    }
}

fn run_traced(kind: PolicyKind) -> (Observed, Journal) {
    scope::begin(hawkeye_trace::DEFAULT_CAPACITY);
    let observed = run(kind);
    let journal = scope::end().expect("scope was open");
    (observed, journal)
}

fn assert_no_drift(kind: PolicyKind) -> Journal {
    let untraced = run(kind);
    let (traced, journal) = run_traced(kind);
    assert_eq!(untraced.faults, traced.faults, "{kind:?}: fault count drifted");
    assert_eq!(untraced.exec_secs_bits, traced.exec_secs_bits, "{kind:?}: exec time drifted");
    assert_eq!(untraced.cpu_secs_bits, traced.cpu_secs_bits, "{kind:?}: cpu time drifted");
    assert_eq!(
        untraced.mmu_overhead_bits, traced.mmu_overhead_bits,
        "{kind:?}: MMU overhead drifted"
    );
    assert_eq!(untraced.kernel_stats, traced.kernel_stats, "{kind:?}: kernel stats drifted");
    journal
}

#[test]
fn tracing_does_not_perturb_linux_counters() {
    let journal = assert_no_drift(PolicyKind::Linux2m);
    assert!(!journal.records.is_empty(), "traced run must journal events");
}

#[test]
fn tracing_does_not_perturb_hawkeye_counters() {
    let journal = assert_no_drift(PolicyKind::HawkEyeG);
    assert!(
        journal.records.iter().any(|r| matches!(r.event, TraceEvent::Fault { .. })),
        "fault path must journal Fault events"
    );
    // Timestamps are stamped from the machine clock, which only moves
    // forward: the journal must be time-ordered as emitted.
    let times: Vec<u64> = journal.records.iter().map(|r| r.at.get()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "journal out of time order");
    // All events of a single-machine scenario carry machine id 0 and a
    // meaningful pid.
    assert!(journal.records.iter().all(|r| r.machine == 0));
}

#[test]
fn traced_rerun_is_itself_deterministic() {
    let (_, a) = run_traced(PolicyKind::HawkEyeG);
    let (_, b) = run_traced(PolicyKind::HawkEyeG);
    assert_eq!(a, b, "identical traced runs must produce identical journals");
}

fn run_metered(kind: PolicyKind) -> (Observed, Registry) {
    registry::scope::begin();
    let observed = run(kind);
    let reg = registry::scope::end().expect("registry scope was open");
    (observed, reg)
}

#[test]
fn registry_does_not_perturb_counters() {
    // Same differential as tracing: registry on vs. off must leave fault
    // counts, exec/cpu seconds, MMU overhead, and every kernel stat
    // bit-identical — charging the ledgers only observes.
    for kind in [PolicyKind::Linux2m, PolicyKind::HawkEyeG] {
        let off = run(kind);
        let (on, reg) = run_metered(kind);
        assert_eq!(off.faults, on.faults, "{kind:?}: fault count drifted");
        assert_eq!(off.exec_secs_bits, on.exec_secs_bits, "{kind:?}: exec time drifted");
        assert_eq!(off.cpu_secs_bits, on.cpu_secs_bits, "{kind:?}: cpu time drifted");
        assert_eq!(
            off.mmu_overhead_bits, on.mmu_overhead_bits,
            "{kind:?}: MMU overhead drifted"
        );
        assert_eq!(off.kernel_stats, on.kernel_stats, "{kind:?}: kernel stats drifted");
        // And the registry actually collected a consistent ledger.
        let m = reg.machine(0).expect("machine attached");
        assert!(m.unhalted() > 0, "{kind:?}: no unhalted cycles");
        assert_eq!(m.residue(), 0, "{kind:?}: unattributed cycles");
        assert_eq!(
            m.daemon_total(),
            on.kernel_stats.daemon_cycles.get(),
            "{kind:?}: daemon ledger mismatch"
        );
    }
}
