//! The fleet extends the artifact determinism gate: a 256-host fleet's
//! JSON summary, trace journals, and FLEET.md are byte-identical at any
//! worker count and across repeated runs.
//!
//! Worker counts are pinned through `report_with`'s `threads` argument,
//! not `HAWKEYE_BENCH_THREADS`, so the test stays race-free under
//! parallel test execution. Everything lives in one `#[test]` because
//! `report_with` hands the fleet's journals to the process-global
//! trace-journal queue — concurrent tests draining that queue would race.

use hawkeye_analyze::fleet::fleet_md;
use hawkeye_analyze::summary::parse_summary;
use hawkeye_bench::scenario::trace_doc_string;
use hawkeye_bench::suite::fleet_slo::report_with;
use hawkeye_bench::take_queued_trace_journals;
use hawkeye_fleet::FleetConfig;

/// One full 256-host fleet run at `threads` workers, reduced to the three
/// artifact byte-streams the determinism gate covers.
fn artifacts(threads: usize) -> (String, String, String) {
    let cfg = FleetConfig::sized(256);
    let report = report_with(&cfg, threads);
    let summary = report.json().to_string();
    let journals = take_queued_trace_journals();
    assert!(!journals.is_empty(), "fleet must persist journaled hosts");
    let trace = trace_doc_string("fleet_slo", &journals);
    let doc = parse_summary(&summary).expect("fleet summary parses");
    let fleet = fleet_md(&doc).expect("fleet_slo renders FLEET.md");
    (summary, trace, fleet)
}

#[test]
fn fleet_artifacts_are_byte_identical_across_worker_counts_and_runs() {
    let (sum1, trace1, fleet1) = artifacts(1);
    let (sum8, trace8, fleet8) = artifacts(8);
    assert_eq!(sum1, sum8, "JSON summary must not depend on worker count");
    assert_eq!(trace1, trace8, "trace document must not depend on worker count");
    assert_eq!(fleet1, fleet8, "FLEET.md must not depend on worker count");

    // Same thread count, fresh run: the orchestrator owns all its RNG
    // state, so a repeat is bit-for-bit the same.
    let (sum8b, trace8b, fleet8b) = artifacts(8);
    assert_eq!(sum8, sum8b, "JSON summary must be stable across runs");
    assert_eq!(trace8, trace8b, "trace document must be stable across runs");
    assert_eq!(fleet8, fleet8b, "FLEET.md must be stable across runs");

    // Sanity: both cohorts are present and the steered cohort steered.
    for needle in ["HawkEye-G+throttle", "Linux-2MB+noop", "\"steer_decisions\""] {
        assert!(sum1.contains(needle), "missing {needle:?} in summary");
    }
    assert!(fleet1.contains("## Tenancy and steering"));
    assert!(trace1.contains("fleet_slo"), "trace doc carries the target name");
}
