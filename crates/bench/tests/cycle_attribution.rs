//! Tentpole acceptance tests for the cycle-attribution registry: for
//! every policy the per-subsystem CPU breakdown must sum *exactly* to
//! `CPU_CLK_UNHALTED` (Table 4's denominator) — no sampling error, no
//! unattributed residue — and the summary's `cycles` section must be
//! byte-identical at any worker count, like every other bench artifact.

use hawkeye_bench::{cycles_json, run_one, run_scenarios_capturing, PolicyKind, Scenario};
use hawkeye_trace::TraceEvent;
use hawkeye_workloads::AllocTouch;

const KINDS: [PolicyKind; 9] = [
    PolicyKind::Linux4k,
    PolicyKind::Linux2m,
    PolicyKind::FreeBsd,
    PolicyKind::Ingens,
    PolicyKind::Ingens90,
    PolicyKind::Ingens50,
    PolicyKind::HawkEyeG,
    PolicyKind::HawkEyePmu,
    PolicyKind::HawkEye4k,
];

/// One fragmented run per policy, long enough (~280 simulated ms) that
/// the 100 ms metric sampler fires and `cycle_sample` events land in the
/// journal.
fn matrix() -> Vec<Scenario<u64>> {
    KINDS
        .iter()
        .map(|&kind| {
            Scenario::new(kind.label(), move || {
                run_one(kind, 64, Some((1.0, 0.55)), 10.0, Box::new(AllocTouch::new(4096, 30, 5000)))
                    .faults()
            })
        })
        .collect()
}

#[test]
fn every_policy_attributes_every_cycle() {
    let (_, journals, regs) = run_scenarios_capturing(matrix(), 4);
    assert_eq!(regs.len(), KINDS.len(), "every scenario must return a registry");
    for (name, reg) in &regs {
        let m = reg.machine(0).unwrap_or_else(|| panic!("{name}: machine not attached"));
        assert!(m.unhalted() > 0, "{name}: no unhalted cycles recorded");
        assert_eq!(m.residue(), 0, "{name}: breakdown must sum to CPU_CLK_UNHALTED");
    }
    // The journaled snapshots balance too — every one, not just the final.
    let mut samples = 0u64;
    for (name, journal) in &journals {
        for r in &journal.records {
            let TraceEvent::CycleSample {
                walk,
                fault,
                zero,
                copy,
                scan,
                compact,
                dedup,
                idle,
                unhalted,
                ..
            } = r.event
            else {
                continue;
            };
            samples += 1;
            assert_eq!(
                walk + fault + zero + copy + scan + compact + dedup + idle,
                unhalted,
                "{name}: cycle_sample at t={} leaves a residue",
                r.at.get()
            );
        }
    }
    assert!(samples > 0, "no cycle_sample events journaled — sampler never fired?");
}

#[test]
fn cycles_section_is_byte_identical_across_worker_counts() {
    let (_, _, r1) = run_scenarios_capturing(matrix(), 1);
    let (_, _, r8) = run_scenarios_capturing(matrix(), 8);
    let doc1 = cycles_json(&r1).to_string();
    let doc8 = cycles_json(&r8).to_string();
    assert_eq!(doc1, doc8, "cycles section must not depend on worker count");
    for needle in
        [r#""scenario":"Linux-4KB""#, r#""unhalted""#, r#""walk""#, r#""idle""#, r#""hist""#]
    {
        assert!(doc1.contains(needle), "missing {needle} in cycles section");
    }
}
