//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig6_promotion_timeline`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig6_promotion_timeline`.

fn main() {
    hawkeye_bench::suite::run_main("fig6_promotion_timeline");
}
