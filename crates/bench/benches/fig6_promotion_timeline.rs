//! Fig. 6: MMU overhead and huge-page count over time for Graph500 and
//! XSBench in a fragmented system.
//!
//! The hot regions of both applications live in high virtual addresses,
//! so Linux's and Ingens' sequential low-to-high scans promote cold
//! regions for a long time before reaching what matters, while HawkEye's
//! access-coverage buckets pick the hot regions first — the paper shows
//! HawkEye eliminating XSBench's overheads in ~300 s while Linux/Ingens
//! are still above them after 1000 s.

use hawkeye_bench::{print_series, run_one, PolicyKind};
use hawkeye_kernel::Workload;
use hawkeye_workloads::HotspotWorkload;

fn workload(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(96, 6000)),
        _ => Box::new(HotspotWorkload::xsbench(120, 6000)),
    }
}

fn main() {
    for name in ["graph500", "xsbench"] {
        println!("===== Fig. 6: {name} =====");
        for kind in [PolicyKind::Linux2m, PolicyKind::Ingens, PolicyKind::HawkEyeG] {
            let out = run_one(kind, 768, Some((1.0, 0.55)), 300.0, workload(name));
            let m = out.sim.machine();
            let key_mmu = format!("p{}.mmu_overhead", out.pid);
            let key_huge = format!("p{}.huge_pages", out.pid);
            if let Some(s) = m.recorder().series(&key_mmu) {
                print_series(&format!("{} {name}: MMU overhead (fraction)", kind.label()), s, 12);
            }
            if let Some(s) = m.recorder().series(&key_huge) {
                print_series(&format!("{} {name}: huge pages mapped", kind.label()), s, 12);
            }
            println!(
                "{} {name}: final overhead {:.1}%, promotions {}",
                kind.label(),
                out.mmu_overhead() * 100.0,
                m.stats().promotions
            );
        }
    }
    println!(
        "\n(paper, Fig. 6: HawkEye promotes the hot high-VA regions first and\n\
         eliminates MMU overheads several times faster than Linux/Ingens)"
    );
}
