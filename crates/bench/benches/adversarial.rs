//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::adversarial`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench adversarial`.

fn main() {
    hawkeye_bench::suite::run_main("adversarial");
}
