//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::table9_pmu_vs_g`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench table9_pmu_vs_g`.

fn main() {
    hawkeye_bench::suite::run_main("table9_pmu_vs_g");
}
